# Development targets for the MARAS workspace.
#
# `make verify` is the pre-merge gate: formatting, lints as errors, and the
# tier-1 build + test pass. Clippy is scoped to the first-party crates; the
# vendored dependency shims under vendor/ are formatted but not lint-clean
# by contract.

FIRST_PARTY = -p maras -p maras-bench -p maras-core -p maras-faers \
              -p maras-mcac -p maras-mining -p maras-rules -p maras-signals \
              -p maras-study -p maras-viz

.PHONY: verify fmt fmt-check clippy test

verify: fmt-check clippy test

fmt:
	cargo fmt

fmt-check:
	cargo fmt --check

clippy:
	cargo clippy $(FIRST_PARTY) --all-targets -- -D warnings

test:
	cargo build --release
	cargo test -q
