# Development targets for the MARAS workspace.
#
# `make verify` is the pre-merge gate: formatting, lints as errors, and the
# tier-1 build + test pass (which includes the serve crate's ephemeral-port
# HTTP integration tests). Clippy is scoped to the first-party crates; the
# vendored dependency shims under vendor/ are formatted but not lint-clean
# by contract.

FIRST_PARTY = -p maras -p maras-bench -p maras-core -p maras-evidence \
              -p maras-faers -p maras-mcac -p maras-mining -p maras-obs \
              -p maras-rules -p maras-serve -p maras-signals -p maras-study \
              -p maras-tidset -p maras-viz

.PHONY: verify fmt fmt-check clippy test obs-test logs-test serve-test \
        evidence-test signals-test tidset-test chaos snapshot trace bench-serve \
        bench-mining bench-ingest bench-evidence bench-signals bench-tidset

verify: fmt-check clippy test obs-test logs-test serve-test evidence-test \
        signals-test tidset-test chaos

fmt:
	cargo fmt

fmt-check:
	cargo fmt --check

clippy:
	cargo clippy $(FIRST_PARTY) --all-targets -- -D warnings

test:
	cargo build --release
	cargo test -q

# The observability layer on its own: obs crate unit tests (tracer,
# registry, exposition, trace export), the Prometheus golden file, and
# the cross-layer span determinism suite.
obs-test:
	cargo test -q -p maras-obs
	cargo test -q -p maras-serve --test prometheus_golden
	cargo test -q --test observability

# The flight recorder on its own: the structured-log unit tests (ring,
# levels, JSON lines, panic hook) and the end-to-end correlation suite —
# a shed, a timeout, a panic, and a slow request must each surface in
# /debug/logs and /debug/requests under the id the client saw in
# x-maras-request-id.
logs-test:
	cargo test -q -p maras-obs log::
	cargo test -q -p maras-serve --test debug_endpoints

# The server lifecycle test on its own: boots on an ephemeral port,
# exercises every endpoint, and hot-swaps the snapshot mid-test.
serve-test:
	cargo test -q -p maras-serve --test server_integration

# The evidence layer end to end: the archive's differential suite (disk
# postings must reproduce the in-memory covers byte-for-byte), the
# corrupt-archive suite (typed refusals, never panics), the HTTP
# drill-down endpoints, and a real `evidence build` + `evidence check`
# round trip through the CLI.
evidence-test:
	cargo test -q -p maras-evidence
	cargo test -q -p maras-serve --test evidence_endpoints
	cargo run -q --release --bin maras -- generate --out target/evidence-data --reports 2000
	cargo run -q --release --bin maras -- evidence build --dir target/evidence-data \
		--quarter 2014Q1 --out target/evidence-data/2014Q1.evid
	cargo run -q --release --bin maras -- evidence check \
		--archive target/evidence-data/2014Q1.evid

# The signal-scoring layer end to end: the signals crate's unit +
# property suites (Haldane–Anscombe corrections, checked tables,
# Mantel–Haenszel degenerate strata), and the engine differential suite
# proving batch scores bit-identical to the legacy per-rule path across
# quarters, ingest modes, and thread counts.
signals-test:
	cargo test -q -p maras-signals
	cargo test -q --test signals_differential

# The set-algebra substrate end to end: the tidset crate's unit +
# property suites (every kernel vs a naive BTreeSet model across
# array/bitmap/mixed boundaries) and the rewire differential suite
# proving support counting, score marginals, /search narrowing, and
# evidence covers byte-identical to the scalar baselines at 1/2/4
# threads.
tidset-test:
	cargo test -q -p maras-tidset
	cargo test -q --test tidset_differential

# The chaos suite: seeded misbehaving clients (slowloris, header floods,
# aborts, connection floods, panic routes, drain races) against a live
# server, with exact shed/timeout/panic ledgers. Single-threaded so the
# engineered queue states stay deterministic; hard timeout so a hung
# server fails the gate instead of wedging it.
chaos:
	timeout 300 cargo test -q -p maras-serve --test chaos -- --test-threads=1

# Build a demo snapshot end-to-end: synthesize a corpus, mine it, and
# write the indexed binary snapshot `maras serve` loads.
snapshot:
	cargo run -q --release --bin maras -- generate --out target/demo-data --reports 5000
	cargo run -q --release --bin maras -- snapshot --dir target/demo-data \
		--quarter 2014Q1 --out target/demo-data/2014Q1.snap
	cargo run -q --release --bin maras -- serve \
		--snapshot target/demo-data/2014Q1.snap --check

# End-to-end observability demo: synthesize a year, run it with span
# tracing, and leave a Chrome trace (open in chrome://tracing or
# Perfetto) plus the span-tree table on stderr.
trace:
	cargo run -q --release --bin maras -- generate --out target/trace-data --reports 5000
	cargo run -q --release --bin maras -- year --dir target/trace-data \
		--trace target/trace-data/trace.json --timings

# Replay the fixed query workload against a synthetic snapshot and
# record latency percentiles + throughput in BENCH_serve.json.
bench-serve:
	MARAS_SCALE=small cargo run -q --release -p maras-bench --bin bench_serve

# Time the arena-backed parallel miner at 1/2/4/8 threads and record
# wall-time percentiles + speedup in BENCH_mining.json.
bench-mining:
	MARAS_SCALE=small cargo run -q --release -p maras-bench --bin bench_mining

# Time the zero-copy parallel reader at 1/2/4/8 threads and memoized vs
# uncached cleaning, recording results in BENCH_ingest.json.
bench-ingest:
	MARAS_SCALE=small cargo run -q --release -p maras-bench --bin bench_ingest

# Archive build throughput, on-disk vs resident size, postings
# intersections, and cold vs cached block fetches -> BENCH_evidence.json.
bench-evidence:
	MARAS_SCALE=small cargo run -q --release -p maras-bench --bin bench_evidence

# Batch score engine vs the per-rule full-scan and from_db paths, with
# the per-measure cost split -> BENCH_signals.json. Runs at the default
# (paper) scale: the ≥5x acceptance floor is defined there.
bench-signals:
	cargo run -q --release -p maras-bench --bin bench_signals

# Hybrid array/bitmap kernels vs the scalar galloping baseline across
# dense and sparse regimes, with allocation-count assertions ->
# BENCH_tidset.json. The ≥2x dense floor and ≤10% sparse ceiling are
# asserted by the binary itself.
bench-tidset:
	cargo run -q --release -p maras-bench --bin bench_tidset
