//! Property-based fuzzing of the FAERS ASCII layer: arbitrary well-formed
//! reports must round-trip bit-exactly (after delimiter sanitization), and
//! arbitrary corrupt inputs must produce errors, never panics or silent
//! misparses.

use maras::faers::ascii::{
    primary_id, read_quarter, read_quarter_with, IngestOptions, QuarterWriter,
};
use maras::faers::{
    CaseReport, DrugEntry, DrugRole, Outcome, QuarterData, QuarterId, ReportType, Sex,
};
use proptest::prelude::*;

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Death),
        Just(Outcome::LifeThreatening),
        Just(Outcome::Hospitalization),
        Just(Outcome::Disability),
        Just(Outcome::CongenitalAnomaly),
        Just(Outcome::RequiredIntervention),
        Just(Outcome::Other),
    ]
}

fn arb_report(case_id: u64) -> impl Strategy<Value = CaseReport> {
    (
        1u32..4,
        prop_oneof![
            Just(ReportType::Expedited),
            Just(ReportType::Periodic),
            Just(ReportType::Direct)
        ],
        proptest::option::of(0.0f32..120.0),
        prop_oneof![Just(Sex::Female), Just(Sex::Male), Just(Sex::Unknown)],
        proptest::option::of(30.0f32..180.0),
        "[A-Z]{2}",
        proptest::option::of(20140101u32..20141231),
        proptest::collection::vec(("[ A-Za-z0-9$-]{1,18}", 0u8..4), 1..5),
        proptest::collection::vec("[ A-Za-z0-9$-]{1,24}", 1..4),
        proptest::collection::vec(arb_outcome(), 0..3),
    )
        .prop_map(
            move |(
                version,
                report_type,
                age,
                sex,
                weight_kg,
                country,
                event_date,
                drugs,
                reactions,
                outcomes,
            )| {
                CaseReport {
                    case_id,
                    version,
                    report_type,
                    age: age.map(|a| (a * 2.0).round() / 2.0),
                    sex,
                    weight_kg: weight_kg.map(|w| (w * 2.0).round() / 2.0),
                    country: country.into(),
                    event_date,
                    drugs: drugs
                        .into_iter()
                        .map(|(name, role)| {
                            let role = match role {
                                0 => DrugRole::PrimarySuspect,
                                1 => DrugRole::SecondarySuspect,
                                2 => DrugRole::Concomitant,
                                _ => DrugRole::Interacting,
                            };
                            DrugEntry::new(name, role)
                        })
                        .collect(),
                    reactions: reactions.into_iter().map(Into::into).collect(),
                    outcomes,
                }
            },
        )
}

fn arb_quarter() -> impl Strategy<Value = QuarterData> {
    proptest::collection::vec(proptest::num::u8::ANY, 1..12).prop_flat_map(|ids| {
        // Distinct case ids so (case_id, version) keys stay unique.
        let mut case_ids: Vec<u64> = ids.iter().map(|&b| 1_000 + b as u64).collect();
        case_ids.sort_unstable();
        case_ids.dedup();
        case_ids
            .into_iter()
            .map(arb_report)
            .collect::<Vec<_>>()
            .prop_map(|reports| QuarterData { id: QuarterId::new(2014, 1), reports })
    })
}

/// What the writer is allowed to change: `$`, CR and LF become spaces; all
/// other text survives verbatim.
fn sanitize(s: &str) -> String {
    s.replace(['$', '\n', '\r'], " ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_quarters_roundtrip(q in arb_quarter()) {
        let mut demo = Vec::new();
        let mut drug = Vec::new();
        let mut reac = Vec::new();
        let mut outc = Vec::new();
        QuarterWriter::write_demo(&mut demo, &q.reports).unwrap();
        QuarterWriter::write_drug(&mut drug, &q.reports).unwrap();
        QuarterWriter::write_reac(&mut reac, &q.reports).unwrap();
        QuarterWriter::write_outc(&mut outc, &q.reports).unwrap();
        let back = read_quarter(q.id, &demo[..], &drug[..], &reac[..], &outc[..])
            .expect("well-formed output must parse");

        prop_assert_eq!(back.reports.len(), q.reports.len());
        for (a, b) in back.reports.iter().zip(&q.reports) {
            prop_assert_eq!(a.case_id, b.case_id);
            prop_assert_eq!(a.version, b.version);
            prop_assert_eq!(a.report_type, b.report_type);
            prop_assert_eq!(a.age, b.age);
            prop_assert_eq!(a.weight_kg, b.weight_kg);
            prop_assert_eq!(&a.country, &sanitize(&b.country));
            prop_assert_eq!(a.event_date, b.event_date);
            prop_assert_eq!(a.drugs.len(), b.drugs.len());
            for (da, db) in a.drugs.iter().zip(&b.drugs) {
                prop_assert_eq!(&da.name, &sanitize(&db.name));
                prop_assert_eq!(da.role, db.role);
            }
            let want: Vec<String> = b.reactions.iter().map(|r| sanitize(r)).collect();
            prop_assert_eq!(&a.reactions, &want);
            prop_assert_eq!(&a.outcomes, &b.outcomes);
        }
    }

    #[test]
    fn corrupted_demo_lines_error_not_panic(
        q in arb_quarter(),
        garbage in "[^\n]{0,40}",
        line_pick in 0usize..8,
    ) {
        let mut demo = Vec::new();
        QuarterWriter::write_demo(&mut demo, &q.reports).unwrap();
        let mut lines: Vec<String> =
            String::from_utf8(demo).unwrap().lines().map(str::to_string).collect();
        // Replace one data line (never the header) with garbage.
        if lines.len() > 1 {
            let idx = 1 + line_pick % (lines.len() - 1);
            if lines[idx] != garbage {
                lines[idx] = garbage;
                let demo = lines.join("\n") + "\n";
                let empty_drug = "primaryid$drug_seq$role_cod$drugname\n";
                let empty_reac = "primaryid$pt\n";
                let empty_outc = "primaryid$outc_cod\n";
                // Must return an error (or, if the garbage happens to parse as a
                // valid row, succeed) — never panic.
                let _ = read_quarter(
                    q.id,
                    demo.as_bytes(),
                    empty_drug.as_bytes(),
                    empty_reac.as_bytes(),
                    empty_outc.as_bytes(),
                );
            }
        }
    }

    #[test]
    fn lenient_ingest_never_panics_and_accounts_for_every_row(
        q in arb_quarter(),
        garbage in proptest::collection::vec("[^\n]{0,40}", 4..5),
        picks in proptest::collection::vec(0usize..16, 4..5),
    ) {
        // Render the quarter, then smash one arbitrary line per table —
        // including, sometimes, the header (pick index 0).
        let mut tables = Vec::new();
        for write in [
            QuarterWriter::write_demo as fn(&mut Vec<u8>, &[CaseReport]) -> std::io::Result<()>,
            QuarterWriter::write_drug,
            QuarterWriter::write_reac,
            QuarterWriter::write_outc,
        ] {
            let mut buf = Vec::new();
            write(&mut buf, &q.reports).unwrap();
            tables.push(String::from_utf8(buf).unwrap());
        }
        let mut data_rows = 0usize;
        for ((table, garbage), pick) in tables.iter_mut().zip(&garbage).zip(&picks) {
            let mut lines: Vec<String> = table.lines().map(str::to_string).collect();
            let idx = pick % lines.len();
            lines[idx] = garbage.clone();
            data_rows += lines.len() - 1; // everything but line 1 is data
            *table = lines.join("\n") + "\n";
        }

        // Lenient ingest with no budget must succeed whatever we fed it…
        let ingested = read_quarter_with(
            q.id,
            tables[0].as_bytes(),
            tables[1].as_bytes(),
            tables[2].as_bytes(),
            tables[3].as_bytes(),
            &IngestOptions::lenient(),
        )
        .expect("lenient ingest with an unlimited budget must not fail");

        // …and every non-header input row is either parsed or quarantined.
        let report = &ingested.report;
        prop_assert_eq!(report.rows_read(), data_rows);
        prop_assert_eq!(report.rows_ok() + report.bad_rows(), report.rows_read());
        for rec in &report.quarantine {
            prop_assert!(rec.line >= 1);
            prop_assert!(!rec.detail.is_empty());
        }
    }

    #[test]
    fn lenient_equals_strict_on_clean_quarters(q in arb_quarter()) {
        let mut demo = Vec::new();
        let mut drug = Vec::new();
        let mut reac = Vec::new();
        let mut outc = Vec::new();
        QuarterWriter::write_demo(&mut demo, &q.reports).unwrap();
        QuarterWriter::write_drug(&mut drug, &q.reports).unwrap();
        QuarterWriter::write_reac(&mut reac, &q.reports).unwrap();
        QuarterWriter::write_outc(&mut outc, &q.reports).unwrap();
        let strict = read_quarter(q.id, &demo[..], &drug[..], &reac[..], &outc[..])
            .expect("clean data parses strictly");
        let lenient = read_quarter_with(
            q.id,
            &demo[..],
            &drug[..],
            &reac[..],
            &outc[..],
            &IngestOptions::lenient(),
        )
        .expect("clean data parses leniently");
        // On clean input the two modes are indistinguishable.
        prop_assert_eq!(&lenient.data, &strict);
        prop_assert!(lenient.report.is_clean());
        prop_assert_eq!(lenient.report.quarantined(), 0);
        prop_assert_eq!(lenient.report.rows_ok(), lenient.report.rows_read());
    }

    #[test]
    fn primary_id_is_injective_for_small_versions(
        a in 1u64..10_000_000, b in 1u64..10_000_000, va in 1u32..100, vb in 1u32..100
    ) {
        if (a, va) != (b, vb) {
            prop_assert_ne!(primary_id(a, va), primary_id(b, vb));
        } else {
            prop_assert_eq!(primary_id(a, va), primary_id(b, vb));
        }
    }
}
