//! Acceptance tests for fault-tolerant ingestion: a quarter corrupted at
//! 2% by the seeded fault-injection harness must ingest in lenient mode
//! with every corruption quarantined (and correctly attributed), the
//! planted drug-interaction signal must survive the damage, and the same
//! input under strict mode — or under a 1% error budget — must fail with
//! a structured error naming the first offending file and line.

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::ascii::{AsciiError, ErrorBudget, IngestOptions, Ingested};
use maras::faers::{
    corrupt_quarter, CorruptedQuarter, FaultConfig, PlantedInteraction, QuarterId, SynthConfig,
    Synthesizer,
};

/// The pipeline_end_to_end fixture (seed 42, 2500 reports) with every
/// fault kind injected at a 2% rate.
fn corrupted_fixture() -> (CorruptedQuarter, Synthesizer) {
    let mut cfg = SynthConfig::test_scale(42);
    cfg.n_reports = 2500;
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let corrupted = corrupt_quarter(&quarter, &FaultConfig::new(1234, 0.02));
    assert!(!corrupted.faults.is_empty(), "2% of 2500 reports must inject faults");
    (corrupted, synth)
}

fn lenient_read(corrupted: &CorruptedQuarter) -> Ingested {
    corrupted.read(&IngestOptions::lenient()).expect("unlimited lenient ingest succeeds")
}

#[test]
fn two_percent_corruption_is_fully_quarantined_with_correct_reasons() {
    let (corrupted, _) = corrupted_fixture();
    let ingested = lenient_read(&corrupted);
    let report = &ingested.report;
    // Exact per-reason attribution against the injection ledger.
    assert_eq!(report.counts_by_reason(), corrupted.expected_reason_counts());
    assert_eq!(report.quarantined(), corrupted.expected_quarantines().len());
    assert_eq!(report.bad_rows(), corrupted.expected_bad_rows());
    assert_eq!(report.rows_ok() + report.bad_rows(), report.rows_read());
    assert!(!report.is_clean());
}

#[test]
fn planted_interactions_survive_two_percent_corruption() {
    let (corrupted, synth) = corrupted_fixture();
    let ingested = lenient_read(&corrupted);
    let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
        ingested.data,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    let n = result.ranked.len();
    assert!(n > 50, "expected a substantial ruleset from the surviving reports, got {n}");
    let mut found = 0usize;
    for pi in PlantedInteraction::paper_case_studies() {
        let drugs: Vec<&str> = pi.drugs.iter().map(String::as_str).collect();
        let adrs: Vec<&str> = pi.adrs.iter().map(String::as_str).collect();
        if let Some(rank) = result.rank_of(&drugs, &adrs, synth.drug_vocab(), synth.adr_vocab()) {
            found += 1;
            assert!(
                rank < n / 4,
                "{:?} ranked {rank} of {n} — outside the leading quartile",
                pi.drugs
            );
        }
    }
    assert!(found >= 4, "planted interactions must survive 2% corruption, got {found}");
}

#[test]
fn strict_mode_fails_naming_the_first_offense() {
    let (corrupted, _) = corrupted_fixture();
    let err = corrupted.read(&IngestOptions::strict()).expect_err("strict must fail");
    match &err {
        AsciiError::Malformed { file, line, .. } => {
            assert!(
                corrupted.expected_quarantines().iter().any(|(f, l, _)| f == file && *l == *line),
                "strict error names ({file}, {line}), which is not in the injection ledger"
            );
        }
        AsciiError::OrphanRow { file, .. } => {
            assert!(
                corrupted.expected_quarantines().iter().any(|(f, _, _)| f == file),
                "strict orphan error names {file}, which has no ledger entry"
            );
        }
        other => panic!("expected a structured parse error, got {other}"),
    }
}

#[test]
fn one_percent_budget_escalates_to_a_structured_failure() {
    let (corrupted, _) = corrupted_fixture();
    let opts = IngestOptions::lenient_with(ErrorBudget::max_frac(0.01));
    let err = corrupted.read(&opts).expect_err("2% damage must blow a 1% budget");
    match err {
        AsciiError::BudgetExceeded { bad_rows, rows_read, first, .. } => {
            assert!(bad_rows as f64 > 0.01 * rows_read as f64);
            assert!(
                corrupted
                    .expected_quarantines()
                    .iter()
                    .any(|(f, l, _)| *f == first.file && *l == first.line),
                "first offender ({}, {}) is not in the injection ledger",
                first.file,
                first.line
            );
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

#[test]
fn absolute_budget_fails_fast() {
    let (corrupted, _) = corrupted_fixture();
    let opts = IngestOptions::lenient_with(ErrorBudget::max_rows(3));
    match corrupted.read(&opts) {
        Err(AsciiError::BudgetExceeded { bad_rows, .. }) => {
            // Fail-fast: the read stops as soon as the cap is crossed.
            assert_eq!(bad_rows, 4, "the read must abandon at the first row over budget");
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}
