//! The on-disk FAERS exchange format must be analytically lossless: a
//! quarter written to the quarterly ASCII files and read back must produce
//! the *identical* analysis.

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::ascii::{read_quarter_dir, write_quarter_dir};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};

#[test]
fn ascii_roundtrip_preserves_reports_exactly() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(7));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 2));
    let dir = std::env::temp_dir().join(format!("maras_it_ascii_{}", std::process::id()));
    write_quarter_dir(&dir, &quarter).expect("write");
    let back = read_quarter_dir(&dir, quarter.id).expect("read");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(back, quarter);
}

#[test]
fn analysis_of_roundtripped_quarter_is_identical() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(8));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 3));
    let dir = std::env::temp_dir().join(format!("maras_it_ascii2_{}", std::process::id()));
    write_quarter_dir(&dir, &quarter).expect("write");
    let back = read_quarter_dir(&dir, quarter.id).expect("read");
    std::fs::remove_dir_all(&dir).ok();

    let pipeline = Pipeline::new(PipelineConfig::default());
    let direct = pipeline.run(quarter, synth.drug_vocab(), synth.adr_vocab());
    let via_disk = pipeline.run(back, synth.drug_vocab(), synth.adr_vocab());
    assert_eq!(direct.counts, via_disk.counts);
    assert_eq!(direct.ranked.len(), via_disk.ranked.len());
    for (a, b) in direct.ranked.iter().zip(&via_disk.ranked) {
        assert_eq!(a.cluster.target, b.cluster.target);
        assert_eq!(a.score, b.score);
    }
}

#[test]
fn all_four_quarters_roundtrip_in_one_directory() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(9));
    let year = synth.generate_year(2014);
    let dir = std::env::temp_dir().join(format!("maras_it_year_{}", std::process::id()));
    for q in &year {
        write_quarter_dir(&dir, q).expect("write");
    }
    // Quarter files are name-disambiguated, so all four coexist.
    for q in &year {
        let back = read_quarter_dir(&dir, q.id).expect("read");
        assert_eq!(&back, q, "quarter {} corrupted", q.id);
    }
    std::fs::remove_dir_all(&dir).ok();
}
