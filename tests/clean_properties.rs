//! Property tests on the cleaning stage: the §5.2 normalization must be
//! idempotent, misspelling correction must undo single edits on canonical
//! names, and the whole stage must be a deterministic function of its input.

use maras::faers::clean::normalize_drug_string;
use maras::faers::{clean_quarter, CleanConfig, QuarterId, SynthConfig, Synthesizer, Vocabulary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn normalization_is_idempotent(raw in "[A-Za-z0-9 ]{0,30}") {
        let once = normalize_drug_string(&raw, true);
        let twice = normalize_drug_string(&once, true);
        prop_assert_eq!(&once, &twice, "raw {:?}", raw);
        // And uppercase with collapsed whitespace.
        prop_assert!(!once.contains("  "));
        prop_assert_eq!(once.clone(), once.to_ascii_uppercase());
    }

    #[test]
    fn single_edit_misspellings_are_corrected(
        drug_idx in 0usize..50,
        pos in 0usize..6,
        edit in 0u8..3,
        letter in 0u8..26,
    ) {
        // Take a seed drug, apply one edit, and require the vocabulary's
        // fuzzy lookup to land back on a term within distance 1 — usually
        // the original (another canonical name may be closer by ties, which
        // is also correct behaviour for a distance-1 match).
        let vocab = Vocabulary::drugs(300);
        let original = vocab.term(drug_idx as u32).to_string();
        prop_assume!(original.len() >= 5);
        let pos = 1 + pos % (original.len() - 2);
        let mut chars: Vec<char> = original.chars().collect();
        let c = (b'A' + letter) as char;
        match edit {
            0 => chars[pos] = c,
            1 => { chars.remove(pos); }
            _ => chars.insert(pos, c),
        }
        let misspelled: String = chars.into_iter().collect();
        let (id, dist) = vocab
            .nearest(&misspelled, 2)
            .expect("a 1-edit perturbation must stay within reach");
        prop_assert!(dist <= 1, "{misspelled:?} matched {} at {dist}", vocab.term(id));
        prop_assert!(
            maras::faers::levenshtein(vocab.term(id), &misspelled) <= 1,
            "match is not within one edit"
        );
    }
}

#[test]
fn cleaning_is_a_pure_function_of_its_input() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(123));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let (a, sa) = clean_quarter(&quarter, &dv, &av, &CleanConfig::default());
    let (b, sb) = clean_quarter(&quarter, &dv, &av, &CleanConfig::default());
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}

#[test]
fn stricter_configs_never_produce_more_reports() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(124));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let loose = CleanConfig::default();
    let strict = CleanConfig { max_edit_distance: 0, min_drugs: 2, ..CleanConfig::default() };
    let (a, _) = clean_quarter(&quarter, &dv, &av, &loose);
    let (b, _) = clean_quarter(&quarter, &dv, &av, &strict);
    assert!(b.len() <= a.len(), "strict {} vs loose {}", b.len(), a.len());
    assert!(b.iter().all(|c| c.drug_ids.len() >= 2));
}
