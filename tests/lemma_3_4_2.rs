//! Cross-crate validation of Lemma 3.4.2 on realistic data: every rule the
//! MARAS pipeline emits is a *supported* association (explicit or
//! implicit), while the unfiltered pool contains the misleading type-3
//! rules the closedness filter exists to remove.

use maras::core::{encode_reports, Pipeline, PipelineConfig};
use maras::faers::{clean_quarter, CleanConfig, QuarterId, SynthConfig, Synthesizer};
use maras::rules::{classify, drug_adr_rules, Supportedness};

#[test]
fn all_pipeline_rules_are_supported_associations() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(11));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default()).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    assert!(!result.ranked.is_empty());
    for r in &result.ranked {
        let class = classify(&r.cluster.target.complete_itemset(), &result.encoded.db);
        assert_ne!(
            class,
            Supportedness::Unsupported,
            "pipeline emitted a misleading rule: {}",
            r.cluster.target
        );
    }
}

#[test]
fn unfiltered_pool_contains_misleading_rules_closed_pool_does_not() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(12));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let (cleaned, _) = clean_quarter(
        &quarter.expedited_only(),
        synth.drug_vocab(),
        synth.adr_vocab(),
        &CleanConfig::default(),
    );
    let encoded = encode_reports(&cleaned, synth.drug_vocab(), synth.adr_vocab());
    let pool = drug_adr_rules(&encoded.db, &encoded.partition, 3);
    let unsupported = pool
        .iter()
        .filter(|r| classify(&r.complete_itemset(), &encoded.db) == Supportedness::Unsupported)
        .count();
    assert!(
        unsupported > 0,
        "synthetic data must produce spurious partial rules in the unfiltered pool \
         (pool size {})",
        pool.len()
    );
    // And the proportion should be substantial — this is the reduction
    // Fig. 5.1 visualizes.
    assert!(
        unsupported * 4 > pool.len(),
        "expected >25% misleading rules, got {unsupported}/{}",
        pool.len()
    );
}

#[test]
fn explicit_and_implicit_rules_both_occur() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(13));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default()).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    let mut explicit = 0usize;
    let mut implicit = 0usize;
    for r in &result.ranked {
        match classify(&r.cluster.target.complete_itemset(), &result.encoded.db) {
            Supportedness::Explicit => explicit += 1,
            Supportedness::Implicit => implicit += 1,
            Supportedness::Unsupported => unreachable!("checked above"),
        }
    }
    assert!(explicit > 0, "some rules should be whole reports");
    assert!(implicit > 0, "some rules should be cross-report overlaps");
}
