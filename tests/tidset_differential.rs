//! Differential acceptance suite for the hybrid tid-set rewire: every
//! consumer of `maras-tidset` — support counting, the batch score engine's
//! marginals, `/search` filter-grid narrowing, and the evidence reader's
//! cover path — must be byte-identical to the scalar sorted-`Vec<u32>`
//! baselines the PR deleted, across seeded quarters, a dense synthetic
//! corpus that forces bitmap containers, and 1/2/4 scoring threads.
//!
//! The scalar galloping kernels are re-implemented here, in-test, as the
//! ground truth; nothing in this file goes through `maras-tidset` on the
//! baseline side.

use maras::core::{link, Pipeline, PipelineConfig, RuleQuery};
use maras::evidence::{build_archive, BuildConfig, EvidenceReader};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};
use maras::mining::{Item, ItemSet, TransactionDb};
use maras::rules::DrugAdrRule;
use maras::serve::Snapshot;
use maras::signals::{interaction_contrast, score_rules, ContingencyTable, SignalScores};
use rand::{rngs::StdRng, Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Scalar baselines (the pre-PR kernels, re-implemented verbatim in-test).
// ---------------------------------------------------------------------------

/// The deleted `mining::transactions::intersect_sorted`: galloping
/// two-pointer intersection over sorted `&[u32]`.
fn scalar_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(short.len());
    let mut lo = 0usize;
    for &x in short {
        // Gallop to find the first index in `long[lo..]` with value >= x.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi = lo.saturating_add(step).min(long.len());
            step <<= 1;
        }
        let idx = lo + long[lo..hi.min(long.len())].partition_point(|&v| v < x);
        if idx < long.len() && long[idx] == x {
            out.push(x);
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= long.len() {
            break;
        }
    }
    out
}

/// The deleted k-way fold: smallest list first, intersect pairwise.
fn scalar_intersect_k(mut lists: Vec<&[u32]>) -> Vec<u32> {
    if lists.is_empty() {
        return Vec::new();
    }
    lists.sort_by_key(|l| l.len());
    let mut acc = lists[0].to_vec();
    for l in &lists[1..] {
        if acc.is_empty() {
            break;
        }
        acc = scalar_intersect(&acc, l);
    }
    acc
}

/// Ground-truth support: a full transaction scan, no tid-lists at all.
fn naive_support(db: &TransactionDb, items: &[Item]) -> u32 {
    let set = ItemSet::from_items(items.to_vec());
    db.transactions().iter().filter(|t| set.is_subset_of(t)).count() as u32
}

/// Ground-truth cover: tids of transactions containing every item.
fn naive_cover(db: &TransactionDb, items: &[Item]) -> Vec<u32> {
    let set = ItemSet::from_items(items.to_vec());
    db.transactions()
        .iter()
        .enumerate()
        .filter(|(_, t)| set.is_subset_of(t))
        .map(|(tid, _)| tid as u32)
        .collect()
}

/// Ground-truth closure: the items shared by every covering transaction.
fn naive_closure(db: &TransactionDb, itemset: &ItemSet) -> ItemSet {
    let cover = naive_cover(db, itemset.items());
    let mut acc: Option<ItemSet> = None;
    for &tid in &cover {
        let t = db.transaction(tid);
        acc = Some(match acc {
            None => t.clone(),
            Some(a) => a.intersection(t),
        });
    }
    acc.unwrap_or_else(|| itemset.clone())
}

/// Per-item scalar covers, computed by transaction scan (never via TidSet).
fn scalar_item_covers(db: &TransactionDb) -> Vec<Vec<u32>> {
    let mut covers = vec![Vec::new(); db.item_bound() as usize];
    for (tid, t) in db.transactions().iter().enumerate() {
        for item in t.iter() {
            covers[item.index()].push(tid as u32);
        }
    }
    covers
}

// ---------------------------------------------------------------------------
// Density regimes.
// ---------------------------------------------------------------------------

/// A dense corpus: 12 000 transactions over 30 items where the hot items
/// appear in well over 4096 transactions, so their covers cross the
/// per-chunk array→bitmap threshold and land in bitmap containers.
fn dense_db(seed: u64) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Item>> = (0..12_000)
        .map(|_| {
            let mut row = Vec::new();
            for item in 0u32..30 {
                // Items 0..5 are hot (p=0.6), 5..12 warm (p=0.15), rest cold.
                let p = match item {
                    0..=4 => 0.6,
                    5..=11 => 0.15,
                    _ => 0.01,
                };
                if rng.gen_bool(p) {
                    row.push(Item(item));
                }
            }
            row
        })
        .collect();
    TransactionDb::new(rows)
}

/// A sparse corpus: 4 000 transactions over 600 items, every cover tiny.
fn sparse_db(seed: u64) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Item>> = (0..4_000)
        .map(|_| {
            let mut row: Vec<Item> = (0..6).map(|_| Item(rng.gen_range(0u32..600))).collect();
            row.sort_unstable();
            row.dedup();
            row
        })
        .collect();
    TransactionDb::new(rows)
}

/// Asserts every tid-list derived quantity on `db` equals the scalar
/// baselines, over a grid of probe itemsets.
fn assert_db_matches_scalar(db: &TransactionDb, probes: &[Vec<u32>], ctx: &str) {
    let covers = scalar_item_covers(db);
    for ids in probes {
        let items: Vec<Item> = ids.iter().map(|&i| Item(i)).collect();
        let itemset = ItemSet::from_items(items.clone());
        let lists: Vec<&[u32]> = items.iter().map(|i| covers[i.index()].as_slice()).collect();
        let want_cover = scalar_intersect_k(lists);
        let want_support = naive_support(db, &items);
        assert_eq!(
            want_cover.len() as u32,
            want_support,
            "{ctx} {ids:?}: scalar baselines disagree with each other"
        );
        assert_eq!(db.support_of(&items), want_support, "{ctx} {ids:?}: support_of");
        assert_eq!(db.support(&itemset), want_support, "{ctx} {ids:?}: support");
        assert_eq!(db.cover_tids(&itemset), want_cover, "{ctx} {ids:?}: cover_tids");
        assert_eq!(db.closure(&itemset), naive_closure(db, &itemset), "{ctx} {ids:?}: closure");
        // Union support against a fixed second leg.
        for other in probes {
            let b: Vec<Item> = other.iter().map(|&i| Item(i)).collect();
            let mut joint = ids.clone();
            joint.extend_from_slice(other);
            joint.sort_unstable();
            joint.dedup();
            let want = naive_support(db, &joint.iter().map(|&i| Item(i)).collect::<Vec<_>>());
            assert_eq!(
                db.support_of_union(&items, &b),
                want,
                "{ctx} {ids:?} ∪ {other:?}: support_of_union"
            );
        }
    }
}

#[test]
fn dense_corpus_forces_bitmaps_and_matches_scalar_baselines() {
    let db = dense_db(901);
    // The regime must actually exercise bitmap containers, or this test
    // proves nothing about the dense kernels.
    let hot = db.item_cover(Item(0)).expect("hot item has a cover");
    assert!(hot.len() > 4096, "hot item cover must cross the array→bitmap threshold");
    let (_, bitmaps) = hot.container_mix();
    assert!(bitmaps >= 1, "hot item cover must hold at least one bitmap container");
    let probes: Vec<Vec<u32>> = vec![
        vec![0],
        vec![0, 1],
        vec![0, 1, 2],
        vec![0, 1, 2, 3, 4],
        vec![0, 5],
        vec![5, 6, 7],
        vec![0, 12],
        vec![12, 13],
        vec![29],
    ];
    assert_db_matches_scalar(&db, &probes, "dense");
}

#[test]
fn sparse_corpus_stays_in_arrays_and_matches_scalar_baselines() {
    let db = sparse_db(902);
    let cover = db.item_cover(Item(0)).expect("item 0 appears");
    let (arrays, bitmaps) = cover.container_mix();
    assert!(arrays >= 1 && bitmaps == 0, "sparse covers must stay array containers");
    let probes: Vec<Vec<u32>> =
        vec![vec![0], vec![0, 1], vec![1, 2, 3], vec![10, 20], vec![599], vec![0, 599]];
    assert_db_matches_scalar(&db, &probes, "sparse");
}

// ---------------------------------------------------------------------------
// Seeded quarters: score marginals at 1/2/4 threads.
// ---------------------------------------------------------------------------

/// Bit-level equality over the whole score block (same helper as the
/// signals differential suite).
fn assert_bits_eq(got: &SignalScores, want: &SignalScores, ctx: &str) {
    assert_eq!(got.table, want.table, "{ctx}: table");
    let fields: [(&str, f64, f64); 16] = [
        ("rrr", got.rrr, want.rrr),
        ("prr.estimate", got.prr.estimate, want.prr.estimate),
        ("prr.lower", got.prr.lower, want.prr.lower),
        ("prr.upper", got.prr.upper, want.prr.upper),
        ("ror.estimate", got.ror.estimate, want.ror.estimate),
        ("ror.lower", got.ror.lower, want.ror.lower),
        ("ror.upper", got.ror.upper, want.ror.upper),
        ("chi2", got.chi2, want.chi2),
        ("ic.ic", got.ic.ic, want.ic.ic),
        ("ic.ic025", got.ic.ic025, want.ic.ic025),
        ("ic.ic975", got.ic.ic975, want.ic.ic975),
        ("ebgm.ebgm", got.ebgm.ebgm, want.ebgm.ebgm),
        ("ebgm.eb05", got.ebgm.eb05, want.ebgm.eb05),
        ("ebgm.eb95", got.ebgm.eb95, want.ebgm.eb95),
        ("interaction", got.interaction, want.interaction),
        ("exclusiveness", got.exclusiveness, want.exclusiveness),
    ];
    for (name, g, w) in fields {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: {name} ({g} vs {w})");
    }
    assert_eq!(got.evans, want.evans, "{ctx}: evans");
}

fn legacy_score(db: &TransactionDb, rule: &DrugAdrRule) -> SignalScores {
    let table = ContingencyTable::from_db(db, &rule.drugs, &rule.adrs);
    let base = SignalScores::from_table(table);
    if rule.is_multi_drug() {
        base.with_interaction(interaction_contrast(db, &rule.drugs, &rule.adrs))
    } else {
        base
    }
}

#[test]
fn quarter_marginals_and_scores_match_scalar_paths_at_all_thread_counts() {
    for seed in [41u64, 42] {
        let mut cfg = SynthConfig::test_scale(seed);
        cfg.n_reports = 1500;
        let mut synth = Synthesizer::new(cfg);
        let quarter = synth.generate_quarter(QuarterId::new(2016, 1 + (seed % 4) as u8));
        let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
            quarter,
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        let db = &result.encoded.db;
        let rules: Vec<DrugAdrRule> =
            result.ranked.iter().map(|r| r.cluster.target.clone()).collect();
        assert!(!rules.is_empty(), "seed {seed}: no ranked rules");

        // Marginals: the hybrid intersections behind every table cell must
        // equal full transaction scans.
        for (i, rule) in rules.iter().enumerate() {
            let drugs = rule.drugs.items();
            let adrs = rule.adrs.items();
            let mut joint: Vec<Item> = drugs.iter().chain(adrs).copied().collect();
            joint.sort_unstable();
            joint.dedup();
            assert_eq!(
                db.support_of(drugs),
                naive_support(db, drugs),
                "seed {seed} rule {i}: exposed marginal"
            );
            assert_eq!(
                db.support_of(adrs),
                naive_support(db, adrs),
                "seed {seed} rule {i}: event marginal"
            );
            assert_eq!(
                db.support_of_union(drugs, adrs),
                naive_support(db, &joint),
                "seed {seed} rule {i}: joint marginal"
            );
        }

        // Scores: bit-identical to the legacy per-rule path at 1/2/4 threads.
        let legacy: Vec<SignalScores> = rules.iter().map(|r| legacy_score(db, r)).collect();
        for threads in [1usize, 2, 4] {
            let scored = score_rules(db, &rules, threads);
            assert_eq!(scored.len(), legacy.len());
            for (i, (got, want)) in scored.iter().zip(&legacy).enumerate() {
                assert_bits_eq(got, want, &format!("seed {seed} threads {threads} rule {i}"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// /search narrowing and evidence covers against their scan-path baselines.
// ---------------------------------------------------------------------------

#[test]
fn snapshot_narrowing_and_evidence_cover_match_scan_paths() {
    let mut cfg = SynthConfig::test_scale(43);
    cfg.n_reports = 1500;
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2016, 4));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    let dv = synth.drug_vocab();
    let av = synth.adr_vocab();
    assert!(!result.ranked.is_empty());

    // Index path (hybrid posting intersections) vs the linear scan path.
    let snapshot = Snapshot::build("2016Q4", &result, dv, av, None);
    let t0 = &result.ranked[0].cluster.target;
    let drug0 = result.encoded.names(&t0.drugs, dv, av)[0].to_ascii_uppercase();
    let adr0 = result.encoded.names(&t0.adrs, dv, av)[0].clone();
    let queries: Vec<(&str, RuleQuery)> = vec![
        ("all", RuleQuery::new()),
        ("drug", RuleQuery::new().with_drug(&drug0)),
        ("adr", RuleQuery::new().with_any_adr(&adr0)),
        ("combo", RuleQuery::new().with_drug(&drug0).with_any_adr(&adr0)),
        ("severity", RuleQuery::new().with_min_severity(3)),
        ("pair", RuleQuery::new().with_n_drugs(2)),
        ("stacked", RuleQuery::new().with_drug(&drug0).with_min_severity(2).with_n_drugs(2)),
        ("prr", RuleQuery::new().with_min_prr(1.5)),
    ];
    for (tag, q) in &queries {
        assert_eq!(
            snapshot.query(q),
            q.apply(&result, dv, av, None),
            "query {tag}: index path diverged from scan path"
        );
    }

    // Evidence path: archived postings (decoded into hybrid sets,
    // intersected k-way) vs the in-memory link cover vs the in-test
    // scalar fold over raw postings.
    let path = std::env::temp_dir().join(format!("maras-tidset-diff-{}.evid", std::process::id()));
    build_archive(&result, dv, av, &path, BuildConfig::default()).expect("build archive");
    let reader = EvidenceReader::open(&path).expect("archive opens");
    for (rank, r) in result.ranked.iter().enumerate() {
        let rule = &r.cluster.target;
        let drugs: Vec<String> = result
            .encoded
            .names(&rule.drugs, dv, av)
            .into_iter()
            .map(|n| n.to_ascii_uppercase())
            .collect();
        let adrs = result.encoded.names(&rule.adrs, dv, av);
        let expected = link::supporting_tids(&result, rule);
        assert_eq!(reader.cover(&drugs, &adrs), expected, "rank {rank}: evidence cover");
    }
    let _ = std::fs::remove_file(&path);
}
