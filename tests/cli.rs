//! End-to-end tests of the `maras` binary: generate → analyze → render →
//! study, via real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn maras(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_maras"))
        .args(args)
        .output()
        .expect("spawn maras binary")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maras_cli_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn demo_prints_planted_signals() {
    let out = maras(&["demo"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("drug-drug-interaction signals"), "{stdout}");
    assert!(stdout.contains("IBUPROFEN"), "{stdout}");
}

#[test]
fn help_and_error_paths() {
    let out = maras(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let bad = maras(&["frobnicate"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown command"));

    let missing = maras(&["analyze"]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--dir"));

    let badq = maras(&["analyze", "--dir", "/nonexistent", "--quarter", "2014Q9"]);
    assert!(!badq.status.success());
    assert!(String::from_utf8_lossy(&badq.stderr).contains("quarter must be 1-4"));
}

#[test]
fn generate_analyze_render_roundtrip() {
    let dir = tmpdir("roundtrip");
    let dir_s = dir.to_str().unwrap();

    let gen = maras(&["generate", "--out", dir_s, "--reports", "900", "--seed", "5"]);
    assert!(gen.status.success(), "stderr: {}", String::from_utf8_lossy(&gen.stderr));
    for f in ["DEMO14Q1.txt", "DRUG14Q3.txt", "REAC14Q4.txt", "OUTC14Q2.txt", "drug_vocab.txt"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    let json = dir.join("signals.json");
    let analyze = maras(&[
        "analyze",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--min-support",
        "4",
        "--top",
        "5",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(analyze.status.success(), "stderr: {}", String::from_utf8_lossy(&analyze.stderr));
    let stdout = String::from_utf8_lossy(&analyze.stdout);
    assert!(stdout.contains("MCACs"), "{stdout}");
    assert!(stdout.contains("#1 ["), "{stdout}");
    // The JSON export parses and carries ranked views.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let rows = parsed.as_array().unwrap();
    assert!(!rows.is_empty() && rows.len() <= 5);
    assert!(rows[0]["drugs"].as_array().unwrap().len() >= 2);
    assert_eq!(rows[0]["rank"], 1);

    let figs = dir.join("figs");
    let render = maras(&[
        "render",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--out",
        figs.to_str().unwrap(),
        "--min-support",
        "4",
        "--dark",
    ]);
    assert!(render.status.success(), "stderr: {}", String::from_utf8_lossy(&render.stderr));
    let pano = std::fs::read_to_string(figs.join("panoramagram.svg")).unwrap();
    assert!(pano.starts_with("<svg"));
    assert!(pano.contains("#1a1a19"), "dark surface expected in --dark output");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_with_drug_filter() {
    let dir = tmpdir("filter");
    let dir_s = dir.to_str().unwrap();
    let gen = maras(&["generate", "--out", dir_s, "--reports", "900", "--seed", "6"]);
    assert!(gen.status.success());
    let out = maras(&[
        "analyze",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q2",
        "--min-support",
        "4",
        "--drug",
        "PROGRAF",
        "--top",
        "3",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in stdout.lines().filter(|l| l.starts_with('#')) {
        assert!(line.contains("PROGRAF"), "filtered line without drug: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn study_reports_both_encodings() {
    let out = maras(&["study", "--participants", "20", "--seed", "3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("contextual glyph"), "{stdout}");
    assert!(stdout.contains("two") && stdout.contains("three") && stdout.contains("four"));
}
