//! End-to-end tests of the `maras` binary: generate → analyze → render →
//! study, via real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn maras(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_maras")).args(args).output().expect("spawn maras binary")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maras_cli_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn demo_prints_planted_signals() {
    let out = maras(&["demo"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("drug-drug-interaction signals"), "{stdout}");
    assert!(stdout.contains("IBUPROFEN"), "{stdout}");
}

#[test]
fn help_and_error_paths() {
    let out = maras(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let bad = maras(&["frobnicate"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown command"));

    let missing = maras(&["analyze"]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--dir"));

    let badq = maras(&["analyze", "--dir", "/nonexistent", "--quarter", "2014Q9"]);
    assert!(!badq.status.success());
    assert!(String::from_utf8_lossy(&badq.stderr).contains("quarter must be 1-4"));
}

#[test]
fn generate_analyze_render_roundtrip() {
    let dir = tmpdir("roundtrip");
    let dir_s = dir.to_str().unwrap();

    let gen = maras(&["generate", "--out", dir_s, "--reports", "900", "--seed", "5"]);
    assert!(gen.status.success(), "stderr: {}", String::from_utf8_lossy(&gen.stderr));
    for f in ["DEMO14Q1.txt", "DRUG14Q3.txt", "REAC14Q4.txt", "OUTC14Q2.txt", "drug_vocab.txt"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    let json = dir.join("signals.json");
    let analyze = maras(&[
        "analyze",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--min-support",
        "4",
        "--top",
        "5",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(analyze.status.success(), "stderr: {}", String::from_utf8_lossy(&analyze.stderr));
    let stdout = String::from_utf8_lossy(&analyze.stdout);
    assert!(stdout.contains("MCACs"), "{stdout}");
    assert!(stdout.contains("#1 ["), "{stdout}");
    assert!(stdout.contains("ingest [strict]"), "{stdout}");
    // The JSON export parses and carries the ingest report + ranked views.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(parsed["quarter"], "2014 Q1");
    assert_eq!(parsed["ingest"]["clean"], true);
    assert_eq!(parsed["ingest"]["quarantined"], 0usize);
    assert!(parsed["ingest"]["rows_read"].as_u64().unwrap() > 0);
    let rows = parsed["rules"].as_array().unwrap();
    assert!(!rows.is_empty() && rows.len() <= 5);
    assert!(rows[0]["drugs"].as_array().unwrap().len() >= 2);
    assert_eq!(rows[0]["rank"], 1);

    let figs = dir.join("figs");
    let render = maras(&[
        "render",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--out",
        figs.to_str().unwrap(),
        "--min-support",
        "4",
        "--dark",
    ]);
    assert!(render.status.success(), "stderr: {}", String::from_utf8_lossy(&render.stderr));
    let pano = std::fs::read_to_string(figs.join("panoramagram.svg")).unwrap();
    assert!(pano.starts_with("<svg"));
    assert!(pano.contains("#1a1a19"), "dark surface expected in --dark output");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_with_drug_filter() {
    let dir = tmpdir("filter");
    let dir_s = dir.to_str().unwrap();
    let gen = maras(&["generate", "--out", dir_s, "--reports", "900", "--seed", "6"]);
    assert!(gen.status.success());
    let out = maras(&[
        "analyze",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q2",
        "--min-support",
        "4",
        "--drug",
        "PROGRAF",
        "--top",
        "3",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in stdout.lines().filter(|l| l.starts_with('#')) {
        assert!(line.contains("PROGRAF"), "filtered line without drug: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dirty_data_modes_and_exit_codes() {
    let dir = tmpdir("dirty");
    let dir_s = dir.to_str().unwrap();
    let gen = maras(&["generate", "--out", dir_s, "--reports", "900", "--seed", "9"]);
    assert!(gen.status.success(), "stderr: {}", String::from_utf8_lossy(&gen.stderr));

    // Plant an orphan DRUG row: pid 1 can never exist in DEMO (real
    // primaryids are case_id*100 + version >= 100).
    let drug_path = dir.join("DRUG14Q1.txt");
    let mut drug = std::fs::read_to_string(&drug_path).unwrap();
    drug.push_str("1$1$PS$BOGUS\n");
    std::fs::write(&drug_path, drug).unwrap();

    // Strict (the default) fails with exit 1, naming the offense.
    let strict = maras(&["analyze", "--dir", dir_s, "--quarter", "2014Q1"]);
    assert_eq!(strict.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(stderr.contains("unknown primaryid 1"), "{stderr}");

    // Lenient quarantines the row and analyzes the rest.
    let lenient =
        maras(&["analyze", "--dir", dir_s, "--quarter", "2014Q1", "--ingest-mode", "lenient"]);
    assert!(lenient.status.success(), "stderr: {}", String::from_utf8_lossy(&lenient.stderr));
    let stdout = String::from_utf8_lossy(&lenient.stdout);
    assert!(stdout.contains("ingest [lenient]"), "{stdout}");
    assert!(stdout.contains("1 quarantined (orphan: 1)"), "{stdout}");

    // A zero-row budget turns that quarantine into exit code 2.
    let blown = maras(&[
        "analyze",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--ingest-mode",
        "lenient",
        "--max-bad-rows",
        "0",
    ]);
    assert_eq!(blown.status.code(), Some(2), "budget exceeded must exit 2");
    assert!(String::from_utf8_lossy(&blown.stderr).contains("error budget"));

    // The year runner degrades Q1 and keeps the other quarters.
    let year = maras(&["year", "--dir", dir_s, "--ingest-mode", "lenient"]);
    assert!(year.status.success(), "stderr: {}", String::from_utf8_lossy(&year.stderr));
    let stdout = String::from_utf8_lossy(&year.stdout);
    assert!(stdout.contains("2014 Q1: degraded"), "{stdout}");
    assert!(stdout.contains("3 ok, 1 degraded, 0 failed of 4 quarters"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_and_serve_check_roundtrip() {
    let dir = tmpdir("snapshot");
    let dir_s = dir.to_str().unwrap();
    let gen = maras(&["generate", "--out", dir_s, "--reports", "900", "--seed", "11"]);
    assert!(gen.status.success(), "stderr: {}", String::from_utf8_lossy(&gen.stderr));

    let snap = dir.join("2014Q1.snap");
    let snap_s = snap.to_str().unwrap();
    let json = dir.join("snapshot.json");
    let made = maras(&[
        "snapshot",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--min-support",
        "4",
        "--out",
        snap_s,
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(made.status.success(), "stderr: {}", String::from_utf8_lossy(&made.stderr));
    let stdout = String::from_utf8_lossy(&made.stdout);
    assert!(stdout.contains("clusters"), "{stdout}");
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(parsed["quarter"], "2014 Q1");
    assert_eq!(parsed["format_version"], maras::serve::FORMAT_VERSION);
    assert!(parsed["clusters"].as_u64().unwrap() > 0);

    // `serve --check` validates the file and exits 0 without binding.
    let check_json = dir.join("check.json");
    let check =
        maras(&["serve", "--snapshot", snap_s, "--check", "--json", check_json.to_str().unwrap()]);
    assert!(check.status.success(), "stderr: {}", String::from_utf8_lossy(&check.stderr));
    assert!(String::from_utf8_lossy(&check.stdout).contains("loaded"));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&check_json).unwrap()).unwrap();
    assert_eq!(parsed["quarter"], "2014 Q1");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_refuses_corrupt_snapshot_with_structured_error() {
    let dir = tmpdir("serve_corrupt");

    // Not a snapshot at all: bad magic, exit 1, structured --json error.
    let bogus = dir.join("bogus.snap");
    std::fs::write(&bogus, b"definitely not a maras snapshot, but >= header size").unwrap();
    let err_json = dir.join("error.json");
    let out = maras(&[
        "serve",
        "--snapshot",
        bogus.to_str().unwrap(),
        "--check",
        "--json",
        err_json.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("snapshot:"), "{stderr}");
    assert!(stderr.contains("bad magic"), "{stderr}");
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&err_json).unwrap()).unwrap();
    assert_eq!(parsed["error"]["code"], "snapshot");
    assert!(parsed["error"]["message"].as_str().unwrap().contains("bad magic"));

    // Missing file: still exit 1 with the structured envelope.
    let gone = dir.join("missing.snap");
    let out = maras(&["serve", "--snapshot", gone.to_str().unwrap(), "--check"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("snapshot:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evidence_build_check_and_serve_roundtrip() {
    let dir = tmpdir("evidence");
    let dir_s = dir.to_str().unwrap();
    let gen = maras(&["generate", "--out", dir_s, "--reports", "900", "--seed", "17"]);
    assert!(gen.status.success(), "stderr: {}", String::from_utf8_lossy(&gen.stderr));

    // Build the archive standalone, with a JSON summary.
    let evid = dir.join("2014Q1.evid");
    let evid_s = evid.to_str().unwrap();
    let json = dir.join("evidence.json");
    let built = maras(&[
        "evidence",
        "build",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--min-support",
        "4",
        "--block-size",
        "64",
        "--out",
        evid_s,
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(built.status.success(), "stderr: {}", String::from_utf8_lossy(&built.stderr));
    let stdout = String::from_utf8_lossy(&built.stdout);
    assert!(stdout.contains("evidence v1"), "{stdout}");
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert!(parsed["records"].as_u64().unwrap() > 0);
    assert!(parsed["blocks"].as_u64().unwrap() > 0);
    assert!(parsed["file_bytes"].as_u64().unwrap() > 0);

    // `evidence check` re-reads every block and exits 0.
    let check = maras(&["evidence", "check", "--archive", evid_s]);
    assert!(check.status.success(), "stderr: {}", String::from_utf8_lossy(&check.stderr));
    assert!(String::from_utf8_lossy(&check.stdout).contains("ok:"));

    // `snapshot --evidence` writes the pair from one analysis run, and
    // `serve --check` validates snapshot + archive together.
    let snap = dir.join("2014Q1.snap");
    let snap_s = snap.to_str().unwrap();
    let evid2 = dir.join("pair.evid");
    let made = maras(&[
        "snapshot",
        "--dir",
        dir_s,
        "--quarter",
        "2014Q1",
        "--min-support",
        "4",
        "--out",
        snap_s,
        "--evidence",
        evid2.to_str().unwrap(),
    ]);
    assert!(made.status.success(), "stderr: {}", String::from_utf8_lossy(&made.stderr));
    assert!(evid2.exists());
    let check =
        maras(&["serve", "--snapshot", snap_s, "--evidence", evid2.to_str().unwrap(), "--check"]);
    assert!(check.status.success(), "stderr: {}", String::from_utf8_lossy(&check.stderr));
    assert!(String::from_utf8_lossy(&check.stdout).contains("evidence for 2014 Q1"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evidence_error_paths_are_typed() {
    let dir = tmpdir("evidence_err");

    // Missing subcommand and unknown flags are usage errors.
    let out = maras(&["evidence"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("subcommand"));

    // A corrupt archive is refused by `evidence check` with exit 1.
    let bogus = dir.join("bogus.evid");
    std::fs::write(&bogus, b"not an evidence archive at all, but past header length").unwrap();
    let out = maras(&["evidence", "check", "--archive", bogus.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("evidence:"), "{stderr}");
    assert!(stderr.contains("magic"), "{stderr}");

    // `serve --evidence` refuses the same file at startup.
    let out = maras(&[
        "serve",
        "--snapshot",
        "/nonexistent.snap",
        "--evidence",
        bogus.to_str().unwrap(),
        "--check",
    ]);
    assert_eq!(out.status.code(), Some(1), "snapshot load fails first");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn year_trace_and_timings_emit_observability_artifacts() {
    let dir = tmpdir("trace");
    let dir_s = dir.to_str().unwrap();
    let gen = maras(&["generate", "--out", dir_s, "--reports", "600", "--seed", "13"]);
    assert!(gen.status.success(), "stderr: {}", String::from_utf8_lossy(&gen.stderr));

    let trace = dir.join("trace.json");
    let out = maras(&[
        "year",
        "--dir",
        dir_s,
        "--min-support",
        "4",
        "--trace",
        trace.to_str().unwrap(),
        "--timings",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote Chrome trace"));

    // The trace file is valid Chrome trace-event JSON covering every
    // pipeline stage, with non-zero durations.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = parsed["traceEvents"].as_array().expect("traceEvents");
    assert!(!events.is_empty());
    for stage in ["ingest", "clean", "mine", "rules", "mcac"] {
        let ev = events
            .iter()
            .find(|e| e["name"] == stage)
            .unwrap_or_else(|| panic!("no {stage:?} event in trace"));
        assert!(ev["dur"].as_f64().unwrap() > 0.0, "{stage} duration must be non-zero");
    }

    // --timings prints the indented span table on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("span"), "{stderr}");
    assert!(stderr.contains("total ms"), "{stderr}");
    assert!(stderr.contains("  clean"), "indented stage rows expected: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn study_reports_both_encodings() {
    let out = maras(&["study", "--participants", "20", "--seed", "3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("contextual glyph"), "{stdout}");
    assert!(stdout.contains("two") && stdout.contains("three") && stdout.contains("four"));
}
