//! End-to-end integration: synthetic FAERS generation → cleaning →
//! closed-rule mining → MCAC ranking, checked against the planted ground
//! truth and the paper's qualitative claims.

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::{PlantedInteraction, QuarterId, SynthConfig, Synthesizer};

fn fixture(seed: u64) -> (maras::core::AnalysisResult, Synthesizer) {
    let mut cfg = SynthConfig::test_scale(seed);
    cfg.n_reports = 2500;
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    (result, synth)
}

#[test]
fn planted_interactions_rank_in_leading_fraction() {
    let (result, synth) = fixture(42);
    let n = result.ranked.len();
    assert!(n > 50, "expected a substantial ruleset, got {n}");
    let mut found = 0usize;
    for pi in PlantedInteraction::paper_case_studies() {
        let drugs: Vec<&str> = pi.drugs.iter().map(String::as_str).collect();
        let adrs: Vec<&str> = pi.adrs.iter().map(String::as_str).collect();
        if let Some(rank) = result.rank_of(&drugs, &adrs, synth.drug_vocab(), synth.adr_vocab()) {
            found += 1;
            assert!(
                rank < n / 4,
                "{:?} ranked {rank} of {n} — outside the leading quartile",
                pi.drugs
            );
        }
    }
    assert!(found >= 4, "at least 4 of 6 planted interactions must be mined, got {found}");
}

#[test]
fn rule_funnel_is_monotone_and_nonempty() {
    let (result, _) = fixture(43);
    let c = result.counts;
    assert!(c.total_rules > c.filtered_rules);
    assert!(c.filtered_rules > c.mcacs);
    assert!(c.mcacs > 0);
    assert!(c.closed_itemsets < c.frequent_itemsets);
    assert_eq!(c.mcacs as usize, result.ranked.len());
}

#[test]
fn pipeline_is_deterministic() {
    let (a, _) = fixture(44);
    let (b, _) = fixture(44);
    assert_eq!(a.ranked.len(), b.ranked.len());
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(x.cluster.target.drugs, y.cluster.target.drugs);
        assert_eq!(x.cluster.target.adrs, y.cluster.target.adrs);
        assert_eq!(x.score, y.score);
    }
    assert_eq!(a.cleaning, b.cleaning);
    assert_eq!(a.counts, b.counts);
}

#[test]
fn every_ranked_cluster_is_wellformed() {
    let (result, _) = fixture(45);
    for r in &result.ranked {
        assert!(r.cluster.n_drugs() >= 2);
        assert!(r.cluster.context_is_complete(), "incomplete context");
        assert!(r.score.is_finite());
        let t = &r.cluster.target;
        // The rule's stats must be consistent with the encoded database.
        assert_eq!(t.stats.support_ab, result.encoded.db.support(&t.complete_itemset()) as u64);
        assert!(t.stats.support_ab >= 6, "below the mining threshold");
        // The complete itemset of every MCAC target is closed (§3.4).
        assert!(result.encoded.db.is_closed(&t.complete_itemset()));
    }
    // Scores descend.
    assert!(result.ranked.windows(2).all(|w| w[0].score >= w[1].score));
}

#[test]
fn cleaning_statistics_are_consistent() {
    let (result, _) = fixture(46);
    let s = result.cleaning;
    assert_eq!(s.input_reports, result.quarter.reports.len());
    assert_eq!(s.output_reports, result.cleaned.len());
    assert_eq!(
        s.output_reports + s.dropped_sparse + s.deduplicated_versions,
        s.input_reports,
        "cleaning accounting must balance: {s:?}"
    );
    assert!(s.corrected_drugs > 0, "synthetic noise must exercise spell correction");
    assert_eq!(result.encoded.db.len(), result.cleaned.len());
}

#[test]
fn exclusiveness_separates_planted_from_dominated() {
    // Craft a corpus with exactly one planted interaction and verify the
    // top of the ranking is not dominated by single-drug explanations.
    let mut cfg = SynthConfig::test_scale(47);
    cfg.n_reports = 2000;
    cfg.interactions = vec![PlantedInteraction {
        co_report_rate: 0.012,
        ..PlantedInteraction::new(&["ASPIRIN", "WARFARIN"], &["Haemorrhage"])
    }];
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(8)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    let rank = result
        .rank_of(&["ASPIRIN", "WARFARIN"], &["Haemorrhage"], synth.drug_vocab(), synth.adr_vocab())
        .expect("planted interaction mined");
    assert!(rank < 10, "boosted planted interaction should be near the very top, got {rank}");
    // Its single-drug context must be substantially weaker than the
    // combination — the exclusiveness signature. (Singles still pick up
    // conditional probability from the combo reports themselves, so the
    // check is a margin, not an absolute bound.)
    let cluster = &result.ranked[rank].cluster;
    let target_conf = cluster.target.confidence();
    for ctx in &cluster.singleton_level().rules {
        assert!(
            ctx.confidence() < target_conf - 0.3,
            "single drug {} explains the ADR too well: {} vs target {}",
            ctx.drugs,
            ctx.confidence(),
            target_conf
        );
    }
}
