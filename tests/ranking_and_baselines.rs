//! Integration of the ranking layer with the disproportionality baselines:
//! the paper's central claim — context-aware exclusiveness surfaces planted
//! interactions that context-free measures bury — must hold on realistic
//! synthetic data.

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};
use maras::mcac::{rank_rules_by, Mcac};
use maras::rules::{DrugAdrRule, Measure};
use maras::signals::{harpaz_rank, interaction_contrast};

struct Fixture {
    result: maras::core::AnalysisResult,
    synth: Synthesizer,
}

fn fixture() -> Fixture {
    let mut cfg = SynthConfig::test_scale(21);
    cfg.n_reports = 2500;
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    Fixture { result, synth }
}

/// Best (lowest) position of any planted interaction in a ranked rule list.
fn best_planted_rank<'a>(
    rules: impl Iterator<Item = &'a DrugAdrRule>,
    planted: &[(Vec<u32>, Vec<u32>)],
    adr_start: u32,
) -> Option<usize> {
    let mut best = None;
    for (i, rule) in rules.enumerate() {
        for (drugs, adrs) in planted {
            let drug_match = rule.drugs.iter().map(|x| x.0).eq(drugs.iter().copied());
            let adr_match = adrs.iter().all(|&a| rule.adrs.iter().any(|x| x.0 == a + adr_start));
            if drug_match && adr_match {
                best = Some(best.map_or(i, |b: usize| b.min(i)));
            }
        }
    }
    best
}

#[test]
fn exclusiveness_outranks_plain_confidence_on_planted_truth() {
    let f = fixture();
    let planted = f.synth.planted_truth();
    let adr_start = f.result.encoded.partition.adr_start;

    let excl_rank =
        best_planted_rank(f.result.ranked.iter().map(|r| &r.cluster.target), &planted, adr_start)
            .expect("planted interaction mined");

    let pool: Vec<DrugAdrRule> = f.result.ranked.iter().map(|r| r.cluster.target.clone()).collect();
    let by_conf = rank_rules_by(pool, Measure::Confidence);
    let conf_rank = best_planted_rank(by_conf.iter(), &planted, adr_start).expect("same pool");

    assert!(
        excl_rank < conf_rank,
        "exclusiveness (rank {excl_rank}) must beat plain confidence (rank {conf_rank})"
    );
}

#[test]
fn harpaz_baseline_runs_on_pipeline_output() {
    let f = fixture();
    let ranked = harpaz_rank(&f.result.encoded.db, &f.result.encoded.partition, 6);
    assert_eq!(ranked.len(), f.result.ranked.len(), "Harpaz ranks the same closed multi-drug pool");
    assert!(ranked.windows(2).all(|w| w[0].rrr >= w[1].rrr));
}

#[test]
fn planted_interactions_have_positive_interaction_contrast() {
    let f = fixture();
    let planted = f.synth.planted_truth();
    let adr_start = f.result.encoded.partition.adr_start;
    let mut checked = 0;
    for (drugs, adrs) in &planted {
        let drug_set: maras::mining::ItemSet =
            drugs.iter().map(|&d| maras::mining::Item(d)).collect();
        let adr_set: maras::mining::ItemSet =
            adrs.iter().map(|&a| maras::mining::Item(a + adr_start)).collect();
        if f.result.encoded.db.support(&drug_set.union(&adr_set)) < 5 {
            continue; // too rare in this small corpus to assert on
        }
        let ic = interaction_contrast(&f.result.encoded.db, &drug_set, &adr_set);
        assert!(ic > 0.5, "planted {drugs:?} contrast too weak: {ic}");
        checked += 1;
    }
    assert!(checked >= 3, "need at least 3 planted interactions to check, got {checked}");
}

#[test]
fn mcac_context_confidences_match_db_counts() {
    // The glue property across rules/mcac/core: every contextual rule's
    // confidence equals its exact count ratio in the encoded database.
    let f = fixture();
    for r in f.result.ranked.iter().take(25) {
        let rebuilt = Mcac::build(r.cluster.target.clone(), &f.result.encoded.db);
        assert_eq!(rebuilt, r.cluster);
        for ctx in r.cluster.context_rules() {
            let whole = ctx.complete_itemset();
            let expect_conf = if f.result.encoded.db.support(&ctx.drugs) == 0 {
                0.0
            } else {
                f.result.encoded.db.support(&whole) as f64
                    / f.result.encoded.db.support(&ctx.drugs) as f64
            };
            assert!((ctx.confidence() - expect_conf).abs() < 1e-12);
        }
    }
}
