//! Differential acceptance suite for the batch score engine: every table
//! and every measure `score_rules` emits must be byte-identical (f64 bit
//! patterns) to the legacy per-rule path — `ContingencyTable::from_db`'s
//! three support scans plus direct measure calls — across seeded quarters,
//! strict and lenient ingestion, and 1/2/4 scoring threads. The ranked
//! pipeline output must carry the same block with the exclusiveness slot
//! filled in.

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::ascii::{read_quarter_dir_with, write_quarter_dir, IngestOptions};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};
use maras::mining::TransactionDb;
use maras::rules::DrugAdrRule;
use maras::signals::{interaction_contrast, score_rules, ContingencyTable, SignalScores};

/// Bit-level equality over the whole score block, with a labelled panic
/// naming the first field that diverges.
fn assert_bits_eq(got: &SignalScores, want: &SignalScores, ctx: &str) {
    assert_eq!(got.table, want.table, "{ctx}: table");
    let fields: [(&str, f64, f64); 16] = [
        ("rrr", got.rrr, want.rrr),
        ("prr.estimate", got.prr.estimate, want.prr.estimate),
        ("prr.lower", got.prr.lower, want.prr.lower),
        ("prr.upper", got.prr.upper, want.prr.upper),
        ("ror.estimate", got.ror.estimate, want.ror.estimate),
        ("ror.lower", got.ror.lower, want.ror.lower),
        ("ror.upper", got.ror.upper, want.ror.upper),
        ("chi2", got.chi2, want.chi2),
        ("ic.ic", got.ic.ic, want.ic.ic),
        ("ic.ic025", got.ic.ic025, want.ic.ic025),
        ("ic.ic975", got.ic.ic975, want.ic.ic975),
        ("ebgm.ebgm", got.ebgm.ebgm, want.ebgm.ebgm),
        ("ebgm.eb05", got.ebgm.eb05, want.ebgm.eb05),
        ("ebgm.eb95", got.ebgm.eb95, want.ebgm.eb95),
        ("interaction", got.interaction, want.interaction),
        ("exclusiveness", got.exclusiveness, want.exclusiveness),
    ];
    for (name, g, w) in fields {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: {name} ({g} vs {w})");
    }
    assert_eq!(got.evans, want.evans, "{ctx}: evans");
}

/// The legacy path the engine replaced: re-derive the 2×2 table with
/// support scans, then call each measure directly.
fn legacy_score(db: &TransactionDb, rule: &DrugAdrRule) -> SignalScores {
    let table = ContingencyTable::from_db(db, &rule.drugs, &rule.adrs);
    let base = SignalScores::from_table(table);
    if rule.is_multi_drug() {
        base.with_interaction(interaction_contrast(db, &rule.drugs, &rule.adrs))
    } else {
        base
    }
}

#[test]
fn engine_is_bit_identical_to_legacy_across_quarters_modes_and_threads() {
    let tmp = std::env::temp_dir().join("maras-signals-differential");
    for seed in [31u64, 32, 33] {
        let mut cfg = SynthConfig::test_scale(seed);
        cfg.n_reports = 1500;
        let mut synth = Synthesizer::new(cfg);
        let id = QuarterId::new(2014, 1 + (seed % 4) as u8);
        let quarter = synth.generate_quarter(id);
        let dir = tmp.join(format!("q{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        write_quarter_dir(&dir, &quarter).unwrap();

        for (mode, opts) in
            [("strict", IngestOptions::strict()), ("lenient", IngestOptions::lenient())]
        {
            let ingested = read_quarter_dir_with(&dir, id, &opts)
                .unwrap_or_else(|e| panic!("seed {seed} {mode} ingest failed: {e}"));
            let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
                ingested.data,
                synth.drug_vocab(),
                synth.adr_vocab(),
            );
            let db = &result.encoded.db;
            let rules: Vec<DrugAdrRule> =
                result.ranked.iter().map(|r| r.cluster.target.clone()).collect();
            assert!(!rules.is_empty(), "seed {seed} {mode}: no ranked rules");
            let legacy: Vec<SignalScores> = rules.iter().map(|r| legacy_score(db, r)).collect();

            for threads in [1usize, 2, 4] {
                let scored = score_rules(db, &rules, threads);
                assert_eq!(scored.len(), legacy.len());
                for (i, (got, want)) in scored.iter().zip(&legacy).enumerate() {
                    let ctx = format!("seed {seed} {mode} threads {threads} rule {i}");
                    assert_bits_eq(got, want, &ctx);
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn ranked_pipeline_output_carries_the_engine_block_with_exclusiveness() {
    let mut cfg = SynthConfig::test_scale(34);
    cfg.n_reports = 1500;
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2015, 2));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    let db = &result.encoded.db;
    assert!(!result.ranked.is_empty());
    for (i, r) in result.ranked.iter().enumerate() {
        // The stored block is the legacy block with the cluster's
        // exclusiveness (= the default ranking score) filled in.
        let want = legacy_score(db, &r.cluster.target).with_exclusiveness(r.score);
        let ctx = format!("ranked {i}");
        assert_bits_eq(&r.scores, &want, &ctx);
        assert_eq!(r.scores.exclusiveness.to_bits(), r.score.to_bits(), "{ctx}");
    }
}
