//! Integration of visualization and user-study layers with real pipeline
//! output: the §4 figures must render from mined clusters, and the §5.4.1
//! study must run on stimuli extracted from the actual ranking.

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};
use maras::rules::DrugAdrRule;
use maras::study::battery::question_from_ranked;
use maras::study::{run_study, Battery, Encoding, StudyConfig};
use maras::viz::{glyph_svg, mcac_barchart, panorama_svg, GlyphConfig, PanoramaConfig};

fn fixture() -> (maras::core::AnalysisResult, Synthesizer) {
    let mut cfg = SynthConfig::test_scale(31);
    cfg.n_reports = 2500;
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(5)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    (result, synth)
}

#[test]
fn all_figure_types_render_from_mined_output() {
    let (result, synth) = fixture();
    assert!(result.ranked.len() >= 10);
    let namer = |rule: &DrugAdrRule| -> String {
        let drugs = result.encoded.names(&rule.drugs, synth.drug_vocab(), synth.adr_vocab());
        drugs.join("+").to_string()
    };

    // Every glyph variant over the top clusters.
    for r in result.ranked.iter().take(10) {
        for cfg in [GlyphConfig::default(), GlyphConfig::zoomed()] {
            let svg = glyph_svg(&r.cluster, &cfg, Some(&namer)).render();
            assert!(svg.starts_with("<svg"), "malformed svg");
            assert!(svg.ends_with("</svg>"));
            assert_eq!(
                svg.matches("<path").count(),
                r.cluster.context_size(),
                "one sector per contextual rule"
            );
            assert!(!svg.contains("NaN"));
        }
        let bars = mcac_barchart(&r.cluster, "test", Some(&namer)).render();
        assert_eq!(bars.matches("<path").count(), 1 + r.cluster.context_size());
    }

    let pano = panorama_svg(&result.ranked[..10], &PanoramaConfig::default(), Some(&namer));
    let svg = pano.render();
    assert_eq!(svg.matches("transform=\"translate(").count(), 10);
    // Drug names must appear in hover titles.
    let top_drugs = result.encoded.names(
        &result.ranked[0].cluster.target.drugs,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    assert!(svg.contains(&top_drugs[0]), "names missing from panorama titles");
}

#[test]
fn user_study_runs_on_real_ranked_output() {
    let (result, _) = fixture();
    // Build questions from the actual mined ranking for every drug count
    // that has enough clusters.
    let mut questions = Vec::new();
    for (i, n_drugs) in [2usize, 3].into_iter().enumerate() {
        if let Some(q) =
            question_from_ranked(&format!("R{i}"), &result.ranked, n_drugs, 6, 1, 99 + i as u64)
        {
            assert_eq!(q.candidates.len(), 6);
            assert_eq!(q.correct_answer().len(), 1);
            questions.push(q);
        }
    }
    assert!(!questions.is_empty(), "ranking must supply at least one question");
    let battery = Battery { questions };
    let results = run_study(&battery, &StudyConfig { n_participants: 25, ..Default::default() });
    for n_drugs in [2usize, 3] {
        let glyph = results.percent_correct(n_drugs, Encoding::ContextualGlyph);
        let bar = results.percent_correct(n_drugs, Encoding::BarChart);
        if glyph > 0.0 || bar > 0.0 {
            // Real mined stimuli are easier than the synthetic battery
            // (decoys rank far below winners), so only sanity-check ranges
            // and the qualitative ordering with slack.
            assert!((0.0..=100.0).contains(&glyph));
            assert!((0.0..=100.0).contains(&bar));
            assert!(glyph + 25.0 >= bar, "glyph {glyph} vs bar {bar}");
        }
    }
}
