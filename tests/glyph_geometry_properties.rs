//! Property tests on the contextual-glyph geometry: for *any* cluster the
//! layout must keep every visual invariant the thesis's encoding relies on
//! (§4: radii encode confidences, sectors tile the circle, colors follow
//! cardinality).

use maras::mcac::Mcac;
use maras::mining::{Item, ItemSet, TransactionDb};
use maras::rules::DrugAdrRule;
use maras::viz::{GlyphConfig, GlyphGeometry};
use proptest::prelude::*;
use std::f64::consts::TAU;

fn arb_cluster() -> impl Strategy<Value = Mcac> {
    (
        proptest::collection::vec(
            proptest::collection::vec(prop_oneof![0u32..5, 10u32..13], 1..6),
            1..25,
        ),
        2usize..5,
    )
        .prop_map(|(mut rows, n)| {
            // Guarantee the target combination occurs at least once so the
            // rule is non-degenerate.
            rows.push((0..n as u32).chain([10]).collect());
            let db = TransactionDb::new(
                rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
            );
            let target = DrugAdrRule::from_parts(
                (0..n as u32).map(Item).collect(),
                ItemSet::from_ids([10u32]),
                &db,
            );
            Mcac::build(target, &db)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sectors_tile_the_circle_exactly(cluster in arb_cluster()) {
        let geom = GlyphGeometry::from_cluster(&cluster, &GlyphConfig::default());
        prop_assert_eq!(geom.sectors.len(), cluster.context_size());
        // Contiguity: each sector starts where the previous one ended.
        for w in geom.sectors.windows(2) {
            prop_assert!((w[1].start_angle - w[0].end_angle).abs() < 1e-9);
        }
        // Total sweep is exactly one revolution.
        let total: f64 = geom
            .sectors
            .iter()
            .map(|s| s.end_angle - s.start_angle)
            .sum();
        prop_assert!((total - TAU).abs() < 1e-9, "total sweep {total}");
    }

    #[test]
    fn radii_respect_band_and_encode_confidence(cluster in arb_cluster()) {
        let cfg = GlyphConfig::default();
        let geom = GlyphGeometry::from_cluster(&cluster, &cfg);
        prop_assert!(geom.inner_radius > 0.0);
        prop_assert!(geom.band_inner > geom.inner_radius * 0.9);
        prop_assert!(geom.band_outer <= cfg.size / 2.0);
        for s in &geom.sectors {
            prop_assert!(s.outer_radius >= geom.band_inner);
            prop_assert!(s.outer_radius <= geom.band_outer + 1e-9);
            prop_assert!((0.0..=1.0).contains(&s.confidence));
        }
        // Monotone: higher confidence never has a smaller radius.
        let mut sorted: Vec<_> = geom.sectors.clone();
        sorted.sort_by(|a, b| a.confidence.partial_cmp(&b.confidence).unwrap());
        for w in sorted.windows(2) {
            prop_assert!(w[0].outer_radius <= w[1].outer_radius + 1e-9);
        }
    }

    #[test]
    fn cardinality_runs_are_contiguous_and_descending(cluster in arb_cluster()) {
        let geom = GlyphGeometry::from_cluster(&cluster, &GlyphConfig::default());
        let cards: Vec<usize> = geom.sectors.iter().map(|s| s.cardinality).collect();
        // Non-increasing cardinality around the circle (largest level first).
        prop_assert!(cards.windows(2).all(|w| w[0] >= w[1]), "{cards:?}");
        // Level index increases as cardinality decreases.
        let idxs: Vec<usize> = geom.sectors.iter().map(|s| s.level_index).collect();
        prop_assert!(idxs.windows(2).all(|w| w[0] <= w[1]), "{idxs:?}");
        // Each cardinality k has exactly C(n, k) sectors.
        let n = cluster.n_drugs();
        for k in 1..n {
            let count = cards.iter().filter(|&&c| c == k).count();
            prop_assert_eq!(count, binomial(n, k), "k={}", k);
        }
    }

    #[test]
    fn rendered_svg_is_always_wellformed(cluster in arb_cluster()) {
        let svg =
            maras::viz::glyph_svg(&cluster, &GlyphConfig::default(), None).render();
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.ends_with("</svg>"));
        prop_assert!(!svg.contains("NaN"));
        prop_assert_eq!(svg.matches("<path").count(), cluster.context_size());
        prop_assert_eq!(svg.matches("<circle").count(), 1);
    }
}

fn binomial(n: usize, k: usize) -> usize {
    (1..=k).fold(1usize, |acc, i| acc * (n - k + i) / i)
}
