//! Cross-layer observability tests: span nesting stays deterministic
//! under the sharded ingest reader and the parallel miner, every pipeline
//! stage shows up in the span stream, and the Chrome trace export is
//! well-formed JSON with real durations.
//!
//! The span collector is process-global, so every test here drains it
//! under one shared lock and leaves tracing enabled on exit.

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::ascii::{read_quarter_dir_with, write_quarter_dir, IngestOptions};
use maras::faers::{QuarterId, SynthConfig, Synthesizer, Vocabulary};
use maras::obs::{self, ObsConfig, SpanTree};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct Fixture {
    dir: PathBuf,
    id: QuarterId,
    dv: Vocabulary,
    av: Vocabulary,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Writes one synthetic quarter to a temp dir so the sharded ASCII
/// reader (not just the in-memory pipeline) is under test.
fn fixture(tag: &str, seed: u64) -> Fixture {
    let dir = std::env::temp_dir().join(format!("maras_obs_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let id = QuarterId::new(2014, 1);
    let mut synth = Synthesizer::new(SynthConfig { n_reports: 400, seed, ..Default::default() });
    let quarter = synth.generate_quarter(id);
    write_quarter_dir(&dir, &quarter).expect("write quarter");
    Fixture { dir, id, dv: synth.drug_vocab().clone(), av: synth.adr_vocab().clone() }
}

/// Ingest from disk + full pipeline at `threads`, returning the drained
/// span records of exactly that run.
fn traced_run(
    dir: &Path,
    id: QuarterId,
    threads: usize,
    dv: &Vocabulary,
    av: &Vocabulary,
) -> Vec<obs::SpanRecord> {
    obs::init(&ObsConfig::enabled());
    obs::take_spans(); // start from an empty collector
    let opts = IngestOptions { n_threads: threads, ..Default::default() };
    let ingested = read_quarter_dir_with(dir, id, &opts).expect("ingest");
    let result = Pipeline::new(
        PipelineConfig::default().with_min_support(4).with_n_threads(threads),
    )
    .run(ingested.data, dv, av);
    assert!(!result.ranked.is_empty(), "fixture must mine clusters");
    obs::take_spans()
}

#[test]
fn span_nesting_is_deterministic_per_thread_count() {
    let _g = lock();
    let fx = fixture("determinism", 21);
    for threads in [1usize, 2, 4] {
        let first = SpanTree::build(&traced_run(&fx.dir, fx.id, threads, &fx.dv, &fx.av));
        let second = SpanTree::build(&traced_run(&fx.dir, fx.id, threads, &fx.dv, &fx.av));
        assert!(first.orphans.is_empty(), "{threads} threads: orphan spans {:?}", first.orphans);
        assert_eq!(
            first.paths_and_counts(),
            second.paths_and_counts(),
            "{threads} threads: span structure changed between identical runs"
        );
    }
}

#[test]
fn every_pipeline_stage_appears_in_the_span_stream() {
    let _g = lock();
    let fx = fixture("stages", 22);
    let spans = traced_run(&fx.dir, fx.id, 2, &fx.dv, &fx.av);
    let names: std::collections::HashSet<&str> = spans.iter().map(|s| s.name()).collect();
    for required in
        ["ingest", "io", "parse", "merge", "clean", "encode", "mine", "rules", "closed", "mcac"]
    {
        assert!(names.contains(required), "missing span {required:?} in {names:?}");
    }
    // Worker spans nest under the phase that spawned them, cross-thread.
    assert!(
        spans.iter().any(|s| s.path.ends_with("parse/DRUG")),
        "parse jobs must nest under parse"
    );
    assert!(
        spans.iter().any(|s| s.name() == "shard" || s.name() == "mine_seq"),
        "mining must record shard or sequential spans"
    );
}

#[test]
fn chrome_trace_export_is_valid_json_with_durations() {
    let _g = lock();
    let fx = fixture("trace", 23);
    let spans = traced_run(&fx.dir, fx.id, 2, &fx.dv, &fx.av);
    let json = obs::chrome_trace(&spans);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace must parse");
    assert_eq!(parsed["displayTimeUnit"], "ms");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for ev in events {
        assert_eq!(ev["ph"], "X");
        assert_eq!(ev["cat"], "maras");
        assert!(ev["name"].as_str().is_some());
        assert!(ev["dur"].as_f64().unwrap() >= 0.0);
    }
    assert!(
        events.iter().any(|e| e["dur"].as_f64().unwrap() > 0.0),
        "a real run must have non-zero durations"
    );
}

#[test]
fn disabling_tracing_silences_the_pipeline() {
    let _g = lock();
    let fx = fixture("disabled", 24);
    obs::init(&ObsConfig::disabled());
    obs::take_spans();
    let opts = IngestOptions { n_threads: 2, ..Default::default() };
    let ingested = read_quarter_dir_with(&fx.dir, fx.id, &opts).expect("ingest");
    Pipeline::new(PipelineConfig::default().with_min_support(4).with_n_threads(2)).run(
        ingested.data,
        &fx.dv,
        &fx.av,
    );
    let spans = obs::take_spans();
    obs::init(&ObsConfig::enabled());
    assert!(spans.is_empty(), "disabled tracing must record nothing, got {}", spans.len());
}
