//! Self-contained HTML surveillance report — the shippable equivalent of
//! the thesis's §4.1 interactive interface.
//!
//! One `.html` file, no external assets: inline CSS (light *and* dark mode
//! via `prefers-color-scheme`, both from the validated palette), the
//! panoramagram and per-signal contextual glyphs embedded as inline SVG,
//! a ranked signal table with a client-side text filter, and a drill-down
//! `<details>` per signal listing its supporting raw case reports — every
//! §4.1 capability (search, severity, known/unknown flags, report
//! drill-down), minus only the mouse-driven server round-trips.

use maras_core::link::rule_max_severity;
use maras_core::{supporting_reports, AnalysisResult, KnowledgeBase, TrendTracker};
use maras_faers::Vocabulary;
use maras_rules::DrugAdrRule;
use maras_viz::{
    glyph_svg, panorama_svg, sparkline_svg, svg::escape, GlyphConfig, PanoramaConfig,
    SparklineConfig,
};

/// Report options.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// How many ranked signals to include.
    pub top_n: usize,
    /// How many supporting case reports to list per signal.
    pub max_reports_per_signal: usize,
    /// Report title.
    pub title: String,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            top_n: 25,
            max_reports_per_signal: 8,
            title: "MARAS drug-drug interaction report".to_string(),
        }
    }
}

/// Renders the analysis as a single self-contained HTML page.
pub fn html_report(
    result: &AnalysisResult,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
    kb: &KnowledgeBase,
    config: &ReportConfig,
) -> String {
    html_report_with_trends(result, drug_vocab, adr_vocab, kb, config, None)
}

/// [`html_report`] plus a *trend* column: when a [`TrendTracker`] covering
/// earlier quarters is supplied, each signal row gets a support sparkline.
pub fn html_report_with_trends(
    result: &AnalysisResult,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
    kb: &KnowledgeBase,
    config: &ReportConfig,
    trends: Option<&TrendTracker>,
) -> String {
    let namer = |rule: &DrugAdrRule| -> String {
        let drugs = result.encoded.names(&rule.drugs, drug_vocab, adr_vocab);
        let adrs = result.encoded.names(&rule.adrs, drug_vocab, adr_vocab);
        format!("{} => {}", drugs.join("+"), adrs.join(","))
    };

    let n = result.ranked.len().min(config.top_n);
    let mut html = String::with_capacity(256 * 1024);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    html.push_str(&format!("<title>{}</title>\n", escape(&config.title)));
    html.push_str(STYLE);
    html.push_str("</head>\n<body>\n");

    // ---- header & funnel stats ------------------------------------------
    html.push_str(&format!("<h1>{}</h1>\n", escape(&config.title)));
    let c = result.counts;
    html.push_str(&format!(
        "<p class=\"meta\">{quarter} · {input} raw reports → {cleaned} cleaned cases → \
         {total} rule splits → {filtered} drug→ADR rules → <strong>{mcacs} multi-drug \
         signals</strong></p>\n",
        quarter = result.quarter.id,
        input = result.cleaning.input_reports,
        cleaned = result.cleaning.output_reports,
        total = c.total_rules,
        filtered = c.filtered_rules,
        mcacs = c.mcacs,
    ));

    // ---- panorama overview ------------------------------------------------
    if n > 0 {
        html.push_str("<section>\n<h2>Overview</h2>\n<div class=\"panorama\">\n");
        let pano = panorama_svg(
            &result.ranked[..n.min(15)],
            &PanoramaConfig { title: String::new(), ..Default::default() },
            Some(&namer),
        );
        html.push_str(&pano.render());
        html.push_str("\n</div>\n</section>\n");
    }

    // ---- signal table ------------------------------------------------------
    html.push_str("<section>\n<h2>Ranked signals</h2>\n");
    html.push_str(
        "<input id=\"filter\" type=\"search\" placeholder=\"filter by drug or reaction…\" \
         oninput=\"filterRows(this.value)\">\n",
    );
    let trend_header = if trends.is_some() { "<th>trend</th>" } else { "" };
    html.push_str(&format!(
        "<table id=\"signals\">\n<thead><tr><th>#</th><th>drugs</th><th>reactions</th>\
         <th>score</th><th>support</th><th>conf</th><th>lift</th>{trend_header}<th>flags</th></tr></thead>\n<tbody>\n",
    ));
    for (i, r) in result.ranked.iter().take(n).enumerate() {
        let t = &r.cluster.target;
        let drugs = result.encoded.names(&t.drugs, drug_vocab, adr_vocab);
        let adrs = result.encoded.names(&t.adrs, drug_vocab, adr_vocab);
        let drug_refs: Vec<&str> = drugs.iter().map(String::as_str).collect();
        let known = kb.lookup(&drug_refs);
        let severity = rule_max_severity(result, t);
        let mut flags = String::new();
        match known {
            Some(entry) => flags.push_str(&format!(
                "<span class=\"badge known\" title=\"{}\">documented</span>",
                escape(&entry.source)
            )),
            None => flags.push_str("<span class=\"badge novel\">not documented</span>"),
        }
        if let Some(outcome) = severity {
            if outcome.severity() >= 5 {
                flags.push_str(&format!(
                    "<span class=\"badge severe\">{}</span>",
                    escape(outcome.code())
                ));
            }
        }

        let trend_cell = match trends {
            None => String::new(),
            Some(tracker) => {
                let spark = tracker
                    .trend_of(&t.drugs, &t.adrs)
                    .map(|trend| {
                        let supports: Vec<f64> =
                            trend.points.iter().map(|p| p.support as f64).collect();
                        sparkline_svg(&supports, &SparklineConfig::default()).render()
                    })
                    .unwrap_or_default();
                format!("<td class=\"spark\">{spark}</td>")
            }
        };
        html.push_str(&format!(
            "<tr class=\"sig\" data-text=\"{key}\"><td>{rank}</td><td>{d}</td><td>{a}</td>\
             <td>{score:.3}</td><td>{sup}</td><td>{conf:.2}</td><td>{lift:.1}</td>{trend_cell}<td>{flags}</td></tr>\n",
            key = escape(&format!("{} {}", drugs.join(" "), adrs.join(" ")).to_lowercase()),
            rank = i + 1,
            d = escape(&drugs.join(" + ")),
            a = escape(&adrs.join(", ")),
            score = r.score,
            sup = t.support(),
            conf = t.confidence(),
            lift = t.lift(),
        ));

        // Drill-down row: glyph + supporting reports.
        let colspan = if trends.is_some() { 9 } else { 8 };
        html.push_str(&format!(
            "<tr class=\"drill\"><td colspan=\"{colspan}\"><details><summary>context &amp; supporting reports</summary>\n"
        ));
        html.push_str("<div class=\"drill-grid\"><div>\n");
        let glyph =
            glyph_svg(&r.cluster, &GlyphConfig { size: 240.0, ..Default::default() }, Some(&namer));
        html.push_str(&glyph.render());
        html.push_str("</div>\n<div><ul class=\"reports\">\n");
        for report in supporting_reports(result, t).into_iter().take(config.max_reports_per_signal)
        {
            html.push_str(&format!(
                "<li>case {case} · age {age} · {sex} · {country} · outcomes {outcomes} · drugs: {drugs}</li>\n",
                case = report.case_id,
                age = report.age.map_or("?".to_string(), |x| format!("{x:.0}")),
                sex = report.sex.code(),
                country = escape(&report.country),
                outcomes = report
                    .outcomes
                    .iter()
                    .map(|o| o.code())
                    .collect::<Vec<_>>()
                    .join("/"),
                drugs = escape(
                    &report.drugs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>().join("; ")
                ),
            ));
        }
        let total_support = t.support() as usize;
        if total_support > config.max_reports_per_signal {
            html.push_str(&format!(
                "<li class=\"more\">… and {} more reports</li>\n",
                total_support - config.max_reports_per_signal
            ));
        }
        html.push_str("</ul></div></div>\n</details></td></tr>\n");
    }
    html.push_str("</tbody>\n</table>\n</section>\n");
    html.push_str(SCRIPT);
    html.push_str("</body>\n</html>\n");
    html
}

/// Inline stylesheet: palette tokens by role, dark mode selected via media
/// query (same values as `maras_viz::theme`).
const STYLE: &str = r#"<style>
:root {
  --surface: #fcfcfb; --surface-2: #f2f1ee;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e5e4e0; --accent: #eb6834; --blue: #2a78d6; --aqua: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --surface-2: #232322;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #343432; --accent: #d95926; --blue: #3987e5; --aqua: #199e70;
  }
}
body { font-family: system-ui, sans-serif; background: var(--surface);
       color: var(--text-primary); margin: 2rem auto; max-width: 1100px; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta { color: var(--text-secondary); }
.panorama svg { max-width: 100%; height: auto; border: 1px solid var(--grid); border-radius: 6px; }
#filter { width: 100%; padding: .5rem .75rem; margin: .5rem 0 1rem; border: 1px solid var(--grid);
          border-radius: 6px; background: var(--surface-2); color: var(--text-primary); }
table { border-collapse: collapse; width: 100%; font-size: .9rem; }
th { text-align: left; color: var(--text-secondary); font-weight: 600;
     border-bottom: 2px solid var(--grid); padding: .4rem .5rem; }
td { border-bottom: 1px solid var(--grid); padding: .4rem .5rem; vertical-align: top; }
tr.drill td { border-bottom: 1px solid var(--grid); background: var(--surface-2); }
details summary { cursor: pointer; color: var(--text-secondary); }
.drill-grid { display: flex; gap: 1.5rem; flex-wrap: wrap; padding: .75rem 0; }
.reports { margin: 0; padding-left: 1.2rem; color: var(--text-secondary); }
.reports .more { font-style: italic; }
.badge { display: inline-block; border-radius: 4px; padding: .05rem .45rem; font-size: .75rem;
         margin-right: .3rem; border: 1px solid var(--grid); }
.badge.known { color: var(--text-secondary); }
.badge.novel { color: var(--surface); background: var(--blue); border-color: var(--blue); }
.badge.severe { color: var(--surface); background: var(--accent); border-color: var(--accent); }
</style>
"#;

/// Minimal client-side filter: hides table rows (and their drill-down row)
/// that don't match the query.
const SCRIPT: &str = r#"<script>
function filterRows(q) {
  q = q.toLowerCase();
  const rows = document.querySelectorAll('#signals tbody tr.sig');
  rows.forEach(row => {
    const show = row.dataset.text.includes(q);
    row.style.display = show ? '' : 'none';
    const drill = row.nextElementSibling;
    if (drill && drill.classList.contains('drill')) {
      drill.style.display = show ? '' : 'none';
    }
  });
}
</script>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use maras_core::{Pipeline, PipelineConfig};
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};

    fn fixture() -> (AnalysisResult, Vocabulary, Vocabulary) {
        let mut cfg = SynthConfig::test_scale(61);
        cfg.n_reports = 1500;
        let mut synth = Synthesizer::new(cfg);
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result =
            Pipeline::new(PipelineConfig::default().with_min_support(5)).run(quarter, &dv, &av);
        (result, dv, av)
    }

    #[test]
    fn report_is_wellformed_and_complete() {
        let (result, dv, av) = fixture();
        let kb = KnowledgeBase::literature_validated();
        let cfg = ReportConfig { top_n: 10, ..Default::default() };
        let html = html_report(&result, &dv, &av, &kb, &cfg);

        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        // One table row + one drill-down row per included signal.
        let n = result.ranked.len().min(10);
        assert_eq!(html.matches("<tr class=\"sig\"").count(), n);
        assert_eq!(html.matches("<tr class=\"drill\"").count(), n);
        // Panorama plus one glyph per signal.
        assert_eq!(html.matches("<svg").count(), 1 + n);
        // Funnel stats present.
        assert!(html.contains("multi-drug"));
        assert!(html.contains(&format!("{} multi-drug", result.counts.mcacs)));
        // Dark-mode block present.
        assert!(html.contains("prefers-color-scheme: dark"));
    }

    #[test]
    fn trend_column_appears_with_tracker() {
        let (result, dv, av) = fixture();
        let kb = KnowledgeBase::new();
        let mut tracker = TrendTracker::new();
        tracker.ingest(result.quarter.id, &result);
        let cfg = ReportConfig { top_n: 5, ..Default::default() };
        let html = super::html_report_with_trends(&result, &dv, &av, &kb, &cfg, Some(&tracker));
        assert!(html.contains("<th>trend</th>"));
        assert!(html.contains("class=\"spark\""));
        // Sparkline SVGs on top of panorama + glyphs.
        let n = result.ranked.len().min(5);
        assert!(html.matches("<svg").count() > 2 * n);
        // Without the tracker, no trend column.
        let plain = html_report(&result, &dv, &av, &kb, &cfg);
        assert!(!plain.contains("<th>trend</th>"));
    }

    #[test]
    fn badges_reflect_knowledge_base() {
        let (result, dv, av) = fixture();
        let empty = KnowledgeBase::new();
        let html = html_report(&result, &dv, &av, &empty, &ReportConfig::default());
        // Without a KB, everything is novel.
        assert!(html.contains("badge novel"));
        assert!(!html.contains("badge known"));
    }

    #[test]
    fn report_escapes_markup_in_names() {
        // Drug names with XML/HTML specials must never break the document.
        let (result, dv, av) = fixture();
        let kb = KnowledgeBase::new();
        let html = html_report(&result, &dv, &av, &kb, &ReportConfig::default());
        // No raw unescaped ampersands outside entities (cheap check: every
        // '&' in the document body is part of an entity we emit; the inline
        // JS block legitimately contains `&&`, so stop before it).
        let body_end = html.find("<script>").unwrap_or(html.len());
        let html = &html[..body_end];
        for (i, _) in html.match_indices('&') {
            let tail = &html[i..(i + 6).min(html.len())];
            assert!(
                tail.starts_with("&amp;")
                    || tail.starts_with("&lt;")
                    || tail.starts_with("&gt;")
                    || tail.starts_with("&quot;")
                    || tail.starts_with("&apos;")
                    || tail.starts_with("&#"),
                "unescaped & at {i}: {tail:?}"
            );
        }
    }

    #[test]
    fn drilldown_lists_supporting_reports() {
        let (result, dv, av) = fixture();
        let kb = KnowledgeBase::new();
        let cfg = ReportConfig { top_n: 3, max_reports_per_signal: 2, ..Default::default() };
        let html = html_report(&result, &dv, &av, &kb, &cfg);
        assert!(html.contains("case 9"), "case ids missing");
        // Truncation note appears when support exceeds the per-signal cap.
        if result.ranked[0].cluster.target.support() > 2 {
            assert!(html.contains("more reports"));
        }
    }

    #[test]
    fn filter_script_and_input_present() {
        let (result, dv, av) = fixture();
        let kb = KnowledgeBase::new();
        let html = html_report(&result, &dv, &av, &kb, &ReportConfig::default());
        assert!(html.contains("id=\"filter\""));
        assert!(html.contains("function filterRows"));
        assert!(html.contains("data-text="));
    }
}
