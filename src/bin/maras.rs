//! `maras` — command-line front end for the MARAS pipeline.
//!
//! ```text
//! maras generate --out DIR [--reports N] [--seed S]      synthesize a year of quarterly extracts
//! maras analyze  --dir DIR --quarter 2014Q1 [opts]       run MARAS over one quarter
//! maras render   --dir DIR --quarter 2014Q1 --out DIR    render panorama + top-glyph SVGs
//! maras study    [--participants N] [--seed S]           run the simulated user study
//! maras demo                                             end-to-end demo on in-memory data
//! ```
//!
//! `generate` writes the four FAERS-format ASCII quarters plus
//! `drug_vocab.txt` / `adr_vocab.txt` (one canonical term per line), which
//! `analyze` and `render` read back — the same contract a real deployment
//! would satisfy with RxNorm/MedDRA dictionaries.

use maras::core::{supporting_reports, KnowledgeBase, Pipeline, PipelineConfig};
use maras::faers::ascii::{read_quarter_dir, write_quarter_dir};
use maras::faers::{QuarterId, SynthConfig, Synthesizer, Vocabulary};
use maras::rules::{DrugAdrRule, Measure};
use maras::study::{appendix_a_battery, run_study, Encoding, StudyConfig};
use maras::viz::{glyph_svg, panorama_svg, GlyphConfig, PanoramaConfig, Theme, DARK, LIGHT};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, flags) = match parse(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "analyze" => cmd_analyze(&flags),
        "render" => cmd_render(&flags),
        "report" => cmd_report(&flags),
        "study" => cmd_study(&flags),
        "demo" => cmd_demo(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
maras - multi-drug adverse reaction analytics

USAGE:
  maras generate --out DIR [--reports N] [--seed S]
  maras analyze  --dir DIR --quarter 2014Q1 [--min-support N] [--top K]
                 [--measure confidence|lift] [--theta T] [--drug NAME]
                 [--unknown-only] [--novel-adr-only] [--json FILE]
  maras render   --dir DIR --quarter 2014Q1 [--out DIR] [--top K] [--dark]
  maras report   --dir DIR --quarter 2014Q1 [--out FILE.html] [--top K]
  maras study    [--participants N] [--seed S]
  maras demo";

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Result<(String, Flags), String> {
    let command = args.first().cloned().ok_or("missing command")?;
    let mut flags = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        // Boolean flags take no value.
        if flag == "unknown-only" || flag == "dark" || flag == "novel-adr-only" {
            flags.insert(flag.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{flag} needs a value"))?;
        flags.insert(flag.to_string(), value.clone());
        i += 2;
    }
    Ok((command, flags))
}

fn flag<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("missing required --{name}"))
}

fn flag_num<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: cannot parse {v:?}")),
    }
}

fn parse_quarter(s: &str) -> Result<QuarterId, String> {
    // "2014Q1" or "2014q1"
    let s = s.to_ascii_uppercase();
    let (year, q) = s.split_once('Q').ok_or_else(|| format!("bad quarter {s:?}, want 2014Q1"))?;
    let year: u16 = year.parse().map_err(|_| format!("bad year in {s:?}"))?;
    let q: u8 = q.parse().map_err(|_| format!("bad quarter number in {s:?}"))?;
    if !(1..=4).contains(&q) {
        return Err(format!("quarter must be 1-4, got {q}"));
    }
    Ok(QuarterId::new(year, q))
}

fn write_vocab(path: &Path, vocab: &Vocabulary) -> Result<(), String> {
    let mut out = String::new();
    for (_, term) in vocab.iter() {
        out.push_str(term);
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("write {}: {e}", path.display()))
}

fn read_vocab(path: &Path) -> Result<Vocabulary, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(Vocabulary::from_terms(text.lines().map(str::to_string)))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let out = PathBuf::from(flag(flags, "out")?);
    let reports: usize = flag_num(flags, "reports", 5_000)?;
    let seed: u64 = flag_num(flags, "seed", 2014)?;
    let config = SynthConfig { n_reports: reports, seed, ..SynthConfig::default() };
    let mut synth = Synthesizer::new(config);
    std::fs::create_dir_all(&out).map_err(|e| format!("mkdir {}: {e}", out.display()))?;
    for quarter in synth.generate_year(2014) {
        write_quarter_dir(&out, &quarter).map_err(|e| format!("write quarter: {e}"))?;
        println!("wrote {} ({} reports)", quarter.id, quarter.reports.len());
    }
    write_vocab(&out.join("drug_vocab.txt"), synth.drug_vocab())?;
    write_vocab(&out.join("adr_vocab.txt"), synth.adr_vocab())?;
    println!("wrote vocabularies to {}", out.display());
    Ok(())
}

fn load(dir: &Path, id: QuarterId) -> Result<(maras::faers::QuarterData, Vocabulary, Vocabulary), String> {
    let quarter = read_quarter_dir(dir, id).map_err(|e| format!("read quarter: {e}"))?;
    let dv = read_vocab(&dir.join("drug_vocab.txt"))?;
    let av = read_vocab(&dir.join("adr_vocab.txt"))?;
    Ok((quarter, dv, av))
}

fn pipeline_config(flags: &Flags) -> Result<PipelineConfig, String> {
    let mut config = PipelineConfig::default()
        .with_min_support(flag_num(flags, "min-support", 6u64)?)
        .with_theta(flag_num(flags, "theta", 0.5f64)?);
    match flags.get("measure").map(String::as_str) {
        None | Some("confidence") => {}
        Some("lift") => config.exclusiveness.measure = Measure::Lift,
        Some(other) => return Err(format!("--measure must be confidence or lift, got {other:?}")),
    }
    Ok(config)
}

fn cmd_analyze(flags: &Flags) -> Result<(), String> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let top: usize = flag_num(flags, "top", 15)?;
    let (quarter, dv, av) = load(&dir, id)?;
    let result = Pipeline::new(pipeline_config(flags)?).run(quarter, &dv, &av);

    println!(
        "{id}: {} reports -> {} cleaned -> {} MCACs ({} total splits, {} drug->ADR rules)",
        result.cleaning.input_reports,
        result.cleaning.output_reports,
        result.counts.mcacs,
        result.counts.total_rules,
        result.counts.filtered_rules,
    );

    // Optional drug / novelty filters (§4.1 search panel).
    let mut query = maras::core::RuleQuery::new();
    if let Some(drug) = flags.get("drug") {
        query = query.with_drug(drug);
    }
    let kb = KnowledgeBase::literature_validated();
    if flags.contains_key("unknown-only") {
        query = query.unknown_only();
    }
    if flags.contains_key("novel-adr-only") {
        query = query.novel_adr_only();
    }
    let hits = query.apply(&result, &dv, &av, Some(&kb));

    let mut views = Vec::new();
    for &rank in hits.iter().take(top) {
        let view = result.view(rank, &dv, &av);
        println!("{view}");
        views.push(view);
    }
    if let Some(json_path) = flags.get("json") {
        let json = serde_json::to_string_pretty(&views).map_err(|e| e.to_string())?;
        std::fs::write(json_path, json).map_err(|e| format!("write {json_path}: {e}"))?;
        println!("wrote JSON to {json_path}");
    }
    Ok(())
}

fn cmd_render(flags: &Flags) -> Result<(), String> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let out = PathBuf::from(flags.get("out").cloned().unwrap_or_else(|| "figures".into()));
    let top: usize = flag_num(flags, "top", 15)?;
    let (quarter, dv, av) = load(&dir, id)?;
    let result = Pipeline::new(pipeline_config(flags)?).run(quarter, &dv, &av);
    if result.ranked.is_empty() {
        return Err("no clusters mined".into());
    }
    let namer = |rule: &DrugAdrRule| -> String {
        let drugs = result.encoded.names(&rule.drugs, &dv, &av);
        let adrs = result.encoded.names(&rule.adrs, &dv, &av);
        format!("{} => {}", drugs.join("+"), adrs.join(","))
    };
    std::fs::create_dir_all(&out).map_err(|e| format!("mkdir {}: {e}", out.display()))?;
    let theme: Theme = if flags.contains_key("dark") { DARK } else { LIGHT };
    let n = result.ranked.len().min(top);
    panorama_svg(
        &result.ranked[..n],
        &PanoramaConfig { theme, ..Default::default() },
        Some(&namer),
    )
    .save(&out.join("panoramagram.svg"))
    .map_err(|e| e.to_string())?;
    glyph_svg(
        &result.ranked[0].cluster,
        &GlyphConfig { theme, ..GlyphConfig::zoomed() },
        Some(&namer),
    )
    .save(&out.join("top_glyph.svg"))
    .map_err(|e| e.to_string())?;
    println!("wrote panoramagram.svg and top_glyph.svg to {}", out.display());
    Ok(())
}

fn cmd_report(flags: &Flags) -> Result<(), String> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let out = PathBuf::from(flags.get("out").cloned().unwrap_or_else(|| "report.html".into()));
    let top: usize = flag_num(flags, "top", 25)?;
    let (quarter, dv, av) = load(&dir, id)?;
    let result = Pipeline::new(pipeline_config(flags)?).run(quarter, &dv, &av);
    let kb = KnowledgeBase::literature_validated();
    let cfg = maras::report::ReportConfig {
        top_n: top,
        title: format!("MARAS report - {id}"),
        ..Default::default()
    };
    let html = maras::report::html_report(&result, &dv, &av, &kb, &cfg);
    std::fs::write(&out, html).map_err(|e| format!("write {}: {e}", out.display()))?;
    println!("wrote {} ({} signals)", out.display(), result.ranked.len().min(top));
    Ok(())
}

fn cmd_study(flags: &Flags) -> Result<(), String> {
    let n: usize = flag_num(flags, "participants", 50)?;
    let seed: u64 = flag_num(flags, "seed", 2016)?;
    let battery = appendix_a_battery(seed);
    let results =
        run_study(&battery, &StudyConfig { n_participants: n, seed, ..Default::default() });
    println!("{:<16} {:>18} {:>10}", "drugs", "contextual glyph", "barchart");
    for (count, label) in [(2usize, "two"), (3, "three"), (4, "four")] {
        println!(
            "{:<16} {:>17.0}% {:>9.0}%",
            label,
            results.percent_correct(count, Encoding::ContextualGlyph),
            results.percent_correct(count, Encoding::BarChart)
        );
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let mut synth = Synthesizer::new(SynthConfig::default());
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(8)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    println!("top 5 drug-drug-interaction signals:");
    for view in result.views(5, synth.drug_vocab(), synth.adr_vocab()) {
        println!("  {view}");
    }
    if let Some(top) = result.ranked.first() {
        let n = supporting_reports(&result, &top.cluster.target).len();
        println!("\n#1 is supported by {n} raw case reports (drill down via `analyze --json`)");
    }
    Ok(())
}
