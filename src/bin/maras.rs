//! `maras` — command-line front end for the MARAS pipeline.
//!
//! ```text
//! maras generate --out DIR [--reports N] [--seed S]      synthesize a year of quarterly extracts
//! maras analyze  --dir DIR --quarter 2014Q1 [opts]       run MARAS over one quarter
//! maras year     --dir DIR [--year 2014] [opts]          fault-tolerant run over four quarters
//! maras render   --dir DIR --quarter 2014Q1 --out DIR    render panorama + top-glyph SVGs
//! maras study    [--participants N] [--seed S]           run the simulated user study
//! maras demo                                             end-to-end demo on in-memory data
//! ```
//!
//! `generate` writes the four FAERS-format ASCII quarters plus
//! `drug_vocab.txt` / `adr_vocab.txt` (one canonical term per line), which
//! `analyze` and `render` read back — the same contract a real deployment
//! would satisfy with RxNorm/MedDRA dictionaries.
//!
//! Dirty data: every reading command accepts `--ingest-mode
//! strict|lenient` (default strict), `--max-bad-rows N` and
//! `--max-bad-frac F`. Lenient ingestion quarantines malformed rows and
//! reports them (and serializes the ingest report into `--json` output);
//! a blown error budget exits with code 2.

use maras::core::ingest::{run_quarters_dir, QuarterOutcome};
use maras::core::{supporting_reports, KnowledgeBase, Pipeline, PipelineConfig, RankBy};
use maras::evidence::{build_archive, check_archive, BuildConfig, EvidenceError, EvidenceReader};
use maras::faers::ascii::{
    read_quarter_dir_with, write_quarter_dir, AsciiError, ErrorBudget, IngestMetrics, IngestMode,
    IngestOptions, IngestReport, Ingested,
};
use maras::faers::{CleaningStats, QuarterId, SynthConfig, Synthesizer, Vocabulary};
use maras::rules::{DrugAdrRule, Measure};
use maras::serve::{ServeState, Snapshot, StoreError};
use maras::study::{appendix_a_battery, run_study, Encoding, StudyConfig};
use maras::viz::{glyph_svg, panorama_svg, GlyphConfig, PanoramaConfig, Theme, DARK, LIGHT};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Structured CLI failure. Usage problems exit 1; a blown ingest error
/// budget exits 2, so batch drivers can tell "you typed it wrong" from
/// "the data is worse than the budget allows".
#[derive(Debug)]
enum CliError {
    /// Bad flags, arguments, or values.
    Usage(String),
    /// FAERS ingestion failed (I/O, malformed data in strict mode, or a
    /// blown error budget).
    Ingest(AsciiError),
    /// A non-ingest I/O step failed.
    Io { context: String, source: std::io::Error },
    /// A snapshot file was refused (bad magic/version/checksum, corrupt
    /// payload) when loading for `serve`.
    Snapshot(StoreError),
    /// An evidence archive could not be built, validated, or opened.
    Evidence(EvidenceError),
    /// Anything else (empty mining output, render failures, …).
    Other(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    fn io(context: impl Into<String>, source: std::io::Error) -> CliError {
        CliError::Io { context: context.into(), source }
    }

    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Ingest(AsciiError::BudgetExceeded { .. }) => ExitCode::from(2),
            _ => ExitCode::FAILURE,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Other(msg) => f.write_str(msg),
            CliError::Ingest(e) => write!(f, "ingest: {e}"),
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
            CliError::Snapshot(e) => write!(f, "snapshot: {e}"),
            CliError::Evidence(e) => write!(f, "evidence: {e}"),
        }
    }
}

impl From<AsciiError> for CliError {
    fn from(e: AsciiError) -> CliError {
        CliError::Ingest(e)
    }
}

impl From<EvidenceError> for CliError {
    fn from(e: EvidenceError) -> CliError {
        CliError::Evidence(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, flags) = match parse(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = init_logging_from_flags(&flags) {
        eprintln!("error: {e}");
        return e.exit_code();
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "analyze" => cmd_analyze(&flags),
        "year" => cmd_year(&flags),
        "render" => cmd_render(&flags),
        "report" => cmd_report(&flags),
        "snapshot" => cmd_snapshot(&flags),
        "serve" => cmd_serve(&flags),
        "evidence build" => cmd_evidence_build(&flags),
        "evidence check" => cmd_evidence_check(&flags),
        "study" => cmd_study(&flags),
        "demo" => cmd_demo(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}

const USAGE: &str = "\
maras - multi-drug adverse reaction analytics

USAGE:
  maras generate --out DIR [--reports N] [--seed S]
  maras analyze  --dir DIR --quarter 2014Q1 [--min-support N] [--top K]
                 [--measure confidence|lift] [--theta T] [--threads N]
                 [--rank-by exclusiveness|prr|ror|ebgm|composite]
                 [--drug NAME] [--unknown-only] [--novel-adr-only] [--json FILE]
                 [--ingest-mode strict|lenient] [--max-bad-rows N] [--max-bad-frac F]
                 [--trace FILE.json] [--timings]
  maras year     --dir DIR [--year 2014] [--min-support N] [--top K] [--threads N]
                 [--rank-by METHOD] [--json FILE] [--trace FILE.json] [--timings]
                 [--ingest-mode strict|lenient] [--max-bad-rows N] [--max-bad-frac F]
  maras render   --dir DIR --quarter 2014Q1 [--out DIR] [--top K] [--dark]
  maras report   --dir DIR --quarter 2014Q1 [--out FILE.html] [--top K] [--threads N]
                 [--rank-by METHOD] [--trace FILE.json] [--timings]
  maras snapshot --dir DIR --quarter 2014Q1 --out FILE.snap [--json FILE] [--threads N]
                 [--rank-by METHOD] [--evidence FILE.evid] [--trace FILE.json] [--timings]
  maras serve    --snapshot FILE.snap [--evidence FILE.evid] [--addr HOST:PORT]
                 [--threads N] [--cache N] [--check] [--json FILE] [--slow-ms MS]
                 [--queue-depth N] [--io-timeout-ms MS] [--drain-ms MS] [--no-debug]
  maras evidence build --dir DIR --quarter 2014Q1 --out FILE.evid
                 [--block-size N] [--json FILE] [--threads N]
                 [--ingest-mode strict|lenient] [--max-bad-rows N] [--max-bad-frac F]
  maras evidence check --archive FILE.evid [--json FILE]

For analyze/year/report/snapshot, --threads N sets the mining AND ingest
worker count (0 or omitted = all available cores); for serve it sets HTTP
worker threads. Ingest output is byte-identical at any thread count.
--rank-by METHOD orders the ranked clusters by exclusiveness (default)
or a disproportionality baseline (prr, ror, ebgm, or their geometric
mean, composite); every method serves the full score block either way.
  maras study    [--participants N] [--seed S]
  maras demo

`snapshot` runs the pipeline and writes an indexed, checksummed binary
snapshot; `serve` loads it and answers /search, /autocomplete,
/cluster/<rank>, /healthz, /metrics (Prometheus text) and /metrics.json
(legacy JSON) over HTTP (POST /reload hot-swaps the file atomically).
`--check` validates the snapshot (and the evidence archive, if given)
and exits.

`evidence build` writes the checksummed on-disk case archive that backs
the drill-down endpoints; passing `--evidence` to `snapshot` writes it
from the same analysis run. `serve --evidence` opens the archive and
additionally answers /cluster/<rank>/reports (paginated raw case
reports, ?offset=&limit=&min_severity=) and /report/<case-id>; reload
re-opens snapshot + archive together or not at all. `evidence check`
re-reads every block against its checksum and exits non-zero on any
corruption. `--slow-ms` sets the
slow-request log threshold (default 1000 ms). `--queue-depth` bounds the
admission queue (default 128; full queue answers 503 immediately),
`--io-timeout-ms` is the per-request socket deadline (default 5000;
0 disables), and `--drain-ms` bounds the graceful-drain window used by
embedders that call `ServerHandle::shutdown` (default 5000).

Observability: --trace FILE.json writes a Chrome trace-event file of the
run (open in chrome://tracing or Perfetto); --timings prints the
aggregated span tree to stderr. Every command accepts --log-level
trace|debug|info|warn|error|off (or the MARAS_LOG env var) to emit
structured JSON-lines log events to stderr, and --log-file FILE to tee
them to a file; the in-memory log ring records regardless and a panic
dumps its tail. `serve` assigns every connection a request id (echoed
as x-maras-request-id), keeps a flight recorder of notable requests,
and answers GET /debug/logs, /debug/requests, and /debug/runtime
(disable the suite with --no-debug).

Dirty data: --ingest-mode lenient quarantines malformed rows instead of
failing; --max-bad-rows / --max-bad-frac cap the quarantine (exceeding the
budget exits with code 2).";

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Result<(String, Flags), String> {
    let mut command = args.first().cloned().ok_or("missing command")?;
    let mut i = 1;
    // `evidence` takes a subcommand word (`evidence build`, `evidence
    // check`) before its flags; fold it into the command key.
    if command == "evidence" {
        let sub = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .ok_or("evidence needs a subcommand: build or check")?;
        command = format!("evidence {sub}");
        i = 2;
    }
    let mut flags = HashMap::new();
    while i < args.len() {
        let flag = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        // Boolean flags take no value.
        if flag == "unknown-only"
            || flag == "dark"
            || flag == "novel-adr-only"
            || flag == "check"
            || flag == "timings"
            || flag == "no-debug"
        {
            flags.insert(flag.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{flag} needs a value"))?;
        flags.insert(flag.to_string(), value.clone());
        i += 2;
    }
    Ok((command, flags))
}

fn flag<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, CliError> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("missing required --{name}")))
}

fn flag_num<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::usage(format!("--{name}: cannot parse {v:?}"))),
    }
}

fn parse_quarter(s: &str) -> Result<QuarterId, CliError> {
    // "2014Q1" or "2014q1"
    let s = s.to_ascii_uppercase();
    let (year, q) = s
        .split_once('Q')
        .ok_or_else(|| CliError::usage(format!("bad quarter {s:?}, want 2014Q1")))?;
    let year: u16 = year.parse().map_err(|_| CliError::usage(format!("bad year in {s:?}")))?;
    let q: u8 = q.parse().map_err(|_| CliError::usage(format!("bad quarter number in {s:?}")))?;
    if !(1..=4).contains(&q) {
        return Err(CliError::usage(format!("quarter must be 1-4, got {q}")));
    }
    Ok(QuarterId::new(year, q))
}

/// Drains the span collector and emits the observability artifacts the
/// run asked for: `--trace FILE` writes a Chrome trace-event JSON file
/// (open in `chrome://tracing` or Perfetto), `--timings` prints the
/// aggregated span tree to stderr. With neither flag this is a no-op —
/// the collector is left alone so tests sharing the process can drain
/// it themselves.
fn emit_obs(flags: &Flags) -> Result<(), CliError> {
    let trace_path = flags.get("trace");
    let timings = flags.contains_key("timings");
    if trace_path.is_none() && !timings {
        return Ok(());
    }
    let spans = maras::obs::take_spans();
    if let Some(path) = trace_path {
        let json = maras::obs::chrome_trace(&spans);
        std::fs::write(path, json).map_err(|e| CliError::io(format!("write {path}"), e))?;
        println!("wrote Chrome trace ({} spans) to {path}", spans.len());
    }
    if timings {
        eprint!("{}", maras::obs::SpanTree::build(&spans).render());
    }
    let dropped = maras::obs::spans_dropped();
    if dropped > 0 {
        eprintln!("warning: {dropped} spans dropped (collector cap reached)");
    }
    Ok(())
}

/// Configures the structured-log flight recorder for every command:
/// `MARAS_LOG` / `--log-level` gate JSON-lines emission to stderr (the
/// in-memory ring records regardless), `--log-file` tees emitted lines
/// to a file, and a panic hook dumps the ring tail before aborting so a
/// crash always leaves its last moments behind.
fn init_logging_from_flags(flags: &Flags) -> Result<(), CliError> {
    let mut config = maras::obs::LogConfig::from_env();
    if let Some(raw) = flags.get("log-level") {
        config.emit_level = match maras::obs::Level::parse(raw) {
            Some(level) => Some(level),
            None if raw.eq_ignore_ascii_case("off") => None,
            None => {
                return Err(CliError::usage(format!(
                    "--log-level must be trace, debug, info, warn, error, or off, got {raw:?}"
                )))
            }
        };
    }
    config.file = flags.get("log-file").map(PathBuf::from);
    config.panic_hook = true;
    maras::obs::init_logging(&config).map_err(|e| CliError::io("initialize logging".to_string(), e))
}

/// `--ingest-mode` / `--max-bad-rows` / `--max-bad-frac` → [`IngestOptions`].
fn ingest_options(flags: &Flags) -> Result<IngestOptions, CliError> {
    let mode = match flags.get("ingest-mode") {
        None => IngestMode::Strict,
        Some(v) => IngestMode::from_str_opt(v).ok_or_else(|| {
            CliError::usage(format!("--ingest-mode must be strict or lenient, got {v:?}"))
        })?,
    };
    let mut budget = ErrorBudget::unlimited();
    if let Some(v) = flags.get("max-bad-rows") {
        let n: usize = v
            .parse()
            .map_err(|_| CliError::usage(format!("--max-bad-rows: cannot parse {v:?}")))?;
        budget.max_bad_rows = Some(n);
    }
    if let Some(v) = flags.get("max-bad-frac") {
        let f: f64 = v
            .parse()
            .map_err(|_| CliError::usage(format!("--max-bad-frac: cannot parse {v:?}")))?;
        if !(0.0..=1.0).contains(&f) {
            return Err(CliError::usage(format!("--max-bad-frac must be in [0, 1], got {f}")));
        }
        budget.max_bad_frac = Some(f);
    }
    Ok(IngestOptions { mode, budget, n_threads: flag_num(flags, "threads", 0usize)? })
}

fn write_vocab(path: &Path, vocab: &Vocabulary) -> Result<(), CliError> {
    let mut out = String::new();
    for (_, term) in vocab.iter() {
        out.push_str(term);
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| CliError::io(format!("write {}", path.display()), e))
}

fn read_vocab(path: &Path) -> Result<Vocabulary, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("read {}", path.display()), e))?;
    Ok(Vocabulary::from_terms(text.lines().map(str::to_string)))
}

fn cmd_generate(flags: &Flags) -> Result<(), CliError> {
    let out = PathBuf::from(flag(flags, "out")?);
    let reports: usize = flag_num(flags, "reports", 5_000)?;
    let seed: u64 = flag_num(flags, "seed", 2014)?;
    let config = SynthConfig { n_reports: reports, seed, ..SynthConfig::default() };
    let mut synth = Synthesizer::new(config);
    std::fs::create_dir_all(&out)
        .map_err(|e| CliError::io(format!("mkdir {}", out.display()), e))?;
    for quarter in synth.generate_year(2014) {
        write_quarter_dir(&out, &quarter)
            .map_err(|e| CliError::io("write quarter".to_string(), e))?;
        println!("wrote {} ({} reports)", quarter.id, quarter.reports.len());
    }
    write_vocab(&out.join("drug_vocab.txt"), synth.drug_vocab())?;
    write_vocab(&out.join("adr_vocab.txt"), synth.adr_vocab())?;
    println!("wrote vocabularies to {}", out.display());
    Ok(())
}

fn load_vocabs(dir: &Path) -> Result<(Vocabulary, Vocabulary), CliError> {
    Ok((read_vocab(&dir.join("drug_vocab.txt"))?, read_vocab(&dir.join("adr_vocab.txt"))?))
}

fn load(
    dir: &Path,
    id: QuarterId,
    opts: &IngestOptions,
) -> Result<(Ingested, Vocabulary, Vocabulary), CliError> {
    let ingested = read_quarter_dir_with(dir, id, opts)?;
    let (dv, av) = load_vocabs(dir)?;
    Ok((ingested, dv, av))
}

fn pipeline_config(flags: &Flags) -> Result<PipelineConfig, CliError> {
    let mut config = PipelineConfig::default()
        .with_min_support(flag_num(flags, "min-support", 6u64)?)
        .with_theta(flag_num(flags, "theta", 0.5f64)?)
        .with_n_threads(flag_num(flags, "threads", 0usize)?);
    match flags.get("measure").map(String::as_str) {
        None | Some("confidence") => {}
        Some("lift") => config.exclusiveness.measure = Measure::Lift,
        Some(other) => {
            return Err(CliError::usage(format!(
                "--measure must be confidence or lift, got {other:?}"
            )))
        }
    }
    if let Some(s) = flags.get("rank-by") {
        match RankBy::from_str_opt(s) {
            Some(rank_by) => config = config.with_rank_by(rank_by),
            None => {
                return Err(CliError::usage(format!(
                    "--rank-by must be exclusiveness, prr, ror, ebgm, or composite, got {s:?}"
                )))
            }
        }
    }
    Ok(config)
}

/// One-paragraph ingest accounting, printed by `analyze`, `year`, and
/// `report`.
fn print_ingest(report: &IngestReport) {
    let mut line = format!(
        "ingest [{}]: {}/{} rows ok, {} quarantined",
        report.mode,
        report.rows_ok(),
        report.rows_read(),
        report.quarantined(),
    );
    if !report.is_clean() {
        let reasons: Vec<String> =
            report.counts_by_reason().iter().map(|(r, n)| format!("{r}: {n}")).collect();
        line.push_str(&format!(" ({})", reasons.join(", ")));
    }
    println!("{line}; budget: {}", report.budget);
    let damaged = report.damaged_headers();
    if !damaged.is_empty() {
        println!("  damaged headers: {}", damaged.join(", "));
    }
}

/// JSON projection of an [`IngestReport`] (the schema README documents).
fn ingest_report_json(report: &IngestReport) -> serde_json::Value {
    use serde_json::Value;
    let files = Value::obj(report.files().into_iter().map(|(name, c)| {
        (
            name,
            Value::obj([
                ("rows", Value::from(c.rows)),
                ("ok", Value::from(c.ok)),
                ("quarantined", Value::from(c.quarantined)),
            ]),
        )
    }));
    let by_reason = Value::obj(
        report.counts_by_reason().into_iter().map(|(r, n)| (r.as_str(), Value::from(n))),
    );
    Value::obj([
        ("quarter", Value::from(report.quarter.to_string())),
        ("mode", Value::from(report.mode.to_string())),
        (
            "budget",
            Value::obj([
                ("max_bad_rows", Value::from(report.budget.max_bad_rows)),
                ("max_bad_frac", Value::from(report.budget.max_bad_frac)),
            ]),
        ),
        ("rows_read", Value::from(report.rows_read())),
        ("rows_ok", Value::from(report.rows_ok())),
        ("bad_rows", Value::from(report.bad_rows())),
        ("quarantined", Value::from(report.quarantined())),
        ("files", files),
        ("by_reason", by_reason),
        ("damaged_headers", Value::arr(report.damaged_headers().into_iter().map(Value::from))),
        ("clean", Value::from(report.is_clean())),
    ])
}

/// JSON projection of [`IngestMetrics`]: where the read spent its time,
/// plus interner accounting.
fn ingest_metrics_json(metrics: &IngestMetrics) -> serde_json::Value {
    use serde_json::Value;
    let files = Value::obj(metrics.per_file().into_iter().map(|(name, io_us, parse_us)| {
        (name, Value::obj([("io_us", Value::from(io_us)), ("parse_us", Value::from(parse_us))]))
    }));
    Value::obj([
        ("threads", Value::from(metrics.threads)),
        ("files", files),
        ("merge_us", Value::from(metrics.merge_us)),
        ("total_us", Value::from(metrics.total_us)),
        (
            "interner",
            Value::obj([
                ("unique", Value::from(metrics.intern.unique)),
                ("hits", Value::from(metrics.intern.hits)),
                ("bytes", Value::from(metrics.intern.bytes)),
                ("hit_rate", Value::from(metrics.intern.hit_rate())),
            ]),
        ),
    ])
}

/// JSON projection of [`CleaningStats`], including the canonicalization
/// cache counters.
fn cleaning_stats_json(stats: &CleaningStats) -> serde_json::Value {
    use serde_json::Value;
    Value::obj([
        ("input_reports", Value::from(stats.input_reports)),
        ("deduplicated_versions", Value::from(stats.deduplicated_versions)),
        ("output_reports", Value::from(stats.output_reports)),
        ("dropped_sparse", Value::from(stats.dropped_sparse)),
        ("drug_mentions", Value::from(stats.drug_mentions)),
        ("corrected_drugs", Value::from(stats.corrected_drugs)),
        ("unmatched_drugs", Value::from(stats.unmatched_drugs)),
        ("adr_mentions", Value::from(stats.adr_mentions)),
        ("corrected_adrs", Value::from(stats.corrected_adrs)),
        ("unmatched_adrs", Value::from(stats.unmatched_adrs)),
        ("drug_cache_hits", Value::from(stats.drug_cache_hits)),
        ("drug_cache_misses", Value::from(stats.drug_cache_misses)),
        ("adr_cache_hits", Value::from(stats.adr_cache_hits)),
        ("adr_cache_misses", Value::from(stats.adr_cache_misses)),
        ("cache_hit_rate", Value::from(stats.cache_hit_rate())),
    ])
}

fn cmd_analyze(flags: &Flags) -> Result<(), CliError> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let top: usize = flag_num(flags, "top", 15)?;
    let opts = ingest_options(flags)?;
    let (ingested, dv, av) = load(&dir, id, &opts)?;
    print_ingest(&ingested.report);
    let ingest_report = ingested.report;
    let ingest_metrics = ingested.metrics;
    let result = Pipeline::new(pipeline_config(flags)?).run(ingested.data, &dv, &av);

    println!(
        "{id}: {} reports -> {} cleaned -> {} MCACs ({} total splits, {} drug->ADR rules)",
        result.cleaning.input_reports,
        result.cleaning.output_reports,
        result.counts.mcacs,
        result.counts.total_rules,
        result.counts.filtered_rules,
    );

    // Optional drug / novelty filters (§4.1 search panel).
    let mut query = maras::core::RuleQuery::new();
    if let Some(drug) = flags.get("drug") {
        query = query.with_drug(drug);
    }
    let kb = KnowledgeBase::literature_validated();
    if flags.contains_key("unknown-only") {
        query = query.unknown_only();
    }
    if flags.contains_key("novel-adr-only") {
        query = query.novel_adr_only();
    }
    let hits = query.apply(&result, &dv, &av, Some(&kb));

    let mut views = Vec::new();
    for &rank in hits.iter().take(top) {
        // `try_view` keeps a bad rank from panicking the CLI, whatever the
        // query produced.
        let Some(view) = result.try_view(rank, &dv, &av) else { continue };
        println!("{view}");
        views.push(view);
    }
    if let Some(json_path) = flags.get("json") {
        let json = serde_json::Value::obj([
            ("quarter", serde_json::Value::from(id.to_string())),
            ("ingest", ingest_report_json(&ingest_report)),
            ("ingest_metrics", ingest_metrics_json(&ingest_metrics)),
            ("cleaning", cleaning_stats_json(&result.cleaning)),
            ("rules", serde_json::Value::arr(views.iter().map(rule_view_json))),
        ]);
        let json =
            serde_json::to_string_pretty(&json).map_err(|e| CliError::Other(e.to_string()))?;
        std::fs::write(json_path, json)
            .map_err(|e| CliError::io(format!("write {json_path}"), e))?;
        println!("wrote JSON to {json_path}");
    }
    emit_obs(flags)
}

/// JSON projection of a ranked rule, mirroring `RuleView`'s fields. The
/// nested `scores` object uses the same schema as the server's JSON API.
fn rule_view_json(view: &maras::core::pipeline::RuleView) -> serde_json::Value {
    serde_json::Value::obj([
        ("rank", serde_json::Value::from(view.rank)),
        ("drugs", serde_json::Value::from(view.drugs.clone())),
        ("adrs", serde_json::Value::from(view.adrs.clone())),
        ("score", serde_json::Value::from(view.score)),
        ("support", serde_json::Value::from(view.support)),
        ("confidence", serde_json::Value::from(view.confidence)),
        ("lift", serde_json::Value::from(view.lift)),
        ("scores", maras::serve::scores_json(&view.scores)),
    ])
}

/// Fault-tolerant run over a year of quarters: failed quarters are
/// reported and skipped instead of aborting the whole run.
fn cmd_year(flags: &Flags) -> Result<(), CliError> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let year: u16 = flag_num(flags, "year", 2014)?;
    let top: usize = flag_num(flags, "top", 10)?;
    let opts = ingest_options(flags)?;
    let (dv, av) = load_vocabs(&dir)?;
    let pipeline = Pipeline::new(pipeline_config(flags)?);
    let ids: Vec<QuarterId> = (1..=4).map(|q| QuarterId::new(year, q)).collect();
    let run = run_quarters_dir(&pipeline, &dir, &ids, &opts, &dv, &av);

    let mut quarters_json = Vec::new();
    for qr in &run.runs {
        match &qr.outcome {
            QuarterOutcome::Ok { result, .. } => {
                println!(
                    "{}: ok - {} reports, {} MCACs",
                    qr.id, result.cleaning.input_reports, result.counts.mcacs
                );
            }
            QuarterOutcome::Degraded { result, report, .. } => {
                println!(
                    "{}: degraded - {} of {} rows quarantined, {} MCACs from surviving reports",
                    qr.id,
                    report.quarantined(),
                    report.rows_read(),
                    result.counts.mcacs
                );
                print_ingest(report);
            }
            QuarterOutcome::Failed { error } => {
                println!("{}: failed - {error}", qr.id);
            }
        }
        quarters_json.push(serde_json::Value::obj([
            ("quarter", serde_json::Value::from(qr.id.to_string())),
            ("status", serde_json::Value::from(qr.status())),
            ("ingest", qr.ingest_report().map_or(serde_json::Value::Null, ingest_report_json)),
            (
                "ingest_metrics",
                qr.ingest_metrics().map_or(serde_json::Value::Null, ingest_metrics_json),
            ),
            (
                "cleaning",
                qr.result().map_or(serde_json::Value::Null, |r| cleaning_stats_json(&r.cleaning)),
            ),
            (
                "error",
                qr.error()
                    .map_or(serde_json::Value::Null, |e| serde_json::Value::from(e.to_string())),
            ),
        ]));
    }
    println!(
        "{} ok, {} degraded, {} failed of {} quarters",
        run.ok_count(),
        run.degraded_count(),
        run.failed_count(),
        run.runs.len()
    );

    // Cross-quarter signals, decoded through any analyzed quarter (the
    // item space depends only on the shared vocabularies).
    let trends = run.tracker.trends();
    if let Some((_, result)) = run.analyzed().next() {
        println!("top signals across the year:");
        for t in trends.iter().take(top) {
            let drugs = result.encoded.names(&t.drugs, &dv, &av);
            let adrs = result.encoded.names(&t.adrs, &dv, &av);
            let marker = if t.is_persistent() {
                " [persistent]"
            } else if t.is_emerging() {
                " [emerging]"
            } else {
                ""
            };
            println!(
                "  [{}] => [{}] in {}/{} quarters, mean score {:.4}{}",
                drugs.join(" + "),
                adrs.join(", "),
                t.quarters_present(),
                t.points.len(),
                t.mean_score(),
                marker
            );
        }
    }

    if let Some(json_path) = flags.get("json") {
        let json = serde_json::Value::obj([
            ("year", serde_json::Value::from(year)),
            ("quarters", serde_json::Value::arr(quarters_json)),
            ("signals_tracked", serde_json::Value::from(trends.len())),
        ]);
        let json =
            serde_json::to_string_pretty(&json).map_err(|e| CliError::Other(e.to_string()))?;
        std::fs::write(json_path, json)
            .map_err(|e| CliError::io(format!("write {json_path}"), e))?;
        println!("wrote JSON to {json_path}");
    }
    emit_obs(flags)
}

fn cmd_render(flags: &Flags) -> Result<(), CliError> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let out = PathBuf::from(flags.get("out").cloned().unwrap_or_else(|| "figures".into()));
    let top: usize = flag_num(flags, "top", 15)?;
    let opts = ingest_options(flags)?;
    let (ingested, dv, av) = load(&dir, id, &opts)?;
    if !ingested.report.is_clean() {
        print_ingest(&ingested.report);
    }
    let result = Pipeline::new(pipeline_config(flags)?).run(ingested.data, &dv, &av);
    if result.ranked.is_empty() {
        return Err(CliError::Other("no clusters mined".into()));
    }
    let namer = |rule: &DrugAdrRule| -> String {
        let drugs = result.encoded.names(&rule.drugs, &dv, &av);
        let adrs = result.encoded.names(&rule.adrs, &dv, &av);
        format!("{} => {}", drugs.join("+"), adrs.join(","))
    };
    std::fs::create_dir_all(&out)
        .map_err(|e| CliError::io(format!("mkdir {}", out.display()), e))?;
    let theme: Theme = if flags.contains_key("dark") { DARK } else { LIGHT };
    let n = result.ranked.len().min(top);
    panorama_svg(
        &result.ranked[..n],
        &PanoramaConfig { theme, ..Default::default() },
        Some(&namer),
    )
    .save(&out.join("panoramagram.svg"))
    .map_err(|e| CliError::Other(e.to_string()))?;
    glyph_svg(
        &result.ranked[0].cluster,
        &GlyphConfig { theme, ..GlyphConfig::zoomed() },
        Some(&namer),
    )
    .save(&out.join("top_glyph.svg"))
    .map_err(|e| CliError::Other(e.to_string()))?;
    println!("wrote panoramagram.svg and top_glyph.svg to {}", out.display());
    Ok(())
}

fn cmd_report(flags: &Flags) -> Result<(), CliError> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let out = PathBuf::from(flags.get("out").cloned().unwrap_or_else(|| "report.html".into()));
    let top: usize = flag_num(flags, "top", 25)?;
    let opts = ingest_options(flags)?;
    let (ingested, dv, av) = load(&dir, id, &opts)?;
    print_ingest(&ingested.report);
    let result = Pipeline::new(pipeline_config(flags)?).run(ingested.data, &dv, &av);
    let kb = KnowledgeBase::literature_validated();
    let cfg = maras::report::ReportConfig {
        top_n: top,
        title: format!("MARAS report - {id}"),
        ..Default::default()
    };
    let html = maras::report::html_report(&result, &dv, &av, &kb, &cfg);
    std::fs::write(&out, html).map_err(|e| CliError::io(format!("write {}", out.display()), e))?;
    println!("wrote {} ({} signals)", out.display(), result.ranked.len().min(top));
    emit_obs(flags)
}

/// Runs the pipeline over one quarter and writes the indexed,
/// checksummed binary snapshot `maras serve` loads.
fn cmd_snapshot(flags: &Flags) -> Result<(), CliError> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let out = PathBuf::from(flag(flags, "out")?);
    let opts = ingest_options(flags)?;
    let (ingested, dv, av) = load(&dir, id, &opts)?;
    print_ingest(&ingested.report);
    let result = Pipeline::new(pipeline_config(flags)?).run(ingested.data, &dv, &av);
    let kb = KnowledgeBase::literature_validated();
    let snap = Snapshot::build(id.to_string(), &result, &dv, &av, Some(&kb));
    maras::serve::save(&snap, &out).map_err(CliError::Snapshot)?;
    println!(
        "wrote {} (format v{}, {} clusters from {} reports)",
        out.display(),
        maras::serve::FORMAT_VERSION,
        snap.len(),
        snap.n_reports
    );
    // `--evidence` writes the drill-down archive from the same analysis
    // run, so snapshot + archive always describe the same quarter.
    let mut evidence_json = serde_json::Value::Null;
    if let Some(evid_path) = flags.get("evidence") {
        let summary =
            build_archive(&result, &dv, &av, Path::new(evid_path), BuildConfig::default())?;
        println!(
            "wrote {evid_path} (evidence v{}, {} reports in {} blocks, {} bytes)",
            maras::evidence::FORMAT_VERSION,
            summary.n_records,
            summary.n_blocks,
            summary.file_bytes
        );
        evidence_json = archive_summary_json(&summary, Path::new(evid_path));
    }
    if let Some(json_path) = flags.get("json") {
        let mut json = snapshot_summary_json(&snap, &out);
        if let serde_json::Value::Object(map) = &mut json {
            map.insert("evidence".into(), evidence_json);
        }
        write_json(json_path, json)?;
        println!("wrote JSON to {json_path}");
    }
    emit_obs(flags)
}

/// JSON projection of an [`maras::evidence::ArchiveSummary`].
fn archive_summary_json(
    summary: &maras::evidence::ArchiveSummary,
    path: &Path,
) -> serde_json::Value {
    serde_json::Value::obj([
        ("path", serde_json::Value::from(path.display().to_string())),
        ("format_version", serde_json::Value::from(maras::evidence::FORMAT_VERSION)),
        ("records", serde_json::Value::from(summary.n_records)),
        ("blocks", serde_json::Value::from(summary.n_blocks)),
        ("symbols", serde_json::Value::from(summary.n_symbols)),
        ("drug_keys", serde_json::Value::from(summary.n_drug_keys)),
        ("adr_keys", serde_json::Value::from(summary.n_adr_keys)),
        ("file_bytes", serde_json::Value::from(summary.file_bytes)),
        ("data_bytes", serde_json::Value::from(summary.data_bytes)),
    ])
}

/// `maras evidence build`: run the pipeline over one quarter and write
/// the on-disk case archive the drill-down endpoints page out of.
fn cmd_evidence_build(flags: &Flags) -> Result<(), CliError> {
    let dir = PathBuf::from(flag(flags, "dir")?);
    let id = parse_quarter(flag(flags, "quarter")?)?;
    let out = PathBuf::from(flag(flags, "out")?);
    let block_size: u32 = flag_num(flags, "block-size", BuildConfig::default().block_size)?;
    if block_size == 0 {
        return Err(CliError::usage("--block-size must be >= 1"));
    }
    let opts = ingest_options(flags)?;
    let (ingested, dv, av) = load(&dir, id, &opts)?;
    print_ingest(&ingested.report);
    let result = Pipeline::new(pipeline_config(flags)?).run(ingested.data, &dv, &av);
    let summary = build_archive(&result, &dv, &av, &out, BuildConfig { block_size })?;
    println!(
        "wrote {} (evidence v{}, {} reports in {} blocks of {block_size}, {} bytes; {} drug keys, {} adr keys)",
        out.display(),
        maras::evidence::FORMAT_VERSION,
        summary.n_records,
        summary.n_blocks,
        summary.file_bytes,
        summary.n_drug_keys,
        summary.n_adr_keys,
    );
    if let Some(json_path) = flags.get("json") {
        write_json(json_path, archive_summary_json(&summary, &out))?;
        println!("wrote JSON to {json_path}");
    }
    emit_obs(flags)
}

/// `maras evidence check`: re-read every block against its checksum.
fn cmd_evidence_check(flags: &Flags) -> Result<(), CliError> {
    let path = PathBuf::from(flag(flags, "archive")?);
    let report = check_archive(&path)?;
    println!(
        "{} ok: {} ({} reports in {} blocks, {} symbols, {} drug keys, {} adr keys)",
        path.display(),
        report.quarter,
        report.n_records,
        report.n_blocks,
        report.n_symbols,
        report.n_drug_keys,
        report.n_adr_keys,
    );
    if let Some(json_path) = flags.get("json") {
        let json = serde_json::Value::obj([
            ("path", serde_json::Value::from(path.display().to_string())),
            ("quarter", serde_json::Value::from(report.quarter.clone())),
            ("records", serde_json::Value::from(report.n_records)),
            ("blocks", serde_json::Value::from(report.n_blocks)),
            ("symbols", serde_json::Value::from(report.n_symbols)),
            ("drug_keys", serde_json::Value::from(report.n_drug_keys)),
            ("adr_keys", serde_json::Value::from(report.n_adr_keys)),
            ("ok", serde_json::Value::from(true)),
        ]);
        write_json(json_path, json)?;
        println!("wrote JSON to {json_path}");
    }
    Ok(())
}

/// Serves a snapshot over HTTP; `--check` just validates it and exits.
fn cmd_serve(flags: &Flags) -> Result<(), CliError> {
    let path = PathBuf::from(flag(flags, "snapshot")?);
    let snap = match maras::serve::load(&path) {
        Ok(s) => s,
        Err(e) => {
            // `--json` gets the same structured error envelope the HTTP
            // API uses, so supervisors can diagnose a refused snapshot
            // without scraping stderr.
            if let Some(json_path) = flags.get("json") {
                let json = serde_json::Value::obj([(
                    "error",
                    serde_json::Value::obj([
                        ("code", serde_json::Value::from("snapshot")),
                        ("message", serde_json::Value::from(e.to_string())),
                        ("path", serde_json::Value::from(path.display().to_string())),
                    ]),
                )]);
                write_json(json_path, json)?;
            }
            return Err(CliError::Snapshot(e));
        }
    };
    println!(
        "loaded {}: {} ({} clusters from {} reports)",
        path.display(),
        snap.quarter,
        snap.len(),
        snap.n_reports
    );
    // `--evidence` opens the drill-down archive alongside the snapshot;
    // a refused archive fails startup the same way a refused snapshot
    // does, instead of silently serving without drill-down.
    let evidence_path = flags.get("evidence").map(PathBuf::from);
    let evidence = match &evidence_path {
        None => None,
        Some(p) => {
            let reader = EvidenceReader::open(p)?;
            if reader.quarter() != snap.quarter {
                return Err(CliError::Other(format!(
                    "evidence archive covers {} but snapshot covers {}",
                    reader.quarter(),
                    snap.quarter
                )));
            }
            println!(
                "loaded {}: evidence for {} ({} reports)",
                p.display(),
                reader.quarter(),
                reader.n_records()
            );
            Some(std::sync::Arc::new(reader))
        }
    };
    if let Some(json_path) = flags.get("json") {
        write_json(json_path, snapshot_summary_json(&snap, &path))?;
        println!("wrote JSON to {json_path}");
    }
    if flags.contains_key("check") {
        return Ok(());
    }
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:8645");
    let threads: usize = flag_num(flags, "threads", 4)?;
    let cache: usize = flag_num(flags, "cache", 1024)?;
    let slow_ms: u64 = flag_num(flags, "slow-ms", maras::serve::DEFAULT_SLOW_THRESHOLD_US / 1_000)?;
    let queue_depth: usize = flag_num(flags, "queue-depth", 128)?;
    let io_timeout_ms: u64 = flag_num(flags, "io-timeout-ms", 5_000)?;
    let drain_ms: u64 = flag_num(flags, "drain-ms", 5_000)?;
    let mut state = ServeState::new(snap, Some(path), cache);
    if let Some(reader) = evidence {
        state = state.with_evidence(reader, evidence_path);
    }
    let state = std::sync::Arc::new(state);
    state.set_slow_threshold_us(slow_ms.saturating_mul(1_000));
    let config = maras::serve::ServeConfig {
        n_threads: threads,
        queue_depth,
        io_timeout: (io_timeout_ms > 0).then(|| std::time::Duration::from_millis(io_timeout_ms)),
        drain: std::time::Duration::from_millis(drain_ms),
        debug_endpoints: !flags.contains_key("no-debug"),
    };
    let server = maras::serve::serve_with(state, addr, config)
        .map_err(|e| CliError::io(format!("bind {addr}"), e))?;
    println!(
        "serving on http://{} ({threads} threads, queue {queue_depth}, io timeout {io_timeout_ms} ms; POST /reload to hot-swap)",
        server.addr()
    );
    // Serve until killed; workers run on their own threads.
    loop {
        std::thread::park();
    }
}

fn snapshot_summary_json(snap: &Snapshot, path: &Path) -> serde_json::Value {
    serde_json::Value::obj([
        ("path", serde_json::Value::from(path.display().to_string())),
        ("format_version", serde_json::Value::from(maras::serve::FORMAT_VERSION)),
        ("quarter", serde_json::Value::from(snap.quarter.clone())),
        ("clusters", serde_json::Value::from(snap.len())),
        ("reports", serde_json::Value::from(snap.n_reports)),
    ])
}

fn write_json(path: &str, json: serde_json::Value) -> Result<(), CliError> {
    let text = serde_json::to_string_pretty(&json).map_err(|e| CliError::Other(e.to_string()))?;
    std::fs::write(path, text).map_err(|e| CliError::io(format!("write {path}"), e))
}

fn cmd_study(flags: &Flags) -> Result<(), CliError> {
    let n: usize = flag_num(flags, "participants", 50)?;
    let seed: u64 = flag_num(flags, "seed", 2016)?;
    let battery = appendix_a_battery(seed);
    let results =
        run_study(&battery, &StudyConfig { n_participants: n, seed, ..Default::default() });
    println!("{:<16} {:>18} {:>10}", "drugs", "contextual glyph", "barchart");
    for (count, label) in [(2usize, "two"), (3, "three"), (4, "four")] {
        println!(
            "{:<16} {:>17.0}% {:>9.0}%",
            label,
            results.percent_correct(count, Encoding::ContextualGlyph),
            results.percent_correct(count, Encoding::BarChart)
        );
    }
    Ok(())
}

fn cmd_demo() -> Result<(), CliError> {
    let mut synth = Synthesizer::new(SynthConfig::default());
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let result = Pipeline::new(PipelineConfig::default().with_min_support(8)).run(
        quarter,
        synth.drug_vocab(),
        synth.adr_vocab(),
    );
    println!("top 5 drug-drug-interaction signals:");
    for view in result.views(5, synth.drug_vocab(), synth.adr_vocab()) {
        println!("  {view}");
    }
    if let Some(top) = result.ranked.first() {
        let n = supporting_reports(&result, &top.cluster.target).len();
        println!("\n#1 is supported by {n} raw case reports (drill down via `analyze --json`)");
    }
    Ok(())
}
