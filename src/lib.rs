//! # MARAS — Multi-Drug Adverse Reactions Analytics
//!
//! A full Rust implementation of the MARAS / MeDIAR system (Kakar, WPI
//! 2016; ICDE'18 demo): detection of severe adverse drug reactions caused
//! by *combinations* of drugs, mined from FAERS-style spontaneous-report
//! data with closed association rules, contextualized by Multi-level
//! Contextual Association Clusters and ranked by the exclusiveness score.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`faers`] | `maras-faers` | report model, quarterly ASCII format, synthetic generator, cleaning |
//! | [`mining`] | `maras-mining` | FP-Growth, closed itemsets, Apriori, transaction DB |
//! | [`rules`] | `maras-rules` | drug→ADR rules, measures, supportedness (Lemma 3.4.2) |
//! | [`mcac`] | `maras-mcac` | contextual clusters, exclusiveness, improvement |
//! | [`signals`] | `maras-signals` | PRR / ROR / RRR / χ² / interaction-contrast baselines |
//! | [`viz`] | `maras-viz` | contextual glyph, bar charts, panoramagram (SVG) |
//! | [`study`] | `maras-study` | simulated user-study harness |
//! | [`core`] | `maras-core` | end-to-end pipeline, query API, knowledge base, drill-down |
//! | [`evidence`] | `maras-evidence` | on-disk case archive: columnar blocks, postings, block-cached reader |
//! | [`serve`] | `maras-serve` | indexed snapshots, binary store, HTTP query server |
//! | [`obs`] | `maras-obs` | span tracing, metrics registry, Prometheus + Chrome-trace export |
//! | [`tidset`] | `maras-tidset` | hybrid array/bitmap compressed tid-sets, shared set-algebra kernels |
//!
//! ## Quickstart
//!
//! ```
//! use maras::core::{Pipeline, PipelineConfig};
//! use maras::faers::{QuarterId, SynthConfig, Synthesizer};
//!
//! // 1. A (synthetic) quarter of FAERS reports.
//! let mut synth = Synthesizer::new(SynthConfig::test_scale(7));
//! let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
//!
//! // 2. Run MARAS: clean -> mine closed rules -> cluster -> rank.
//! let pipeline = Pipeline::new(PipelineConfig::default());
//! let result = pipeline.run(quarter, synth.drug_vocab(), synth.adr_vocab());
//!
//! // 3. The ranked drug-drug-interaction signals.
//! for view in result.views(3, synth.drug_vocab(), synth.adr_vocab()) {
//!     println!("{view}");
//! }
//! # assert!(!result.ranked.is_empty());
//! ```

#![warn(missing_docs)]

pub mod report;

pub use maras_core as core;
pub use maras_evidence as evidence;
pub use maras_faers as faers;
pub use maras_mcac as mcac;
pub use maras_mining as mining;
pub use maras_obs as obs;
pub use maras_rules as rules;
pub use maras_serve as serve;
pub use maras_signals as signals;
pub use maras_study as study;
pub use maras_tidset as tidset;
pub use maras_viz as viz;
