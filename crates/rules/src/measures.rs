//! Interestingness measures for associations (thesis §2.1, Formulas 2.1–2.3).
//!
//! The thesis uses *absolute* support (`Support(R) = |A ∪ B|`, Formula 2.1),
//! confidence as the MLE of `P(B|A)` (Formula 2.2), and lift as the
//! observed-to-independent co-occurrence ratio (Formula 2.3). §3.6 notes the
//! exclusiveness computation "could be replaced by other reasonable
//! measures"; [`Measure`] is that plug point.

use serde::{Deserialize, Serialize};

/// Confidence of a rule from raw counts: `|A∪B| / |A|` (Formula 2.2).
///
/// Returns 0 when the antecedent never occurs — the convention MARAS needs
/// for contextual sub-rules whose drug subset was never reported alone.
pub fn confidence(support_ab: u64, support_a: u64) -> f64 {
    if support_a == 0 {
        0.0
    } else {
        support_ab as f64 / support_a as f64
    }
}

/// Lift of a rule from raw counts: `(|A∪B| · N) / (|A| · |B|)` (Formula 2.3).
///
/// Returns 0 when either side never occurs.
pub fn lift(support_ab: u64, support_a: u64, support_b: u64, n_transactions: u64) -> f64 {
    if support_a == 0 || support_b == 0 {
        0.0
    } else {
        (support_ab as f64 * n_transactions as f64) / (support_a as f64 * support_b as f64)
    }
}

/// The raw counts every measure is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleStats {
    /// `|A ∪ B|` — reports containing the whole rule.
    pub support_ab: u64,
    /// `|A|` — reports containing the antecedent (drug set).
    pub support_a: u64,
    /// `|B|` — reports containing the consequent (ADR set).
    pub support_b: u64,
    /// `N` — total reports in the database.
    pub n_transactions: u64,
}

impl RuleStats {
    /// Formula 2.2.
    pub fn confidence(&self) -> f64 {
        confidence(self.support_ab, self.support_a)
    }

    /// Formula 2.3.
    pub fn lift(&self) -> f64 {
        lift(self.support_ab, self.support_a, self.support_b, self.n_transactions)
    }

    /// Relative support `|A∪B| / N` (the probabilistic reading of 2.1).
    pub fn relative_support(&self) -> f64 {
        if self.n_transactions == 0 {
            0.0
        } else {
            self.support_ab as f64 / self.n_transactions as f64
        }
    }

    /// Evaluates the given measure on these counts.
    pub fn measure(&self, m: Measure) -> f64 {
        match m {
            Measure::Confidence => self.confidence(),
            Measure::Lift => self.lift(),
            Measure::Support => self.relative_support(),
        }
    }
}

/// Strength measure selector (thesis §3.6 experiments with confidence *and*
/// lift; Table 5.2 shows both rankings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Measure {
    /// Formula 2.2 — the thesis's default for exclusiveness.
    #[default]
    Confidence,
    /// Formula 2.3 — favours rules with rarer consequents (§5.3).
    Lift,
    /// Relative support, kept for completeness of §2.1.
    Support,
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Measure::Confidence => write!(f, "confidence"),
            Measure::Lift => write!(f, "lift"),
            Measure::Support => write!(f, "support"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_basic() {
        assert_eq!(confidence(2, 4), 0.5);
        assert_eq!(confidence(4, 4), 1.0);
        assert_eq!(confidence(0, 4), 0.0);
    }

    #[test]
    fn confidence_zero_antecedent_is_zero() {
        assert_eq!(confidence(0, 0), 0.0);
        assert_eq!(confidence(5, 0), 0.0);
    }

    #[test]
    fn lift_independence_is_one() {
        // A in half the db, B in half, together in a quarter: independent.
        assert_eq!(lift(25, 50, 50, 100), 1.0);
    }

    #[test]
    fn lift_positive_and_negative_association() {
        assert!(lift(50, 50, 50, 100) > 1.0); // perfectly dependent
        assert!(lift(1, 50, 50, 100) < 1.0); // anti-associated
        assert_eq!(lift(0, 0, 10, 100), 0.0);
        assert_eq!(lift(0, 10, 0, 100), 0.0);
    }

    #[test]
    fn stats_accessors_agree_with_free_functions() {
        let s = RuleStats { support_ab: 3, support_a: 6, support_b: 10, n_transactions: 100 };
        assert_eq!(s.confidence(), confidence(3, 6));
        assert_eq!(s.lift(), lift(3, 6, 10, 100));
        assert_eq!(s.relative_support(), 0.03);
        assert_eq!(s.measure(Measure::Confidence), s.confidence());
        assert_eq!(s.measure(Measure::Lift), s.lift());
        assert_eq!(s.measure(Measure::Support), 0.03);
    }

    #[test]
    fn measure_display() {
        assert_eq!(Measure::Confidence.to_string(), "confidence");
        assert_eq!(Measure::Lift.to_string(), "lift");
        assert_eq!(Measure::Support.to_string(), "support");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn confidence_in_unit_interval(ab in 0u64..1000, extra_a in 0u64..1000) {
                let a = ab + extra_a; // |A∪B| ≤ |A| always holds in a real DB
                let c = confidence(ab, a);
                prop_assert!((0.0..=1.0).contains(&c));
            }

            #[test]
            fn lift_nonnegative(ab in 0u64..100, a in 0u64..100, b in 0u64..100, n in 0u64..1000) {
                prop_assert!(lift(ab, a, b, n) >= 0.0);
            }

            #[test]
            fn confidence_monotone_in_joint_support(ab in 0u64..500, a in 1u64..1000) {
                prop_assume!(ab < a);
                prop_assert!(confidence(ab, a) <= confidence(ab + 1, a));
            }
        }
    }
}
