//! Rule generation from mined itemsets, and the three rule-space sizes of
//! Fig. 5.1.
//!
//! Traditional association rule mining derives, from every frequent itemset
//! `S`, every rule `A ⇒ B` with `A ∪ B = S` and both sides non-empty — the
//! `2^|S| − 2` splits of §3.2/Formula 3.1. MARAS then (1) keeps only splits
//! with drugs as antecedent and ADRs as consequent (§3.1, "filtered rules"),
//! of which each mixed itemset has exactly one, and (2) keeps only rules
//! whose complete itemset is *closed* with ≥ 2 drugs — the MCAC target rules.

use crate::partition::ItemPartition;
use crate::rule::DrugAdrRule;
use maras_mining::{closed_itemsets, fpgrowth, TransactionDb};
use serde::{Deserialize, Serialize};

/// Sizes of the successively-reduced rule spaces (the three series of
/// Fig. 5.1), plus the underlying itemset counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RuleSpaceCounts {
    /// All `A ⇒ B` splits of all frequent itemsets ("Total Rules").
    pub total_rules: u64,
    /// Splits with pure drug antecedent and pure ADR consequent
    /// ("Filtered Rules"): one per mixed frequent itemset.
    pub filtered_rules: u64,
    /// Closed, mixed, multi-drug associations — the MCAC target rules.
    pub mcacs: u64,
    /// Number of frequent itemsets mined.
    pub frequent_itemsets: u64,
    /// Number of closed frequent itemsets.
    pub closed_itemsets: u64,
}

/// Counts the three rule spaces of Fig. 5.1 in one pass over the pattern
/// stream plus one closed-mining pass. Nothing is materialized for the
/// "total" space, so the 10⁶–10⁷ rule counts the paper reports stay cheap.
pub fn count_all_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> RuleSpaceCounts {
    let mut counts = RuleSpaceCounts::default();
    fpgrowth(db, min_support, |s, _| {
        counts.frequent_itemsets += 1;
        let n = s.len() as u32;
        if n >= 2 {
            counts.total_rules += (1u64 << n.min(62)) - 2;
        }
        if partition.is_mixed(s) {
            counts.filtered_rules += 1;
        }
    });
    for f in closed_itemsets(db, min_support) {
        counts.closed_itemsets += 1;
        if partition.is_mixed(&f.items) && partition.drug_count(&f.items) >= 2 {
            counts.mcacs += 1;
        }
    }
    counts
}

/// All drug→ADR rules from the *unfiltered* frequent itemsets — the
/// traditional pool Table 5.2's plain confidence/lift rankings draw from
/// ("these two methods do not filter the rule using closed itemsets").
pub fn drug_adr_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> Vec<DrugAdrRule> {
    let mut out = Vec::new();
    fpgrowth(db, min_support, |s, sup| {
        if let Some(rule) = DrugAdrRule::from_itemset(s, sup, partition, db) {
            out.push(rule);
        }
    });
    out
}

/// Drug→ADR rules whose complete itemset is closed (§3.4): the supported,
/// non-spurious associations MARAS keeps (Lemma 3.4.2).
pub fn closed_drug_adr_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> Vec<DrugAdrRule> {
    closed_itemsets(db, min_support)
        .into_iter()
        .filter_map(|f| DrugAdrRule::from_itemset(&f.items, f.support, partition, db))
        .collect()
}

/// Closed drug→ADR rules with at least two drugs — the drug-drug-interaction
/// candidates the MCAC layer evaluates (§3.4 "the drug-ADR association will
/// be evaluated as long as it has more than one drug").
pub fn multi_drug_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> Vec<DrugAdrRule> {
    closed_drug_adr_rules(db, partition, min_support)
        .into_iter()
        .filter(DrugAdrRule::is_multi_drug)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::{Item, ItemSet};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    const P: ItemPartition = ItemPartition { adr_start: 10 };

    #[test]
    fn single_report_rule_explosion() {
        // Thesis §3.3: one report {d0,d1 ⇒ a10,a11} yields 9 drug-ADR
        // associations under traditional mining ((2²−1)·(2²−1)), which in our
        // accounting appear inside the 2^4−2 = 14 total splits; exactly 1
        // split is a full drug→ADR rule per mixed itemset.
        let d = db(&[&[0, 1, 10, 11]]);
        let c = count_all_rules(&d, &P, 1);
        assert_eq!(c.frequent_itemsets, 15);
        // Splits: every itemset of size>=2 contributes 2^n-2.
        // sizes: 6 pairs*2 + 4 triples*6 + 1 quad*14 = 12+24+14 = 50.
        assert_eq!(c.total_rules, 50);
        // Mixed frequent itemsets: those with >=1 drug and >=1 ADR: 2*2 + 2*1(+..)
        // count directly: subsets with d in {1,2}, a in {1,2}, both nonzero:
        // C(2,1)C(2,1)+C(2,1)C(2,2)+C(2,2)C(2,1)+C(2,2)C(2,2)=4+2+2+1=9.
        assert_eq!(c.filtered_rules, 9);
        assert_eq!(c.closed_itemsets, 1);
        assert_eq!(c.mcacs, 1);
    }

    #[test]
    fn spurious_partial_rule_removed_by_closedness() {
        // {d1 ⇒ a11} (thesis's R2 example) is a partial reading of the
        // report and must not survive as a closed association.
        let d = db(&[&[0, 1, 10, 11], &[0, 2, 10]]);
        let closed = closed_drug_adr_rules(&d, &P, 1);
        assert!(
            !closed.iter().any(|r| r.drugs == set(&[1]) && r.adrs == set(&[11])),
            "partial rule leaked: {closed:?}"
        );
        // But the explicit report itself survives.
        assert!(closed.iter().any(|r| r.drugs == set(&[0, 1]) && r.adrs == set(&[10, 11])));
        // And the implicit overlap {d0 ⇒ a10} (in both reports) survives.
        assert!(closed.iter().any(|r| r.drugs == set(&[0]) && r.adrs == set(&[10])));
    }

    #[test]
    fn unclosed_pool_is_superset_of_closed_pool() {
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 10], &[1, 11], &[2, 10, 11]]);
        let all = drug_adr_rules(&d, &P, 1);
        let closed = closed_drug_adr_rules(&d, &P, 1);
        assert!(closed.len() <= all.len());
        for c in &closed {
            assert!(
                all.iter().any(|r| r.drugs == c.drugs && r.adrs == c.adrs),
                "closed rule missing from unfiltered pool: {c}"
            );
        }
    }

    #[test]
    fn multi_drug_filter_drops_singletons() {
        let d = db(&[&[0, 10], &[0, 10], &[0, 1, 11], &[0, 1, 11]]);
        let multi = multi_drug_rules(&d, &P, 1);
        assert!(multi.iter().all(|r| r.n_drugs() >= 2));
        assert!(multi.iter().any(|r| r.drugs == set(&[0, 1])));
    }

    #[test]
    fn counts_are_monotone_reductions() {
        let d = db(&[
            &[0, 1, 10, 11],
            &[0, 2, 10],
            &[1, 2, 11, 12],
            &[0, 1, 2, 10],
            &[3, 13],
            &[0, 3, 10, 13],
        ]);
        let c = count_all_rules(&d, &P, 1);
        assert!(c.mcacs <= c.filtered_rules, "{c:?}");
        assert!(c.filtered_rules <= c.total_rules, "{c:?}");
        assert!(c.closed_itemsets <= c.frequent_itemsets, "{c:?}");
    }

    #[test]
    fn rules_have_consistent_stats() {
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 11], &[1, 10]]);
        for r in drug_adr_rules(&d, &P, 1) {
            assert_eq!(r.stats.support_a, d.support(&r.drugs) as u64);
            assert_eq!(r.stats.support_b, d.support(&r.adrs) as u64);
            assert_eq!(r.stats.support_ab, d.support(&r.complete_itemset()) as u64);
            assert!(r.stats.support_ab <= r.stats.support_a);
            assert!(r.stats.support_ab <= r.stats.support_b);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
            // Items 0..5 are drugs, 10..15 ADRs under partition P.
            proptest::collection::vec(
                proptest::collection::vec(prop_oneof![0u32..5, 10u32..15], 0..6),
                0..20,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn reductions_hold(rows in arb_rows(), ms in 1u64..3) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                let c = count_all_rules(&d, &P, ms);
                prop_assert!(c.mcacs <= c.filtered_rules);
                prop_assert!(c.filtered_rules <= c.total_rules || c.filtered_rules <= c.frequent_itemsets);
                prop_assert!(c.closed_itemsets <= c.frequent_itemsets);
                // Cross-check materialized pools against the counters.
                let closed = closed_drug_adr_rules(&d, &P, ms);
                prop_assert_eq!(
                    closed.iter().filter(|r| r.is_multi_drug()).count() as u64,
                    c.mcacs
                );
                prop_assert_eq!(drug_adr_rules(&d, &P, ms).len() as u64, c.filtered_rules);
            }

            #[test]
            fn closed_rules_are_closed(rows in arb_rows()) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                for r in closed_drug_adr_rules(&d, &P, 1) {
                    prop_assert!(d.is_closed(&r.complete_itemset()));
                }
            }
        }
    }
}
