//! Rule generation from mined itemsets, and the three rule-space sizes of
//! Fig. 5.1.
//!
//! Traditional association rule mining derives, from every frequent itemset
//! `S`, every rule `A ⇒ B` with `A ∪ B = S` and both sides non-empty — the
//! `2^|S| − 2` splits of §3.2/Formula 3.1. MARAS then (1) keeps only splits
//! with drugs as antecedent and ADRs as consequent (§3.1, "filtered rules"),
//! of which each mixed itemset has exactly one, and (2) keeps only rules
//! whose complete itemset is *closed* with ≥ 2 drugs — the MCAC target rules.

use crate::partition::ItemPartition;
use crate::rule::DrugAdrRule;
use maras_mining::{
    closed_refs, fpgrowth_into, mine_patterns_parallel, FnSink, PatternStore, TransactionDb,
};
use serde::{Deserialize, Serialize};

/// Sizes of the successively-reduced rule spaces (the three series of
/// Fig. 5.1), plus the underlying itemset counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RuleSpaceCounts {
    /// All `A ⇒ B` splits of all frequent itemsets ("Total Rules").
    pub total_rules: u64,
    /// Splits with pure drug antecedent and pure ADR consequent
    /// ("Filtered Rules"): one per mixed frequent itemset.
    pub filtered_rules: u64,
    /// Closed, mixed, multi-drug associations — the MCAC target rules.
    pub mcacs: u64,
    /// Number of frequent itemsets mined.
    pub frequent_itemsets: u64,
    /// Number of closed frequent itemsets.
    pub closed_itemsets: u64,
}

/// One quarter's complete rule space, derived from a *single* mining pass:
/// the Fig. 5.1 counters, the MCAC target rules, and the closed patterns
/// themselves (arena-backed, in descending-support presentation order).
#[derive(Debug, Clone, Default)]
pub struct RuleSpace {
    /// The three successively-reduced rule-space sizes.
    pub counts: RuleSpaceCounts,
    /// Closed, mixed, multi-drug rules — the MCAC targets, in the closed
    /// store's order.
    pub multi_drug_rules: Vec<DrugAdrRule>,
    /// Every closed frequent pattern, ordered by descending support then
    /// ascending itemset.
    pub closed: PatternStore,
}

/// Mines the quarter once (with `n_threads` workers) and derives everything
/// downstream of mining from the resulting arena: Fig. 5.1 counters, closed
/// patterns, and the multi-drug MCAC target rules. Replaces the legacy
/// arrangement where counting, closed mining, and rule generation each ran
/// their own FP-Growth pass.
pub fn rule_space(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
    n_threads: usize,
) -> RuleSpace {
    space(db, partition, min_support, n_threads, true)
}

fn space(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
    n_threads: usize,
    build_rules: bool,
) -> RuleSpace {
    let _span = maras_obs::span("rules");
    let store = mine_patterns_parallel(db, min_support, n_threads);
    let mut counts =
        RuleSpaceCounts { frequent_itemsets: store.len() as u64, ..RuleSpaceCounts::default() };
    for (items, _) in store.iter() {
        let n = items.len() as u32;
        if n >= 2 {
            counts.total_rules += (1u64 << n.min(62)) - 2;
        }
        if partition.is_mixed_items(items) {
            counts.filtered_rules += 1;
        }
    }

    let closed_span = maras_obs::span("closed");
    let mut refs = closed_refs(&store);
    refs.sort_unstable_by(|&a, &b| {
        store.support(b).cmp(&store.support(a)).then_with(|| store.items(a).cmp(store.items(b)))
    });
    drop(closed_span);
    counts.closed_itemsets = refs.len() as u64;

    let _derive = maras_obs::span("derive");
    let mut closed = PatternStore::with_capacity(refs.len(), 0);
    let mut rules = Vec::new();
    for r in refs {
        let items = store.items(r);
        let support = store.support(r);
        closed.push(items, support);
        if partition.is_mixed_items(items) && partition.drug_count_items(items) >= 2 {
            counts.mcacs += 1;
            if build_rules {
                rules.push(
                    DrugAdrRule::from_pattern(items, support, partition, db)
                        .expect("mixed pattern must yield a rule"),
                );
            }
        }
    }
    maras_obs::counter("maras_rules_mcac_total", "closed multi-drug MCAC target rules derived")
        .add(counts.mcacs);
    RuleSpace { counts, multi_drug_rules: rules, closed }
}

/// Counts the three rule spaces of Fig. 5.1 from one mining pass. Only the
/// closed patterns are materialized (in the arena); no per-pattern sets or
/// rules are built.
pub fn count_all_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> RuleSpaceCounts {
    space(db, partition, min_support, 1, false).counts
}

/// All drug→ADR rules from the *unfiltered* frequent itemsets — the
/// traditional pool Table 5.2's plain confidence/lift rankings draw from
/// ("these two methods do not filter the rule using closed itemsets").
/// Streams the pattern space; rules materialize at the sink.
pub fn drug_adr_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> Vec<DrugAdrRule> {
    let mut out = Vec::new();
    let mut sink = FnSink(|items: &[maras_mining::Item], sup| {
        if let Some(rule) = DrugAdrRule::from_pattern(items, sup, partition, db) {
            out.push(rule);
        }
    });
    fpgrowth_into(db, min_support, &mut sink);
    out
}

/// Drug→ADR rules whose complete itemset is closed (§3.4): the supported,
/// non-spurious associations MARAS keeps (Lemma 3.4.2).
pub fn closed_drug_adr_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> Vec<DrugAdrRule> {
    let (closed, _) = maras_mining::closed_patterns(db, min_support, 1);
    closed
        .iter()
        .filter_map(|(items, sup)| DrugAdrRule::from_pattern(items, sup, partition, db))
        .collect()
}

/// Closed drug→ADR rules with at least two drugs — the drug-drug-interaction
/// candidates the MCAC layer evaluates (§3.4 "the drug-ADR association will
/// be evaluated as long as it has more than one drug").
pub fn multi_drug_rules(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> Vec<DrugAdrRule> {
    rule_space(db, partition, min_support, 1).multi_drug_rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::{Item, ItemSet};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    const P: ItemPartition = ItemPartition { adr_start: 10 };

    #[test]
    fn single_report_rule_explosion() {
        // Thesis §3.3: one report {d0,d1 ⇒ a10,a11} yields 9 drug-ADR
        // associations under traditional mining ((2²−1)·(2²−1)), which in our
        // accounting appear inside the 2^4−2 = 14 total splits; exactly 1
        // split is a full drug→ADR rule per mixed itemset.
        let d = db(&[&[0, 1, 10, 11]]);
        let c = count_all_rules(&d, &P, 1);
        assert_eq!(c.frequent_itemsets, 15);
        // Splits: every itemset of size>=2 contributes 2^n-2.
        // sizes: 6 pairs*2 + 4 triples*6 + 1 quad*14 = 12+24+14 = 50.
        assert_eq!(c.total_rules, 50);
        // Mixed frequent itemsets: those with >=1 drug and >=1 ADR: 2*2 + 2*1(+..)
        // count directly: subsets with d in {1,2}, a in {1,2}, both nonzero:
        // C(2,1)C(2,1)+C(2,1)C(2,2)+C(2,2)C(2,1)+C(2,2)C(2,2)=4+2+2+1=9.
        assert_eq!(c.filtered_rules, 9);
        assert_eq!(c.closed_itemsets, 1);
        assert_eq!(c.mcacs, 1);
    }

    #[test]
    fn spurious_partial_rule_removed_by_closedness() {
        // {d1 ⇒ a11} (thesis's R2 example) is a partial reading of the
        // report and must not survive as a closed association.
        let d = db(&[&[0, 1, 10, 11], &[0, 2, 10]]);
        let closed = closed_drug_adr_rules(&d, &P, 1);
        assert!(
            !closed.iter().any(|r| r.drugs == set(&[1]) && r.adrs == set(&[11])),
            "partial rule leaked: {closed:?}"
        );
        // But the explicit report itself survives.
        assert!(closed.iter().any(|r| r.drugs == set(&[0, 1]) && r.adrs == set(&[10, 11])));
        // And the implicit overlap {d0 ⇒ a10} (in both reports) survives.
        assert!(closed.iter().any(|r| r.drugs == set(&[0]) && r.adrs == set(&[10])));
    }

    #[test]
    fn unclosed_pool_is_superset_of_closed_pool() {
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 10], &[1, 11], &[2, 10, 11]]);
        let all = drug_adr_rules(&d, &P, 1);
        let closed = closed_drug_adr_rules(&d, &P, 1);
        assert!(closed.len() <= all.len());
        for c in &closed {
            assert!(
                all.iter().any(|r| r.drugs == c.drugs && r.adrs == c.adrs),
                "closed rule missing from unfiltered pool: {c}"
            );
        }
    }

    #[test]
    fn multi_drug_filter_drops_singletons() {
        let d = db(&[&[0, 10], &[0, 10], &[0, 1, 11], &[0, 1, 11]]);
        let multi = multi_drug_rules(&d, &P, 1);
        assert!(multi.iter().all(|r| r.n_drugs() >= 2));
        assert!(multi.iter().any(|r| r.drugs == set(&[0, 1])));
    }

    #[test]
    fn counts_are_monotone_reductions() {
        let d = db(&[
            &[0, 1, 10, 11],
            &[0, 2, 10],
            &[1, 2, 11, 12],
            &[0, 1, 2, 10],
            &[3, 13],
            &[0, 3, 10, 13],
        ]);
        let c = count_all_rules(&d, &P, 1);
        assert!(c.mcacs <= c.filtered_rules, "{c:?}");
        assert!(c.filtered_rules <= c.total_rules, "{c:?}");
        assert!(c.closed_itemsets <= c.frequent_itemsets, "{c:?}");
    }

    #[test]
    fn rules_have_consistent_stats() {
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 11], &[1, 10]]);
        for r in drug_adr_rules(&d, &P, 1) {
            assert_eq!(r.stats.support_a, d.support(&r.drugs) as u64);
            assert_eq!(r.stats.support_b, d.support(&r.adrs) as u64);
            assert_eq!(r.stats.support_ab, d.support(&r.complete_itemset()) as u64);
            assert!(r.stats.support_ab <= r.stats.support_a);
            assert!(r.stats.support_ab <= r.stats.support_b);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
            // Items 0..5 are drugs, 10..15 ADRs under partition P.
            proptest::collection::vec(
                proptest::collection::vec(prop_oneof![0u32..5, 10u32..15], 0..6),
                0..20,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn reductions_hold(rows in arb_rows(), ms in 1u64..3) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                let c = count_all_rules(&d, &P, ms);
                prop_assert!(c.mcacs <= c.filtered_rules);
                prop_assert!(c.filtered_rules <= c.total_rules || c.filtered_rules <= c.frequent_itemsets);
                prop_assert!(c.closed_itemsets <= c.frequent_itemsets);
                // Cross-check materialized pools against the counters.
                let closed = closed_drug_adr_rules(&d, &P, ms);
                prop_assert_eq!(
                    closed.iter().filter(|r| r.is_multi_drug()).count() as u64,
                    c.mcacs
                );
                prop_assert_eq!(drug_adr_rules(&d, &P, ms).len() as u64, c.filtered_rules);
            }

            #[test]
            fn closed_rules_are_closed(rows in arb_rows()) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                for r in closed_drug_adr_rules(&d, &P, 1) {
                    prop_assert!(d.is_closed(&r.complete_itemset()));
                }
            }
        }
    }
}
