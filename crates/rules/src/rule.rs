//! The drug-ADR association rule (thesis §3.1).

use crate::measures::RuleStats;
use crate::partition::ItemPartition;
use maras_mining::{Item, ItemSet, TransactionDb};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A drug-ADR association `A ⇒ B` with `A ⊆ I_drug`, `B ⊆ I_ade` (§3.1),
/// carrying the counts its measures derive from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrugAdrRule {
    /// Antecedent: the drug combination.
    pub drugs: ItemSet,
    /// Consequent: the ADR set.
    pub adrs: ItemSet,
    /// Raw counts (support of rule / antecedent / consequent, and N).
    pub stats: RuleStats,
}

impl DrugAdrRule {
    /// Builds a rule from a mixed itemset, counting the antecedent and
    /// consequent supports against the database.
    ///
    /// Returns `None` if the itemset lacks either a drug or an ADR item.
    pub fn from_itemset(
        itemset: &ItemSet,
        support: u64,
        partition: &ItemPartition,
        db: &TransactionDb,
    ) -> Option<Self> {
        Self::from_pattern(itemset.items(), support, partition, db)
    }

    /// Builds a rule from a mixed pattern borrowed as a sorted item slice —
    /// the arena-store path. Owned [`ItemSet`]s are materialized here, at the
    /// final rule boundary, and nowhere upstream.
    ///
    /// Returns `None` if the slice lacks either a drug or an ADR item.
    pub fn from_pattern(
        items: &[Item],
        support: u64,
        partition: &ItemPartition,
        db: &TransactionDb,
    ) -> Option<Self> {
        if !partition.is_mixed_items(items) {
            return None;
        }
        let (drugs, adrs) = partition.split_items(items);
        let stats = RuleStats {
            support_ab: support,
            support_a: db.support_of(drugs) as u64,
            support_b: db.support_of(adrs) as u64,
            n_transactions: db.len() as u64,
        };
        Some(DrugAdrRule {
            drugs: ItemSet::from_sorted_unchecked(drugs.to_vec()),
            adrs: ItemSet::from_sorted_unchecked(adrs.to_vec()),
            stats,
        })
    }

    /// Builds a rule for an explicit (drugs, adrs) split, counting all three
    /// supports. Used for contextual sub-rules, which need not be frequent.
    pub fn from_parts(drugs: ItemSet, adrs: ItemSet, db: &TransactionDb) -> Self {
        let stats = Self::split_stats(drugs.items(), adrs.items(), db);
        DrugAdrRule { drugs, adrs, stats }
    }

    /// Builds a rule from borrowed (drugs, adrs) slices, counting all three
    /// supports without materializing the union. The MCAC context loop uses
    /// this to enumerate `2^n − 2` contextual sub-rules per cluster straight
    /// from borrowed antecedent subsets.
    pub fn from_split_slices(drugs: &[Item], adrs: &[Item], db: &TransactionDb) -> Self {
        let stats = Self::split_stats(drugs, adrs, db);
        DrugAdrRule {
            drugs: ItemSet::from_sorted_unchecked(drugs.to_vec()),
            adrs: ItemSet::from_sorted_unchecked(adrs.to_vec()),
            stats,
        }
    }

    fn split_stats(drugs: &[Item], adrs: &[Item], db: &TransactionDb) -> RuleStats {
        RuleStats {
            support_ab: db.support_of_union(drugs, adrs) as u64,
            support_a: db.support_of(drugs) as u64,
            support_b: db.support_of(adrs) as u64,
            n_transactions: db.len() as u64,
        }
    }

    /// The complete itemset `A ∪ B` of the rule (§3.4 "complete itemset").
    pub fn complete_itemset(&self) -> ItemSet {
        self.drugs.union(&self.adrs)
    }

    /// Number of drugs in the antecedent.
    pub fn n_drugs(&self) -> usize {
        self.drugs.len()
    }

    /// Whether this is a multi-drug rule (≥ 2 drugs), the only kind MARAS
    /// evaluates for drug-drug interaction (§3.4 end).
    pub fn is_multi_drug(&self) -> bool {
        self.drugs.len() >= 2
    }

    /// Confidence (Formula 2.2).
    pub fn confidence(&self) -> f64 {
        self.stats.confidence()
    }

    /// Lift (Formula 2.3).
    pub fn lift(&self) -> f64 {
        self.stats.lift()
    }

    /// Absolute support (Formula 2.1).
    pub fn support(&self) -> u64 {
        self.stats.support_ab
    }
}

impl fmt::Display for DrugAdrRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} => {} (sup={}, conf={:.3}, lift={:.2})",
            self.drugs,
            self.adrs,
            self.support(),
            self.confidence(),
            self.lift()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::Item;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn from_itemset_splits_and_counts() {
        let p = ItemPartition::new(10);
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 2], &[1, 10]]);
        let rule = DrugAdrRule::from_itemset(&set(&[0, 1, 10]), 2, &p, &d).expect("mixed itemset");
        assert_eq!(rule.drugs, set(&[0, 1]));
        assert_eq!(rule.adrs, set(&[10]));
        assert_eq!(rule.stats.support_ab, 2);
        assert_eq!(rule.stats.support_a, 2); // {0,1} in tids 0,1
        assert_eq!(rule.stats.support_b, 3); // {10} in tids 0,1,3
        assert_eq!(rule.stats.n_transactions, 4);
        assert_eq!(rule.confidence(), 1.0);
        assert!(rule.is_multi_drug());
    }

    #[test]
    fn from_itemset_rejects_pure_sets() {
        let p = ItemPartition::new(10);
        let d = db(&[&[0, 1]]);
        assert!(DrugAdrRule::from_itemset(&set(&[0, 1]), 1, &p, &d).is_none());
        assert!(DrugAdrRule::from_itemset(&set(&[10, 11]), 1, &p, &d).is_none());
        assert!(DrugAdrRule::from_itemset(&ItemSet::empty(), 0, &p, &d).is_none());
    }

    #[test]
    fn from_parts_counts_unsupported_combination() {
        // Contextual sub-rule whose drug subset never co-occurs with the ADRs.
        let d = db(&[&[0, 10], &[1, 11]]);
        let rule = DrugAdrRule::from_parts(set(&[1]), set(&[10]), &d);
        assert_eq!(rule.stats.support_ab, 0);
        assert_eq!(rule.confidence(), 0.0);
        assert_eq!(rule.lift(), 0.0);
    }

    #[test]
    fn complete_itemset_roundtrip() {
        let d = db(&[&[0, 1, 10]]);
        let rule = DrugAdrRule::from_parts(set(&[0, 1]), set(&[10]), &d);
        assert_eq!(rule.complete_itemset(), set(&[0, 1, 10]));
        assert_eq!(rule.n_drugs(), 2);
    }

    #[test]
    fn display_is_readable() {
        let d = db(&[&[0, 10]]);
        let rule = DrugAdrRule::from_parts(set(&[0]), set(&[10]), &d);
        let s = rule.to_string();
        assert!(s.contains("=>"), "{s}");
        assert!(s.contains("conf=1.000"), "{s}");
    }
}
