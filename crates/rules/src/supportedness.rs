//! Supportedness of drug-ADR associations (thesis §3.3, Defs 3.3.1–3.3.2,
//! Lemma 3.4.2).
//!
//! A drug-ADR association `R ≡ A ⇒ B` is:
//!
//! * **explicitly supported** if some report's complete item content equals
//!   `A ∪ B` (Def. 3.3.1);
//! * **implicitly supported** if `A ∪ B` is the exact shared content of
//!   several reports — the overlap corroborated by more than one report
//!   (Def. 3.3.2);
//! * **unsupported** (a *partial*, potentially misleading association)
//!   otherwise.
//!
//! ### A note on Lemma 3.4.2
//! The thesis states the lemma with the *pairwise* reading of Def. 3.3.2
//! ("two reports t₁, t₂ with `A∪B ≡ content(t₁) ∩ content(t₂)`"). Read
//! literally that lemma is false: for reports `{1,2,3}, {1,2,4}, {1,3,4}`
//! the itemset `{1}` is closed, yet every *pairwise* intersection strictly
//! contains it. The property the closedness filter actually guarantees —
//! and the one that matters for dismissing misleading rules — is the
//! *k-wise* generalization: a closed itemset is either a full report or the
//! exact intersection of **all** reports containing it (k ≥ 2 of them).
//! [`classify`] implements the k-wise reading; [`is_pairwise_implicit`]
//! implements the literal one so the distinction stays testable.

use maras_mining::{ItemSet, TransactionDb};
use maras_tidset::TidSet;
use serde::{Deserialize, Serialize};

/// How (and whether) the report database supports an association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Supportedness {
    /// Some report contains exactly these drugs and ADRs (Def. 3.3.1).
    Explicit,
    /// The itemset is the exact common content of the ≥ 2 reports containing
    /// it (k-wise Def. 3.3.2).
    Implicit,
    /// Neither: a partial association that may be misleading (§3.3 type 3).
    Unsupported,
}

/// Classifies an itemset's supportedness against the report database.
pub fn classify(itemset: &ItemSet, db: &TransactionDb) -> Supportedness {
    let cover = db.cover_tids(itemset);
    if cover.is_empty() {
        return Supportedness::Unsupported;
    }
    if cover.iter().any(|&tid| db.transaction(tid) == itemset) {
        return Supportedness::Explicit;
    }
    if cover.len() >= 2 && db.closure(itemset) == *itemset {
        return Supportedness::Implicit;
    }
    Supportedness::Unsupported
}

/// The literal (pairwise) Def. 3.3.2: some two distinct reports whose exact
/// common content is this itemset.
///
/// Every cover member contains the itemset, so for cover members `t1, t2`
/// the pairwise condition collapses to a cardinality check:
/// `content(t1) ∩ content(t2) == S  ⟺  |content(t1) ∩ content(t2)| == |S|`.
/// Each pair is answered by the capped popcount kernel, which bails out of
/// a pair the moment its running count exceeds `|S|` — no intersection is
/// ever materialized, and dense covers (where most pairs share far more
/// than `S`) exit after the first over-full word instead of finishing a
/// full merge per pair.
pub fn is_pairwise_implicit(itemset: &ItemSet, db: &TransactionDb) -> bool {
    let cover = db.cover_tids(itemset);
    let k = itemset.len() as u64;
    // Item ids are strictly ascending within a transaction, so each
    // report's content loads straight into a compressed set.
    let contents: Vec<TidSet> = cover
        .iter()
        .map(|&tid| {
            let mut s = TidSet::new();
            for item in db.transaction(tid).iter() {
                s.push_ascending(item.0);
            }
            s
        })
        .collect();
    for (i, t1) in contents.iter().enumerate() {
        for t2 in &contents[i + 1..] {
            if t1.intersect_count_capped(t2, k) == k {
                return true;
            }
        }
    }
    false
}

/// Whether the itemset is supported at all (explicitly or k-wise
/// implicitly) — the condition Lemma 3.4.2 ties to closedness.
pub fn is_supported(itemset: &ItemSet, db: &TransactionDb) -> bool {
    classify(itemset, db) != Supportedness::Unsupported
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::{closed_itemsets, Item};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn explicit_when_report_matches_exactly() {
        let d = db(&[&[0, 1, 10, 11], &[0, 2, 10]]);
        assert_eq!(classify(&set(&[0, 1, 10, 11]), &d), Supportedness::Explicit);
        assert_eq!(classify(&set(&[0, 2, 10]), &d), Supportedness::Explicit);
    }

    #[test]
    fn implicit_when_shared_by_two_reports() {
        // Thesis §3.3 example: {d1 ⇒ a2}-style partial rule becomes
        // legitimate once a second report shares exactly that content.
        let d = db(&[&[0, 1, 10, 11], &[0, 5, 6, 10]]);
        assert_eq!(classify(&set(&[0, 10]), &d), Supportedness::Implicit);
        assert!(is_pairwise_implicit(&set(&[0, 10]), &d));
    }

    #[test]
    fn partial_reading_is_unsupported() {
        // {1, 11} occurs only inside the single report {0,1,10,11}: partial.
        let d = db(&[&[0, 1, 10, 11]]);
        assert_eq!(classify(&set(&[1, 11]), &d), Supportedness::Unsupported);
        assert_eq!(classify(&set(&[0, 10]), &d), Supportedness::Unsupported);
    }

    #[test]
    fn absent_itemset_is_unsupported() {
        let d = db(&[&[0, 1]]);
        assert_eq!(classify(&set(&[7]), &d), Supportedness::Unsupported);
        assert_eq!(classify(&set(&[0, 7]), &d), Supportedness::Unsupported);
    }

    #[test]
    fn kwise_vs_pairwise_distinction() {
        // The Lemma 3.4.2 counterexample from the module docs: {1} is closed
        // and k-wise implicit, but not pairwise implicit.
        let d = db(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4]]);
        assert!(d.is_closed(&set(&[1])));
        assert_eq!(classify(&set(&[1]), &d), Supportedness::Implicit);
        assert!(!is_pairwise_implicit(&set(&[1]), &d));
    }

    #[test]
    fn lemma_3_4_2_closed_implies_supported() {
        let d = db(&[
            &[0, 1, 10, 11],
            &[0, 2, 10],
            &[1, 2, 11, 12],
            &[0, 1, 2, 10],
            &[3, 13],
            &[0, 3, 10, 13],
        ]);
        for f in closed_itemsets(&d, 1) {
            assert!(
                is_supported(&f.items, &d),
                "closed itemset {} classified unsupported",
                f.items
            );
        }
    }

    /// Regression for the old O(T²) full-merge pairwise scan: on a dense
    /// seeded quarter (hundreds of reports all covering the itemset) the
    /// capped-popcount rewrite must agree with the naive definition, in
    /// both polarities.
    #[test]
    fn pairwise_scan_on_dense_seeded_quarter_matches_naive() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2014);
        // 400 reports, every one containing {0, 10} plus scattered noise:
        // the cover of {0, 10} is all 400 reports, the regime where the
        // quadratic scan used to do ~80k full merges.
        let mut rows: Vec<Vec<u32>> = (0..400)
            .map(|_| {
                let mut t = vec![0u32, 10];
                for _ in 0..6 {
                    t.push(rng.gen_range(20..220));
                }
                t
            })
            .collect();
        let naive = |s: &ItemSet, d: &TransactionDb| {
            let cover = d.cover_tids(s);
            cover.iter().enumerate().any(|(i, &t1)| {
                cover[i + 1..]
                    .iter()
                    .any(|&t2| d.transaction(t1).intersection(d.transaction(t2)) == *s)
            })
        };
        let s = set(&[0, 10]);

        // With independent noise, some pair overlaps on exactly {0, 10}.
        let d = db(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        assert_eq!(is_pairwise_implicit(&s, &d), naive(&s, &d));
        assert!(is_pairwise_implicit(&s, &d));

        // Force every pairwise overlap strictly larger than the itemset:
        // a shared third item makes {0, 10} pairwise-unsupported.
        for t in &mut rows {
            t.push(15);
        }
        let d = db(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        assert_eq!(is_pairwise_implicit(&s, &d), naive(&s, &d));
        assert!(!is_pairwise_implicit(&s, &d));
        assert!(is_pairwise_implicit(&set(&[0, 10, 15]), &d));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
            proptest::collection::vec(proptest::collection::vec(0u32..10, 1..6), 1..20)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn closed_iff_supported(rows in arb_rows()) {
                // Lemma 3.4.2 and its converse, under the k-wise reading:
                // an itemset with non-zero support is closed exactly when it
                // is explicitly or implicitly supported.
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                for f in maras_mining::frequent_itemsets(&d, 1) {
                    let closed = d.is_closed(&f.items);
                    let supported = is_supported(&f.items, &d);
                    prop_assert_eq!(closed, supported, "itemset {}", f.items);
                }
            }

            #[test]
            fn pairwise_implicit_implies_kwise(rows in arb_rows()) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                for f in maras_mining::frequent_itemsets(&d, 1) {
                    if is_pairwise_implicit(&f.items, &d)
                        && classify(&f.items, &d) == Supportedness::Unsupported
                    {
                        // pairwise implicit must never be classified unsupported
                        prop_assert!(false, "pairwise implicit but unsupported: {}", f.items);
                    }
                }
            }
        }
    }
}
