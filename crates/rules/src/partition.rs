//! The drug/ADR partition of the item space (thesis §3.1).
//!
//! `I_drug` and `I_ade` are disjoint and together cover `I`. The workspace
//! encodes both vocabularies in one dense `u32` space with every drug id
//! strictly below every ADR id, so partitioning an itemset is a single
//! `partition_point`, and "antecedent ⊆ I_drug, consequent ⊆ I_ade" checks
//! are O(1) on the boundary items.

use maras_mining::{Item, ItemSet};
use serde::{Deserialize, Serialize};

/// The boundary between the drug and ADR halves of the item id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemPartition {
    /// First item id that denotes an ADR; all lower ids are drugs.
    pub adr_start: u32,
}

impl ItemPartition {
    /// Creates a partition with ADR ids starting at `adr_start`.
    pub fn new(adr_start: u32) -> Self {
        ItemPartition { adr_start }
    }

    /// Whether the item is a drug.
    #[inline]
    pub fn is_drug(&self, item: Item) -> bool {
        item.0 < self.adr_start
    }

    /// Whether the item is an ADR.
    #[inline]
    pub fn is_adr(&self, item: Item) -> bool {
        item.0 >= self.adr_start
    }

    /// Item id for the `i`-th drug.
    #[inline]
    pub fn drug_item(&self, drug_index: u32) -> Item {
        debug_assert!(drug_index < self.adr_start);
        Item(drug_index)
    }

    /// Item id for the `i`-th ADR.
    #[inline]
    pub fn adr_item(&self, adr_index: u32) -> Item {
        Item(self.adr_start + adr_index)
    }

    /// Dense ADR index of an ADR item.
    #[inline]
    pub fn adr_index(&self, item: Item) -> u32 {
        debug_assert!(self.is_adr(item));
        item.0 - self.adr_start
    }

    /// Splits an itemset into its (drugs, ADRs) halves.
    pub fn split(&self, itemset: &ItemSet) -> (ItemSet, ItemSet) {
        itemset.split_at_item(Item(self.adr_start))
    }

    /// Splits a sorted item slice into its (drugs, ADRs) halves as borrowed
    /// sub-slices — the zero-copy view the arena-backed pattern store makes
    /// possible.
    pub fn split_items<'a>(&self, items: &'a [Item]) -> (&'a [Item], &'a [Item]) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items not strictly ascending");
        items.split_at(items.partition_point(|&i| i.0 < self.adr_start))
    }

    /// Whether an itemset contains at least one drug and one ADR — the
    /// precondition for it to induce a drug-ADR association (§3.1).
    pub fn is_mixed(&self, itemset: &ItemSet) -> bool {
        self.is_mixed_items(itemset.items())
    }

    /// [`ItemPartition::is_mixed`] over a sorted item slice.
    pub fn is_mixed_items(&self, items: &[Item]) -> bool {
        match (items.first(), items.last()) {
            (Some(&first), Some(&last)) => self.is_drug(first) && self.is_adr(last),
            _ => false,
        }
    }

    /// Number of drug items in an itemset.
    pub fn drug_count(&self, itemset: &ItemSet) -> usize {
        self.drug_count_items(itemset.items())
    }

    /// [`ItemPartition::drug_count`] over a sorted item slice.
    pub fn drug_count_items(&self, items: &[Item]) -> usize {
        items.partition_point(|&i| i.0 < self.adr_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn classification() {
        let p = ItemPartition::new(100);
        assert!(p.is_drug(Item(0)));
        assert!(p.is_drug(Item(99)));
        assert!(p.is_adr(Item(100)));
        assert!(!p.is_adr(Item(99)));
        assert_eq!(p.adr_item(5), Item(105));
        assert_eq!(p.adr_index(Item(105)), 5);
        assert_eq!(p.drug_item(7), Item(7));
    }

    #[test]
    fn split_separates_halves() {
        let p = ItemPartition::new(10);
        let (drugs, adrs) = p.split(&set(&[1, 2, 10, 15]));
        assert_eq!(drugs, set(&[1, 2]));
        assert_eq!(adrs, set(&[10, 15]));
    }

    #[test]
    fn split_handles_pure_sets() {
        let p = ItemPartition::new(10);
        let (d, a) = p.split(&set(&[1, 2]));
        assert_eq!(d, set(&[1, 2]));
        assert!(a.is_empty());
        let (d, a) = p.split(&set(&[11, 12]));
        assert!(d.is_empty());
        assert_eq!(a, set(&[11, 12]));
    }

    #[test]
    fn mixed_detection() {
        let p = ItemPartition::new(10);
        assert!(p.is_mixed(&set(&[1, 10])));
        assert!(!p.is_mixed(&set(&[1, 2])));
        assert!(!p.is_mixed(&set(&[10, 11])));
        assert!(!p.is_mixed(&ItemSet::empty()));
    }

    #[test]
    fn drug_count_counts_prefix() {
        let p = ItemPartition::new(10);
        assert_eq!(p.drug_count(&set(&[1, 2, 3, 10, 11])), 3);
        assert_eq!(p.drug_count(&set(&[10])), 0);
        assert_eq!(p.drug_count(&set(&[1])), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn split_partitions_losslessly(ids in proptest::collection::vec(0u32..40, 0..10)) {
                let p = ItemPartition::new(20);
                let s = ItemSet::from_ids(ids);
                let (d, a) = p.split(&s);
                prop_assert_eq!(d.union(&a), s.clone());
                prop_assert!(d.intersection(&a).is_empty());
                prop_assert!(d.iter().all(|i| p.is_drug(i)));
                prop_assert!(a.iter().all(|i| p.is_adr(i)));
                prop_assert_eq!(p.drug_count(&s), d.len());
                prop_assert_eq!(p.is_mixed(&s), !d.is_empty() && !a.is_empty());
                // Slice views agree with the owned split.
                let (ds, adrs) = p.split_items(s.items());
                prop_assert_eq!(ds, d.items());
                prop_assert_eq!(adrs, a.items());
                prop_assert_eq!(p.is_mixed_items(s.items()), p.is_mixed(&s));
                prop_assert_eq!(p.drug_count_items(s.items()), p.drug_count(&s));
            }
        }
    }
}
