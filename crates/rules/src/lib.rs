//! Drug–ADR association rule model (thesis §2–3.4).
//!
//! Builds on `maras-mining` to express the paper's rule layer:
//!
//! * [`measures`] — support / confidence / lift (Formulas 2.1–2.3) and the
//!   pluggable [`measures::Measure`] the exclusiveness score later
//!   swaps between confidence and lift.
//! * [`partition`] — the drug/ADR split of the item id space
//!   (`I_drug ∩ I_ade ≡ ∅`, `I_drug ∪ I_ade ≡ I`, §3.1).
//! * [`rule`] / [`generate`] — association rules and their generation from
//!   frequent itemsets: the full `A ⇒ B` split space ("total rules" of
//!   Fig. 5.1), the drug→ADR filtered space, and the closed drug-ADR
//!   associations MARAS keeps.
//! * [`supportedness`] — the thesis's three association types (explicitly
//!   supported, implicitly supported, partial/unsupported; Defs 3.3.1–3.3.2)
//!   classified directly from reports, used to validate Lemma 3.4.2.

#![warn(missing_docs)]

pub mod generate;
pub mod measures;
pub mod partition;
pub mod rule;
pub mod supportedness;

pub use generate::{
    closed_drug_adr_rules, count_all_rules, drug_adr_rules, multi_drug_rules, rule_space,
    RuleSpace, RuleSpaceCounts,
};
pub use measures::{confidence, lift, Measure, RuleStats};
pub use partition::ItemPartition;
pub use rule::DrugAdrRule;
pub use supportedness::{classify, Supportedness};
