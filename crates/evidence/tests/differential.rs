//! Differential suite: the archive's postings-intersection cover must be
//! byte-identical to the in-memory `core::link` cover — same tids, same
//! ascending order — for **every** ranked rule, across three seeded
//! corpora and both ingestion policies (strict over clean files, lenient
//! over fault-injected files). The decoded records must equal the raw
//! quarter's reports through the same provenance.

use maras_core::config::PipelineConfig;
use maras_core::link;
use maras_core::pipeline::{AnalysisResult, Pipeline};
use maras_evidence::{build_archive, check_archive, BuildConfig, EvidenceReader};
use maras_faers::ascii::IngestOptions;
use maras_faers::{
    corrupt_quarter, FaultConfig, QuarterData, QuarterId, SynthConfig, Synthesizer, Vocabulary,
};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("maras-evid-diff-{tag}-{}.evid", std::process::id()))
}

fn run(quarter: QuarterData, dv: &Vocabulary, av: &Vocabulary) -> AnalysisResult {
    Pipeline::new(PipelineConfig::default()).run(quarter, dv, av)
}

/// Builds the archive for `result` and proves, rule by rule, that the
/// postings path reproduces the in-memory path exactly.
fn assert_archive_matches(
    tag: &str,
    result: &AnalysisResult,
    dv: &Vocabulary,
    av: &Vocabulary,
    block_size: u32,
) {
    let path = tmp_path(tag);
    let summary =
        build_archive(result, dv, av, &path, BuildConfig { block_size }).expect("build archive");
    assert_eq!(summary.n_records, result.cleaned.len());
    let checked = check_archive(&path).expect("fresh archive verifies");
    assert_eq!(checked.n_records, summary.n_records);
    assert_eq!(checked.n_blocks, summary.n_blocks);

    let reader = EvidenceReader::open(&path).expect("fresh archive opens");
    assert_eq!(reader.n_records(), result.cleaned.len());
    assert_eq!(reader.quarter(), result.quarter.id.to_string());
    assert!(!result.ranked.is_empty(), "{tag}: expected mined clusters");

    for (rank, r) in result.ranked.iter().enumerate() {
        let rule = &r.cluster.target;
        // The snapshot's spelling of the rule: uppercased canonical drug
        // names, verbatim ADR terms.
        let drugs: Vec<String> = result
            .encoded
            .names(&rule.drugs, dv, av)
            .into_iter()
            .map(|n| n.to_ascii_uppercase())
            .collect();
        let adrs = result.encoded.names(&rule.adrs, dv, av);

        let expected = link::supporting_tids(result, rule);
        let actual = reader.cover(&drugs, &adrs);
        assert_eq!(actual, expected, "{tag}: cover mismatch for rule #{rank} {drugs:?}→{adrs:?}");

        // Same records, same order, decoded from disk.
        let in_memory = link::supporting_reports(result, rule);
        let from_disk = reader.reports_for(&actual).expect("page decodes");
        assert_eq!(from_disk.len(), in_memory.len());
        for (disk, mem) in from_disk.iter().zip(&in_memory) {
            assert_eq!(disk, *mem, "{tag}: decoded record drifted");
        }

        // Case-id lookups round-trip through the case index.
        for (tid, report) in actual.iter().zip(&from_disk) {
            assert_eq!(reader.tid_of_case(report.case_id), Some(*tid));
        }
    }

    // An unknown key yields an empty cover rather than an error or a scan.
    assert!(reader.cover(&["NO-SUCH-DRUG".to_string()], &[]).is_empty());

    // Severity postings partition the records that have outcomes.
    let all_severities = reader.severity_at_least(0);
    let with_outcome = result.cleaned.iter().filter(|c| c.max_severity.is_some()).count();
    assert_eq!(all_severities.len(), with_outcome, "{tag}: severity postings incomplete");

    std::fs::remove_file(&path).ok();
}

#[test]
fn postings_cover_matches_core_link_across_seeds_and_ingest_modes() {
    for (i, seed) in [5u64, 11, 23].into_iter().enumerate() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(seed));
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1 + i as u8));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();

        // Strict leg: the pristine quarter.
        let strict = run(quarter.clone(), &dv, &av);
        assert_archive_matches(&format!("strict-{seed}"), &strict, &dv, &av, 32);

        // Lenient leg: the same quarter through fault injection and the
        // dead-letter ingest path — the archive must stay faithful to
        // whatever survived quarantine.
        let corrupted = corrupt_quarter(&quarter, &FaultConfig::new(seed, 0.03));
        let ingested = corrupted.read(&IngestOptions::lenient()).expect("lenient ingest");
        let lenient = run(ingested.data, &dv, &av);
        assert_archive_matches(&format!("lenient-{seed}"), &lenient, &dv, &av, 64);
    }
}

#[test]
fn empty_key_list_covers_every_record() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(7));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 4));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let result = run(quarter, &dv, &av);
    let path = tmp_path("empty-cover");
    build_archive(&result, &dv, &av, &path, BuildConfig::default()).unwrap();
    let reader = EvidenceReader::open(&path).unwrap();
    // Mirrors the miner's convention: an empty itemset covers all tids.
    let all = reader.cover(&[], &[]);
    assert_eq!(all, (0..result.cleaned.len() as u32).collect::<Vec<_>>());
    std::fs::remove_file(&path).ok();
}
