//! Corrupt-archive suite: damaged files must be refused with typed
//! [`EvidenceError`]s — `evidence check`, `EvidenceReader::open`, and
//! fetch paths never panic on hostile bytes.

use maras_core::config::PipelineConfig;
use maras_core::pipeline::Pipeline;
use maras_evidence::format::HEADER_LEN;
use maras_evidence::{build_archive, check_archive, BuildConfig, EvidenceError, EvidenceReader};
use maras_faers::{QuarterId, SynthConfig, Synthesizer};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("maras-evid-corrupt-{tag}-{}.evid", std::process::id()))
}

/// Builds one small pristine archive and returns its bytes.
fn pristine() -> Vec<u8> {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(3));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
    let path = tmp_path("pristine");
    build_archive(&result, &dv, &av, &path, BuildConfig { block_size: 16 }).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

fn write_variant(tag: &str, bytes: &[u8]) -> PathBuf {
    let path = tmp_path(tag);
    std::fs::write(&path, bytes).unwrap();
    path
}

/// Both entry points must refuse the file, and the error must satisfy the
/// given predicate.
fn assert_refused(tag: &str, bytes: &[u8], is_expected: impl Fn(&EvidenceError) -> bool) {
    let path = write_variant(tag, bytes);
    let open_err = EvidenceReader::open(&path).err().unwrap_or_else(|| panic!("{tag}: opened"));
    assert!(is_expected(&open_err), "{tag}: open gave {open_err}");
    let check_err = check_archive(&path).err().unwrap_or_else(|| panic!("{tag}: checked"));
    assert!(is_expected(&check_err), "{tag}: check gave {check_err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_magic_and_version_are_refused() {
    let good = pristine();

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xff;
    assert_refused("bad-magic", &bad_magic, |e| matches!(e, EvidenceError::BadMagic));

    let mut bad_version = good.clone();
    bad_version[8..12].copy_from_slice(&999u32.to_le_bytes());
    assert_refused("bad-version", &bad_version, |e| matches!(e, EvidenceError::BadVersion(999)));

    let empty: &[u8] = b"";
    assert_refused("empty", empty, |e| matches!(e, EvidenceError::Truncated));
    assert_refused("short-header", &good[..HEADER_LEN - 5], |e| {
        matches!(e, EvidenceError::Truncated)
    });
}

#[test]
fn flipped_meta_byte_is_a_checksum_mismatch() {
    let good = pristine();
    // Damage the first byte of the meta section — the header checksum
    // must catch it before anything is parsed.
    let mut bad = good.clone();
    bad[HEADER_LEN] ^= 0x01;
    assert_refused(
        "meta-flip",
        &bad,
        |e| matches!(e, EvidenceError::ChecksumMismatch { what, .. } if what == "meta"),
    );

    // Damage the stored checksum itself: same refusal.
    let mut bad_sum = good.clone();
    bad_sum[20] ^= 0x01;
    assert_refused(
        "checksum-flip",
        &bad_sum,
        |e| matches!(e, EvidenceError::ChecksumMismatch { what, .. } if what == "meta"),
    );
}

#[test]
fn truncated_meta_and_truncated_blocks_are_refused() {
    let good = pristine();
    // Cut inside the meta section.
    assert_refused("short-meta", &good[..HEADER_LEN + 10], |e| {
        matches!(e, EvidenceError::Truncated)
    });
    // Cut inside the data section: the block index promises more bytes
    // than the file holds.
    assert_refused("short-data", &good[..good.len() - 7], |e| {
        matches!(e, EvidenceError::Truncated)
    });
}

#[test]
fn flipped_block_byte_fails_check_and_fetch_but_not_open() {
    let good = pristine();
    // Damage the last byte of the last block. The meta section is intact,
    // so open succeeds — the per-block checksum catches the damage at
    // check/fetch time.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let path = write_variant("block-flip", &bad);

    let reader = EvidenceReader::open(&path).expect("meta is intact");
    let n = reader.n_records() as u32;
    let fetch_err = reader.report_by_tid(n - 1).expect_err("fetch of damaged block fails");
    assert!(
        matches!(&fetch_err, EvidenceError::ChecksumMismatch { what, .. } if what.starts_with("block")),
        "fetch gave {fetch_err}"
    );
    // The first block is undamaged and still serves.
    assert!(reader.report_by_tid(0).is_ok());

    let check_err = check_archive(&path).expect_err("check fails");
    assert!(
        matches!(&check_err, EvidenceError::ChecksumMismatch { what, .. } if what.starts_with("block")),
        "check gave {check_err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_single_byte_flip_is_refused_or_detected() {
    // Exhaustive paranoia at a coarse stride: flip one byte anywhere in
    // the file; either open/check refuses with a typed error, or (for the
    // stored-vs-actual checksum bytes themselves) the mismatch surfaces.
    // Nothing may panic.
    let good = pristine();
    let reference = check_archive(&write_variant("ref", &good)).unwrap();
    assert!(reference.n_records > 0);
    for i in (0..good.len()).step_by(211) {
        let mut bad = good.clone();
        bad[i] ^= 0xa5;
        let path = write_variant(&format!("flip-{i}"), &bad);
        match EvidenceReader::open(&path) {
            Err(_) => {}
            Ok(_) => {
                // Meta parsed — the damage must live in a data block and
                // the full check must find it.
                assert!(check_archive(&path).is_err(), "flip at {i} went undetected");
            }
        }
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(tmp_path("ref")).ok();
}
