//! Evidence store: the on-disk case archive behind the thesis's §4.1
//! drill-down ("mapping the drug-drug interactions to actual reports").
//!
//! A reviewer who sees a mined interaction must be able to pull the
//! original FAERS case reports that support it. In-memory that linkage is
//! `core::link` over a live `AnalysisResult`; at production scale the
//! quarter cannot stay resident next to the serving index, so analysis
//! time writes a **versioned columnar archive** (`MARAEVID`) and serve
//! time pages records back through a block cache:
//!
//! * [`format`] — the file layout: header, checksummed meta section,
//!   varint primitives, typed [`EvidenceError`].
//! * [`record`] — the columnar block codec for `CaseReport`s (strings are
//!   ids into a shared dictionary routed through `faers::intern`).
//! * [`postings`] — the delta-varint on-disk codec for sorted-u32
//!   postings lists; in memory they decode into `maras-tidset` hybrid
//!   sets, whose shared kernels compute a rule's cover without touching
//!   record blocks.
//! * [`build`] — [`build_archive`]: blocks + postings + case index,
//!   written atomically (tmp + rename) like the snapshot store.
//! * [`reader`] — [`EvidenceReader`]: verifies the file, keeps only the
//!   index resident, serves point and page lookups through a sharded LRU
//!   block cache; [`check_archive`] verifies every block.
//! * [`metrics`] — `maras_evidence_*` series in the shared obs registry.
//!
//! The postings cover is differential-tested byte-identical to
//! `core::link::supporting_tids` (see `tests/differential.rs`); corrupt
//! archives are refused with typed errors, never panics
//! (`tests/corrupt.rs`).

#![warn(missing_docs)]

pub mod build;
pub mod format;
pub mod metrics;
pub mod postings;
pub mod reader;
pub mod record;

pub use build::{build_archive, ArchiveSummary, BuildConfig};
pub use format::{EvidenceError, FORMAT_VERSION, MAGIC};
pub use metrics::EvidenceMetrics;
pub use reader::{check_archive, CheckReport, EvidenceReader, DEFAULT_CACHE_BLOCKS};
