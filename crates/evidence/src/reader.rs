//! Reading an archive at serve time.
//!
//! [`EvidenceReader::open`] parses and verifies the header + meta section
//! and keeps only the *index* resident (symbol dictionary, case index,
//! postings, block index) — record blocks stay on disk and are paged in
//! through a sharded LRU cache on demand. A full quarter is never
//! materialized in memory.

use crate::format::{fnv1a, Cursor, EvidenceError, FORMAT_VERSION, HEADER_LEN, MAGIC};
use crate::metrics::EvidenceMetrics;
use crate::postings::decode_postings;
use crate::record::decode_block;
use maras_faers::intern::{IStr, SymbolTable};
use maras_faers::CaseReport;
use maras_tidset::TidSet;
use rustc_hash::FxHashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default decoded-block cache capacity (blocks, not bytes).
pub const DEFAULT_CACHE_BLOCKS: usize = 64;

const N_SHARDS: usize = 8;

/// One cached decoded block plus its last-touched LRU tick.
type CacheEntry = (Arc<Vec<CaseReport>>, u64);

#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    offset: u64, // relative to the data section
    len: u64,
    checksum: u64,
    n: u32,
}

/// Sharded LRU over decoded blocks — same shape as the serve-side response
/// cache: per-shard mutex, monotone tick stamps, evict the stalest entry
/// when a shard fills.
struct BlockCache {
    shards: Vec<Mutex<FxHashMap<usize, CacheEntry>>>,
    per_shard: usize,
    tick: AtomicU64,
}

impl BlockCache {
    fn new(capacity: usize) -> BlockCache {
        let per_shard = capacity.div_ceil(N_SHARDS).max(1);
        BlockCache {
            shards: (0..N_SHARDS).map(|_| Mutex::new(FxHashMap::default())).collect(),
            per_shard,
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, block: usize) -> &Mutex<FxHashMap<usize, CacheEntry>> {
        &self.shards[block % N_SHARDS]
    }

    fn get(&self, block: usize) -> Option<Arc<Vec<CaseReport>>> {
        let mut shard = self.shard(block).lock().unwrap_or_else(|e| e.into_inner());
        let entry = shard.get_mut(&block)?;
        entry.1 = self.tick.fetch_add(1, Ordering::Relaxed);
        Some(entry.0.clone())
    }

    fn put(&self, block: usize, reports: Arc<Vec<CaseReport>>) {
        let mut shard = self.shard(block).lock().unwrap_or_else(|e| e.into_inner());
        if shard.len() >= self.per_shard && !shard.contains_key(&block) {
            if let Some((&stalest, _)) = shard.iter().min_by_key(|(_, (_, t))| *t) {
                shard.remove(&stalest);
            }
        }
        shard.insert(block, (reports, self.tick.fetch_add(1, Ordering::Relaxed)));
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }
}

/// A verified, open archive: resident index + paged record blocks.
pub struct EvidenceReader {
    file: Mutex<File>,
    data_start: u64,
    quarter: String,
    n_records: usize,
    block_size: usize,
    symbols: Vec<IStr>,
    case_index: Vec<(u64, u32)>,
    drug_postings: Vec<(String, TidSet)>,
    adr_postings: Vec<(String, TidSet)>,
    severity_postings: [TidSet; 7],
    blocks: Vec<BlockMeta>,
    cache: BlockCache,
    metrics: EvidenceMetrics,
}

fn read_exact_or_truncated(f: &mut File, buf: &mut [u8]) -> Result<(), EvidenceError> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            EvidenceError::Truncated
        } else {
            EvidenceError::Io(e)
        }
    })
}

impl EvidenceReader {
    /// Opens and verifies an archive with the default block-cache size.
    pub fn open(path: &Path) -> Result<EvidenceReader, EvidenceError> {
        EvidenceReader::open_with_cache(path, DEFAULT_CACHE_BLOCKS)
    }

    /// Opens and verifies an archive, sizing the decoded-block cache.
    pub fn open_with_cache(
        path: &Path,
        cache_blocks: usize,
    ) -> Result<EvidenceReader, EvidenceError> {
        let _span = maras_obs::span("evidence_open");
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();

        let mut header = [0u8; HEADER_LEN];
        read_exact_or_truncated(&mut file, &mut header)?;
        if &header[..8] != MAGIC {
            return Err(EvidenceError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(EvidenceError::BadVersion(version));
        }
        let meta_len = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let stored_checksum = u64::from_le_bytes(header[20..28].try_into().unwrap());
        if meta_len > file_len.saturating_sub(HEADER_LEN as u64) {
            return Err(EvidenceError::Truncated);
        }
        let mut meta = vec![0u8; meta_len as usize];
        read_exact_or_truncated(&mut file, &mut meta)?;
        let actual = fnv1a(&meta);
        if actual != stored_checksum {
            return Err(EvidenceError::ChecksumMismatch {
                what: "meta".to_string(),
                stored: stored_checksum,
                actual,
            });
        }

        let mut c = Cursor::new(&meta);
        let quarter = c.str()?.to_string();
        let n_records = c.u64()? as usize;
        let block_size = c.u32()? as usize;
        if block_size == 0 {
            return Err(EvidenceError::Corrupt("zero block size"));
        }
        let n_blocks = c.u32()? as usize;
        if n_blocks != n_records.div_ceil(block_size) {
            return Err(EvidenceError::Corrupt("block count disagrees with record count"));
        }
        let n_symbols = c.u32()? as usize;
        let mut table = SymbolTable::new();
        let mut symbols = Vec::with_capacity(n_symbols);
        for _ in 0..n_symbols {
            symbols.push(table.intern(c.str()?));
        }
        let mut case_index = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let case_id = c.u64()?;
            let tid = c.u32()?;
            if tid as usize >= n_records {
                return Err(EvidenceError::Corrupt("case-index tid out of range"));
            }
            case_index.push((case_id, tid));
        }
        if !case_index.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err(EvidenceError::Corrupt("case index not sorted"));
        }
        let read_keyed_postings =
            |c: &mut Cursor<'_>| -> Result<Vec<(String, TidSet)>, EvidenceError> {
                let n = c.u32()? as usize;
                let mut out: Vec<(String, TidSet)> = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = c.str()?.to_string();
                    let tids = decode_postings(c)?;
                    if tids.last().is_some_and(|t| t as usize >= n_records) {
                        return Err(EvidenceError::Corrupt("postings tid out of range"));
                    }
                    if out.last().is_some_and(|(k, _)| *k >= key) {
                        return Err(EvidenceError::Corrupt("postings keys not sorted"));
                    }
                    tids.record_build();
                    out.push((key, tids));
                }
                Ok(out)
            };
        let drug_postings = read_keyed_postings(&mut c)?;
        let adr_postings = read_keyed_postings(&mut c)?;
        let mut severity_postings: [TidSet; 7] = Default::default();
        for list in severity_postings.iter_mut() {
            *list = decode_postings(&mut c)?;
            if list.last().is_some_and(|t| t as usize >= n_records) {
                return Err(EvidenceError::Corrupt("severity tid out of range"));
            }
            list.record_build();
        }
        let data_start = HEADER_LEN as u64 + meta_len;
        let data_len = file_len - data_start;
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut expected_offset = 0u64;
        for b in 0..n_blocks {
            let offset = c.u64()?;
            let len = c.u64()?;
            let checksum = c.u64()?;
            let first_tid = c.u32()?;
            let n = c.u32()?;
            if offset != expected_offset
                || first_tid as usize != b * block_size
                || n == 0
                || n as usize > block_size
            {
                return Err(EvidenceError::Corrupt("invalid block index entry"));
            }
            if offset.checked_add(len).is_none_or(|end| end > data_len) {
                return Err(EvidenceError::Truncated);
            }
            expected_offset = offset + len;
            blocks.push(BlockMeta { offset, len, checksum, n });
        }
        if blocks.iter().map(|b| b.n as usize).sum::<usize>() != n_records {
            return Err(EvidenceError::Corrupt("block record counts disagree with total"));
        }
        if !c.is_exhausted() {
            return Err(EvidenceError::Corrupt("trailing bytes after meta section"));
        }

        Ok(EvidenceReader {
            file: Mutex::new(file),
            data_start,
            quarter,
            n_records,
            block_size,
            symbols,
            case_index,
            drug_postings,
            adr_postings,
            severity_postings,
            blocks,
            cache: BlockCache::new(cache_blocks),
            metrics: EvidenceMetrics::global(),
        })
    }

    /// Quarter label the archive was built from.
    pub fn quarter(&self) -> &str {
        &self.quarter
    }

    /// Records stored.
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// Decoded blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached block (hot-reload hygiene; next reads go to disk).
    pub fn clear_cache(&self) {
        for shard in &self.cache.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.metrics.cache_entries.set(self.cache.len() as f64);
    }

    fn postings_for<'a>(sorted: &'a [(String, TidSet)], key: &str) -> Option<&'a TidSet> {
        sorted.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok().map(|i| &sorted[i].1)
    }

    /// The rule cover: tids of every record containing all `drugs` and all
    /// `adrs`, ascending — the postings-intersection equivalent of
    /// `core::link::supporting_tids`, run through the shared k-way
    /// smallest-first kernel. Drug keys are matched uppercased (the
    /// snapshot's spelling); ADR terms verbatim. An unknown key yields an
    /// empty cover; no keys at all covers every record, mirroring the
    /// miner's empty-itemset convention.
    pub fn cover(&self, drugs: &[String], adrs: &[String]) -> Vec<u32> {
        self.metrics.intersections.inc();
        let mut lists: Vec<&TidSet> = Vec::with_capacity(drugs.len() + adrs.len());
        for d in drugs {
            let key = d.to_ascii_uppercase();
            match Self::postings_for(&self.drug_postings, &key) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        for a in adrs {
            match Self::postings_for(&self.adr_postings, a) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        if lists.is_empty() {
            return (0..self.n_records as u32).collect();
        }
        TidSet::intersect_k(&lists).to_vec()
    }

    /// Tids whose most severe outcome is at least `min` (severity scale
    /// 0–6), ascending — the union of the matching severity postings.
    pub fn severity_at_least(&self, min: u8) -> Vec<u32> {
        let mut acc = TidSet::new();
        for (_, list) in
            self.severity_postings.iter().enumerate().filter(|&(sev, _)| sev as u8 >= min)
        {
            acc = acc.union(list);
        }
        acc.to_vec()
    }

    fn fetch_block(&self, block: usize) -> Result<Arc<Vec<CaseReport>>, EvidenceError> {
        if let Some(hit) = self.cache.get(block) {
            self.metrics.cache_hits.inc();
            return Ok(hit);
        }
        self.metrics.cache_misses.inc();
        let meta = self.blocks.get(block).ok_or(EvidenceError::Corrupt("block out of range"))?;
        let read_start = Instant::now();
        let mut bytes = vec![0u8; meta.len as usize];
        {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            file.seek(SeekFrom::Start(self.data_start + meta.offset))?;
            read_exact_or_truncated(&mut file, &mut bytes)?;
        }
        self.metrics.block_read_us.observe(read_start.elapsed().as_secs_f64() * 1e6);
        let actual = fnv1a(&bytes);
        if actual != meta.checksum {
            return Err(EvidenceError::ChecksumMismatch {
                what: format!("block {block}"),
                stored: meta.checksum,
                actual,
            });
        }
        let decode_start = Instant::now();
        let reports = Arc::new(decode_block(&bytes, meta.n as usize, &self.symbols)?);
        self.metrics.block_decode_us.observe(decode_start.elapsed().as_secs_f64() * 1e6);
        self.cache.put(block, reports.clone());
        self.metrics.cache_entries.set(self.cache.len() as f64);
        Ok(reports)
    }

    /// Fetches one record by tid.
    pub fn report_by_tid(&self, tid: u32) -> Result<CaseReport, EvidenceError> {
        if tid as usize >= self.n_records {
            return Err(EvidenceError::Corrupt("tid out of range"));
        }
        let block = tid as usize / self.block_size;
        let reports = self.fetch_block(block)?;
        Ok(reports[tid as usize % self.block_size].clone())
    }

    /// Tid of a FAERS case id, if the case is in the archive.
    pub fn tid_of_case(&self, case_id: u64) -> Option<u32> {
        self.case_index
            .binary_search_by_key(&case_id, |&(id, _)| id)
            .ok()
            .map(|i| self.case_index[i].1)
    }

    /// Fetches one record by FAERS case id.
    pub fn report_by_case_id(&self, case_id: u64) -> Result<Option<CaseReport>, EvidenceError> {
        match self.tid_of_case(case_id) {
            None => Ok(None),
            Some(tid) => Ok(Some(self.report_by_tid(tid)?)),
        }
    }

    /// Fetches the records for a page of tids, in the given order.
    pub fn reports_for(&self, tids: &[u32]) -> Result<Vec<CaseReport>, EvidenceError> {
        tids.iter().map(|&t| self.report_by_tid(t)).collect()
    }
}

/// What `evidence check` verified.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Quarter label.
    pub quarter: String,
    /// Records stored.
    pub n_records: usize,
    /// Blocks verified (checksum + full decode).
    pub n_blocks: usize,
    /// Dictionary size.
    pub n_symbols: usize,
    /// Drug postings keys.
    pub n_drug_keys: usize,
    /// ADR postings keys.
    pub n_adr_keys: usize,
}

/// Verifies an entire archive: header, meta checksum, index invariants and
/// every block's checksum + decode. Returns a typed error on the first
/// problem found — never panics on corrupt input.
pub fn check_archive(path: &Path) -> Result<CheckReport, EvidenceError> {
    let _span = maras_obs::span("evidence_check");
    let reader = EvidenceReader::open_with_cache(path, 1)?;
    let mut seen = 0usize;
    for block in 0..reader.blocks.len() {
        let reports = reader.fetch_block(block)?;
        seen += reports.len();
    }
    if seen != reader.n_records {
        return Err(EvidenceError::Corrupt("decoded record count disagrees with meta"));
    }
    Ok(CheckReport {
        quarter: reader.quarter.clone(),
        n_records: reader.n_records,
        n_blocks: reader.blocks.len(),
        n_symbols: reader.symbols.len(),
        n_drug_keys: reader.drug_postings.len(),
        n_adr_keys: reader.adr_postings.len(),
    })
}
