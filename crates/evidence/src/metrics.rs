//! `maras_evidence_*` instrumentation, registered in a `maras-obs`
//! registry so the series ride the existing `/metrics` exposition.

use maras_obs::{Counter, Gauge, Histogram, Registry};

/// Microsecond buckets for block read/decode — point lookups should sit in
/// the low hundreds of microseconds cold and single digits cached.
pub const EVIDENCE_LATENCY_BUCKETS_US: [f64; 10] =
    [10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0];

/// Handles to the evidence reader's metric series.
#[derive(Clone)]
pub struct EvidenceMetrics {
    /// Block-cache hits.
    pub cache_hits: Counter,
    /// Block-cache misses (each miss costs one disk read + decode).
    pub cache_misses: Counter,
    /// Decoded blocks currently resident in the cache.
    pub cache_entries: Gauge,
    /// Wall time of the disk read for one block, µs.
    pub block_read_us: Histogram,
    /// Wall time of decoding one block, µs.
    pub block_decode_us: Histogram,
    /// Postings intersections performed (one per cover computation).
    pub intersections: Counter,
}

impl EvidenceMetrics {
    /// Registers (or re-acquires) the series in `reg`.
    pub fn register(reg: &Registry) -> EvidenceMetrics {
        EvidenceMetrics {
            cache_hits: reg
                .counter("maras_evidence_block_cache_hits_total", "evidence block-cache hits"),
            cache_misses: reg.counter(
                "maras_evidence_block_cache_misses_total",
                "evidence block-cache misses (disk read + decode)",
            ),
            cache_entries: reg.gauge(
                "maras_evidence_block_cache_entries",
                "decoded evidence blocks resident in the cache",
            ),
            block_read_us: reg.histogram(
                "maras_evidence_block_read_us",
                "evidence block disk-read wall time in microseconds",
                &EVIDENCE_LATENCY_BUCKETS_US,
            ),
            block_decode_us: reg.histogram(
                "maras_evidence_block_decode_us",
                "evidence block decode wall time in microseconds",
                &EVIDENCE_LATENCY_BUCKETS_US,
            ),
            intersections: reg.counter(
                "maras_evidence_intersections_total",
                "postings intersections computed for rule covers",
            ),
        }
    }

    /// Registers the series in the process-global registry (what `/metrics`
    /// exposes).
    pub fn global() -> EvidenceMetrics {
        EvidenceMetrics::register(maras_obs::registry())
    }
}
