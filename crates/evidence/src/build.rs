//! Writing an archive from a finished analysis.
//!
//! Record `tid` of the archive is exactly transaction `tid` of the mined
//! database: the kept (deduplicated) version of the case, pulled from the
//! raw quarter through the pipeline's `source_indices` provenance. That
//! alignment is what lets a postings intersection reproduce
//! `core::link::supporting_reports` byte-for-byte.

use crate::format::{
    fnv1a, put_str, put_u32, put_u64, EvidenceError, DEFAULT_BLOCK_SIZE, FORMAT_VERSION, MAGIC,
};
use crate::postings::encode_postings;
use crate::record::encode_block;
use maras_core::pipeline::AnalysisResult;
use maras_faers::Vocabulary;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Build-time knobs.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Records per block.
    pub block_size: u32,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig { block_size: DEFAULT_BLOCK_SIZE }
    }
}

/// What `build_archive` wrote — the numbers `evidence build` prints and the
/// bench records.
#[derive(Debug, Clone)]
pub struct ArchiveSummary {
    /// Records (== mined transactions) stored.
    pub n_records: usize,
    /// Data blocks written.
    pub n_blocks: usize,
    /// Distinct strings in the shared dictionary.
    pub n_symbols: usize,
    /// Distinct drug postings keys.
    pub n_drug_keys: usize,
    /// Distinct ADR postings keys.
    pub n_adr_keys: usize,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Bytes of the data section alone (blocks, without meta).
    pub data_bytes: u64,
}

/// Builds and atomically writes the evidence archive for an analysis run.
pub fn build_archive(
    result: &AnalysisResult,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
    path: &Path,
    config: BuildConfig,
) -> Result<ArchiveSummary, EvidenceError> {
    let _span = maras_obs::span("evidence_build");
    let block_size = config.block_size.max(1) as usize;
    let n_records = result.cleaned.len();

    // The stored records, in tid order.
    let records: Vec<&maras_faers::CaseReport> =
        result.encoded.source_indices.iter().map(|&idx| &result.quarter.reports[idx]).collect();

    // Shared string dictionary: first occurrence wins the id.
    let mut sym_ids: FxHashMap<String, u32> = FxHashMap::default();
    let mut symbols: Vec<String> = Vec::new();
    let mut sym = |s: &str| -> u32 {
        if let Some(&id) = sym_ids.get(s) {
            return id;
        }
        let id = symbols.len() as u32;
        symbols.push(s.to_string());
        sym_ids.insert(s.to_string(), id);
        id
    };

    // Encode blocks first; the meta section needs their sizes/checksums.
    let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(n_records.div_ceil(block_size));
    for chunk in records.chunks(block_size) {
        blocks.push(encode_block(chunk, &mut sym));
    }

    // Postings over canonical names, from the cleaned (mined) view. Drug
    // keys are uppercased to match the snapshot's cluster entries; ADR
    // terms are stored verbatim.
    let mut drug_postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    let mut adr_postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    let mut severity_postings: [Vec<u32>; 7] = Default::default();
    for (tid, cleaned) in result.cleaned.iter().enumerate() {
        let tid = tid as u32;
        for &d in &cleaned.drug_ids {
            let key = drug_vocab.term(d).to_ascii_uppercase();
            drug_postings.entry(key).or_default().push(tid);
        }
        for &a in &cleaned.adr_ids {
            let key = adr_vocab.term(a).to_string();
            adr_postings.entry(key).or_default().push(tid);
        }
        if let Some(o) = cleaned.max_severity {
            severity_postings[o.severity() as usize].push(tid);
        }
    }
    // Tids were appended in ascending order; uppercasing could merge two
    // vocabulary entries onto one key, so normalize defensively.
    for list in drug_postings.values_mut().chain(adr_postings.values_mut()) {
        list.dedup();
    }

    // Case index: sorted (case_id, tid) pairs for /report/CASEID lookups.
    let mut case_index: Vec<(u64, u32)> =
        result.encoded.case_ids.iter().enumerate().map(|(tid, &id)| (id, tid as u32)).collect();
    case_index.sort_unstable();

    // Meta section.
    let mut meta = Vec::new();
    put_str(&mut meta, &result.quarter.id.to_string());
    put_u64(&mut meta, n_records as u64);
    put_u32(&mut meta, block_size as u32);
    put_u32(&mut meta, blocks.len() as u32);
    put_u32(&mut meta, symbols.len() as u32);
    for s in &symbols {
        put_str(&mut meta, s);
    }
    for &(case_id, tid) in &case_index {
        put_u64(&mut meta, case_id);
        put_u32(&mut meta, tid);
    }
    put_u32(&mut meta, drug_postings.len() as u32);
    for (key, tids) in &drug_postings {
        put_str(&mut meta, key);
        encode_postings(&mut meta, tids);
    }
    put_u32(&mut meta, adr_postings.len() as u32);
    for (key, tids) in &adr_postings {
        put_str(&mut meta, key);
        encode_postings(&mut meta, tids);
    }
    for tids in &severity_postings {
        encode_postings(&mut meta, tids);
    }
    // Block index: offsets are relative to the start of the data section.
    let mut offset = 0u64;
    for (b, block) in blocks.iter().enumerate() {
        put_u64(&mut meta, offset);
        put_u64(&mut meta, block.len() as u64);
        put_u64(&mut meta, fnv1a(block));
        put_u32(&mut meta, (b * block_size) as u32);
        put_u32(&mut meta, records[b * block_size..].len().min(block_size) as u32);
        offset += block.len() as u64;
    }
    let data_bytes = offset;

    // Header + atomic tmp→rename write, like the snapshot store.
    let mut file_buf =
        Vec::with_capacity(crate::format::HEADER_LEN + meta.len() + data_bytes as usize);
    file_buf.extend_from_slice(MAGIC);
    file_buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file_buf.extend_from_slice(&(meta.len() as u64).to_le_bytes());
    file_buf.extend_from_slice(&fnv1a(&meta).to_le_bytes());
    file_buf.extend_from_slice(&meta);
    for block in &blocks {
        file_buf.extend_from_slice(block);
    }

    let tmp = path.with_extension("evid.tmp");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = File::create(&tmp)?;
    f.write_all(&file_buf)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;

    maras_obs::Event::new(maras_obs::Level::Info, "evidence.build")
        .field("quarter", result.quarter.id.to_string())
        .field("records", n_records)
        .field("blocks", blocks.len())
        .field("file_bytes", file_buf.len())
        .emit();
    Ok(ArchiveSummary {
        n_records,
        n_blocks: blocks.len(),
        n_symbols: symbols.len(),
        n_drug_keys: drug_postings.len(),
        n_adr_keys: adr_postings.len(),
        file_bytes: file_buf.len() as u64,
        data_bytes,
    })
}
