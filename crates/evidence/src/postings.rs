//! Sorted-u32 postings lists: delta encoding and the k-way intersection
//! kernel that computes a rule's cover without scanning the archive.
//!
//! Lists are stored delta-encoded (first value absolute, then gaps) as
//! varints — tid lists for common drugs are dense, so most gaps fit one
//! byte. Intersection starts from the shortest list and galloping-searches
//! each candidate through the remaining lists, which keeps the cost near
//! `|shortest| · k · log` instead of the sum of all list lengths.

use crate::format::{put_varint, Cursor, EvidenceError};

/// Appends a sorted tid list, delta-encoded.
pub fn encode_postings(buf: &mut Vec<u8>, tids: &[u32]) {
    put_varint(buf, tids.len() as u64);
    let mut prev = 0u32;
    for (i, &tid) in tids.iter().enumerate() {
        let delta = if i == 0 { tid } else { tid - prev };
        put_varint(buf, u64::from(delta));
        prev = tid;
    }
}

/// Decodes a delta-encoded tid list; enforces strictly ascending order.
pub fn decode_postings(c: &mut Cursor<'_>) -> Result<Vec<u32>, EvidenceError> {
    let n = c.varint()? as usize;
    let mut tids = Vec::with_capacity(n.min(1 << 20));
    let mut prev: u64 = 0;
    for i in 0..n {
        let delta = c.varint()?;
        let tid = if i == 0 { delta } else { prev + delta };
        if tid > u64::from(u32::MAX) || (i > 0 && delta == 0) {
            return Err(EvidenceError::Corrupt("postings list not strictly ascending u32"));
        }
        tids.push(tid as u32);
        prev = tid;
    }
    Ok(tids)
}

/// Galloping (exponential + binary) search: smallest index in `list` with
/// `list[i] >= target`, starting the probe at `from`.
fn gallop(list: &[u32], from: usize, target: u32) -> usize {
    let mut step = 1;
    let mut hi = from;
    while hi < list.len() && list[hi] < target {
        hi += step;
        step <<= 1;
    }
    let lo = hi.saturating_sub(step >> 1).max(from);
    let hi = hi.min(list.len());
    lo + list[lo..hi].partition_point(|&v| v < target)
}

/// Intersects `k` sorted postings lists. With no lists the intersection is
/// undefined here and returns empty — callers that need the "empty itemset
/// covers everything" convention handle it before calling.
pub fn intersect_k(lists: &[&[u32]]) -> Vec<u32> {
    let Some(shortest_at) = (0..lists.len()).min_by_key(|&i| lists[i].len()) else {
        return Vec::new();
    };
    let shortest = lists[shortest_at];
    if shortest.is_empty() {
        return Vec::new();
    }
    let others: Vec<&[u32]> =
        lists.iter().enumerate().filter(|&(i, _)| i != shortest_at).map(|(_, l)| *l).collect();
    let mut positions = vec![0usize; others.len()];
    let mut out = Vec::with_capacity(shortest.len());
    'candidates: for &tid in shortest.iter() {
        for (list, pos) in others.iter().zip(positions.iter_mut()) {
            let at = gallop(list, *pos, tid);
            *pos = at;
            if at == list.len() {
                break 'candidates;
            }
            if list[at] != tid {
                continue 'candidates;
            }
        }
        out.push(tid);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tids: &[u32]) -> Vec<u32> {
        let mut buf = Vec::new();
        encode_postings(&mut buf, tids);
        let mut c = Cursor::new(&buf);
        let out = decode_postings(&mut c).unwrap();
        assert!(c.is_exhausted());
        out
    }

    #[test]
    fn postings_roundtrip() {
        assert_eq!(roundtrip(&[]), Vec::<u32>::new());
        assert_eq!(roundtrip(&[0]), vec![0]);
        assert_eq!(
            roundtrip(&[0, 1, 2, 500, 10_000, u32::MAX]),
            vec![0, 1, 2, 500, 10_000, u32::MAX]
        );
    }

    #[test]
    fn decode_rejects_unsorted() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 5);
        put_varint(&mut buf, 0); // zero gap == duplicate tid
        put_varint(&mut buf, 1);
        assert!(matches!(decode_postings(&mut Cursor::new(&buf)), Err(EvidenceError::Corrupt(_))));
    }

    fn naive(lists: &[&[u32]]) -> Vec<u32> {
        let Some((first, rest)) = lists.split_first() else {
            return Vec::new();
        };
        first.iter().copied().filter(|t| rest.iter().all(|l| l.contains(t))).collect()
    }

    #[test]
    fn intersect_matches_naive() {
        let a: Vec<u32> = (0..200).step_by(2).collect();
        let b: Vec<u32> = (0..200).step_by(3).collect();
        let c: Vec<u32> = (0..200).step_by(5).collect();
        for lists in [
            vec![&a[..], &b[..]],
            vec![&a[..], &b[..], &c[..]],
            vec![&c[..], &b[..], &a[..]],
            vec![&a[..]],
            vec![&a[..], &[][..]],
        ] {
            assert_eq!(intersect_k(&lists), naive(&lists), "{lists:?}");
        }
        assert_eq!(intersect_k(&[]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_seeded_fuzz_matches_naive() {
        // Cheap xorshift so the test stays deterministic without rand.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |m: u32| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % u64::from(m)) as u32
        };
        for _ in 0..50 {
            let k = 2 + next(3) as usize;
            let lists: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let n = next(40) as usize;
                    let mut v: Vec<u32> = (0..n).map(|_| next(60)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            assert_eq!(intersect_k(&refs), naive(&refs));
        }
    }
}
