//! Sorted-u32 postings lists: the on-disk delta-varint codec.
//!
//! Lists are *stored* delta-encoded (first value absolute, then gaps) as
//! varints — tid lists for common drugs are dense, so most gaps fit one
//! byte, and the archive's meta section stays small. In memory they
//! decode straight into hybrid [`TidSet`]s, and all cover computation
//! goes through the shared `maras-tidset` kernels (the crate-local
//! galloping `intersect_k` this module used to carry is gone).

use crate::format::{put_varint, Cursor, EvidenceError};
use maras_tidset::TidSet;

/// Appends a sorted tid list, delta-encoded.
pub fn encode_postings(buf: &mut Vec<u8>, tids: &[u32]) {
    put_varint(buf, tids.len() as u64);
    let mut prev = 0u32;
    for (i, &tid) in tids.iter().enumerate() {
        let delta = if i == 0 { tid } else { tid - prev };
        put_varint(buf, u64::from(delta));
        prev = tid;
    }
}

/// Decodes a delta-encoded tid list into a compressed set; enforces
/// strictly ascending order.
pub fn decode_postings(c: &mut Cursor<'_>) -> Result<TidSet, EvidenceError> {
    let n = c.varint()? as usize;
    let mut tids = TidSet::new();
    let mut prev: u64 = 0;
    for i in 0..n {
        let delta = c.varint()?;
        let tid = if i == 0 { delta } else { prev + delta };
        if tid > u64::from(u32::MAX) || (i > 0 && delta == 0) {
            return Err(EvidenceError::Corrupt("postings list not strictly ascending u32"));
        }
        tids.push_ascending(tid as u32);
        prev = tid;
    }
    Ok(tids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tids: &[u32]) -> Vec<u32> {
        let mut buf = Vec::new();
        encode_postings(&mut buf, tids);
        let mut c = Cursor::new(&buf);
        let out = decode_postings(&mut c).unwrap();
        assert!(c.is_exhausted());
        out.to_vec()
    }

    #[test]
    fn postings_roundtrip() {
        assert_eq!(roundtrip(&[]), Vec::<u32>::new());
        assert_eq!(roundtrip(&[0]), vec![0]);
        assert_eq!(
            roundtrip(&[0, 1, 2, 500, 10_000, u32::MAX]),
            vec![0, 1, 2, 500, 10_000, u32::MAX]
        );
        // A dense run lands in a bitmap container and still round-trips.
        let dense: Vec<u32> = (0..6000).collect();
        assert_eq!(roundtrip(&dense), dense);
    }

    #[test]
    fn decode_rejects_unsorted() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 3);
        put_varint(&mut buf, 5);
        put_varint(&mut buf, 0); // zero gap == duplicate tid
        put_varint(&mut buf, 1);
        assert!(matches!(decode_postings(&mut Cursor::new(&buf)), Err(EvidenceError::Corrupt(_))));
    }
}
