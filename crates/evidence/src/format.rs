//! The `MARAEVID` on-disk layout: primitives shared by the writer and the
//! reader.
//!
//! File shape (all integers little-endian):
//!
//! ```text
//! +------------------+----------------------------------------------------+
//! | header (28 B)    | magic "MARAEVID" · format version u32 ·            |
//! |                  | meta length u64 · meta FNV-1a checksum u64         |
//! | meta section     | quarter · record/block geometry · symbol table ·   |
//! |                  | case index · drug/ADR/severity postings ·          |
//! |                  | block index (offset, length, checksum per block)   |
//! | data section     | fixed-size record blocks, varint-packed columns    |
//! +------------------+----------------------------------------------------+
//! ```
//!
//! The meta section is covered by the header checksum; each data block is
//! covered by its own checksum stored in the (checksummed) block index, so
//! any single flipped byte anywhere in the file is detected before a record
//! is handed to a caller. Every decode path returns [`EvidenceError`] —
//! corrupt input must never panic.

use std::fmt;
use std::io;

/// File magic: 8 bytes at offset 0.
pub const MAGIC: &[u8; 8] = b"MARAEVID";

/// Bumped on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Header bytes before the meta section: magic + version + len + checksum.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Default records per block. Small enough that a point lookup decodes a
/// bounded slice, large enough that varint packing and the shared symbol
/// table amortize.
pub const DEFAULT_BLOCK_SIZE: u32 = 256;

/// FNV-1a 64-bit hash — same checksum the snapshot store uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Why an archive was refused or a record could not be produced.
#[derive(Debug)]
pub enum EvidenceError {
    /// Underlying I/O failure (open, read, write, rename).
    Io(io::Error),
    /// The file does not start with `MARAEVID`.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// The file ends before a declared section does.
    Truncated,
    /// A checksum mismatch; `what` names the damaged section.
    ChecksumMismatch {
        /// Which section failed verification (`"meta"` or `"block N"`).
        what: String,
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed over the bytes actually read.
        actual: u64,
    },
    /// Structurally invalid contents (bad enum code, out-of-range id, …).
    Corrupt(&'static str),
}

impl fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvidenceError::Io(e) => write!(f, "evidence archive I/O error: {e}"),
            EvidenceError::BadMagic => write!(f, "not an evidence archive (bad magic)"),
            EvidenceError::BadVersion(v) => {
                write!(f, "unsupported evidence format version {v} (expected {FORMAT_VERSION})")
            }
            EvidenceError::Truncated => write!(f, "evidence archive is truncated"),
            EvidenceError::ChecksumMismatch { what, stored, actual } => write!(
                f,
                "evidence archive checksum mismatch in {what}: stored {stored:#018x}, actual {actual:#018x}"
            ),
            EvidenceError::Corrupt(what) => write!(f, "evidence archive is corrupt: {what}"),
        }
    }
}

impl std::error::Error for EvidenceError {}

impl From<io::Error> for EvidenceError {
    fn from(e: io::Error) -> Self {
        EvidenceError::Io(e)
    }
}

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a `u32` LE.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` LE.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over a decoded byte buffer. Every accessor returns
/// `Truncated` instead of slicing past the end.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EvidenceError> {
        let end = self.pos.checked_add(n).ok_or(EvidenceError::Truncated)?;
        if end > self.buf.len() {
            return Err(EvidenceError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, EvidenceError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` LE.
    pub fn u32(&mut self) -> Result<u32, EvidenceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` LE.
    pub fn u64(&mut self) -> Result<u64, EvidenceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a LEB128 varint (max 10 bytes).
    pub fn varint(&mut self) -> Result<u64, EvidenceError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(EvidenceError::Corrupt("varint longer than 10 bytes"))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, EvidenceError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| EvidenceError::Corrupt("non-UTF-8 string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.varint().unwrap(), v);
            assert!(c.is_exhausted());
        }
    }

    #[test]
    fn varint_rejects_overlong_encoding() {
        let buf = [0x80u8; 11];
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.varint(), Err(EvidenceError::Corrupt(_))));
    }

    #[test]
    fn cursor_reports_truncation() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        buf.truncate(buf.len() - 2);
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.str(), Err(EvidenceError::Truncated)));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a 64 of the empty string is the offset basis; "a" is a
        // published reference value.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
