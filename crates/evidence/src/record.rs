//! Varint-packed columnar block codec for [`CaseReport`]s.
//!
//! A block holds up to `block_size` consecutive records. Fixed-width
//! demographics/outcome columns come first (case id, version, report type,
//! sex, age, weight, country, event date — one column at a time, so runs of
//! similar values pack tightly), then a variable-length payload per record
//! (drug entries, reaction terms, outcome codes). Strings never appear in a
//! block: drugs, reactions and countries are symbol ids into the archive's
//! shared dictionary, interned through `faers::intern` on decode.

use crate::format::{put_varint, Cursor, EvidenceError};
use maras_faers::intern::IStr;
use maras_faers::model::{CaseReport, DrugEntry, DrugRole, Outcome, ReportType, Sex};

fn report_type_code(t: ReportType) -> u8 {
    match t {
        ReportType::Expedited => 0,
        ReportType::Periodic => 1,
        ReportType::Direct => 2,
    }
}

fn report_type_from(code: u8) -> Result<ReportType, EvidenceError> {
    match code {
        0 => Ok(ReportType::Expedited),
        1 => Ok(ReportType::Periodic),
        2 => Ok(ReportType::Direct),
        _ => Err(EvidenceError::Corrupt("unknown report-type code")),
    }
}

fn sex_code(s: Sex) -> u8 {
    match s {
        Sex::Female => 0,
        Sex::Male => 1,
        Sex::Unknown => 2,
    }
}

fn sex_from(code: u8) -> Result<Sex, EvidenceError> {
    match code {
        0 => Ok(Sex::Female),
        1 => Ok(Sex::Male),
        2 => Ok(Sex::Unknown),
        _ => Err(EvidenceError::Corrupt("unknown sex code")),
    }
}

fn role_code(r: DrugRole) -> u8 {
    match r {
        DrugRole::PrimarySuspect => 0,
        DrugRole::SecondarySuspect => 1,
        DrugRole::Concomitant => 2,
        DrugRole::Interacting => 3,
    }
}

fn role_from(code: u8) -> Result<DrugRole, EvidenceError> {
    match code {
        0 => Ok(DrugRole::PrimarySuspect),
        1 => Ok(DrugRole::SecondarySuspect),
        2 => Ok(DrugRole::Concomitant),
        3 => Ok(DrugRole::Interacting),
        _ => Err(EvidenceError::Corrupt("unknown drug-role code")),
    }
}

fn outcome_code(o: Outcome) -> u8 {
    // Index into `Outcome::ALL` — stable as long as ALL is.
    Outcome::ALL.iter().position(|&x| x == o).unwrap() as u8
}

fn outcome_from(code: u8) -> Result<Outcome, EvidenceError> {
    Outcome::ALL.get(code as usize).copied().ok_or(EvidenceError::Corrupt("unknown outcome code"))
}

fn put_opt_f32(buf: &mut Vec<u8>, v: Option<f32>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_varint(buf, u64::from(x.to_bits()));
        }
    }
}

fn opt_f32(c: &mut Cursor<'_>) -> Result<Option<f32>, EvidenceError> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let bits = c.varint()?;
            let bits =
                u32::try_from(bits).map_err(|_| EvidenceError::Corrupt("f32 bits overflow"))?;
            Ok(Some(f32::from_bits(bits)))
        }
        _ => Err(EvidenceError::Corrupt("bad Option tag")),
    }
}

fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_varint(buf, u64::from(x));
        }
    }
}

fn opt_u32(c: &mut Cursor<'_>) -> Result<Option<u32>, EvidenceError> {
    match c.u8()? {
        0 => Ok(None),
        1 => {
            let v = c.varint()?;
            let v = u32::try_from(v).map_err(|_| EvidenceError::Corrupt("u32 overflow"))?;
            Ok(Some(v))
        }
        _ => Err(EvidenceError::Corrupt("bad Option tag")),
    }
}

/// Encodes a block of records. `sym` maps a string to its dictionary id;
/// the builder guarantees every string is present.
pub fn encode_block(reports: &[&CaseReport], mut sym: impl FnMut(&str) -> u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(reports.len() * 48);
    for r in reports {
        put_varint(&mut buf, r.case_id);
    }
    for r in reports {
        put_varint(&mut buf, u64::from(r.version));
    }
    for r in reports {
        buf.push(report_type_code(r.report_type));
    }
    for r in reports {
        buf.push(sex_code(r.sex));
    }
    for r in reports {
        put_opt_f32(&mut buf, r.age);
    }
    for r in reports {
        put_opt_f32(&mut buf, r.weight_kg);
    }
    for r in reports {
        put_varint(&mut buf, u64::from(sym(&r.country)));
    }
    for r in reports {
        put_opt_u32(&mut buf, r.event_date);
    }
    for r in reports {
        put_varint(&mut buf, r.drugs.len() as u64);
        for d in &r.drugs {
            put_varint(&mut buf, u64::from(sym(&d.name)));
            buf.push(role_code(d.role));
        }
        put_varint(&mut buf, r.reactions.len() as u64);
        for reac in &r.reactions {
            put_varint(&mut buf, u64::from(sym(reac)));
        }
        put_varint(&mut buf, r.outcomes.len() as u64);
        for &o in &r.outcomes {
            buf.push(outcome_code(o));
        }
    }
    buf
}

/// Bound on per-record collection lengths inside one block — a corrupt
/// varint must not cause a huge allocation before the next read fails.
const MAX_INLINE_LEN: u64 = 1 << 16;

fn checked_len(c: &mut Cursor<'_>) -> Result<usize, EvidenceError> {
    let n = c.varint()?;
    if n > MAX_INLINE_LEN {
        return Err(EvidenceError::Corrupt("implausible in-record collection length"));
    }
    Ok(n as usize)
}

/// Decodes a block of exactly `n` records against the symbol dictionary.
pub fn decode_block(
    bytes: &[u8],
    n: usize,
    symbols: &[IStr],
) -> Result<Vec<CaseReport>, EvidenceError> {
    let lookup = |id: u64| -> Result<IStr, EvidenceError> {
        symbols
            .get(usize::try_from(id).map_err(|_| EvidenceError::Corrupt("symbol id overflow"))?)
            .cloned()
            .ok_or(EvidenceError::Corrupt("symbol id out of range"))
    };
    let mut c = Cursor::new(bytes);
    let mut case_ids = Vec::with_capacity(n);
    for _ in 0..n {
        case_ids.push(c.varint()?);
    }
    let mut versions = Vec::with_capacity(n);
    for _ in 0..n {
        let v = c.varint()?;
        versions.push(u32::try_from(v).map_err(|_| EvidenceError::Corrupt("version overflow"))?);
    }
    let mut report_types = Vec::with_capacity(n);
    for _ in 0..n {
        report_types.push(report_type_from(c.u8()?)?);
    }
    let mut sexes = Vec::with_capacity(n);
    for _ in 0..n {
        sexes.push(sex_from(c.u8()?)?);
    }
    let mut ages = Vec::with_capacity(n);
    for _ in 0..n {
        ages.push(opt_f32(&mut c)?);
    }
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        weights.push(opt_f32(&mut c)?);
    }
    let mut countries = Vec::with_capacity(n);
    for _ in 0..n {
        countries.push(lookup(c.varint()?)?);
    }
    let mut event_dates = Vec::with_capacity(n);
    for _ in 0..n {
        event_dates.push(opt_u32(&mut c)?);
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let n_drugs = checked_len(&mut c)?;
        let mut drugs = Vec::with_capacity(n_drugs);
        for _ in 0..n_drugs {
            let name = lookup(c.varint()?)?;
            let role = role_from(c.u8()?)?;
            drugs.push(DrugEntry { name, role });
        }
        let n_reac = checked_len(&mut c)?;
        let mut reactions = Vec::with_capacity(n_reac);
        for _ in 0..n_reac {
            reactions.push(lookup(c.varint()?)?);
        }
        let n_outc = checked_len(&mut c)?;
        let mut outcomes = Vec::with_capacity(n_outc);
        for _ in 0..n_outc {
            outcomes.push(outcome_from(c.u8()?)?);
        }
        out.push(CaseReport {
            case_id: case_ids[i],
            version: versions[i],
            report_type: report_types[i],
            age: ages[i],
            sex: sexes[i],
            weight_kg: weights[i],
            country: countries[i].clone(),
            event_date: event_dates[i],
            drugs,
            reactions,
            outcomes,
        });
    }
    if !c.is_exhausted() {
        return Err(EvidenceError::Corrupt("trailing bytes after block payload"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_faers::intern::SymbolTable;
    use rustc_hash::FxHashMap;

    fn sample(case_id: u64) -> CaseReport {
        CaseReport {
            case_id,
            version: 2,
            report_type: ReportType::Expedited,
            age: Some(63.5),
            sex: Sex::Female,
            weight_kg: None,
            country: "US".into(),
            event_date: Some(20140117),
            drugs: vec![
                DrugEntry::new("IBUPROFEN", DrugRole::PrimarySuspect),
                DrugEntry::new("WARFARIN", DrugRole::Interacting),
            ],
            reactions: vec!["Acute renal failure".into(), "Nausea".into()],
            outcomes: vec![Outcome::Hospitalization, Outcome::Other],
        }
    }

    #[test]
    fn block_roundtrips() {
        let reports = vec![sample(1), sample(77), sample(12345)];
        let mut ids: FxHashMap<String, u32> = FxHashMap::default();
        let mut dict: Vec<String> = Vec::new();
        let refs: Vec<&CaseReport> = reports.iter().collect();
        let bytes = encode_block(&refs, |s| {
            *ids.entry(s.to_string()).or_insert_with(|| {
                dict.push(s.to_string());
                (dict.len() - 1) as u32
            })
        });
        let mut table = SymbolTable::new();
        let symbols: Vec<IStr> = dict.iter().map(|s| table.intern(s)).collect();
        let decoded = decode_block(&bytes, reports.len(), &symbols).unwrap();
        assert_eq!(decoded, reports);
    }

    #[test]
    fn decode_rejects_bad_enum_codes_and_truncation() {
        let reports = [sample(9)];
        let refs: Vec<&CaseReport> = reports.iter().collect();
        let bytes = encode_block(&refs, |_| 0);
        let mut table = SymbolTable::new();
        let symbols = vec![table.intern("X")];
        // Truncate anywhere — typed error, never a panic.
        for cut in 0..bytes.len() {
            let res = decode_block(&bytes[..cut], 1, &symbols);
            assert!(res.is_err(), "cut at {cut} decoded");
        }
        // Flip every byte — either a typed error or a decode that differs,
        // but never a panic (checksums catch silent differences upstream).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let _ = decode_block(&bad, 1, &symbols);
        }
    }

    #[test]
    fn outcome_codes_cover_all() {
        for o in Outcome::ALL {
            assert_eq!(outcome_from(outcome_code(o)).unwrap(), o);
        }
        assert!(outcome_from(7).is_err());
    }
}
