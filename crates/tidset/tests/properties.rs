//! Property suite: every `TidSet` kernel must agree with the naive
//! `BTreeSet<u32>` model, across array/bitmap/mixed container regimes
//! and chunk boundaries, including the empty-set and single-chunk edges.

use maras_tidset::{decode_set, encode_set, TidSet, ARRAY_MAX};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Raw material for one set: a mix of dense runs (which cross the 4096
/// array→bitmap threshold and the 2^16 chunk boundary) and sparse
/// scatter, so generated sets exercise array, bitmap, and mixed layouts.
fn dense_run() -> impl Strategy<Value = Vec<u32>> {
    (0u32..200_000, 0usize..(ARRAY_MAX * 2 + 500))
        .prop_map(|(start, len)| (start..start.saturating_add(len as u32)).collect::<Vec<u32>>())
}

fn tid_pool() -> impl Strategy<Value = Vec<u32>> {
    let sparse = proptest::collection::vec(0u32..300_000, 0..60);
    let single_chunk = proptest::collection::vec(0u32..200, 0..40);
    prop_oneof![
        sparse.boxed(),
        dense_run().boxed(),
        (dense_run(), proptest::collection::vec(0u32..300_000, 0..40))
            .prop_map(|(mut run, scatter)| {
                run.extend(scatter);
                run
            })
            .boxed(),
        single_chunk.boxed(),
        Just(Vec::new()).boxed(),
    ]
}

fn build(tids: Vec<u32>) -> (TidSet, BTreeSet<u32>) {
    let model: BTreeSet<u32> = tids.into_iter().collect();
    let sorted: Vec<u32> = model.iter().copied().collect();
    (TidSet::from_sorted(&sorted), model)
}

proptest! {
    #[test]
    fn build_matches_model(tids in tid_pool()) {
        let (set, model) = build(tids);
        prop_assert_eq!(set.len(), model.len() as u64);
        prop_assert_eq!(set.is_empty(), model.is_empty());
        prop_assert_eq!(set.to_vec(), model.iter().copied().collect::<Vec<u32>>());
        prop_assert_eq!(set.iter().collect::<Vec<u32>>(), set.to_vec());
        prop_assert_eq!(set.last(), model.iter().next_back().copied());
        for probe in [0u32, 1, 4_095, 4_096, 65_535, 65_536, 131_071, 299_999] {
            prop_assert_eq!(set.contains(probe), model.contains(&probe));
        }
    }

    #[test]
    fn pairwise_kernels_match_model(a in tid_pool(), b in tid_pool()) {
        let (sa, ma) = build(a);
        let (sb, mb) = build(b);
        let inter: Vec<u32> = ma.intersection(&mb).copied().collect();
        let uni: Vec<u32> = ma.union(&mb).copied().collect();
        prop_assert_eq!(sa.intersect(&sb).to_vec(), inter.clone());
        prop_assert_eq!(sb.intersect(&sa).to_vec(), inter.clone());
        prop_assert_eq!(sa.intersect_count(&sb), inter.len() as u64);
        prop_assert_eq!(sa.union(&sb).to_vec(), uni.clone());
        prop_assert_eq!(sb.union(&sa).to_vec(), uni);
        // The capped count is exact at or under the cap and strictly
        // over the cap otherwise.
        for cap in [0u64, 1, 3, inter.len() as u64, u64::MAX] {
            let got = sa.intersect_count_capped(&sb, cap);
            if inter.len() as u64 <= cap {
                prop_assert_eq!(got, inter.len() as u64);
            } else {
                prop_assert!(got > cap);
                prop_assert!(got <= inter.len() as u64);
            }
        }
    }

    #[test]
    fn k_way_matches_model(a in tid_pool(), b in tid_pool(), c in tid_pool()) {
        let (sa, ma) = build(a);
        let (sb, mb) = build(b);
        let (sc, mc) = build(c);
        let expected: Vec<u32> =
            ma.iter().filter(|t| mb.contains(t) && mc.contains(t)).copied().collect();
        let sets = [&sa, &sb, &sc];
        prop_assert_eq!(TidSet::intersect_k(&sets).to_vec(), expected.clone());
        prop_assert_eq!(TidSet::intersect_count_k(&sets), expected.len() as u64);
        // Order must not matter.
        prop_assert_eq!(TidSet::intersect_k(&[&sc, &sa, &sb]).to_vec(), expected);
    }

    #[test]
    fn rank_select_page_match_model(tids in tid_pool(), offset in 0u64..20_000, limit in 0usize..300) {
        let (set, model) = build(tids);
        let sorted: Vec<u32> = model.iter().copied().collect();
        for probe in [0u32, 4_096, 65_536, 150_000, u32::MAX] {
            prop_assert_eq!(set.rank(probe), sorted.partition_point(|&t| t < probe) as u64);
        }
        prop_assert_eq!(set.select(offset), sorted.get(offset as usize).copied());
        let expect_page: Vec<u32> =
            sorted.iter().skip(offset as usize).take(limit).copied().collect();
        prop_assert_eq!(set.page(offset, limit), expect_page);
        // select is the inverse of rank on every member of a prefix.
        for (i, &t) in sorted.iter().take(64).enumerate() {
            prop_assert_eq!(set.select(i as u64), Some(t));
            prop_assert_eq!(set.rank(t), i as u64);
        }
    }

    #[test]
    fn wire_roundtrip_is_identity(tids in tid_pool()) {
        let (set, _) = build(tids);
        let mut buf = Vec::new();
        encode_set(&mut buf, &set);
        let mut pos = 0usize;
        let back = decode_set(&buf, &mut pos).expect("canonical sets decode");
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(back, set);
    }
}

#[test]
fn empty_set_edges() {
    let empty = TidSet::new();
    let one = TidSet::from_sorted(&[7]);
    assert!(empty.intersect(&one).is_empty());
    assert!(one.intersect(&empty).is_empty());
    assert_eq!(empty.intersect_count(&one), 0);
    assert_eq!(empty.union(&one).to_vec(), vec![7]);
    assert_eq!(empty.rank(u32::MAX), 0);
    assert_eq!(empty.select(0), None);
    assert_eq!(empty.page(0, 10), Vec::<u32>::new());
    assert!(TidSet::intersect_k(&[&empty, &empty]).is_empty());
    let mut buf = Vec::new();
    encode_set(&mut buf, &empty);
    assert_eq!(decode_set(&buf, &mut 0).unwrap(), empty);
}

#[test]
fn threshold_boundary_representations() {
    // Exactly at, one under, and one over the array→bitmap threshold.
    for n in [ARRAY_MAX as u32 - 1, ARRAY_MAX as u32, ARRAY_MAX as u32 + 1] {
        let tids: Vec<u32> = (0..n).collect();
        let set = TidSet::from_sorted(&tids);
        assert_eq!(set.to_vec(), tids);
        assert_eq!(set.intersect(&set).to_vec(), tids);
        assert_eq!(set.intersect_count(&set), n as u64);
        assert_eq!(set.union(&set).to_vec(), tids);
        let expect_bitmap = n as usize > ARRAY_MAX;
        let (arrays, bitmaps) = set.container_mix();
        assert_eq!((arrays, bitmaps), if expect_bitmap { (0, 1) } else { (1, 0) });
    }
}
