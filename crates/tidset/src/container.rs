//! One 2^16 chunk of a [`TidSet`](crate::TidSet): a sorted `u16` array for
//! sparse chunks, a 1024-word bitmap for dense ones.
//!
//! The switch threshold is the classic Roaring bound: a bitmap chunk costs
//! a fixed 8 KiB, an array chunk `2·n` bytes, so the break-even cardinality
//! is 4096. Every kernel here keeps the representation *canonical* — an
//! array at or below [`ARRAY_MAX`] elements, a bitmap strictly above — so
//! equality of sets is equality of representations and the membership /
//! rank probes always pick the right algorithm for the density they see.

/// Largest cardinality stored as a sorted array (the 4096 break-even).
pub const ARRAY_MAX: usize = 4096;

/// `u64` words in a bitmap container (2^16 bits).
pub const BITMAP_WORDS: usize = 1024;

/// One chunk's membership set over the low 16 bits of its tids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Container {
    /// Strictly ascending low-16-bit values; at most [`ARRAY_MAX`] of them.
    Array(Vec<u16>),
    /// Bit `v` of `words[v / 64]` set iff low value `v` is present; used
    /// only above [`ARRAY_MAX`] elements. The cardinality rides along so
    /// `len` never re-popcounts 8 KiB.
    Bitmap {
        /// The 1024-word bit plane.
        words: Box<[u64; BITMAP_WORDS]>,
        /// Number of set bits (kept exact by every mutation).
        card: u32,
    },
}

impl Container {
    /// Empty array container.
    pub fn new() -> Container {
        Container::Array(Vec::new())
    }

    /// Cardinality of the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bitmap { card, .. } => *card as usize,
        }
    }

    /// Whether the chunk holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes of this chunk's payload.
    pub fn bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.capacity() * 2,
            Container::Bitmap { .. } => BITMAP_WORDS * 8,
        }
    }

    /// Whether `v` is present.
    pub fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&v).is_ok(),
            Container::Bitmap { words, .. } => words[usize::from(v) >> 6] & (1u64 << (v & 63)) != 0,
        }
    }

    /// Appends a value known to be strictly greater than every present
    /// value, converting to a bitmap when the array outgrows the threshold.
    pub fn push_ascending(&mut self, v: u16) {
        match self {
            Container::Array(a) => {
                debug_assert!(a.last().is_none_or(|&last| last < v), "push not ascending");
                if a.len() == ARRAY_MAX {
                    let mut bm = array_to_bitmap(a);
                    set_bit(&mut bm, v);
                    *self = Container::Bitmap { words: bm, card: ARRAY_MAX as u32 + 1 };
                } else {
                    a.push(v);
                }
            }
            Container::Bitmap { words, card } => {
                set_bit(words, v);
                *card += 1;
            }
        }
    }

    /// Number of present values strictly below `v`.
    pub fn rank_below(&self, v: u16) -> usize {
        match self {
            Container::Array(a) => a.partition_point(|&x| x < v),
            Container::Bitmap { words, .. } => {
                let word = usize::from(v) >> 6;
                let mut n: u32 = words[..word].iter().map(|w| w.count_ones()).sum();
                n += (words[word] & ((1u64 << (v & 63)) - 1)).count_ones();
                n as usize
            }
        }
    }

    /// The `idx`-th smallest value (0-based). `idx` must be `< len()`.
    pub fn select(&self, idx: usize) -> u16 {
        match self {
            Container::Array(a) => a[idx],
            Container::Bitmap { words, .. } => {
                let mut remaining = idx as u32;
                for (w, &word) in words.iter().enumerate() {
                    let ones = word.count_ones();
                    if remaining < ones {
                        return (w as u16) << 6 | nth_set_bit(word, remaining);
                    }
                    remaining -= ones;
                }
                unreachable!("select index within recorded cardinality")
            }
        }
    }

    /// Iterates the chunk's values ascending.
    pub fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(a) => ContainerIter::Array(a.iter()),
            Container::Bitmap { words, .. } => {
                ContainerIter::Bitmap { words, word_idx: 0, current: words[0] }
            }
        }
    }

    /// Appends the chunk's values, each offset by `base`, onto `out`.
    pub fn write_tids(&self, base: u32, out: &mut Vec<u32>) {
        match self {
            Container::Array(a) => out.extend(a.iter().map(|&v| base | u32::from(v))),
            Container::Bitmap { words, .. } => {
                for (w, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        out.push(base | (w as u32) << 6 | b);
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// Intersection, producing a canonical container (`None` when empty).
    pub fn intersect(&self, other: &Container) -> Option<Container> {
        let out = match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(intersect_arrays(a, b)),
            (Container::Array(a), Container::Bitmap { words, .. })
            | (Container::Bitmap { words, .. }, Container::Array(a)) => {
                // Result is at most |array| <= ARRAY_MAX: always an array.
                let mut out = Vec::with_capacity(a.len());
                out.extend(
                    a.iter()
                        .copied()
                        .filter(|&v| words[usize::from(v) >> 6] & (1u64 << (v & 63)) != 0),
                );
                Container::Array(out)
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut card = 0u32;
                for i in 0..BITMAP_WORDS {
                    let w = wa[i] & wb[i];
                    words[i] = w;
                    card += w.count_ones();
                }
                if card as usize > ARRAY_MAX {
                    Container::Bitmap { words, card }
                } else {
                    bitmap_to_array(&words, card)
                }
            }
        };
        (!out.is_empty()).then_some(out)
    }

    /// `|self ∩ other|` without materializing — the popcount-only kernel.
    pub fn intersect_count(&self, other: &Container) -> usize {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => intersect_count_arrays(a, b),
            (Container::Array(a), Container::Bitmap { words, .. })
            | (Container::Bitmap { words, .. }, Container::Array(a)) => {
                a.iter().filter(|&&v| words[usize::from(v) >> 6] & (1u64 << (v & 63)) != 0).count()
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                wa.iter().zip(wb.iter()).map(|(&x, &y)| (x & y).count_ones() as usize).sum()
            }
        }
    }

    /// Like [`Self::intersect_count`], but stops as soon as the running
    /// count exceeds `cap` (returning that over-cap partial count). Lets
    /// equality-of-cardinality probes bail out of hopeless pairs early.
    pub fn intersect_count_capped(&self, other: &Container, cap: usize) -> usize {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                let mut n = 0usize;
                let mut lo = 0usize;
                for &v in small {
                    let idx = gallop_from(large, lo, v);
                    if idx < large.len() && large[idx] == v {
                        n += 1;
                        if n > cap {
                            return n;
                        }
                        lo = idx + 1;
                    } else {
                        lo = idx;
                    }
                    if lo >= large.len() {
                        break;
                    }
                }
                n
            }
            (Container::Array(a), Container::Bitmap { words, .. })
            | (Container::Bitmap { words, .. }, Container::Array(a)) => {
                let mut n = 0usize;
                for &v in a {
                    if words[usize::from(v) >> 6] & (1u64 << (v & 63)) != 0 {
                        n += 1;
                        if n > cap {
                            return n;
                        }
                    }
                }
                n
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                let mut n = 0usize;
                for (&x, &y) in wa.iter().zip(wb.iter()) {
                    n += (x & y).count_ones() as usize;
                    if n > cap {
                        return n;
                    }
                }
                n
            }
        }
    }

    /// Union, producing a canonical container.
    pub fn union(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let merged = union_arrays(a, b);
                if merged.len() > ARRAY_MAX {
                    let mut words = Box::new([0u64; BITMAP_WORDS]);
                    let card = merged.len() as u32;
                    for &v in &merged {
                        set_bit(&mut words, v);
                    }
                    Container::Bitmap { words, card }
                } else {
                    Container::Array(merged)
                }
            }
            (Container::Array(a), Container::Bitmap { words, .. })
            | (Container::Bitmap { words, .. }, Container::Array(a)) => {
                let mut out = words.clone();
                for &v in a {
                    set_bit(&mut out, v);
                }
                let card: u32 = out.iter().map(|w| w.count_ones()).sum();
                Container::Bitmap { words: out, card }
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut card = 0u32;
                for i in 0..BITMAP_WORDS {
                    let w = wa[i] | wb[i];
                    words[i] = w;
                    card += w.count_ones();
                }
                Container::Bitmap { words, card }
            }
        }
    }

    /// Whether the representation matches the canonical density rule
    /// (arrays at or below the threshold and strictly ascending, bitmaps
    /// above it with an exact cached cardinality).
    pub fn is_canonical(&self) -> bool {
        match self {
            Container::Array(a) => a.len() <= ARRAY_MAX && a.windows(2).all(|w| w[0] < w[1]),
            Container::Bitmap { words, card } => {
                *card as usize > ARRAY_MAX
                    && words.iter().map(|w| w.count_ones()).sum::<u32>() == *card
            }
        }
    }
}

impl Default for Container {
    fn default() -> Container {
        Container::new()
    }
}

/// Ascending iterator over one container's `u16` values.
pub enum ContainerIter<'a> {
    /// Array walk.
    Array(std::slice::Iter<'a, u16>),
    /// Bitmap walk: strip set bits word by word.
    Bitmap {
        /// The bit plane being walked.
        words: &'a [u64; BITMAP_WORDS],
        /// Index of the word `current` came from.
        word_idx: usize,
        /// Remaining bits of the current word.
        current: u64,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(it) => it.next().copied(),
            ContainerIter::Bitmap { words, word_idx, current } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= BITMAP_WORDS {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros();
                *current &= *current - 1;
                Some((*word_idx as u16) << 6 | bit as u16)
            }
        }
    }
}

#[inline]
fn set_bit(words: &mut [u64; BITMAP_WORDS], v: u16) {
    words[usize::from(v) >> 6] |= 1u64 << (v & 63);
}

fn array_to_bitmap(a: &[u16]) -> Box<[u64; BITMAP_WORDS]> {
    let mut words = Box::new([0u64; BITMAP_WORDS]);
    for &v in a {
        set_bit(&mut words, v);
    }
    words
}

fn bitmap_to_array(words: &[u64; BITMAP_WORDS], card: u32) -> Container {
    let mut out = Vec::with_capacity(card as usize);
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            out.push((w as u16) << 6 | bits.trailing_zeros() as u16);
            bits &= bits - 1;
        }
    }
    Container::Array(out)
}

/// Length ratio above which array×array intersection gallops through the
/// longer side instead of merge-stepping both.
/// Sorted-array intersection: a gallop-driven walk of the longer side
/// from the current position. The exponential probe adapts to the length
/// ratio by itself — balanced lists bracket a 1–2 element window per step
/// (beating a branchy linear merge, whose 50/50 `x < y` branch
/// mispredicts on random interleave), and badly skewed lists skip long
/// runs of the big side. Always reserves `min(|a|, |b|)` for the output
/// so the hot loop never reallocates (the allocation-count assertion in
/// `bench_tidset` pins this down).
fn intersect_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &v in small {
        let idx = gallop_from(large, lo, v);
        if idx < large.len() && large[idx] == v {
            out.push(v);
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= large.len() {
            break;
        }
    }
    out
}

/// Count-only variant of [`intersect_arrays`] — no output buffer at all.
fn intersect_count_arrays(a: &[u16], b: &[u16]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut n = 0usize;
    let mut lo = 0usize;
    for &v in small {
        let idx = gallop_from(large, lo, v);
        if idx < large.len() && large[idx] == v {
            n += 1;
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= large.len() {
            break;
        }
    }
    n
}

/// Smallest index `>= from` in `list` with `list[i] >= target`:
/// exponential probe from the resume point, then binary search of the
/// bracketed window. The common balanced case — `list[from]` already at
/// or past `target` — costs one comparison and an empty window.
fn gallop_from(list: &[u16], from: usize, target: u16) -> usize {
    let mut lo = from;
    let mut hi = from;
    let mut step = 1usize;
    while hi < list.len() && list[hi] < target {
        lo = hi + 1;
        hi = lo.saturating_add(step).min(list.len());
        step <<= 1;
    }
    lo + list[lo..hi.min(list.len())].partition_point(|&v| v < target)
}

fn union_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            out.push(x);
            i += 1;
            j += 1;
        } else if x < y {
            out.push(x);
            i += 1;
        } else {
            out.push(y);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn nth_set_bit(mut word: u64, mut n: u32) -> u16 {
    loop {
        let b = word.trailing_zeros();
        if n == 0 {
            return b as u16;
        }
        word &= word - 1;
        n -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(vals: &[u16]) -> Container {
        let mut c = Container::new();
        for &v in vals {
            c.push_ascending(v);
        }
        c
    }

    fn dense(range: std::ops::Range<u16>) -> Container {
        let mut c = Container::new();
        for v in range {
            c.push_ascending(v);
        }
        c
    }

    #[test]
    fn push_converts_to_bitmap_past_threshold() {
        let mut c = Container::new();
        for v in 0..=ARRAY_MAX as u16 {
            c.push_ascending(v);
        }
        assert!(matches!(c, Container::Bitmap { .. }));
        assert_eq!(c.len(), ARRAY_MAX + 1);
        assert!(c.is_canonical());
        assert!(c.contains(0) && c.contains(ARRAY_MAX as u16));
        assert!(!c.contains(ARRAY_MAX as u16 + 1));
    }

    #[test]
    fn array_stays_array_at_threshold() {
        let c = dense(0..ARRAY_MAX as u16);
        assert!(matches!(c, Container::Array(_)));
        assert!(c.is_canonical());
    }

    #[test]
    fn intersect_every_representation_pair() {
        let a = array(&[1, 5, 9, 4000]);
        let d1 = dense(0..5000);
        let d2 = dense(4000..10000);
        // array x array
        let aa = array(&[5, 9, 10]);
        assert_eq!(a.intersect(&aa).unwrap(), array(&[5, 9]));
        // array x bitmap, both directions
        assert_eq!(a.intersect(&d2).unwrap(), array(&[4000]));
        assert_eq!(d2.intersect(&a).unwrap(), array(&[4000]));
        // bitmap x bitmap, dense result stays bitmap
        let bb = d1.intersect(&d2).unwrap();
        assert_eq!(bb, dense(4000..5000));
        assert!(matches!(bb, Container::Array(_)), "1000 survivors shrink to array");
        // bitmap x bitmap staying dense
        let wide = dense(0..9000).intersect(&dense(1000..10000)).unwrap();
        assert!(matches!(wide, Container::Bitmap { .. }));
        assert_eq!(wide.len(), 8000);
        // disjoint is None
        assert!(array(&[1]).intersect(&array(&[2])).is_none());
    }

    #[test]
    fn intersect_count_matches_intersect() {
        let cases = [
            (array(&[1, 5, 9]), array(&[5, 9, 11])),
            (array(&[1, 5, 9]), dense(0..6000)),
            (dense(0..5000), dense(2500..8000)),
            (dense(0..5000), array(&[])),
        ];
        for (x, y) in &cases {
            let n = x.intersect(y).map_or(0, |c| c.len());
            assert_eq!(x.intersect_count(y), n);
            assert_eq!(y.intersect_count(x), n);
            assert_eq!(x.intersect_count_capped(y, usize::MAX), n);
        }
    }

    #[test]
    fn capped_count_exits_early() {
        let x = dense(0..6000);
        let y = dense(0..6000);
        assert_eq!(x.intersect_count_capped(&y, 0), 64, "stops after the first word");
        assert!(x.intersect_count_capped(&y, 100) <= 128 + 64);
        let a = array(&[1, 2, 3, 4]);
        assert_eq!(a.intersect_count_capped(&a, 2), 3, "one past the cap");
    }

    #[test]
    fn union_every_representation_pair() {
        assert_eq!(array(&[1, 3]).union(&array(&[2, 3])), array(&[1, 2, 3]));
        let grown = dense(0..3000).union(&dense(2000..6000));
        assert!(matches!(grown, Container::Bitmap { .. }));
        assert_eq!(grown.len(), 6000);
        let mixed = array(&[9999]).union(&dense(0..5000));
        assert_eq!(mixed.len(), 5001);
        assert!(mixed.contains(9999));
        assert!(mixed.is_canonical());
    }

    #[test]
    fn rank_select_roundtrip() {
        for c in [array(&[0, 7, 65535]), dense(100..5000)] {
            assert!(c.is_canonical());
            for idx in 0..c.len() {
                let v = c.select(idx);
                assert_eq!(c.rank_below(v), idx);
                assert!(c.contains(v));
            }
            assert_eq!(c.iter().count(), c.len());
        }
        assert_eq!(dense(0..5000).rank_below(65535), 5000);
    }

    #[test]
    fn write_tids_offsets_by_base() {
        let mut out = Vec::new();
        array(&[1, 2]).write_tids(0x30000, &mut out);
        dense(0..4100).write_tids(0x40000, &mut out);
        assert_eq!(out[..2], [0x30001, 0x30002]);
        assert_eq!(out.len(), 2 + 4100);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*out.last().unwrap(), 0x40000 + 4099);
    }
}
