//! `maras_tidset_*` instrumentation, registered in a `maras-obs` registry
//! so the series ride the existing `/metrics` exposition.
//!
//! Kernel counters are on the innermost loop of five crates, so the
//! handles are acquired once into a process-wide `OnceLock` — the kernels
//! never touch the registry mutex after the first call.

use maras_obs::{Counter, Registry};
use std::sync::OnceLock;

/// Handles to the tid-set kernel and build metric series.
#[derive(Clone)]
pub struct TidsetMetrics {
    /// Materializing `intersect` kernel invocations (pairwise).
    pub intersect_calls: Counter,
    /// Popcount-only `intersect_count` / capped-count invocations.
    pub intersect_count_calls: Counter,
    /// `union` kernel invocations.
    pub union_calls: Counter,
    /// k-way smallest-first intersections.
    pub intersect_k_calls: Counter,
    /// Sorted-array containers in long-lived sets at build time.
    pub array_containers: Counter,
    /// Bitmap containers in long-lived sets at build time.
    pub bitmap_containers: Counter,
    /// Heap bytes held by long-lived sets at build time.
    pub built_bytes: Counter,
}

impl TidsetMetrics {
    /// Registers (or re-acquires) the series in `reg`.
    pub fn register(reg: &Registry) -> TidsetMetrics {
        TidsetMetrics {
            intersect_calls: reg
                .counter("maras_tidset_intersect_total", "materializing tid-set intersections"),
            intersect_count_calls: reg.counter(
                "maras_tidset_intersect_count_total",
                "popcount-only tid-set intersection counts (incl. capped)",
            ),
            union_calls: reg.counter("maras_tidset_union_total", "tid-set unions"),
            intersect_k_calls: reg.counter(
                "maras_tidset_intersect_k_total",
                "k-way smallest-first tid-set intersections",
            ),
            array_containers: reg.counter(
                "maras_tidset_array_containers_total",
                "sorted-array containers in sets built for long-lived indexes",
            ),
            bitmap_containers: reg.counter(
                "maras_tidset_bitmap_containers_total",
                "bitmap containers in sets built for long-lived indexes",
            ),
            built_bytes: reg.counter(
                "maras_tidset_built_bytes_total",
                "heap bytes of sets built for long-lived indexes",
            ),
        }
    }

    /// Registers the series in the process-global registry (what `/metrics`
    /// exposes).
    pub fn global() -> TidsetMetrics {
        TidsetMetrics::register(maras_obs::registry())
    }
}

/// The process-wide handles the kernels bump; first use registers the
/// series in the global registry, later uses are a single atomic load.
pub(crate) fn metrics() -> &'static TidsetMetrics {
    static METRICS: OnceLock<TidsetMetrics> = OnceLock::new();
    METRICS.get_or_init(TidsetMetrics::global)
}
