//! The hybrid compressed tid-set: sorted `(chunk key, container)` pairs
//! over 2^16-aligned chunks of the `u32` tid space.

use crate::container::{Container, BITMAP_WORDS};
use crate::metrics::metrics;

/// A compressed set of `u32` transaction ids.
///
/// Chunks are keyed by the high 16 bits of the tid and stored sorted, so
/// binary operations walk two chunk lists like a merge; each chunk is a
/// sorted-array or bitmap [`Container`] over the low 16 bits. Cardinality
/// is cached, membership and [`rank`](TidSet::rank)/[`select`](TidSet::select)
/// are logarithmic in the chunk count, and the intersection kernels pick
/// merge, gallop, or word-AND per chunk pair by density.
///
/// ```
/// use maras_tidset::TidSet;
/// let a = TidSet::from_sorted(&[1, 5, 70_000]);
/// let b = TidSet::from_sorted(&[5, 70_000, 70_001]);
/// assert_eq!(a.intersect(&b).to_vec(), vec![5, 70_000]);
/// assert_eq!(a.intersect_count(&b), 2);
/// assert_eq!(a.union(&b).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TidSet {
    /// `(high 16 bits, members of the chunk)`, keys strictly ascending.
    chunks: Vec<(u16, Container)>,
    /// Total cardinality across chunks.
    len: u64,
}

impl TidSet {
    /// The empty set.
    pub fn new() -> TidSet {
        TidSet::default()
    }

    /// Builds from a strictly ascending slice of tids.
    ///
    /// # Panics
    /// In debug builds, panics if the input is not strictly ascending.
    pub fn from_sorted(tids: &[u32]) -> TidSet {
        debug_assert!(
            tids.windows(2).all(|w| w[0] < w[1]),
            "TidSet::from_sorted input not strictly ascending"
        );
        let mut set = TidSet::new();
        for &tid in tids {
            set.push_ascending(tid);
        }
        set
    }

    /// Appends a tid strictly greater than every member — the builder path
    /// used while scanning transactions or postings in order.
    pub fn push_ascending(&mut self, tid: u32) {
        let key = (tid >> 16) as u16;
        let low = tid as u16;
        match self.chunks.last_mut() {
            Some((k, c)) if *k == key => c.push_ascending(low),
            _ => {
                debug_assert!(
                    self.chunks.last().is_none_or(|(k, _)| *k < key),
                    "push not ascending across chunks"
                );
                let mut c = Container::new();
                c.push_ascending(low);
                self.chunks.push((key, c));
            }
        }
        self.len += 1;
    }

    /// Number of tids in the set.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest tid, if any.
    pub fn last(&self) -> Option<u32> {
        let (key, c) = self.chunks.last()?;
        Some(u32::from(*key) << 16 | u32::from(c.select(c.len() - 1)))
    }

    /// Whether `tid` is a member.
    pub fn contains(&self, tid: u32) -> bool {
        let key = (tid >> 16) as u16;
        match self.chunks.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.chunks[i].1.contains(tid as u16),
            Err(_) => false,
        }
    }

    /// Number of members strictly below `tid`.
    pub fn rank(&self, tid: u32) -> u64 {
        let key = (tid >> 16) as u16;
        let mut n = 0u64;
        for &(k, ref c) in &self.chunks {
            if k < key {
                n += c.len() as u64;
            } else if k == key {
                n += c.rank_below(tid as u16) as u64;
            } else {
                break;
            }
        }
        n
    }

    /// The `idx`-th smallest member (0-based), or `None` past the end —
    /// the pagination primitive (`select(offset)` starts a page without
    /// decompressing the prefix).
    pub fn select(&self, idx: u64) -> Option<u32> {
        let mut remaining = idx;
        for &(k, ref c) in &self.chunks {
            let n = c.len() as u64;
            if remaining < n {
                return Some(u32::from(k) << 16 | u32::from(c.select(remaining as usize)));
            }
            remaining -= n;
        }
        None
    }

    /// One page of members: `limit` tids starting at 0-based `offset`,
    /// ascending. Seeks the start chunk by rank instead of walking the
    /// whole prefix.
    pub fn page(&self, offset: u64, limit: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(limit.min(self.len.saturating_sub(offset) as usize));
        let mut skip = offset;
        for &(k, ref c) in &self.chunks {
            let n = c.len() as u64;
            if skip >= n {
                skip -= n;
                continue;
            }
            let base = u32::from(k) << 16;
            for idx in (skip as usize)..c.len() {
                if out.len() == limit {
                    return out;
                }
                out.push(base | u32::from(c.select(idx)));
            }
            skip = 0;
        }
        out
    }

    /// Iterates members ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks
            .iter()
            .flat_map(|&(k, ref c)| c.iter().map(move |v| u32::from(k) << 16 | u32::from(v)))
    }

    /// Materializes the set as an ascending `Vec`, reserving exactly once.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len as usize);
        for &(k, ref c) in &self.chunks {
            c.write_tids(u32::from(k) << 16, &mut out);
        }
        out
    }

    /// Heap bytes held by the set (chunk directory + container payloads).
    pub fn bytes(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<(u16, Container)>()
            + self.chunks.iter().map(|(_, c)| c.bytes()).sum::<usize>()
    }

    /// Container mix: `(array containers, bitmap containers)`.
    pub fn container_mix(&self) -> (usize, usize) {
        let arrays = self.chunks.iter().filter(|(_, c)| matches!(c, Container::Array(_))).count();
        (arrays, self.chunks.len() - arrays)
    }

    /// `self ∩ other`, canonical.
    pub fn intersect(&self, other: &TidSet) -> TidSet {
        metrics().intersect_calls.inc();
        let mut chunks = Vec::with_capacity(self.chunks.len().min(other.chunks.len()));
        let mut len = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            if ka == kb {
                if let Some(c) = ca.intersect(cb) {
                    len += c.len() as u64;
                    chunks.push((*ka, c));
                }
                i += 1;
                j += 1;
            } else if ka < kb {
                i += 1;
            } else {
                j += 1;
            }
        }
        TidSet { chunks, len }
    }

    /// `|self ∩ other|` without materializing anything.
    pub fn intersect_count(&self, other: &TidSet) -> u64 {
        metrics().intersect_count_calls.inc();
        let mut n = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            if ka == kb {
                n += ca.intersect_count(cb) as u64;
                i += 1;
                j += 1;
            } else if ka < kb {
                i += 1;
            } else {
                j += 1;
            }
        }
        n
    }

    /// `|self ∩ other|` with an early exit once the count exceeds `cap`
    /// (the returned over-cap value is `cap + 1` at minimum). Answers
    /// "is the intersection exactly `cap` elements?" without finishing
    /// hopeless pairs.
    pub fn intersect_count_capped(&self, other: &TidSet, cap: u64) -> u64 {
        metrics().intersect_count_calls.inc();
        let mut n = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            if ka == kb {
                let remaining = cap - n.min(cap);
                n += ca.intersect_count_capped(cb, remaining as usize) as u64;
                if n > cap {
                    return n;
                }
                i += 1;
                j += 1;
            } else if ka < kb {
                i += 1;
            } else {
                j += 1;
            }
        }
        n
    }

    /// `self ∪ other`, canonical.
    pub fn union(&self, other: &TidSet) -> TidSet {
        metrics().union_calls.inc();
        let mut chunks = Vec::with_capacity(self.chunks.len() + other.chunks.len());
        let mut len = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() || j < other.chunks.len() {
            let next = match (self.chunks.get(i), other.chunks.get(j)) {
                (Some(&(ka, ref ca)), Some(&(kb, ref cb))) => {
                    if ka == kb {
                        i += 1;
                        j += 1;
                        (ka, ca.union(cb))
                    } else if ka < kb {
                        i += 1;
                        (ka, ca.clone())
                    } else {
                        j += 1;
                        (kb, cb.clone())
                    }
                }
                (Some(&(ka, ref ca)), None) => {
                    i += 1;
                    (ka, ca.clone())
                }
                (None, Some(&(kb, ref cb))) => {
                    j += 1;
                    (kb, cb.clone())
                }
                (None, None) => unreachable!(),
            };
            len += next.1.len() as u64;
            chunks.push(next);
        }
        TidSet { chunks, len }
    }

    /// k-way intersection, smallest set first so intermediates only
    /// shrink. Sparse×sparse chunk pairs fall back to the galloping array
    /// kernel inside [`Container::intersect`]; an empty intermediate
    /// short-circuits the rest.
    pub fn intersect_k(sets: &[&TidSet]) -> TidSet {
        metrics().intersect_k_calls.inc();
        let Some(&smallest_at) =
            (0..sets.len()).collect::<Vec<_>>().iter().min_by_key(|&&i| sets[i].len())
        else {
            return TidSet::new();
        };
        let mut acc = sets[smallest_at].clone();
        let mut order: Vec<usize> = (0..sets.len()).filter(|&i| i != smallest_at).collect();
        order.sort_unstable_by_key(|&i| sets[i].len());
        for idx in order {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(sets[idx]);
        }
        acc
    }

    /// `|∩ sets|` — folds the k−1 smallest sets, then counts the last pair
    /// popcount-only so the final (largest) operand never materializes an
    /// output. With no sets the count is 0.
    pub fn intersect_count_k(sets: &[&TidSet]) -> u64 {
        match sets.len() {
            0 => 0,
            1 => sets[0].len(),
            2 => sets[0].intersect_count(sets[1]),
            _ => {
                let mut order: Vec<usize> = (0..sets.len()).collect();
                order.sort_unstable_by_key(|&i| sets[i].len());
                let (&last, rest) = order.split_last().expect("k >= 3");
                let mut acc = sets[rest[0]].clone();
                for &idx in &rest[1..] {
                    if acc.is_empty() {
                        return 0;
                    }
                    acc = acc.intersect(sets[idx]);
                }
                acc.intersect_count(sets[last])
            }
        }
    }

    /// Records this set's container mix and footprint in the
    /// `maras_tidset_*` build metrics (called by owners after building
    /// long-lived sets; kernels never call it).
    pub fn record_build(&self) {
        let m = metrics();
        let (arrays, bitmaps) = self.container_mix();
        m.array_containers.add(arrays as u64);
        m.bitmap_containers.add(bitmaps as u64);
        m.built_bytes.add(self.bytes() as u64);
    }
}

impl FromIterator<u32> for TidSet {
    /// Collects from an iterator that need not be sorted or unique.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> TidSet {
        let mut tids: Vec<u32> = iter.into_iter().collect();
        tids.sort_unstable();
        tids.dedup();
        TidSet::from_sorted(&tids)
    }
}

/// Wire format for one set, shared by the MARASNAP v3 snapshot postings:
/// `u32` chunk count, then per chunk `u16` key, `u8` tag (0 = array,
/// 1 = bitmap), and the payload (`u16` count + values for arrays,
/// `u32` cardinality + 1024 LE `u64` words for bitmaps).
pub fn encode_set(out: &mut Vec<u8>, set: &TidSet) {
    out.extend_from_slice(&(set.chunks.len() as u32).to_le_bytes());
    for &(key, ref c) in &set.chunks {
        out.extend_from_slice(&key.to_le_bytes());
        match c {
            Container::Array(a) => {
                out.push(0);
                out.extend_from_slice(&(a.len() as u16).to_le_bytes());
                for &v in a {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Container::Bitmap { words, card } => {
                out.push(1);
                out.extend_from_slice(&card.to_le_bytes());
                for &w in words.iter() {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
    }
}

/// Decodes a set written by [`encode_set`], advancing `*pos`. Refuses
/// non-canonical containers (wrong density for the representation,
/// unsorted arrays, cardinality/popcount mismatch) and unsorted chunk
/// keys, so corrupt bytes can never break set invariants downstream.
pub fn decode_set(buf: &[u8], pos: &mut usize) -> Result<TidSet, &'static str> {
    let n_chunks = u32::from_le_bytes(take::<4>(buf, pos)?) as usize;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 16));
    let mut len = 0u64;
    for _ in 0..n_chunks {
        let key = u16::from_le_bytes(take::<2>(buf, pos)?);
        if chunks.last().is_some_and(|&(k, _)| k >= key) {
            return Err("tid-set chunk keys not ascending");
        }
        let tag = take::<1>(buf, pos)?[0];
        let container = match tag {
            0 => {
                let n = u16::from_le_bytes(take::<2>(buf, pos)?) as usize;
                if n > crate::container::ARRAY_MAX {
                    return Err("array container above the density threshold");
                }
                let mut vals = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = u16::from_le_bytes(take::<2>(buf, pos)?);
                    if vals.last().is_some_and(|&last| last >= v) {
                        return Err("array container not strictly ascending");
                    }
                    vals.push(v);
                }
                Container::Array(vals)
            }
            1 => {
                let card = u32::from_le_bytes(take::<4>(buf, pos)?);
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut popcount = 0u32;
                for w in words.iter_mut() {
                    *w = u64::from_le_bytes(take::<8>(buf, pos)?);
                    popcount += w.count_ones();
                }
                if popcount != card {
                    return Err("bitmap cardinality disagrees with popcount");
                }
                if card as usize <= crate::container::ARRAY_MAX {
                    return Err("bitmap container below the density threshold");
                }
                Container::Bitmap { words, card }
            }
            _ => return Err("unknown container tag"),
        };
        if container.is_empty() {
            return Err("empty container chunk");
        }
        len += container.len() as u64;
        chunks.push((key, container));
    }
    Ok(TidSet { chunks, len })
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], &'static str> {
    let end = pos.checked_add(N).ok_or("tid-set length overflow")?;
    if end > buf.len() {
        return Err("tid-set bytes truncated");
    }
    let out: [u8; N] = buf[*pos..end].try_into().expect("length checked");
    *pos = end;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tids: &[u32]) -> TidSet {
        TidSet::from_sorted(tids)
    }

    fn range(r: std::ops::Range<u32>) -> TidSet {
        let v: Vec<u32> = r.collect();
        TidSet::from_sorted(&v)
    }

    #[test]
    fn build_and_query_across_chunks() {
        let s = set(&[0, 1, 65_535, 65_536, 200_000]);
        assert_eq!(s.len(), 5);
        assert!(s.contains(65_535) && s.contains(65_536));
        assert!(!s.contains(2));
        assert_eq!(s.to_vec(), vec![0, 1, 65_535, 65_536, 200_000]);
        assert_eq!(s.iter().collect::<Vec<_>>(), s.to_vec());
        assert_eq!(s.last(), Some(200_000));
        assert_eq!(TidSet::new().last(), None);
    }

    #[test]
    fn intersect_and_union_across_chunks() {
        let a = set(&[1, 65_536, 65_540, 131_072]);
        let b = set(&[1, 2, 65_540, 300_000]);
        assert_eq!(a.intersect(&b).to_vec(), vec![1, 65_540]);
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 65_536, 65_540, 131_072, 300_000]);
        assert!(a.intersect(&TidSet::new()).is_empty());
        assert_eq!(a.union(&TidSet::new()), a);
    }

    #[test]
    fn dense_chunks_round_trip_through_kernels() {
        let a = range(0..10_000);
        let b = range(5_000..15_000);
        let i = a.intersect(&b);
        assert_eq!(i.len(), 5_000);
        assert_eq!(a.intersect_count(&b), 5_000);
        assert_eq!(a.union(&b).len(), 15_000);
        let (_, bitmaps) = a.container_mix();
        assert!(bitmaps >= 1, "dense chunk should be a bitmap");
    }

    #[test]
    fn intersect_k_and_count_k() {
        let a = range(0..9_000);
        let b = range(3_000..12_000);
        let c = set(&[2_999, 3_000, 8_999, 9_000]);
        let sets = [&a, &b, &c];
        assert_eq!(TidSet::intersect_k(&sets).to_vec(), vec![3_000, 8_999]);
        assert_eq!(TidSet::intersect_count_k(&sets), 2);
        assert_eq!(TidSet::intersect_count_k(&[&a, &b]), 6_000);
        assert_eq!(TidSet::intersect_count_k(&[&a]), 9_000);
        assert_eq!(TidSet::intersect_count_k(&[]), 0);
        assert!(TidSet::intersect_k(&[]).is_empty());
        let empty = TidSet::new();
        assert!(TidSet::intersect_k(&[&a, &empty, &b]).is_empty());
        assert_eq!(TidSet::intersect_count_k(&[&a, &empty, &b]), 0);
    }

    #[test]
    fn capped_count_early_exit() {
        let a = range(0..10_000);
        assert!(a.intersect_count_capped(&a, 10) > 10);
        assert_eq!(a.intersect_count_capped(&a, 20_000), 10_000);
        let b = set(&[1, 2, 3]);
        assert_eq!(b.intersect_count_capped(&b, 3), 3);
        assert_eq!(b.intersect_count_capped(&b, 2), 3, "cap+1 signals over");
    }

    #[test]
    fn rank_select_page() {
        let s = set(&[10, 65_536, 65_537, 200_000, 200_001]);
        assert_eq!(s.rank(10), 0);
        assert_eq!(s.rank(11), 1);
        assert_eq!(s.rank(65_537), 2);
        assert_eq!(s.rank(u32::MAX), 5);
        assert_eq!(s.select(0), Some(10));
        assert_eq!(s.select(3), Some(200_000));
        assert_eq!(s.select(5), None);
        assert_eq!(s.page(1, 2), vec![65_536, 65_537]);
        assert_eq!(s.page(3, 10), vec![200_000, 200_001]);
        assert_eq!(s.page(5, 10), Vec::<u32>::new());
        // Dense chunk paging hits the bitmap select path.
        let d = range(0..8_000);
        assert_eq!(d.page(4_500, 3), vec![4_500, 4_501, 4_502]);
        assert_eq!(d.rank(4_500), 4_500);
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s: TidSet = [5u32, 1, 5, 70_000, 1].into_iter().collect();
        assert_eq!(s.to_vec(), vec![1, 5, 70_000]);
    }

    #[test]
    fn wire_roundtrip_array_bitmap_mixed() {
        for s in [TidSet::new(), set(&[0]), set(&[1, 9, 65_536, 131_072]), range(0..10_000), {
            let mut v: Vec<u32> = (0..5_000).collect();
            v.extend(100_000..100_010);
            set(&v)
        }] {
            let mut buf = vec![0xAA]; // leading noise the cursor must skip
            encode_set(&mut buf, &s);
            let mut pos = 1usize;
            let back = decode_set(&buf, &mut pos).expect("roundtrip decodes");
            assert_eq!(back, s);
            assert_eq!(pos, buf.len(), "decode consumed exactly what encode wrote");
        }
    }

    #[test]
    fn wire_refuses_corruption() {
        let mut buf = Vec::new();
        encode_set(&mut buf, &range(0..10_000));
        // Flip one payload byte: popcount no longer matches cardinality.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_set(&bad, &mut 0).is_err());
        // Truncation.
        assert!(decode_set(&buf[..buf.len() - 3], &mut 0).is_err());
        // Unknown tag.
        let mut bad = buf.clone();
        bad[6] = 9;
        assert!(decode_set(&bad, &mut 0).is_err());
        // Unsorted array container.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&0u16.to_le_bytes());
        bad.push(0);
        bad.extend_from_slice(&2u16.to_le_bytes());
        bad.extend_from_slice(&7u16.to_le_bytes());
        bad.extend_from_slice(&7u16.to_le_bytes());
        assert!(decode_set(&bad, &mut 0).is_err());
    }

    #[test]
    fn bytes_and_mix_are_reported() {
        let sparse = set(&[1, 2, 3]);
        let dense = range(0..10_000);
        assert!(sparse.bytes() < 512, "tiny set stays well under one bitmap");
        assert!(dense.bytes() >= 8 * 1024);
        assert_eq!(sparse.container_mix(), (1, 0));
        assert_eq!(dense.container_mix(), (0, 1));
        dense.record_build(); // smoke: registers the global series
    }
}
