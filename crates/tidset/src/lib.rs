//! Hybrid compressed tid-sets: the one set-algebra layer under mining,
//! scoring, serving, and evidence.
//!
//! A [`TidSet`] partitions the `u32` tid space into 2^16-aligned chunks
//! and stores each chunk as either a sorted `u16` array (sparse) or a
//! 1024-word bitmap (dense), switching representations at the classic
//! 4096-element break-even where both cost 8 KiB. Kernels pick the
//! cheapest strategy per chunk pair: word-AND + popcount for
//! bitmap×bitmap, bit probes for array×bitmap, and a linear merge with a
//! gallop-driven walk for array×array.
//!
//! The popcount-only [`TidSet::intersect_count`] (and its capped variant)
//! answers support-counting questions without materializing anything —
//! the innermost loop of FP-Growth support, `ScoreEngine` contingency
//! marginals, `/search` filter narrowing, and evidence covers.
//! [`TidSet::rank`]/[`TidSet::select`]/[`TidSet::page`] give O(chunks)
//! pagination over compressed postings.
//!
//! Kernel invocations, container mix, and built bytes are exported as
//! `maras_tidset_*` series through [`maras-obs`](maras_obs); see
//! [`TidsetMetrics`].

mod container;
mod metrics;
mod set;

pub use container::{Container, ARRAY_MAX, BITMAP_WORDS};
pub use metrics::TidsetMetrics;
pub use set::{decode_set, encode_set, TidSet};
