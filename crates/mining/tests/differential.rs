//! Fuzz-style differential proof that the arena-backed miner is
//! byte-identical to the legacy miners.
//!
//! For each of several synthesized quarters (seeded drug/ADR-shaped
//! transaction databases), the suite renders the sorted `(itemset, support)`
//! output of four independent paths to one byte string and asserts equality:
//!
//! 1. arena `PatternStore` FP-Growth, 1 thread;
//! 2. arena `PatternStore` FP-Growth, N threads (N ∈ {2, 3, 4, 8});
//! 3. legacy sequential FP-Growth (`ItemSet` callback API);
//! 4. Apriori — a genuinely independent algorithm, so the proof does not
//!    rest on shared recursion.

use maras_mining::{
    apriori, frequent_itemsets, mine_patterns, mine_patterns_parallel, Item, PatternStore,
    TransactionDb,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt::Write as _;

/// Synthesizes one quarter-shaped database: `n_reports` transactions, each a
/// skewed mix of "drug" items (0..n_drugs) and "ADR" items (100..100+n_adrs).
/// Skew comes from squaring a uniform draw so low ids are hot, mimicking the
/// head-heavy drug frequency distribution cleaning produces.
fn synth_quarter(seed: u64, n_reports: usize, n_drugs: u32, n_adrs: u32) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<Item>> = Vec::with_capacity(n_reports);
    for _ in 0..n_reports {
        let mut row = Vec::new();
        for _ in 0..rng.gen_range(1usize..=4) {
            let u = rng.gen_range(0.0f64..1.0);
            row.push(Item((u * u * n_drugs as f64) as u32));
        }
        for _ in 0..rng.gen_range(1usize..=3) {
            let u = rng.gen_range(0.0f64..1.0);
            row.push(Item(100 + (u * u * n_adrs as f64) as u32));
        }
        rows.push(row);
    }
    TransactionDb::new(rows)
}

/// Renders a sorted pattern store to the canonical byte string.
fn render_store(store: &PatternStore) -> String {
    let mut out = String::new();
    for (items, support) in store.iter() {
        for i in items {
            write!(out, "{},", i.0).unwrap();
        }
        writeln!(out, ":{support}").unwrap();
    }
    out
}

/// Renders owned `(ItemSet, support)` pairs, sorted the same way.
fn render_owned(mut v: Vec<maras_mining::FrequentItemset>) -> String {
    v.sort_unstable_by(|a, b| a.items.cmp(&b.items));
    let mut out = String::new();
    for f in &v {
        for i in f.items.iter() {
            write!(out, "{},", i.0).unwrap();
        }
        writeln!(out, ":{}", f.support).unwrap();
    }
    out
}

#[test]
fn all_miners_agree_on_synthesized_quarters() {
    let quarters: Vec<(u64, TransactionDb, u64)> = vec![
        (1, synth_quarter(1, 250, 30, 40), 2),
        (2, synth_quarter(2, 300, 20, 30), 3),
        (3, synth_quarter(3, 200, 40, 25), 2),
        (4, synth_quarter(4, 350, 15, 20), 4),
        (5, synth_quarter(5, 280, 25, 35), 2),
        (6, synth_quarter(6, 150, 10, 12), 1),
    ];
    for (seed, db, min_support) in &quarters {
        let ms = *min_support;

        let mut arena_seq = mine_patterns(db, ms);
        arena_seq.sort_by_items();
        let reference = render_store(&arena_seq);
        assert!(!reference.is_empty(), "seed {seed}: no patterns mined");

        let legacy = render_owned(frequent_itemsets(db, ms));
        assert_eq!(reference, legacy, "seed {seed}: arena vs legacy sequential FP-Growth");

        let independent = render_owned(apriori(db, ms));
        assert_eq!(reference, independent, "seed {seed}: arena FP-Growth vs Apriori");

        for threads in [2usize, 3, 4, 8] {
            let par = mine_patterns_parallel(db, ms, threads);
            assert_eq!(
                reference,
                render_store(&par),
                "seed {seed}: arena 1 thread vs {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_store_identical_under_support_sweep() {
    // One quarter, several thresholds — the funnel the pipeline actually
    // sweeps (min_support is the paper's one hot knob).
    let db = synth_quarter(7, 400, 25, 30);
    for ms in [1u64, 2, 4, 8] {
        let mut seq = mine_patterns(&db, ms);
        seq.sort_by_items();
        for threads in [2usize, 4] {
            let par = mine_patterns_parallel(&db, ms, threads);
            assert_eq!(render_store(&seq), render_store(&par), "ms={ms} threads={threads}");
        }
    }
}
