//! Arena-backed pattern storage.
//!
//! The mining loop emits 10⁶–10⁷ patterns per quarter (Fig. 5.1). Boxing each
//! one as an owned [`ItemSet`] makes the global allocator the contended
//! resource and defeats the suffix-sharded parallel miner (the negative
//! result previously recorded in EXPERIMENTS.md). A [`PatternStore`] replaces
//! per-pattern heap allocations with one flat `Item` arena plus fixed-size
//! `(offset, len, support)` records: emitting a pattern is two `Vec` appends,
//! a pattern is addressed by a copyable [`PatternRef`], and its items are a
//! borrowed `&[Item]` slice into the arena.
//!
//! [`PatternSink`] is the emission boundary: miners stream
//! `(sorted item slice, support)` pairs into any sink — a store, a counter
//! ([`CountSink`]), or an adapter that materializes owned sets only at the
//! final API boundary. Per-worker stores merge by *rebase* ([
//! `PatternStore::absorb`]): the arena is appended and record offsets are
//! shifted, so a parallel join is two `memcpy`-shaped extends per worker.

use crate::fpgrowth::FrequentItemset;
use crate::items::{Item, ItemSet};

/// Receives mined patterns as borrowed slices.
///
/// Contract: `items` is non-empty, strictly ascending, and only valid for the
/// duration of the call; `support` is the pattern's absolute support.
pub trait PatternSink {
    /// Accepts one mined pattern.
    fn emit(&mut self, items: &[Item], support: u64);
}

/// A sink that only counts patterns — the zero-allocation path for Fig.
/// 5.1-style rule-space accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink(pub u64);

impl PatternSink for CountSink {
    #[inline]
    fn emit(&mut self, _items: &[Item], _support: u64) {
        self.0 += 1;
    }
}

/// Adapts a closure to a [`PatternSink`] (a blanket impl for `FnMut` would
/// collide with the concrete sink impls under coherence rules).
#[derive(Debug)]
pub struct FnSink<F: FnMut(&[Item], u64)>(pub F);

impl<F: FnMut(&[Item], u64)> PatternSink for FnSink<F> {
    #[inline]
    fn emit(&mut self, items: &[Item], support: u64) {
        (self.0)(items, support)
    }
}

/// One pattern record: a slice of the arena plus its support.
#[derive(Debug, Clone, Copy)]
struct Rec {
    offset: u32,
    len: u32,
    support: u64,
}

/// A stable id for a pattern inside one [`PatternStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternRef(u32);

impl PatternRef {
    /// The record index inside the owning store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena of mined patterns: one flat item buffer, one record per pattern.
///
/// ```
/// use maras_mining::{Item, PatternStore};
/// let mut store = PatternStore::new();
/// let r = store.push(&[Item(1), Item(3)], 7);
/// assert_eq!(store.items(r), &[Item(1), Item(3)]);
/// assert_eq!(store.support(r), 7);
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatternStore {
    buf: Vec<Item>,
    recs: Vec<Rec>,
}

impl PatternStore {
    /// An empty store.
    pub fn new() -> Self {
        PatternStore::default()
    }

    /// An empty store with reserved capacity.
    pub fn with_capacity(patterns: usize, items: usize) -> Self {
        PatternStore { buf: Vec::with_capacity(items), recs: Vec::with_capacity(patterns) }
    }

    /// Number of stored patterns.
    #[inline]
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the store holds no patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Bytes held by the arena and the record table — the store's resident
    /// footprint (used as the peak-RSS proxy in `bench_mining`).
    pub fn arena_bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<Item>() + self.recs.len() * std::mem::size_of::<Rec>()
    }

    /// Appends a pattern; `items` must be non-empty and strictly ascending.
    pub fn push(&mut self, items: &[Item], support: u64) -> PatternRef {
        debug_assert!(!items.is_empty(), "empty pattern");
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "pattern items not strictly ascending"
        );
        let offset = u32::try_from(self.buf.len()).expect("pattern arena exceeds u32 items");
        let len = items.len() as u32;
        self.buf.extend_from_slice(items);
        let id = u32::try_from(self.recs.len()).expect("pattern count exceeds u32");
        self.recs.push(Rec { offset, len, support });
        PatternRef(id)
    }

    /// The items of a stored pattern, as a slice of the arena.
    #[inline]
    pub fn items(&self, r: PatternRef) -> &[Item] {
        let rec = &self.recs[r.index()];
        &self.buf[rec.offset as usize..(rec.offset + rec.len) as usize]
    }

    /// The support of a stored pattern.
    #[inline]
    pub fn support(&self, r: PatternRef) -> u64 {
        self.recs[r.index()].support
    }

    /// All pattern refs in record order.
    pub fn refs(&self) -> impl Iterator<Item = PatternRef> {
        (0..self.recs.len() as u32).map(PatternRef)
    }

    /// Iterates over `(items, support)` pairs in record order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Item], u64)> + '_ {
        self.recs.iter().map(move |rec| {
            let s = &self.buf[rec.offset as usize..(rec.offset + rec.len) as usize];
            (s, rec.support)
        })
    }

    /// Merges another store in by *rebase*: its arena is appended to ours and
    /// its record offsets shifted. Record order is ours-then-theirs. This is
    /// the parallel-join primitive — two bulk extends, no per-pattern work.
    pub fn absorb(&mut self, other: PatternStore) {
        if self.recs.is_empty() {
            *self = other;
            return;
        }
        let base = u32::try_from(self.buf.len()).expect("pattern arena exceeds u32 items");
        other
            .buf
            .len()
            .checked_add(self.buf.len())
            .and_then(|n| u32::try_from(n).ok())
            .expect("merged pattern arena exceeds u32 items");
        self.buf.extend_from_slice(&other.buf);
        self.recs.extend(other.recs.iter().map(|r| Rec { offset: r.offset + base, ..*r }));
    }

    /// Sorts the *records* (not the arena) by lexicographic item order — the
    /// canonical order differential tests and deterministic output rely on.
    /// O(n log n) record swaps; the arena is untouched.
    pub fn sort_by_items(&mut self) {
        let buf = &self.buf;
        self.recs.sort_unstable_by(|a, b| {
            let sa = &buf[a.offset as usize..(a.offset + a.len) as usize];
            let sb = &buf[b.offset as usize..(b.offset + b.len) as usize];
            sa.cmp(sb)
        });
    }

    /// Groups pattern refs by item count: `index[k]` holds every pattern of
    /// exactly `k` items. Subsumption passes (closed/maximal mining) walk
    /// lengths top-down instead of hashing owned sets.
    pub fn refs_by_len(&self) -> Vec<Vec<PatternRef>> {
        let max = self.recs.iter().map(|r| r.len as usize).max().unwrap_or(0);
        let mut index: Vec<Vec<PatternRef>> = vec![Vec::new(); max + 1];
        for (i, r) in self.recs.iter().enumerate() {
            index[r.len as usize].push(PatternRef(i as u32));
        }
        index
    }

    /// Materializes every pattern as an owned [`FrequentItemset`], in record
    /// order — the compatibility boundary for the legacy vector API.
    pub fn to_frequent_itemsets(&self) -> Vec<FrequentItemset> {
        self.iter()
            .map(|(items, support)| FrequentItemset {
                items: ItemSet::from_sorted_unchecked(items.to_vec()),
                support,
            })
            .collect()
    }
}

impl PatternSink for PatternStore {
    #[inline]
    fn emit(&mut self, items: &[Item], support: u64) {
        self.push(items, support);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn push_and_read_back() {
        let mut s = PatternStore::new();
        let a = s.push(&items(&[1, 2, 3]), 5);
        let b = s.push(&items(&[2]), 9);
        assert_eq!(s.len(), 2);
        assert_eq!(s.items(a), items(&[1, 2, 3]).as_slice());
        assert_eq!(s.items(b), items(&[2]).as_slice());
        assert_eq!(s.support(a), 5);
        assert_eq!(s.support(b), 9);
        assert!(s.arena_bytes() > 0);
    }

    #[test]
    fn absorb_rebases_offsets() {
        let mut a = PatternStore::new();
        a.push(&items(&[1, 2]), 3);
        let mut b = PatternStore::new();
        b.push(&items(&[7]), 1);
        b.push(&items(&[8, 9]), 2);
        a.absorb(b);
        assert_eq!(a.len(), 3);
        let got: Vec<(Vec<Item>, u64)> = a.iter().map(|(i, s)| (i.to_vec(), s)).collect();
        assert_eq!(got, vec![(items(&[1, 2]), 3), (items(&[7]), 1), (items(&[8, 9]), 2)]);
    }

    #[test]
    fn absorb_into_empty_is_move() {
        let mut a = PatternStore::new();
        let mut b = PatternStore::new();
        b.push(&items(&[4, 5]), 2);
        a.absorb(b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.items(PatternRef(0)), items(&[4, 5]).as_slice());
    }

    #[test]
    fn sort_by_items_orders_records_lexicographically() {
        let mut s = PatternStore::new();
        s.push(&items(&[2, 3]), 1);
        s.push(&items(&[1]), 2);
        s.push(&items(&[1, 4]), 3);
        s.sort_by_items();
        let got: Vec<Vec<Item>> = s.iter().map(|(i, _)| i.to_vec()).collect();
        assert_eq!(got, vec![items(&[1]), items(&[1, 4]), items(&[2, 3])]);
    }

    #[test]
    fn refs_by_len_buckets() {
        let mut s = PatternStore::new();
        s.push(&items(&[1]), 1);
        s.push(&items(&[1, 2, 3]), 1);
        s.push(&items(&[4]), 1);
        let idx = s.refs_by_len();
        assert_eq!(idx.len(), 4);
        assert!(idx[0].is_empty() && idx[2].is_empty());
        assert_eq!(idx[1].len(), 2);
        assert_eq!(idx[3].len(), 1);
        assert_eq!(s.items(idx[3][0]), items(&[1, 2, 3]).as_slice());
    }

    #[test]
    fn count_and_fn_sinks() {
        let mut n = CountSink::default();
        n.emit(&items(&[1]), 1);
        n.emit(&items(&[2]), 1);
        assert_eq!(n.0, 2);
        let mut total = 0u64;
        let mut f = FnSink(|_: &[Item], sup| total += sup);
        f.emit(&items(&[1]), 10);
        f.emit(&items(&[1, 2]), 4);
        assert_eq!(total, 14);
    }

    #[test]
    fn to_frequent_itemsets_roundtrips() {
        let mut s = PatternStore::new();
        s.push(&items(&[3, 5]), 2);
        let v = s.to_frequent_itemsets();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].items.items(), items(&[3, 5]).as_slice());
        assert_eq!(v[0].support, 2);
    }
}
