//! Index-arena FP-tree (Han et al.), the compact prefix-tree representation
//! FP-Growth mines (thesis §5.2 uses "FP-Growth trees for closed item-set and
//! rule generation").
//!
//! Nodes live in a flat `Vec` and refer to each other by index — the arena
//! pattern the performance guide recommends over `Rc<RefCell<…>>` trees. Each
//! header-table entry threads a linked list through all nodes of one item.

use crate::items::Item;
use rustc_hash::FxHashMap;

/// Index of a node inside the arena. `NONE` marks a null link.
pub type NodeId = u32;
const NONE: NodeId = u32::MAX;

/// One FP-tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The item this node represents (undefined for the root).
    pub item: Item,
    /// Number of transactions sharing the path down to this node.
    pub count: u64,
    /// Parent node index (`NONE` for the root).
    pub parent: NodeId,
    /// Next node carrying the same item (header-table thread).
    pub next_same_item: NodeId,
}

/// Per-item header entry: total count and head of the node thread.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Sum of counts of all nodes holding this item.
    pub total: u64,
    /// First node in this item's thread, `NONE` if absent.
    pub head: NodeId,
}

/// An FP-tree: arena of nodes plus a header table in *mining order*.
///
/// Items are inserted in descending global-frequency order (ties broken by
/// item id) so that paths share maximal prefixes; the header table keeps the
/// items in ascending frequency order — the order FP-Growth peels them off.
#[derive(Debug)]
pub struct FpTree {
    nodes: Vec<Node>,
    /// child lookup: (parent, item) → node. Hash edges rather than per-node
    /// child vectors: conditional trees are built once and traversed upward.
    edges: FxHashMap<(NodeId, Item), NodeId>,
    /// Header table entries keyed by item.
    headers: FxHashMap<Item, Header>,
    /// Items in ascending order of `headers[item].total` (mining order).
    order: Vec<Item>,
}

impl FpTree {
    /// Creates an empty tree containing only the root.
    pub fn new() -> Self {
        FpTree {
            nodes: vec![Node {
                item: Item(u32::MAX),
                count: 0,
                parent: NONE,
                next_same_item: NONE,
            }],
            edges: FxHashMap::default(),
            headers: FxHashMap::default(),
            order: Vec::new(),
        }
    }

    /// Root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes including the root.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Inserts one (already ordered, already frequency-filtered) transaction
    /// path with multiplicity `count`.
    pub fn insert_path(&mut self, path: &[Item], count: u64) {
        let mut cur = self.root();
        for &item in path {
            let next = match self.edges.get(&(cur, item)) {
                Some(&n) => {
                    self.nodes[n as usize].count += count;
                    n
                }
                None => {
                    let id = self.nodes.len() as NodeId;
                    let head = self.headers.get(&item).map_or(NONE, |h| h.head);
                    self.nodes.push(Node { item, count, parent: cur, next_same_item: head });
                    self.edges.insert((cur, item), id);
                    let entry = self.headers.entry(item).or_insert(Header { total: 0, head: NONE });
                    entry.head = id;
                    id
                }
            };
            let entry = self.headers.entry(item).or_insert(Header { total: 0, head: NONE });
            entry.total += count;
            cur = next;
        }
    }

    /// Finalizes the header ordering. Must be called after the last insert
    /// and before mining.
    pub fn finish(&mut self) {
        let mut order: Vec<Item> = self.headers.keys().copied().collect();
        // Ascending support, then descending id: the reverse of insertion
        // order, so FP-Growth peels the least frequent suffix item first.
        order.sort_unstable_by(|a, b| {
            let (ta, tb) = (self.headers[a].total, self.headers[b].total);
            ta.cmp(&tb).then(b.0.cmp(&a.0))
        });
        self.order = order;
    }

    /// Items in mining order (ascending support).
    #[inline]
    pub fn mining_order(&self) -> &[Item] {
        &self.order
    }

    /// Header entry for an item, if present.
    #[inline]
    pub fn header(&self, item: Item) -> Option<Header> {
        self.headers.get(&item).copied()
    }

    /// Walks an item's node thread, yielding `(node_id, count)`.
    pub fn thread(&self, item: Item) -> ThreadIter<'_> {
        ThreadIter { tree: self, cur: self.headers.get(&item).map_or(NONE, |h| h.head) }
    }

    /// Collects the prefix path (root exclusive, `node` exclusive) above a
    /// node, in root→leaf order.
    pub fn prefix_path(&self, node: NodeId, out: &mut Vec<Item>) {
        out.clear();
        let mut cur = self.nodes[node as usize].parent;
        while cur != NONE && cur != self.root() {
            out.push(self.nodes[cur as usize].item);
            cur = self.nodes[cur as usize].parent;
        }
        out.reverse();
    }

    /// True if the whole tree is a single chain (no branching). FP-Growth
    /// exploits this to enumerate pattern combinations without recursion.
    pub fn is_single_path(&self) -> bool {
        // Root must have ≤1 child and every node ≤1 child.
        let mut child_count: FxHashMap<NodeId, u32> = FxHashMap::default();
        for &(parent, _) in self.edges.keys() {
            let c = child_count.entry(parent).or_insert(0);
            *c += 1;
            if *c > 1 {
                return false;
            }
        }
        true
    }

    /// The single path from root to leaf as `(item, count)` pairs, if the
    /// tree is a single path.
    pub fn single_path(&self) -> Option<Vec<(Item, u64)>> {
        if !self.is_single_path() {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = self.root();
        loop {
            // Find the unique child of cur, if any.
            let child = self.edges.iter().find(|((p, _), _)| *p == cur).map(|(_, &c)| c);
            match child {
                Some(c) => {
                    let n = &self.nodes[c as usize];
                    out.push((n.item, n.count));
                    cur = c;
                }
                None => break,
            }
        }
        Some(out)
    }
}

impl Default for FpTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over an item's node thread.
pub struct ThreadIter<'a> {
    tree: &'a FpTree,
    cur: NodeId,
}

impl Iterator for ThreadIter<'_> {
    type Item = (NodeId, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NONE {
            return None;
        }
        let id = self.cur;
        let node = &self.tree.nodes[id as usize];
        self.cur = node.next_same_item;
        Some((id, node.count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn insert_shares_prefixes() {
        let mut t = FpTree::new();
        t.insert_path(&items(&[1, 2, 3]), 1);
        t.insert_path(&items(&[1, 2, 4]), 1);
        t.insert_path(&items(&[1, 2, 3]), 2);
        t.finish();
        // root + 1,2,3,4 = 5 nodes
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.header(Item(1)).unwrap().total, 4);
        assert_eq!(t.header(Item(2)).unwrap().total, 4);
        assert_eq!(t.header(Item(3)).unwrap().total, 3);
        assert_eq!(t.header(Item(4)).unwrap().total, 1);
    }

    #[test]
    fn thread_links_all_occurrences() {
        let mut t = FpTree::new();
        t.insert_path(&items(&[1, 3]), 1);
        t.insert_path(&items(&[2, 3]), 1);
        t.finish();
        let counts: u64 = t.thread(Item(3)).map(|(_, c)| c).sum();
        assert_eq!(counts, 2);
        assert_eq!(t.thread(Item(3)).count(), 2);
        assert_eq!(t.thread(Item(99)).count(), 0);
    }

    #[test]
    fn prefix_path_is_root_to_parent() {
        let mut t = FpTree::new();
        t.insert_path(&items(&[1, 2, 3]), 1);
        t.finish();
        let (leaf, _) = t.thread(Item(3)).next().unwrap();
        let mut buf = Vec::new();
        t.prefix_path(leaf, &mut buf);
        assert_eq!(buf, items(&[1, 2]));
    }

    #[test]
    fn mining_order_ascending_support() {
        let mut t = FpTree::new();
        t.insert_path(&items(&[1, 2]), 5);
        t.insert_path(&items(&[1]), 1);
        t.insert_path(&items(&[3]), 1);
        t.finish();
        let order = t.mining_order();
        // item 3 (1) before item 2 (5) before item 1 (6)
        assert_eq!(order, &items(&[3, 2, 1])[..]);
    }

    #[test]
    fn single_path_detection() {
        let mut t = FpTree::new();
        t.insert_path(&items(&[1, 2, 3]), 2);
        t.finish();
        assert!(t.is_single_path());
        let p = t.single_path().unwrap();
        assert_eq!(p, vec![(Item(1), 2), (Item(2), 2), (Item(3), 2)]);

        let mut t2 = FpTree::new();
        t2.insert_path(&items(&[1, 2]), 1);
        t2.insert_path(&items(&[1, 3]), 1);
        t2.finish();
        assert!(!t2.is_single_path());
        assert!(t2.single_path().is_none());
    }

    #[test]
    fn empty_tree_is_single_path() {
        let mut t = FpTree::new();
        t.finish();
        assert!(t.is_single_path());
        assert_eq!(t.single_path().unwrap(), vec![]);
    }
}
