//! Parallel FP-Growth.
//!
//! FP-Growth's outer loop is embarrassingly parallel in *principle*: every
//! pattern is generated under exactly one top-level suffix item (its
//! globally least-frequent member), so assigning top-level items to workers
//! partitions the mining work exactly. This module implements that sharding
//! over a shared read-only FP-tree with std scoped threads, and is
//! differential-tested to produce byte-identical output to the sequential
//! miner.
//!
//! **Measured result (recorded honestly): it does not get faster.** On this
//! workload the mining loop is *allocation-bound* — each of the 10⁶–10⁷
//! emitted patterns materializes an `ItemSet` — so the default allocator
//! becomes the contended resource and 8 threads run no faster (sometimes
//! slower, once shard merging and output sorting are paid) than 1. See
//! `benches/mining.rs::bench_parallel` and EXPERIMENTS.md. The module is
//! kept as a correctness-tested scaffold: with an arena/zero-copy pattern
//! sink (or a thread-caching allocator) the same sharding would apply
//! unchanged.

use crate::fpgrowth::{conditional_tree, fpgrowth, mine, FrequentItemset};
use crate::fptree::FpTree;
use crate::items::{Item, ItemSet};
use crate::transactions::TransactionDb;
use rustc_hash::FxHashMap;

/// Mines all frequent itemsets using `n_threads` workers (clamped to ≥ 1).
///
/// The transaction database is sharded by *suffix item*: worker `w` mines
/// exactly the patterns whose least-frequent item has rank `≡ w (mod
/// n_threads)` in the global frequency order. Every pattern is produced by
/// exactly one worker, so the merged output equals the sequential output
/// (up to order, which is normalized here by sorting).
pub fn frequent_itemsets_parallel(
    db: &TransactionDb,
    min_support: u64,
    n_threads: usize,
) -> Vec<FrequentItemset> {
    let n_threads = n_threads.max(1);
    if n_threads == 1 {
        let mut out = crate::fpgrowth::frequent_itemsets(db, min_support);
        sort_patterns(&mut out);
        return out;
    }

    // Global frequency ranks (descending support) — the same order the
    // sequential miner uses, so "suffix item" is well-defined.
    let min_support = min_support.max(1);
    let mut supports: Vec<(Item, u64)> = db
        .item_supports()
        .filter(|&(_, s)| s as u64 >= min_support)
        .map(|(i, s)| (i, s as u64))
        .collect();
    supports.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let rank: FxHashMap<Item, u32> =
        supports.iter().enumerate().map(|(r, &(i, _))| (i, r as u32)).collect();
    if rank.is_empty() {
        return Vec::new();
    }

    // Build the global FP-tree ONCE; it is read-only after `finish()` and
    // shared by reference across the workers.
    let mut tree = FpTree::new();
    let mut buf: Vec<Item> = Vec::new();
    for t in db.transactions() {
        buf.clear();
        buf.extend(t.iter().filter(|i| rank.contains_key(i)));
        buf.sort_unstable_by_key(|i| rank[i]);
        if !buf.is_empty() {
            tree.insert_path(&buf, 1);
        }
    }
    tree.finish();
    let tree = &tree;

    // Every pattern is generated under exactly one *top-level suffix item*
    // (its globally least-frequent member), so assigning top-level items to
    // workers partitions both the output and the mining work.
    let mut shards: Vec<Vec<FrequentItemset>> = Vec::with_capacity(n_threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut local: Vec<FrequentItemset> = Vec::new();
                    let mut prefix: Vec<Item> = Vec::new();
                    for (idx, &item) in tree.mining_order().iter().enumerate() {
                        if idx % n_threads != w {
                            continue;
                        }
                        let header = match tree.header(item) {
                            Some(h) => h,
                            None => continue,
                        };
                        if header.total < min_support {
                            continue;
                        }
                        prefix.push(item);
                        local.push(FrequentItemset {
                            items: ItemSet::from_items(prefix.clone()),
                            support: header.total,
                        });
                        let cond = conditional_tree(tree, item, min_support);
                        if !cond.mining_order().is_empty() {
                            mine(&cond, min_support, &mut prefix, &mut |s: &ItemSet, sup| {
                                local.push(FrequentItemset { items: s.clone(), support: sup });
                            });
                        }
                        prefix.pop();
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("miner thread panicked"));
        }
    });

    let mut out: Vec<FrequentItemset> = shards.into_iter().flatten().collect();
    sort_patterns(&mut out);
    out
}

fn sort_patterns(patterns: &mut [FrequentItemset]) {
    patterns.sort_unstable_by(|a, b| a.items.cmp(&b.items));
}

/// Counts frequent itemsets in parallel without materializing them — the
/// cheap path for Fig. 5.1-style rule-space accounting.
pub fn count_frequent_parallel(db: &TransactionDb, min_support: u64, n_threads: usize) -> u64 {
    // Counting is not worth sharding below a few thousand transactions.
    if n_threads <= 1 || db.len() < 1024 {
        let mut n = 0u64;
        fpgrowth(db, min_support, |_, _| n += 1);
        return n;
    }
    frequent_itemsets_parallel(db, min_support, n_threads).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::frequent_itemsets;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn normalized(mut v: Vec<FrequentItemset>) -> Vec<FrequentItemset> {
        v.sort_unstable_by(|a, b| a.items.cmp(&b.items));
        v
    }

    #[test]
    fn matches_sequential_on_fixed_example() {
        let d = db(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        for threads in [1, 2, 3, 8] {
            for ms in [1u64, 2, 3] {
                assert_eq!(
                    frequent_itemsets_parallel(&d, ms, threads),
                    normalized(frequent_itemsets(&d, ms)),
                    "threads={threads} ms={ms}"
                );
            }
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let d = db(&[&[1, 2], &[2, 3]]);
        let par = frequent_itemsets_parallel(&d, 1, 1);
        assert_eq!(par, normalized(frequent_itemsets(&d, 1)));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let d = db(&[]);
        assert!(frequent_itemsets_parallel(&d, 1, 4).is_empty());
    }

    #[test]
    fn count_matches_materialized_len() {
        let d = db(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3]]);
        let n = count_frequent_parallel(&d, 1, 4);
        assert_eq!(n, frequent_itemsets(&d, 1).len() as u64);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn parallel_equals_sequential(
                rows in proptest::collection::vec(
                    proptest::collection::vec(0u32..10, 0..6), 0..25),
                ms in 1u64..3,
                threads in 2usize..5,
            ) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                prop_assert_eq!(
                    frequent_itemsets_parallel(&d, ms, threads),
                    normalized(frequent_itemsets(&d, ms))
                );
            }
        }
    }
}
