//! Parallel FP-Growth over arena-backed pattern stores.
//!
//! FP-Growth's outer loop is embarrassingly parallel: every pattern is
//! generated under exactly one top-level suffix item (its globally
//! least-frequent member), so assigning top-level items to workers partitions
//! the mining work exactly. This module shards that loop over a shared
//! read-only FP-tree with std scoped threads.
//!
//! Earlier revisions recorded an honest negative result here: with every
//! emitted pattern boxed as an owned `ItemSet`, the global allocator was the
//! contended resource and 8 threads ran no faster than 1. The emission path
//! is now allocation-free — each worker streams sorted slices into a private
//! [`PatternStore`] arena, and the join is a rebase merge
//! ([`PatternStore::absorb`]) plus one record sort. See
//! EXPERIMENTS.md ("Parallel mining after the arena refactor") and
//! `bench_mining` for the re-measured 1/2/4/8-thread scaling, and the
//! differential suite in `tests/differential.rs` for the byte-identical
//! output proof at every thread count.

use crate::fpgrowth::{
    build_global_tree, conditional_tree, fpgrowth_into, mine_into, FrequentItemset,
};
use crate::items::Item;
use crate::store::{CountSink, PatternSink, PatternStore};
use crate::transactions::TransactionDb;

/// Runs the suffix-sharded miner with one private sink per worker and
/// returns the sinks in worker order. Worker `w` mines exactly the patterns
/// whose top-level suffix item has rank `≡ w (mod n_threads)` in the global
/// frequency order, so each pattern lands in exactly one sink.
fn mine_sharded<S, F>(
    db: &TransactionDb,
    min_support: u64,
    n_threads: usize,
    make_sink: F,
) -> Vec<S>
where
    S: PatternSink + Send,
    F: Fn() -> S + Sync,
{
    let build_span = maras_obs::span("build_tree");
    let tree = build_global_tree(db, min_support);
    drop(build_span);
    if tree.mining_order().is_empty() {
        return Vec::new();
    }
    let tree = &tree;
    let make_sink = &make_sink;
    let parent = maras_obs::current_path().unwrap_or_default();
    let parent = &parent;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                scope.spawn(move || {
                    let _shard = maras_obs::span_under(parent, "shard");
                    let mut sink = make_sink();
                    let mut prefix: Vec<Item> = Vec::new();
                    let mut scratch: Vec<Item> = Vec::new();
                    for (idx, &item) in tree.mining_order().iter().enumerate() {
                        if idx % n_threads != w {
                            continue;
                        }
                        let header = match tree.header(item) {
                            Some(h) => h,
                            None => continue,
                        };
                        if header.total < min_support {
                            continue;
                        }
                        sink.emit(&[item], header.total);
                        prefix.clear();
                        prefix.push(item);
                        let cond = conditional_tree(tree, item, min_support);
                        if !cond.mining_order().is_empty() {
                            mine_into(&cond, min_support, &mut prefix, &mut scratch, &mut sink);
                        }
                    }
                    sink
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("miner thread panicked")).collect()
    })
}

/// Mines all frequent itemsets into one [`PatternStore`] using `n_threads`
/// workers (clamped to ≥ 1), records sorted in canonical (lexicographic
/// itemset) order.
///
/// Each worker fills a private arena; at join the arenas are merged by
/// rebase and the combined record table is sorted once. The output is
/// byte-identical to the sequential miner's sorted output at every thread
/// count (differential-tested in `tests/differential.rs`).
pub fn mine_patterns_parallel(
    db: &TransactionDb,
    min_support: u64,
    n_threads: usize,
) -> PatternStore {
    let n_threads = n_threads.max(1);
    let min_support = min_support.max(1);
    let mine_span = maras_obs::span("mine");
    let mut out = if n_threads == 1 {
        let _seq = maras_obs::span("mine_seq");
        crate::fpgrowth::mine_patterns(db, min_support)
    } else {
        let shards = mine_sharded(db, min_support, n_threads, PatternStore::new);
        let _merge = maras_obs::span("merge");
        let mut merged = PatternStore::new();
        for shard in shards {
            merged.absorb(shard);
        }
        merged
    };
    let sort_span = maras_obs::span("sort");
    out.sort_by_items();
    drop(sort_span);
    maras_obs::counter("maras_mining_patterns_total", "frequent patterns mined")
        .add(out.len() as u64);
    maras_obs::gauge("maras_mining_arena_bytes", "item arena size of the latest pattern store")
        .set(out.arena_bytes() as f64);
    drop(mine_span);
    out
}

/// Mines all frequent itemsets using `n_threads` workers (clamped to ≥ 1),
/// returned as owned sets in canonical order.
///
/// Compatibility wrapper over [`mine_patterns_parallel`]; the owned
/// [`FrequentItemset`]s are materialized once at this boundary, not per
/// emitted pattern.
pub fn frequent_itemsets_parallel(
    db: &TransactionDb,
    min_support: u64,
    n_threads: usize,
) -> Vec<FrequentItemset> {
    mine_patterns_parallel(db, min_support, n_threads).to_frequent_itemsets()
}

/// Counts frequent itemsets without materializing them — the cheap path for
/// Fig. 5.1-style rule-space accounting. Parallel counting shards the same
/// way but each worker's sink is a bare counter.
pub fn count_frequent_parallel(db: &TransactionDb, min_support: u64, n_threads: usize) -> u64 {
    // Counting is not worth sharding below a few thousand transactions.
    if n_threads <= 1 || db.len() < 1024 {
        let mut n = CountSink::default();
        fpgrowth_into(db, min_support, &mut n);
        return n.0;
    }
    mine_sharded(db, min_support.max(1), n_threads, CountSink::default).iter().map(|c| c.0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::frequent_itemsets;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn normalized(mut v: Vec<FrequentItemset>) -> Vec<FrequentItemset> {
        v.sort_unstable_by(|a, b| a.items.cmp(&b.items));
        v
    }

    #[test]
    fn matches_sequential_on_fixed_example() {
        let d = db(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        for threads in [1, 2, 3, 8] {
            for ms in [1u64, 2, 3] {
                assert_eq!(
                    frequent_itemsets_parallel(&d, ms, threads),
                    normalized(frequent_itemsets(&d, ms)),
                    "threads={threads} ms={ms}"
                );
            }
        }
    }

    #[test]
    fn store_matches_sequential_store() {
        let d = db(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3], &[1, 2, 3]]);
        let mut seq = crate::fpgrowth::mine_patterns(&d, 1);
        seq.sort_by_items();
        for threads in [2, 4] {
            let par = mine_patterns_parallel(&d, 1, threads);
            assert_eq!(par.len(), seq.len());
            assert!(par.iter().eq(seq.iter()), "threads={threads}");
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let d = db(&[&[1, 2], &[2, 3]]);
        let par = frequent_itemsets_parallel(&d, 1, 1);
        assert_eq!(par, normalized(frequent_itemsets(&d, 1)));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let d = db(&[]);
        assert!(frequent_itemsets_parallel(&d, 1, 4).is_empty());
        assert!(mine_patterns_parallel(&d, 1, 4).is_empty());
    }

    #[test]
    fn count_matches_materialized_len() {
        let d = db(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3]]);
        let n = count_frequent_parallel(&d, 1, 4);
        assert_eq!(n, frequent_itemsets(&d, 1).len() as u64);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn parallel_equals_sequential(
                rows in proptest::collection::vec(
                    proptest::collection::vec(0u32..10, 0..6), 0..25),
                ms in 1u64..3,
                threads in 2usize..5,
            ) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                prop_assert_eq!(
                    frequent_itemsets_parallel(&d, ms, threads),
                    normalized(frequent_itemsets(&d, ms))
                );
            }
        }
    }
}
