//! Level-wise Apriori mining — the "traditional association rule mining"
//! baseline (thesis Fig. 5.1 compares its raw rule space against MARAS's
//! filtered and closed spaces) and a second, independently-derived oracle for
//! differential-testing FP-Growth.

use crate::fpgrowth::FrequentItemset;
use crate::items::{Item, ItemSet};
use crate::transactions::TransactionDb;
use rustc_hash::FxHashSet;

/// Mines all frequent itemsets level-wise (Agrawal & Srikant's Apriori).
///
/// Candidate generation joins `L_{k-1}` with itself on a shared
/// `(k-2)`-prefix and prunes candidates with an infrequent `(k-1)`-subset;
/// supports are counted exactly against the database's tid-lists.
pub fn apriori(db: &TransactionDb, min_support: u64) -> Vec<FrequentItemset> {
    let min_support = min_support.max(1);
    let mut out: Vec<FrequentItemset> = Vec::new();

    // L1.
    let mut level: Vec<ItemSet> = {
        let mut singles: Vec<(Item, u64)> = db
            .item_supports()
            .filter(|&(_, s)| s as u64 >= min_support)
            .map(|(i, s)| (i, s as u64))
            .collect();
        singles.sort_unstable_by_key(|&(i, _)| i);
        for &(i, s) in &singles {
            out.push(FrequentItemset { items: ItemSet::singleton(i), support: s });
        }
        singles.into_iter().map(|(i, _)| ItemSet::singleton(i)).collect()
    };

    while !level.is_empty() {
        let prev: FxHashSet<&ItemSet> = level.iter().collect();
        let mut next: Vec<ItemSet> = Vec::new();

        // Join step: pairs sharing all but the last item.
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let a = level[i].items();
                let b = level[j].items();
                let k = a.len();
                if a[..k - 1] != b[..k - 1] {
                    // `level` is sorted lexicographically, so once prefixes
                    // diverge no later j matches either.
                    break;
                }
                let candidate = level[i].with(b[k - 1]);
                // Prune step: every (k)-subset must be frequent.
                let all_frequent =
                    candidate.items().iter().all(|&drop| prev.contains(&candidate.without(drop)));
                if !all_frequent {
                    continue;
                }
                let sup = db.support(&candidate) as u64;
                if sup >= min_support {
                    out.push(FrequentItemset { items: candidate.clone(), support: sup });
                    next.push(candidate);
                }
            }
        }
        next.sort_unstable();
        level = next;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::frequent_itemsets;
    use rustc_hash::FxHashMap;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn as_map(v: Vec<FrequentItemset>) -> FxHashMap<ItemSet, u64> {
        v.into_iter().map(|f| (f.items, f.support)).collect()
    }

    #[test]
    fn small_example() {
        let d = db(&[&[1, 2], &[1, 2, 3], &[1, 3], &[2, 3]]);
        let m = as_map(apriori(&d, 2));
        assert_eq!(m[&ItemSet::from_ids([1])], 3);
        assert_eq!(m[&ItemSet::from_ids([1, 2])], 2);
        assert_eq!(m[&ItemSet::from_ids([2, 3])], 2);
        assert!(!m.contains_key(&ItemSet::from_ids([1, 2, 3])));
    }

    #[test]
    fn empty_and_trivial_dbs() {
        assert!(apriori(&db(&[]), 1).is_empty());
        assert!(apriori(&db(&[&[]]), 1).is_empty());
        let one = apriori(&db(&[&[5]]), 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].support, 1);
    }

    #[test]
    fn three_level_candidate_generation() {
        let d = db(&[&[1, 2, 3, 4], &[1, 2, 3], &[1, 2, 4], &[1, 2, 3, 4]]);
        let m = as_map(apriori(&d, 3));
        assert_eq!(m[&ItemSet::from_ids([1, 2])], 4);
        assert_eq!(m[&ItemSet::from_ids([1, 2, 4])], 3);
        assert!(!m.contains_key(&ItemSet::from_ids([1, 2, 3, 4])));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
            proptest::collection::vec(proptest::collection::vec(0u32..12, 0..6), 0..25)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn apriori_matches_fpgrowth(rows in arb_rows(), ms in 1u64..4) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                prop_assert_eq!(
                    as_map(apriori(&d, ms)),
                    as_map(frequent_itemsets(&d, ms))
                );
            }
        }
    }
}
