//! The transaction database: abstracted ADR reports.
//!
//! Each transaction is the union of one report's drug items and ADR items
//! (thesis §2.1: `D = {d1..dm}`, each `di ⊆ I`). Besides the horizontal
//! representation the DB keeps *vertical* tid-lists so the exact support of
//! any itemset — including infrequent contextual sub-rules — can be counted
//! (§3.5 needs `conf(X ⇒ B)` for every `X ⊂ A` even when `X ∪ B` never met
//! the mining threshold).
//!
//! Tid-lists are hybrid compressed sets ([`maras_tidset::TidSet`]): common
//! items in a dense quarter get bitmap containers whose intersections run
//! word-AND + popcount, rare items stay sorted arrays with galloping
//! merges. Support counting never materializes an intersection unless the
//! caller asks for the cover itself.

use crate::items::{Item, ItemSet};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A compressed set of transaction ids (the *cover* of an itemset) —
/// re-exported from `maras-tidset`, the shared set-algebra layer.
pub type TidSet = maras_tidset::TidSet;

/// An immutable transaction database with vertical tid-list indexes.
///
/// ```
/// use maras_mining::{Item, ItemSet, TransactionDb};
/// let db = TransactionDb::new(vec![
///     vec![Item(0), Item(1), Item(10)],
///     vec![Item(0), Item(2), Item(10)],
/// ]);
/// let s = ItemSet::from_ids([0u32, 10]);
/// assert_eq!(db.support(&s), 2);
/// // {0} always co-occurs with {10}: its closure grows.
/// assert_eq!(db.closure(&ItemSet::from_ids([0u32])), s);
/// assert!(db.is_closed(&s));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransactionDb {
    /// Horizontal form: each transaction is a strictly-ascending item list.
    transactions: Vec<ItemSet>,
    /// Vertical form: item → compressed set of tids of transactions
    /// containing it.
    tidlists: FxHashMap<Item, TidSet>,
    /// Largest item id present plus one (size hint for dense tables).
    item_bound: u32,
}

impl TransactionDb {
    /// Builds a database from raw transactions.
    ///
    /// Items within a transaction are sorted and de-duplicated; empty
    /// transactions are kept (they contribute to `len()` but to no support).
    pub fn new(raw: Vec<Vec<Item>>) -> Self {
        let transactions: Vec<ItemSet> = raw.into_iter().map(ItemSet::from_items).collect();
        Self::from_itemsets(transactions)
    }

    /// Builds a database from already-normalized itemsets.
    pub fn from_itemsets(transactions: Vec<ItemSet>) -> Self {
        let mut tidlists: FxHashMap<Item, TidSet> = FxHashMap::default();
        let mut item_bound = 0u32;
        for (tid, t) in transactions.iter().enumerate() {
            for item in t.iter() {
                tidlists.entry(item).or_default().push_ascending(tid as u32);
                item_bound = item_bound.max(item.0 + 1);
            }
        }
        for tids in tidlists.values() {
            tids.record_build();
        }
        TransactionDb { transactions, tidlists, item_bound }
    }

    /// Number of transactions `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// One plus the largest item id that occurs in any transaction.
    #[inline]
    pub fn item_bound(&self) -> u32 {
        self.item_bound
    }

    /// The transactions in tid order.
    #[inline]
    pub fn transactions(&self) -> &[ItemSet] {
        &self.transactions
    }

    /// The transaction with the given tid.
    pub fn transaction(&self, tid: u32) -> &ItemSet {
        &self.transactions[tid as usize]
    }

    /// Number of distinct items that occur at least once.
    pub fn distinct_items(&self) -> usize {
        self.tidlists.len()
    }

    /// Iterates over `(item, support)` pairs for every occurring item.
    pub fn item_supports(&self) -> impl Iterator<Item = (Item, u32)> + '_ {
        self.tidlists.iter().map(|(&i, t)| (i, t.len() as u32))
    }

    /// Support of a single item (`|{t : i ∈ t}|`).
    pub fn item_support(&self, item: Item) -> u32 {
        self.tidlists.get(&item).map_or(0, |t| t.len() as u32)
    }

    /// The cover (compressed tid-set) of a single item.
    pub fn item_cover(&self, item: Item) -> Option<&TidSet> {
        self.tidlists.get(&item)
    }

    /// Exact absolute support of an arbitrary itemset (thesis Formula 2.1).
    ///
    /// The empty itemset is contained in every transaction, so its support
    /// is `N`. Computed by intersecting tid-sets smallest-first; the final
    /// pair is counted popcount-only, so the largest cover never
    /// materializes an output.
    pub fn support(&self, itemset: &ItemSet) -> u32 {
        self.support_of(itemset.items())
    }

    /// Exact absolute support of an item slice — the borrowed-view path the
    /// arena-backed pattern store hands out (no `ItemSet` required).
    pub fn support_of(&self, items: &[Item]) -> u32 {
        match self.lists_of(items.iter().copied(), items.len()) {
            None => 0,
            Some(lists) if lists.is_empty() => self.len() as u32,
            Some(lists) => TidSet::intersect_count_k(&lists) as u32,
        }
    }

    /// Exact absolute support of the union of two item slices, without
    /// materializing the union. Duplicate items across the slices are
    /// harmless (a tid-set intersected with itself is itself).
    pub fn support_of_union(&self, a: &[Item], b: &[Item]) -> u32 {
        match self.lists_of(a.iter().chain(b).copied(), a.len() + b.len()) {
            None => 0,
            Some(lists) if lists.is_empty() => self.len() as u32,
            Some(lists) => TidSet::intersect_count_k(&lists) as u32,
        }
    }

    /// The cover of an arbitrary itemset as an explicit ascending tid-list.
    ///
    /// For the empty itemset this materializes `0..N`.
    pub fn cover_tids(&self, itemset: &ItemSet) -> Vec<u32> {
        match self.cover_set(itemset) {
            Some(set) => set.to_vec(),
            None => (0..self.len() as u32).collect(),
        }
    }

    /// The cover of an arbitrary itemset as a compressed tid-set, or
    /// `None` for the empty itemset (whose cover is all of `0..N`).
    pub fn cover_set(&self, itemset: &ItemSet) -> Option<TidSet> {
        match self.lists_of(itemset.iter(), itemset.len()) {
            None => Some(TidSet::new()),
            Some(lists) if lists.is_empty() => None,
            Some(lists) => Some(TidSet::intersect_k(&lists)),
        }
    }

    /// Gathers the per-item tid-sets: `None` if some item never occurs
    /// (empty cover), `Some(vec![])` for the empty itemset.
    fn lists_of(
        &self,
        items: impl Iterator<Item = Item>,
        size_hint: usize,
    ) -> Option<Vec<&TidSet>> {
        let mut lists: Vec<&TidSet> = Vec::with_capacity(size_hint);
        for item in items {
            lists.push(self.tidlists.get(&item)?);
        }
        Some(lists)
    }

    /// The closure of an itemset: the intersection of all transactions that
    /// contain it (Galois closure operator).
    ///
    /// `closure(S) ⊇ S`, `support(closure(S)) == support(S)`, and `S` is a
    /// *closed itemset* (thesis Def. 3.4.1) iff `closure(S) == S`. For an
    /// itemset with empty cover the closure is defined here as `S` itself.
    pub fn closure(&self, itemset: &ItemSet) -> ItemSet {
        let tids = self.cover_tids(itemset);
        let mut it = tids.iter();
        let first = match it.next() {
            Some(&tid) => self.transactions[tid as usize].clone(),
            None => return itemset.clone(),
        };
        let mut acc = first;
        for &tid in it {
            acc = acc.intersection(&self.transactions[tid as usize]);
            if acc.len() == itemset.len() {
                break; // cannot shrink below S, which it contains
            }
        }
        acc
    }

    /// Whether `itemset` is closed in this database (Def. 3.4.1).
    pub fn is_closed(&self, itemset: &ItemSet) -> bool {
        if self.support(itemset) == 0 {
            return false;
        }
        self.closure(itemset) == *itemset
    }

    /// Restricts the database to transactions whose tids satisfy `keep`,
    /// renumbering tids densely. Used by per-quarter slicing.
    pub fn filter_tids(&self, mut keep: impl FnMut(u32) -> bool) -> TransactionDb {
        let kept: Vec<ItemSet> = self
            .transactions
            .iter()
            .enumerate()
            .filter(|(tid, _)| keep(*tid as u32))
            .map(|(_, t)| t.clone())
            .collect();
        TransactionDb::from_itemsets(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn sample_db() -> TransactionDb {
        // Mirrors the structure of thesis §3.3's worked example.
        TransactionDb::new(vec![
            vec![Item(0), Item(1), Item(10), Item(11)], // d0 d1 -> a10 a11
            vec![Item(0), Item(2), Item(10)],
            vec![Item(1), Item(11)],
            vec![Item(0), Item(1), Item(10), Item(11)],
            vec![],
        ])
    }

    #[test]
    fn len_and_distinct_items() {
        let db = sample_db();
        assert_eq!(db.len(), 5);
        assert_eq!(db.distinct_items(), 5);
        assert_eq!(db.item_bound(), 12);
    }

    #[test]
    fn support_counts() {
        let db = sample_db();
        assert_eq!(db.support(&ItemSet::empty()), 5);
        assert_eq!(db.support(&set(&[0])), 3);
        assert_eq!(db.support(&set(&[0, 1])), 2);
        assert_eq!(db.support(&set(&[0, 1, 10, 11])), 2);
        assert_eq!(db.support(&set(&[2, 11])), 0);
        assert_eq!(db.support(&set(&[99])), 0);
    }

    #[test]
    fn cover_tids_match_supports() {
        let db = sample_db();
        assert_eq!(db.cover_tids(&set(&[0, 1])), vec![0, 3]);
        assert_eq!(db.cover_tids(&set(&[11])), vec![0, 2, 3]);
        assert_eq!(db.cover_tids(&ItemSet::empty()), vec![0, 1, 2, 3, 4]);
        // The compressed view agrees and flags the empty-itemset case.
        assert_eq!(db.cover_set(&set(&[0, 1])).unwrap().to_vec(), vec![0, 3]);
        assert!(db.cover_set(&ItemSet::empty()).is_none());
        assert!(db.cover_set(&set(&[99])).unwrap().is_empty());
    }

    #[test]
    fn item_cover_is_compressed() {
        let db = sample_db();
        let cover = db.item_cover(Item(0)).expect("item 0 occurs");
        assert_eq!(cover.to_vec(), vec![0, 1, 3]);
        assert!(db.item_cover(Item(99)).is_none());
    }

    #[test]
    fn closure_grows_to_closed_set() {
        let db = sample_db();
        // {0,1} appears only with {10,11}.
        assert_eq!(db.closure(&set(&[0, 1])), set(&[0, 1, 10, 11]));
        assert!(!db.is_closed(&set(&[0, 1])));
        assert!(db.is_closed(&set(&[0, 1, 10, 11])));
        // {0} also occurs with {2,10}: closure is {0,10}.
        assert_eq!(db.closure(&set(&[0])), set(&[0, 10]));
        // Unsupported itemsets are never closed.
        assert!(!db.is_closed(&set(&[2, 11])));
    }

    #[test]
    fn closure_has_same_support() {
        let db = sample_db();
        for s in [set(&[0]), set(&[1]), set(&[0, 1]), set(&[10, 11])] {
            assert_eq!(db.support(&db.closure(&s)), db.support(&s));
        }
    }

    #[test]
    fn filter_tids_renumbers() {
        let db = sample_db();
        let q = db.filter_tids(|tid| tid < 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.support(&set(&[0])), 2);
        assert_eq!(q.support(&set(&[1])), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_db() -> impl Strategy<Value = TransactionDb> {
            proptest::collection::vec(proptest::collection::vec(0u32..20, 0..8), 0..30).prop_map(
                |raw| {
                    TransactionDb::new(
                        raw.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                    )
                },
            )
        }

        fn arb_set() -> impl Strategy<Value = ItemSet> {
            proptest::collection::vec(0u32..20, 0..5).prop_map(ItemSet::from_ids)
        }

        proptest! {
            #[test]
            fn support_matches_naive_scan(db in arb_db(), s in arb_set()) {
                let naive = db.transactions().iter().filter(|t| s.is_subset_of(t)).count() as u32;
                prop_assert_eq!(db.support(&s), naive);
            }

            #[test]
            fn support_is_antimonotone(db in arb_db(), s in arb_set(), extra in 0u32..20) {
                let bigger = s.with(Item(extra));
                prop_assert!(db.support(&bigger) <= db.support(&s));
            }

            #[test]
            fn closure_is_extensive_and_idempotent(db in arb_db(), s in arb_set()) {
                let c = db.closure(&s);
                prop_assert!(s.is_subset_of(&c));
                prop_assert_eq!(db.closure(&c), c.clone());
                if db.support(&s) > 0 {
                    prop_assert_eq!(db.support(&c), db.support(&s));
                    prop_assert!(db.is_closed(&c));
                }
            }

            #[test]
            fn cover_tids_match_naive_scan(db in arb_db(), s in arb_set()) {
                let naive: Vec<u32> = db
                    .transactions()
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| s.is_subset_of(t))
                    .map(|(tid, _)| tid as u32)
                    .collect();
                prop_assert_eq!(db.cover_tids(&s), naive);
            }
        }
    }
}
