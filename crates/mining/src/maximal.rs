//! Maximal frequent itemsets and top-k closed mining.
//!
//! Maximal itemsets (no frequent proper superset) are the most compressed
//! lossy summary of a pattern space — useful for eyeballing what drug
//! cocktails exist at all before rule generation. Top-k closed mining
//! answers "the k strongest patterns" without committing to a support
//! threshold up front, which is how an analyst actually probes an unknown
//! quarter.

use crate::closed::closed_itemsets;
use crate::fpgrowth::{mine_patterns, FrequentItemset};
use crate::items::Item;
use crate::transactions::TransactionDb;
use rustc_hash::FxHashMap;

/// Mines all *maximal* frequent itemsets: frequent sets with no frequent
/// proper superset.
///
/// Derived from the arena-backed pattern store with a one-pass
/// parent-marking trick (mirroring the closed miner): a frequent set is
/// non-maximal iff some one-item extension is frequent, and every such
/// extension is itself in the store. The hash table borrows the store's
/// arena buffer; candidate parents are assembled in one reused scratch
/// vector.
pub fn maximal_itemsets(db: &TransactionDb, min_support: u64) -> Vec<FrequentItemset> {
    let store = mine_patterns(db, min_support);
    let mut by_items: FxHashMap<&[Item], u32> = FxHashMap::default();
    by_items.reserve(store.len());
    for r in store.refs() {
        by_items.insert(store.items(r), r.index() as u32);
    }
    let mut is_max = vec![true; store.len()];
    let by_len = store.refs_by_len();
    let mut parent: Vec<Item> = Vec::new();
    for len in (2..by_len.len()).rev() {
        for &r in &by_len[len] {
            let items = store.items(r);
            for drop in 0..items.len() {
                parent.clear();
                parent.extend_from_slice(&items[..drop]);
                parent.extend_from_slice(&items[drop + 1..]);
                if let Some(&pidx) = by_items.get(parent.as_slice()) {
                    is_max[pidx as usize] = false;
                }
            }
        }
    }
    let mut out: Vec<FrequentItemset> = store
        .refs()
        .filter(|r| is_max[r.index()])
        .map(|r| FrequentItemset {
            items: crate::items::ItemSet::from_sorted_unchecked(store.items(r).to_vec()),
            support: store.support(r),
        })
        .collect();
    out.sort_unstable_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
    out
}

/// Mines the `k` closed itemsets of highest support with at least
/// `min_len` items, by a doubling search on the support threshold.
///
/// Starts at a high threshold and halves it until ≥ k qualifying patterns
/// exist (or the threshold reaches 1), then truncates the support-ordered
/// result. Deterministic: ties at the cut are broken by itemset order.
pub fn top_k_closed(db: &TransactionDb, k: usize, min_len: usize) -> Vec<FrequentItemset> {
    if k == 0 || db.is_empty() {
        return Vec::new();
    }
    let mut threshold = db.len() as u64;
    loop {
        let mut found: Vec<FrequentItemset> = closed_itemsets(db, threshold)
            .into_iter()
            .filter(|f| f.items.len() >= min_len)
            .collect();
        if found.len() >= k || threshold <= 1 {
            found.sort_unstable_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
            found.truncate(k);
            return found;
        }
        threshold /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::frequent_itemsets;
    use crate::items::{Item, ItemSet};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn maximal_of_single_transaction_is_the_transaction() {
        let d = db(&[&[1, 2, 3]]);
        let m = maximal_itemsets(&d, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].items, set(&[1, 2, 3]));
    }

    #[test]
    fn maximal_respects_threshold_boundaries() {
        let d = db(&[&[1, 2, 3], &[1, 2, 3], &[1, 2], &[4]]);
        // At ms=2: {1,2,3} is frequent and maximal; {1,2} frequent but
        // subsumed; {4} infrequent.
        let m = maximal_itemsets(&d, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].items, set(&[1, 2, 3]));
        assert_eq!(m[0].support, 2);
        // At ms=3: only {1,2} survives.
        let m3 = maximal_itemsets(&d, 3);
        assert_eq!(m3.len(), 1);
        assert_eq!(m3[0].items, set(&[1, 2]));
    }

    #[test]
    fn maximal_are_frequent_with_no_frequent_superset() {
        let d = db(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        for ms in 1..=3u64 {
            let frequent = frequent_itemsets(&d, ms);
            let maximal = maximal_itemsets(&d, ms);
            for m in &maximal {
                assert!(m.support >= ms);
                // No frequent proper superset.
                assert!(
                    !frequent.iter().any(|f| m.items.is_proper_subset_of(&f.items)),
                    "ms={ms}: {} has a frequent superset",
                    m.items
                );
            }
            // Every frequent set is covered by some maximal superset.
            for f in &frequent {
                assert!(
                    maximal.iter().any(|m| f.items.is_subset_of(&m.items)),
                    "ms={ms}: {} uncovered",
                    f.items
                );
            }
            // Maximal ⊆ closed.
            let closed = closed_itemsets(&d, ms);
            for m in &maximal {
                assert!(closed.iter().any(|c| c.items == m.items), "ms={ms}");
            }
        }
    }

    #[test]
    fn top_k_closed_returns_highest_support() {
        let d = db(&[&[1, 2], &[1, 2], &[1, 2], &[1, 2], &[3, 4], &[3, 4], &[5, 6]]);
        let top = top_k_closed(&d, 2, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].items, set(&[1, 2]));
        assert_eq!(top[0].support, 4);
        assert_eq!(top[1].items, set(&[3, 4]));
        assert!(top[0].support >= top[1].support);
    }

    #[test]
    fn top_k_min_len_filters_singletons() {
        let d = db(&[&[1], &[1], &[1], &[2, 3]]);
        let top = top_k_closed(&d, 5, 2);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].items, set(&[2, 3]));
        // With min_len 1 the frequent singleton leads.
        let top1 = top_k_closed(&d, 1, 1);
        assert_eq!(top1[0].items, set(&[1]));
    }

    #[test]
    fn top_k_edge_cases() {
        assert!(top_k_closed(&db(&[]), 3, 1).is_empty());
        assert!(top_k_closed(&db(&[&[1]]), 0, 1).is_empty());
        // Asking for more than exist returns all.
        let d = db(&[&[1, 2], &[3, 4]]);
        let all = top_k_closed(&d, 100, 2);
        assert_eq!(all.len(), 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]
            #[test]
            fn maximal_cover_and_antichain(
                rows in proptest::collection::vec(
                    proptest::collection::vec(0u32..10, 0..6), 0..20),
                ms in 1u64..3,
            ) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                let maximal = maximal_itemsets(&d, ms);
                // Antichain: no maximal set contains another.
                for a in &maximal {
                    for b in &maximal {
                        if a.items != b.items {
                            prop_assert!(!a.items.is_subset_of(&b.items));
                        }
                    }
                }
                // Coverage of all frequent sets.
                let frequent = frequent_itemsets(&d, ms);
                for f in &frequent {
                    prop_assert!(maximal.iter().any(|m| f.items.is_subset_of(&m.items)));
                }
            }
        }
    }
}
