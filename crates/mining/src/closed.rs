//! Closed frequent-itemset mining (thesis §3.4).
//!
//! A closed itemset (Def. 3.4.1) has no proper superset with the same
//! support. The thesis mines *closed* itemsets so that every generated
//! drug-ADR rule is a **supported** association (Lemma 3.4.2) — i.e. either
//! explicitly stated by one report or implicitly corroborated by at least two
//! (Defs. 3.3.1/3.3.2) — rather than a spurious partial reading of a report.
//!
//! The production miner here exploits a simple completeness property: if a
//! frequent itemset `S` is non-closed, some one-item extension `S ∪ {i}` has
//! the same support, and — having the same support ≥ the threshold — is
//! itself frequent and therefore present in the FP-Growth output. So closed
//! sets fall out of one hash pass over the frequent sets, with no subsumption
//! scans. The pass runs entirely over [`PatternStore`] slices: the hash table
//! borrows the arena buffer, candidate parents are assembled in one reused
//! scratch vector, and lengths are walked top-down through the store's
//! per-length index — no per-pattern `ItemSet` is cloned. A naive
//! closure-operator miner is kept for differential testing.

use crate::fpgrowth::{fpgrowth, FrequentItemset};
use crate::items::Item;
use crate::parallel::mine_patterns_parallel;
use crate::store::{PatternRef, PatternStore};
use crate::transactions::TransactionDb;
use rustc_hash::FxHashMap;

/// Mines all closed frequent itemsets of `db` at the given absolute support
/// threshold.
pub fn closed_itemsets(db: &TransactionDb, min_support: u64) -> Vec<FrequentItemset> {
    ClosedMiner::new(min_support).mine(db)
}

/// Identifies the closed patterns of a mined frequent-pattern store.
///
/// One hash pass over borrowed arena slices: every pattern of length ≥ 2
/// marks each of its length-1-smaller parents non-closed when the parent has
/// equal support. Lengths are walked top-down via [`PatternStore::refs_by_len`];
/// the returned refs are in store record order.
pub fn closed_refs(store: &PatternStore) -> Vec<PatternRef> {
    let mut by_items: FxHashMap<&[Item], (u64, u32)> = FxHashMap::default();
    by_items.reserve(store.len());
    for r in store.refs() {
        by_items.insert(store.items(r), (store.support(r), r.index() as u32));
    }
    let mut is_closed = vec![true; store.len()];
    let by_len = store.refs_by_len();
    let mut parent: Vec<Item> = Vec::new();
    for len in (2..by_len.len()).rev() {
        for &r in &by_len[len] {
            let items = store.items(r);
            let support = store.support(r);
            for drop in 0..items.len() {
                parent.clear();
                parent.extend_from_slice(&items[..drop]);
                parent.extend_from_slice(&items[drop + 1..]);
                if let Some(&(psup, pidx)) = by_items.get(parent.as_slice()) {
                    if psup == support {
                        is_closed[pidx as usize] = false;
                    }
                }
            }
        }
    }
    store.refs().filter(|r| is_closed[r.index()]).collect()
}

/// Mines the closed frequent patterns of `db` into a fresh [`PatternStore`],
/// using `n_threads` mining workers, ordered by descending support then
/// ascending itemset (the canonical presentation order). Returns the closed
/// store together with the total frequent-pattern count.
pub fn closed_patterns(
    db: &TransactionDb,
    min_support: u64,
    n_threads: usize,
) -> (PatternStore, u64) {
    let store = mine_patterns_parallel(db, min_support, n_threads);
    let mut refs = closed_refs(&store);
    refs.sort_unstable_by(|&a, &b| {
        store.support(b).cmp(&store.support(a)).then_with(|| store.items(a).cmp(store.items(b)))
    });
    let mut closed = PatternStore::with_capacity(refs.len(), 0);
    for r in refs {
        closed.push(store.items(r), store.support(r));
    }
    (closed, store.len() as u64)
}

/// Reusable closed-itemset miner.
///
/// Splitting construction from [`ClosedMiner::mine`] lets benchmarks reuse
/// configuration and lets callers interrogate [`ClosedMiner::frequent_count`]
/// afterwards (Fig. 5.1 reports the unfiltered pattern count alongside the
/// closed count).
#[derive(Debug, Clone)]
pub struct ClosedMiner {
    min_support: u64,
    frequent_count: u64,
}

impl ClosedMiner {
    /// Creates a miner with an absolute support threshold (clamped to ≥ 1).
    pub fn new(min_support: u64) -> Self {
        ClosedMiner { min_support: min_support.max(1), frequent_count: 0 }
    }

    /// Number of frequent itemsets seen by the last [`ClosedMiner::mine`] call.
    pub fn frequent_count(&self) -> u64 {
        self.frequent_count
    }

    /// Mines closed frequent itemsets.
    pub fn mine(&mut self, db: &TransactionDb) -> Vec<FrequentItemset> {
        let (closed, frequent_count) = closed_patterns(db, self.min_support, 1);
        self.frequent_count = frequent_count;
        closed.to_frequent_itemsets()
    }
}

/// Reference implementation: mines all frequent itemsets and keeps those the
/// database's Galois closure operator fixes. Quadratic-ish; used only in
/// tests and for small differential checks.
pub fn closed_itemsets_naive(db: &TransactionDb, min_support: u64) -> Vec<FrequentItemset> {
    let mut out = Vec::new();
    fpgrowth(db, min_support, |s, sup| {
        if db.is_closed(s) {
            out.push(FrequentItemset { items: s.clone(), support: sup });
        }
    });
    out.sort_unstable_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{Item, ItemSet};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn single_report_yields_one_closed_set() {
        // Thesis §3.3: one report {d1,d2 ⇒ a1,a2} explodes into 9 rules under
        // plain mining, but the only closed itemset is the full report.
        let d = db(&[&[0, 1, 10, 11]]);
        let closed = closed_itemsets(&d, 1);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].items, set(&[0, 1, 10, 11]));
        assert_eq!(closed[0].support, 1);
    }

    #[test]
    fn implicit_overlap_becomes_closed() {
        // Two reports share {d0, a10}: the shared part is implicitly
        // supported (Def. 3.3.2) and must surface as a closed set.
        let d = db(&[&[0, 1, 10], &[0, 2, 10]]);
        let closed = closed_itemsets(&d, 1);
        let sets: Vec<&ItemSet> = closed.iter().map(|f| &f.items).collect();
        assert!(sets.contains(&&set(&[0, 10])), "shared overlap missing: {sets:?}");
        assert!(sets.contains(&&set(&[0, 1, 10])));
        assert!(sets.contains(&&set(&[0, 2, 10])));
        // {0} alone closes to {0,10}; must not appear.
        assert!(!sets.contains(&&set(&[0])));
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn respects_min_support() {
        let d = db(&[&[1, 2], &[1, 2], &[3]]);
        let closed = closed_itemsets(&d, 2);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].items, set(&[1, 2]));
        assert_eq!(closed[0].support, 2);
    }

    #[test]
    fn frequent_count_tracks_unfiltered_space() {
        let d = db(&[&[0, 1, 10, 11]]);
        let mut miner = ClosedMiner::new(1);
        let closed = miner.mine(&d);
        assert_eq!(closed.len(), 1);
        assert_eq!(miner.frequent_count(), 15); // 2^4 - 1 subsets all frequent
    }

    #[test]
    fn matches_naive_on_fixed_example() {
        let d = db(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        for ms in 1..=3 {
            assert_eq!(closed_itemsets(&d, ms), closed_itemsets_naive(&d, ms), "ms={ms}");
        }
    }

    #[test]
    fn every_closed_set_is_closed_in_db() {
        let d = db(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3], &[1, 2, 3]]);
        for f in closed_itemsets(&d, 1) {
            assert!(d.is_closed(&f.items), "{} not closed", f.items);
            assert_eq!(d.support(&f.items) as u64, f.support);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
            proptest::collection::vec(proptest::collection::vec(0u32..10, 0..6), 0..20)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn fast_matches_naive(rows in arb_rows(), ms in 1u64..4) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                prop_assert_eq!(closed_itemsets(&d, ms), closed_itemsets_naive(&d, ms));
            }

            #[test]
            fn closed_sets_cover_all_supports(rows in arb_rows()) {
                // Losslessness: every frequent itemset's support equals the
                // support of its closure, which must be among the closed sets.
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                let closed = closed_itemsets(&d, 1);
                let mut ok = true;
                fpgrowth(&d, 1, |s, sup| {
                    let c = d.closure(s);
                    ok &= closed.iter().any(|f| f.items == c && f.support == sup);
                });
                prop_assert!(ok);
            }
        }
    }
}
