//! Items and itemsets.
//!
//! An [`Item`] is a dense `u32` identifier for either a drug or an ADR term.
//! An [`ItemSet`] is a duplicate-free, ascending-sorted set of items — the
//! representation every miner and rule structure in the workspace shares.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single item: a drug or an ADR preferred term, identified by a dense id.
///
/// The drug/ADR partition is *not* encoded here; `maras-rules` interprets the
/// id space via an [`ItemPartition`](https://docs.rs/maras-rules)-style
/// threshold. Keeping `Item` a bare newtype keeps the miners fully generic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Item(pub u32);

impl Item {
    /// Raw id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for Item {
    fn from(v: u32) -> Self {
        Item(v)
    }
}

/// A sorted, duplicate-free set of [`Item`]s.
///
/// Invariant: `items` is strictly ascending. All constructors enforce this;
/// the invariant is property-tested in this module and relied on by the
/// subset/merge routines (which are linear merges, not hash probes).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ItemSet {
    items: Vec<Item>,
}

impl ItemSet {
    /// The empty itemset.
    pub fn empty() -> Self {
        ItemSet { items: Vec::new() }
    }

    /// Builds an itemset from arbitrary items, sorting and de-duplicating.
    pub fn from_items(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        ItemSet { items }
    }

    /// Builds an itemset from raw ids, sorting and de-duplicating.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::from_items(ids.into_iter().map(Item).collect())
    }

    /// Builds from a vector that is already strictly ascending.
    ///
    /// # Panics
    /// In debug builds, panics if the input is not strictly ascending.
    pub fn from_sorted_unchecked(items: Vec<Item>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items not strictly ascending");
        ItemSet { items }
    }

    /// A singleton itemset.
    pub fn singleton(item: Item) -> Self {
        ItemSet { items: vec![item] }
    }

    /// Number of items (the itemset's cardinality `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether this is the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items in ascending order.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Item> + '_ {
        self.items.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// `self ⊆ other`, by linear merge.
    pub fn is_subset_of(&self, other: &ItemSet) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        let mut oi = other.items.iter();
        'outer: for s in &self.items {
            for o in oi.by_ref() {
                match o.cmp(s) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `self ⊂ other` (proper subset).
    pub fn is_proper_subset_of(&self, other: &ItemSet) -> bool {
        self.items.len() < other.items.len() && self.is_subset_of(other)
    }

    /// Set union, preserving the sorted invariant.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut a, mut b) = (self.items.iter().peekable(), other.items.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    use std::cmp::Ordering::*;
                    match x.cmp(&y) {
                        Less => {
                            out.push(x);
                            a.next();
                        }
                        Greater => {
                            out.push(y);
                            b.next();
                        }
                        Equal => {
                            out.push(x);
                            a.next();
                            b.next();
                        }
                    }
                }
                (Some(&&x), None) => {
                    out.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    out.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        ItemSet { items: out }
    }

    /// Set intersection, preserving the sorted invariant.
    pub fn intersection(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.items.len() && j < other.items.len() {
            use std::cmp::Ordering::*;
            match self.items[i].cmp(&other.items[j]) {
                Less => i += 1,
                Greater => j += 1,
                Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ItemSet { items: out }
    }

    /// Set difference `self \ other`, preserving the sorted invariant.
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::new();
        let mut j = 0usize;
        for &x in &self.items {
            while j < other.items.len() && other.items[j] < x {
                j += 1;
            }
            if j >= other.items.len() || other.items[j] != x {
                out.push(x);
            }
        }
        ItemSet { items: out }
    }

    /// Returns a new itemset with `item` inserted.
    pub fn with(&self, item: Item) -> ItemSet {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut items = self.items.clone();
                items.insert(pos, item);
                ItemSet { items }
            }
        }
    }

    /// Returns a new itemset with `item` removed (if present).
    pub fn without(&self, item: Item) -> ItemSet {
        match self.items.binary_search(&item) {
            Ok(pos) => {
                let mut items = self.items.clone();
                items.remove(pos);
                ItemSet { items }
            }
            Err(_) => self.clone(),
        }
    }

    /// Splits the itemset into (items < `pivot`, items ≥ `pivot`).
    ///
    /// Used by `maras-rules` to partition an itemset into its drug and ADR
    /// halves when the id space places all drugs below all ADRs.
    pub fn split_at_item(&self, pivot: Item) -> (ItemSet, ItemSet) {
        let pos = self.items.partition_point(|&i| i < pivot);
        (
            ItemSet { items: self.items[..pos].to_vec() },
            ItemSet { items: self.items[pos..].to_vec() },
        )
    }

    /// All non-empty proper subsets of this itemset.
    ///
    /// Exponential; intended for the small antecedents (≤ ~8 drugs) the MCAC
    /// context construction enumerates (thesis Def. 3.5.2).
    pub fn proper_nonempty_subsets(&self) -> Vec<ItemSet> {
        let n = self.items.len();
        assert!(n <= 24, "refusing to enumerate 2^{n} subsets");
        let full = (1u32 << n) - 1;
        let mut out = Vec::with_capacity(full.saturating_sub(1) as usize);
        for mask in 1..full {
            let items = (0..n).filter(|b| mask & (1 << b) != 0).map(|b| self.items[b]).collect();
            out.push(ItemSet { items });
        }
        out
    }
}

impl FromIterator<Item> for ItemSet {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Self::from_items(iter.into_iter().collect())
    }
}

impl fmt::Display for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn from_items_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.items(), &[Item(1), Item(3), Item(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_set_properties() {
        let e = ItemSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset_of(&set(&[1, 2])));
        assert!(!e.contains(Item(1)));
    }

    #[test]
    fn subset_relations() {
        let a = set(&[1, 3]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_proper_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(b.is_subset_of(&b));
        assert!(!b.is_proper_subset_of(&b));
        assert!(!set(&[1, 4]).is_subset_of(&b));
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&[1, 2, 5]);
        let b = set(&[2, 3, 5, 7]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 5, 7]));
        assert_eq!(a.intersection(&b), set(&[2, 5]));
        assert_eq!(a.difference(&b), set(&[1]));
        assert_eq!(b.difference(&a), set(&[3, 7]));
    }

    #[test]
    fn with_and_without() {
        let a = set(&[1, 3]);
        assert_eq!(a.with(Item(2)), set(&[1, 2, 3]));
        assert_eq!(a.with(Item(3)), a);
        assert_eq!(a.without(Item(3)), set(&[1]));
        assert_eq!(a.without(Item(9)), a);
    }

    #[test]
    fn split_at_item_partitions() {
        let s = set(&[1, 2, 10, 11]);
        let (lo, hi) = s.split_at_item(Item(10));
        assert_eq!(lo, set(&[1, 2]));
        assert_eq!(hi, set(&[10, 11]));
        let (lo, hi) = s.split_at_item(Item(0));
        assert!(lo.is_empty());
        assert_eq!(hi, s);
    }

    #[test]
    fn proper_nonempty_subsets_of_three() {
        let s = set(&[1, 2, 3]);
        let subs = s.proper_nonempty_subsets();
        assert_eq!(subs.len(), 6); // 2^3 - 2
        assert!(subs.contains(&set(&[1])));
        assert!(subs.contains(&set(&[2, 3])));
        assert!(!subs.contains(&s));
        assert!(!subs.contains(&ItemSet::empty()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(set(&[1, 2]).to_string(), "{i1, i2}");
        assert_eq!(ItemSet::empty().to_string(), "{}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_itemset() -> impl Strategy<Value = ItemSet> {
            proptest::collection::vec(0u32..50, 0..12).prop_map(ItemSet::from_ids)
        }

        proptest! {
            #[test]
            fn sorted_invariant_holds(s in arb_itemset()) {
                prop_assert!(s.items().windows(2).all(|w| w[0] < w[1]));
            }

            #[test]
            fn union_is_commutative_and_superset(a in arb_itemset(), b in arb_itemset()) {
                let u = a.union(&b);
                prop_assert_eq!(u.clone(), b.union(&a));
                prop_assert!(a.is_subset_of(&u));
                prop_assert!(b.is_subset_of(&u));
                prop_assert!(u.items().windows(2).all(|w| w[0] < w[1]));
            }

            #[test]
            fn intersection_subset_of_both(a in arb_itemset(), b in arb_itemset()) {
                let i = a.intersection(&b);
                prop_assert!(i.is_subset_of(&a));
                prop_assert!(i.is_subset_of(&b));
            }

            #[test]
            fn difference_and_intersection_partition(a in arb_itemset(), b in arb_itemset()) {
                let d = a.difference(&b);
                let i = a.intersection(&b);
                prop_assert_eq!(d.union(&i), a.clone());
                prop_assert!(d.intersection(&b).is_empty());
            }

            #[test]
            fn subset_iff_union_equals_superset(a in arb_itemset(), b in arb_itemset()) {
                prop_assert_eq!(a.is_subset_of(&b), a.union(&b) == b);
            }

            #[test]
            fn contains_matches_linear_scan(s in arb_itemset(), id in 0u32..50) {
                prop_assert_eq!(s.contains(Item(id)), s.items().contains(&Item(id)));
            }
        }
    }
}
