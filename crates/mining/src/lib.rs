//! Frequent- and closed-itemset mining substrate for MARAS.
//!
//! This crate implements the pattern-mining layer the paper's methodology is
//! built on (thesis §2, §3.4, §5.2 step 2):
//!
//! * [`Item`] / [`ItemSet`] — the item vocabulary. Drugs and ADRs share one
//!   dense `u32` id space; the partition between them is owned by the caller
//!   (see `maras-rules`).
//! * [`TransactionDb`] — an abstracted ADR-report database: one transaction
//!   per report, holding the union of its drug and ADR items, plus vertical
//!   tid-lists so the support of *any* itemset (frequent or not) can be
//!   counted exactly. Contextual rules in the MCAC model routinely fall below
//!   the mining support threshold, so exact ad-hoc counting is a hard
//!   requirement.
//! * [`FpTree`] / [`fpgrowth()`] — FP-Growth over an index-based tree arena
//!   (no `Rc`/`RefCell`; the Rust-performance guide's arena idiom).
//! * [`PatternStore`] / [`PatternSink`] — arena-backed pattern storage and
//!   the zero-allocation emission boundary. Miners stream sorted `&[Item]`
//!   slices into a sink; patterns live in one flat buffer addressed by
//!   [`PatternRef`]s, so the 10⁶–10⁷-pattern spaces of Fig. 5.1 cost two
//!   `Vec`s instead of millions of boxed sets, and the parallel miner's
//!   per-worker arenas merge by rebase.
//! * [`closed`] — CLOSET-style closed-itemset mining (item merging +
//!   subsumption table), the paper's §3.4 device for eliminating spurious
//!   drug-ADR associations, with a naive reference implementation used for
//!   differential testing.
//! * [`apriori()`] — a classic Apriori miner used as the "traditional
//!   association rule mining" baseline of Fig. 5.1 and for differential
//!   testing against FP-Growth.

#![warn(missing_docs)]

pub mod apriori;
pub mod closed;
pub mod fpgrowth;
pub mod fptree;
pub mod items;
pub mod maximal;
pub mod parallel;
pub mod store;
pub mod transactions;

pub use apriori::apriori;
pub use closed::{
    closed_itemsets, closed_itemsets_naive, closed_patterns, closed_refs, ClosedMiner,
};
pub use fpgrowth::{fpgrowth, fpgrowth_into, frequent_itemsets, mine_patterns, FrequentItemset};
pub use fptree::FpTree;
pub use items::{Item, ItemSet};
pub use maximal::{maximal_itemsets, top_k_closed};
pub use parallel::{count_frequent_parallel, frequent_itemsets_parallel, mine_patterns_parallel};
pub use store::{CountSink, FnSink, PatternRef, PatternSink, PatternStore};
pub use transactions::{TidSet, TransactionDb};
