//! Frequent- and closed-itemset mining substrate for MARAS.
//!
//! This crate implements the pattern-mining layer the paper's methodology is
//! built on (thesis §2, §3.4, §5.2 step 2):
//!
//! * [`Item`] / [`ItemSet`] — the item vocabulary. Drugs and ADRs share one
//!   dense `u32` id space; the partition between them is owned by the caller
//!   (see `maras-rules`).
//! * [`TransactionDb`] — an abstracted ADR-report database: one transaction
//!   per report, holding the union of its drug and ADR items, plus vertical
//!   tid-lists so the support of *any* itemset (frequent or not) can be
//!   counted exactly. Contextual rules in the MCAC model routinely fall below
//!   the mining support threshold, so exact ad-hoc counting is a hard
//!   requirement.
//! * [`FpTree`] / [`fpgrowth()`] — FP-Growth over an index-based tree arena
//!   (no `Rc`/`RefCell`; the Rust-performance guide's arena idiom).
//! * [`closed`] — CLOSET-style closed-itemset mining (item merging +
//!   subsumption table), the paper's §3.4 device for eliminating spurious
//!   drug-ADR associations, with a naive reference implementation used for
//!   differential testing.
//! * [`apriori()`] — a classic Apriori miner used as the "traditional
//!   association rule mining" baseline of Fig. 5.1 and for differential
//!   testing against FP-Growth.

#![warn(missing_docs)]

pub mod apriori;
pub mod closed;
pub mod fpgrowth;
pub mod fptree;
pub mod items;
pub mod maximal;
pub mod parallel;
pub mod transactions;

pub use apriori::apriori;
pub use closed::{closed_itemsets, closed_itemsets_naive, ClosedMiner};
pub use fpgrowth::{fpgrowth, frequent_itemsets, FrequentItemset};
pub use fptree::FpTree;
pub use items::{Item, ItemSet};
pub use maximal::{maximal_itemsets, top_k_closed};
pub use parallel::{count_frequent_parallel, frequent_itemsets_parallel};
pub use transactions::{TidSet, TransactionDb};
