//! FP-Growth frequent-itemset mining.
//!
//! The miner streams every frequent itemset to a caller-supplied sink so
//! large rule spaces (Fig. 5.1 reports up to 10⁶–10⁷ associations) can be
//! counted or filtered without materializing them all.

use crate::fptree::FpTree;
use crate::items::{Item, ItemSet};
use crate::store::{PatternSink, PatternStore};
use crate::transactions::TransactionDb;
use rustc_hash::FxHashMap;

/// A mined frequent itemset with its absolute support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The itemset.
    pub items: ItemSet,
    /// Absolute support (number of containing transactions).
    pub support: u64,
}

/// Longest single path that still gets the combination shortcut; longer
/// paths fall back to plain recursion to bound the 2^len blow-up.
const SINGLE_PATH_CAP: usize = 16;

/// Runs FP-Growth, invoking `sink(itemset, support)` for every frequent
/// itemset (of length ≥ 1) with `support ≥ min_support`.
///
/// ```
/// use maras_mining::{fpgrowth, Item, TransactionDb};
/// let db = TransactionDb::new(vec![
///     vec![Item(1), Item(2)],
///     vec![Item(1), Item(2)],
///     vec![Item(1), Item(3)],
/// ]);
/// let mut n = 0;
/// fpgrowth(&db, 2, |itemset, support| {
///     assert!(support >= 2);
///     assert!(!itemset.is_empty());
///     n += 1;
/// });
/// assert_eq!(n, 3); // {1}, {2}, {1,2}
/// ```
///
/// `min_support` is absolute (a report count); the thesis mines with a very
/// low threshold to keep rare drug combinations (§1.3 "a low support is
/// necessary"). A `min_support` of 0 is clamped to 1: support-0 itemsets are
/// not patterns of the data.
pub fn fpgrowth<F: FnMut(&ItemSet, u64)>(db: &TransactionDb, min_support: u64, sink: F) {
    struct Adapter<F>(F);
    impl<F: FnMut(&ItemSet, u64)> PatternSink for Adapter<F> {
        fn emit(&mut self, items: &[Item], support: u64) {
            (self.0)(&ItemSet::from_sorted_unchecked(items.to_vec()), support)
        }
    }
    fpgrowth_into(db, min_support, &mut Adapter(sink));
}

/// Runs FP-Growth, streaming every frequent itemset into `sink` as a
/// strictly-ascending `&[Item]` slice — the zero-allocation emission path.
///
/// Equivalent to [`fpgrowth`] but without materializing an [`ItemSet`] per
/// pattern: the slice lives in a reused scratch buffer and is only valid for
/// the duration of each [`PatternSink::emit`] call.
pub fn fpgrowth_into<S: PatternSink>(db: &TransactionDb, min_support: u64, sink: &mut S) {
    let min_support = min_support.max(1);
    let tree = build_global_tree(db, min_support);
    let mut prefix: Vec<Item> = Vec::new();
    let mut scratch: Vec<Item> = Vec::new();
    mine_into(&tree, min_support, &mut prefix, &mut scratch, sink);
}

/// Mines the frequent-pattern space into a fresh [`PatternStore`], in the
/// miner's emission order (use [`PatternStore::sort_by_items`] for the
/// canonical order).
pub fn mine_patterns(db: &TransactionDb, min_support: u64) -> PatternStore {
    let mut store = PatternStore::new();
    fpgrowth_into(db, min_support, &mut store);
    store
}

/// Builds the global FP-tree: items below `min_support` dropped, transaction
/// items reordered by descending global support (ties by ascending id).
/// Shared by the sequential and parallel miners so "suffix item" means the
/// same thing in both.
pub(crate) fn build_global_tree(db: &TransactionDb, min_support: u64) -> FpTree {
    let mut supports: Vec<(Item, u64)> = db
        .item_supports()
        .filter(|&(_, s)| s as u64 >= min_support)
        .map(|(i, s)| (i, s as u64))
        .collect();
    supports.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let rank: FxHashMap<Item, u32> =
        supports.iter().enumerate().map(|(r, &(i, _))| (i, r as u32)).collect();

    let mut tree = FpTree::new();
    let mut buf: Vec<Item> = Vec::new();
    for t in db.transactions() {
        buf.clear();
        buf.extend(t.iter().filter(|i| rank.contains_key(i)));
        buf.sort_unstable_by_key(|i| rank[i]);
        if !buf.is_empty() {
            tree.insert_path(&buf, 1);
        }
    }
    tree.finish();
    tree
}

/// Normalizes `prefix` (which is in mining order, not ascending) into
/// `scratch` and emits it. Items are distinct by construction, so sorting
/// yields a strictly-ascending slice.
#[inline]
fn emit_sorted<S: PatternSink>(
    prefix: &[Item],
    support: u64,
    scratch: &mut Vec<Item>,
    sink: &mut S,
) {
    scratch.clear();
    scratch.extend_from_slice(prefix);
    scratch.sort_unstable();
    sink.emit(scratch, support);
}

pub(crate) fn mine_into<S: PatternSink>(
    tree: &FpTree,
    min_support: u64,
    prefix: &mut Vec<Item>,
    scratch: &mut Vec<Item>,
    sink: &mut S,
) {
    // Single-path shortcut: all combinations of path items are frequent with
    // support = min count of the chosen suffix.
    if let Some(path) = tree.single_path() {
        if path.len() <= SINGLE_PATH_CAP {
            emit_path_combinations(&path, min_support, prefix, scratch, sink);
            return;
        }
    }

    for &item in tree.mining_order() {
        let header = match tree.header(item) {
            Some(h) => h,
            None => continue,
        };
        if header.total < min_support {
            continue;
        }
        prefix.push(item);
        emit_sorted(prefix, header.total, scratch, sink);

        // Conditional pattern base → conditional tree.
        let cond = conditional_tree(tree, item, min_support);
        if cond.mining_order().is_empty() {
            prefix.pop();
            continue;
        }
        mine_into(&cond, min_support, prefix, scratch, sink);
        prefix.pop();
    }
}

/// Builds the conditional FP-tree for `item`: prefix paths of every node in
/// `item`'s thread, with counts propagated and items below `min_support`
/// removed.
pub(crate) fn conditional_tree(tree: &FpTree, item: Item, min_support: u64) -> FpTree {
    // First pass: conditional item supports.
    let mut csup: FxHashMap<Item, u64> = FxHashMap::default();
    let mut path = Vec::new();
    let mut paths: Vec<(Vec<Item>, u64)> = Vec::new();
    for (node, count) in tree.thread(item) {
        tree.prefix_path(node, &mut path);
        if path.is_empty() {
            continue;
        }
        for &i in &path {
            *csup.entry(i).or_insert(0) += count;
        }
        paths.push((path.clone(), count));
    }
    // Order surviving items by conditional support (descending).
    let mut order: Vec<(Item, u64)> =
        csup.iter().filter(|&(_, &s)| s >= min_support).map(|(&i, &s)| (i, s)).collect();
    order.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let rank: FxHashMap<Item, u32> =
        order.iter().enumerate().map(|(r, &(i, _))| (i, r as u32)).collect();

    let mut cond = FpTree::new();
    let mut buf = Vec::new();
    for (p, count) in paths {
        buf.clear();
        buf.extend(p.into_iter().filter(|i| rank.contains_key(i)));
        buf.sort_unstable_by_key(|i| rank[i]);
        if !buf.is_empty() {
            cond.insert_path(&buf, count);
        }
    }
    cond.finish();
    cond
}

/// Emits every non-empty combination of a single path, each unioned with the
/// current prefix. `path` is in root→leaf order so counts are non-increasing;
/// a combination's support is the count of its deepest item.
fn emit_path_combinations<S: PatternSink>(
    path: &[(Item, u64)],
    min_support: u64,
    prefix: &[Item],
    scratch: &mut Vec<Item>,
    sink: &mut S,
) {
    let n = path.len();
    if n == 0 {
        return;
    }
    debug_assert!(path.windows(2).all(|w| w[0].1 >= w[1].1), "path counts must be non-increasing");
    for mask in 1u32..(1 << n) {
        let deepest = 31 - mask.leading_zeros();
        let support = path[deepest as usize].1;
        if support < min_support {
            continue;
        }
        scratch.clear();
        scratch.extend_from_slice(prefix);
        scratch.extend((0..n).filter(|b| mask & (1 << b) != 0).map(|b| path[b].0));
        scratch.sort_unstable();
        sink.emit(scratch, support);
    }
}

/// Convenience wrapper: collects all frequent itemsets into a vector.
pub fn frequent_itemsets(db: &TransactionDb, min_support: u64) -> Vec<FrequentItemset> {
    let mut out = Vec::new();
    fpgrowth(db, min_support, |s, sup| {
        out.push(FrequentItemset { items: s.clone(), support: sup })
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn mined_map(d: &TransactionDb, min_support: u64) -> FxHashMap<ItemSet, u64> {
        let mut m = FxHashMap::default();
        fpgrowth(d, min_support, |s, sup| {
            let prev = m.insert(s.clone(), sup);
            assert!(prev.is_none(), "itemset {s} emitted twice");
        });
        m
    }

    #[test]
    fn classic_small_example() {
        // Han's textbook example (simplified).
        let d = db(&[
            &[1, 2, 5],
            &[2, 4],
            &[2, 3],
            &[1, 2, 4],
            &[1, 3],
            &[2, 3],
            &[1, 3],
            &[1, 2, 3, 5],
            &[1, 2, 3],
        ]);
        let m = mined_map(&d, 2);
        assert_eq!(m[&ItemSet::from_ids([1])], 6);
        assert_eq!(m[&ItemSet::from_ids([2])], 7);
        assert_eq!(m[&ItemSet::from_ids([1, 2])], 4);
        assert_eq!(m[&ItemSet::from_ids([1, 2, 5])], 2);
        assert_eq!(m[&ItemSet::from_ids([2, 3])], 4);
        assert!(!m.contains_key(&ItemSet::from_ids([4, 5])));
    }

    #[test]
    fn supports_match_db_counts() {
        let d = db(&[&[1, 2, 3], &[1, 2], &[1, 3], &[2, 3], &[1, 2, 3]]);
        let m = mined_map(&d, 1);
        for (s, sup) in &m {
            assert_eq!(*sup, d.support(s) as u64, "support mismatch for {s}");
        }
        // Completeness: every subset of every transaction with support>=1 present.
        assert_eq!(m.len(), 7); // {1},{2},{3},{12},{13},{23},{123}
    }

    #[test]
    fn min_support_zero_clamped() {
        let d = db(&[&[1]]);
        let m = mined_map(&d, 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_db_yields_nothing() {
        let d = db(&[]);
        assert!(frequent_itemsets(&d, 1).is_empty());
        let d2 = db(&[&[], &[]]);
        assert!(frequent_itemsets(&d2, 1).is_empty());
    }

    #[test]
    fn high_threshold_prunes_everything() {
        let d = db(&[&[1, 2], &[2, 3]]);
        assert!(frequent_itemsets(&d, 3).is_empty());
    }

    #[test]
    fn duplicate_transactions_accumulate() {
        let d = db(&[&[7, 8], &[7, 8], &[7, 8]]);
        let m = mined_map(&d, 2);
        assert_eq!(m[&ItemSet::from_ids([7, 8])], 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
            proptest::collection::vec(proptest::collection::vec(0u32..12, 0..6), 0..25)
        }

        /// Brute-force frequent itemsets by enumerating subsets of occurring items.
        fn brute(d: &TransactionDb, min_support: u64) -> FxHashMap<ItemSet, u64> {
            let items: Vec<Item> = {
                let mut v: Vec<Item> = d.item_supports().map(|(i, _)| i).collect();
                v.sort_unstable();
                v
            };
            let n = items.len();
            let mut out = FxHashMap::default();
            if n == 0 || n > 14 {
                if n > 14 {
                    panic!("brute force domain too large");
                }
                return out;
            }
            for mask in 1u32..(1 << n) {
                let s: ItemSet =
                    (0..n).filter(|b| mask & (1 << b) != 0).map(|b| items[b]).collect();
                let sup = d.support(&s) as u64;
                if sup >= min_support {
                    out.insert(s, sup);
                }
            }
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn matches_bruteforce(rows in arb_rows(), min_support in 1u64..4) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                let mined = mined_map(&d, min_support);
                let expect = brute(&d, min_support);
                prop_assert_eq!(mined, expect);
            }
        }
    }
}
