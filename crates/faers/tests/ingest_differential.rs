//! Differential tests: the zero-copy parallel reader must be
//! byte-identical to the legacy sequential reader — same `QuarterData`,
//! same `IngestReport` (including quarantine ledger order), same terminal
//! errors (strict offenses, absolute and fractional budget trips) — at
//! every thread count, over seeded fault-injected quarters.
//!
//! The oracle below is a self-contained re-implementation of the reader
//! this crate shipped before the parallel rewrite, kept verbatim so the
//! new path is compared against the actual historical semantics rather
//! than against itself.

use maras_faers::ascii::{
    primary_id, read_quarter_with, AsciiError, ErrorBudget, IngestMode, IngestOptions,
    IngestReport, QuarantineReason, QuarantinedRecord,
};
use maras_faers::faults::{corrupt_quarter, CorruptedQuarter, FaultConfig};
use maras_faers::{
    clean_quarter, CaseReport, CleanConfig, DrugEntry, DrugRole, Outcome, QuarterData, QuarterId,
    ReportType, Sex, SynthConfig, Synthesizer,
};
use rustc_hash::FxHashMap;
use std::collections::hash_map::Entry;

// ---------------------------------------------------------------------------
// Legacy oracle: the pre-rewrite sequential reader, over table strings.
// ---------------------------------------------------------------------------

const DEMO_HEADER: &str =
    "primaryid$caseid$caseversion$rept_cod$age$sex$wt$reporter_country$event_dt";
const DRUG_HEADER: &str = "primaryid$drug_seq$role_cod$drugname";
const REAC_HEADER: &str = "primaryid$pt";
const OUTC_HEADER: &str = "primaryid$outc_cod";

type Offense = (Option<u64>, QuarantineReason, String);

struct LegacySink {
    mode: IngestMode,
    budget: ErrorBudget,
    report: IngestReport,
}

impl LegacySink {
    fn new(id: QuarterId, opts: &IngestOptions) -> Self {
        LegacySink {
            mode: opts.mode,
            budget: opts.budget,
            report: IngestReport {
                quarter: id,
                mode: opts.mode,
                budget: opts.budget,
                demo: Default::default(),
                drug: Default::default(),
                reac: Default::default(),
                outc: Default::default(),
                quarantine: Vec::new(),
            },
        }
    }

    fn offend(
        &mut self,
        file: &'static str,
        line: usize,
        offense: Offense,
        raw: &str,
    ) -> Result<(), AsciiError> {
        let (primaryid, reason, detail) = offense;
        match self.mode {
            IngestMode::Strict => Err(if reason == QuarantineReason::Orphan {
                AsciiError::OrphanRow { file, primaryid: primaryid.unwrap_or(0) }
            } else {
                AsciiError::Malformed { file, line, message: detail }
            }),
            IngestMode::Lenient => {
                self.report.quarantine.push(QuarantinedRecord {
                    file,
                    line,
                    primaryid,
                    reason,
                    detail,
                    raw: raw.to_string(),
                });
                match self.budget.max_bad_rows {
                    Some(max) if self.report.quarantine.len() > max => Err(self.budget_exceeded()),
                    _ => Ok(()),
                }
            }
        }
    }

    fn budget_exceeded(&self) -> AsciiError {
        AsciiError::BudgetExceeded {
            bad_rows: self.report.quarantine.len(),
            rows_read: self.report.rows_read(),
            budget: self.budget,
            first: Box::new(self.report.quarantine[0].clone()),
        }
    }

    fn check_header(&mut self, file: &'static str, all: &[&str]) -> Result<(), AsciiError> {
        let expected = match file {
            "DEMO" => DEMO_HEADER,
            "DRUG" => DRUG_HEADER,
            "REAC" => REAC_HEADER,
            _ => OUTC_HEADER,
        };
        match all.first() {
            None => {
                let offense = (None, QuarantineReason::HeaderDamage, "missing header".to_string());
                self.offend(file, 1, offense, "")
            }
            Some(line) if *line != expected => {
                let offense =
                    (None, QuarantineReason::HeaderDamage, format!("bad header {line:?}"));
                self.offend(file, 1, offense, line)
            }
            Some(_) => Ok(()),
        }
    }
}

fn orphan_check(by_pid: &FxHashMap<u64, usize>, pid: u64) -> Result<(), Offense> {
    if by_pid.contains_key(&pid) {
        Ok(())
    } else {
        let msg = format!("row references unknown primaryid {pid}");
        Err((Some(pid), QuarantineReason::Orphan, msg))
    }
}

fn parse_opt_f32(field: &str) -> Result<Option<f32>, std::num::ParseFloatError> {
    if field.is_empty() {
        Ok(None)
    } else {
        field.parse().map(Some)
    }
}

fn parse_demo_row(fields: &[&str]) -> Result<(u64, CaseReport), Offense> {
    use QuarantineReason as Q;
    if fields.len() != 9 {
        return Err((None, Q::FieldCount, format!("expected 9 fields, got {}", fields.len())));
    }
    let pid: u64 = fields[0]
        .parse()
        .map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))?;
    let case_id: u64 = fields[1]
        .parse()
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad caseid {:?}", fields[1])))?;
    let version: u32 = fields[2]
        .parse()
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad caseversion {:?}", fields[2])))?;
    let report_type = ReportType::from_code(fields[3])
        .ok_or_else(|| (Some(pid), Q::UnknownCode, format!("bad rept_cod {:?}", fields[3])))?;
    let age = parse_opt_f32(fields[4])
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad age {:?}", fields[4])))?;
    let sex = Sex::from_code(fields[5]);
    let weight_kg = parse_opt_f32(fields[6])
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad wt {:?}", fields[6])))?;
    let event_date = if fields[8].is_empty() {
        None
    } else {
        Some(
            fields[8]
                .parse()
                .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad event_dt {:?}", fields[8])))?,
        )
    };
    if primary_id(case_id, version) != pid {
        return Err((
            Some(pid),
            Q::InconsistentPrimaryid,
            format!("primaryid {pid} inconsistent with caseid {case_id} v{version}"),
        ));
    }
    Ok((
        pid,
        CaseReport {
            case_id,
            version,
            report_type,
            age,
            sex,
            weight_kg,
            country: fields[7].into(),
            event_date,
            drugs: Vec::new(),
            reactions: Vec::new(),
            outcomes: Vec::new(),
        },
    ))
}

fn parse_drug_row(fields: &[&str]) -> Result<(u64, u32, DrugEntry), Offense> {
    use QuarantineReason as Q;
    if fields.len() != 4 {
        return Err((None, Q::FieldCount, format!("expected 4 fields, got {}", fields.len())));
    }
    let pid: u64 = fields[0]
        .parse()
        .map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))?;
    let seq: u32 = fields[1]
        .parse()
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad drug_seq {:?}", fields[1])))?;
    let role = DrugRole::from_code(fields[2])
        .ok_or_else(|| (Some(pid), Q::UnknownCode, format!("bad role_cod {:?}", fields[2])))?;
    Ok((pid, seq, DrugEntry::new(fields[3], role)))
}

fn parse_reac_row<'a>(fields: &[&'a str]) -> Result<(u64, &'a str), Offense> {
    use QuarantineReason as Q;
    if fields.len() != 2 {
        return Err((None, Q::FieldCount, format!("expected 2 fields, got {}", fields.len())));
    }
    let pid: u64 = fields[0]
        .parse()
        .map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))?;
    Ok((pid, fields[1]))
}

fn parse_outc_pid(fields: &[&str]) -> Result<u64, Offense> {
    use QuarantineReason as Q;
    if fields.len() != 2 {
        return Err((None, Q::FieldCount, format!("expected 2 fields, got {}", fields.len())));
    }
    fields[0].parse().map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))
}

fn parse_outc_code(fields: &[&str]) -> Result<Outcome, Offense> {
    Outcome::from_code(fields[1]).ok_or_else(|| {
        (None, QuarantineReason::UnknownCode, format!("bad outc_cod {:?}", fields[1]))
    })
}

/// The legacy sequential read, table by table, row by row.
fn legacy_read(
    cq: &CorruptedQuarter,
    opts: &IngestOptions,
) -> Result<(QuarterData, IngestReport), AsciiError> {
    let id = cq.id;
    let mut reports: Vec<CaseReport> = Vec::new();
    let mut by_pid: FxHashMap<u64, usize> = FxHashMap::default();
    let mut sink = LegacySink::new(id, opts);

    let demo_lines: Vec<&str> = cq.demo.lines().collect();
    sink.check_header("DEMO", &demo_lines)?;
    for (lineno, line) in demo_lines.iter().enumerate().skip(1) {
        sink.report.demo.rows += 1;
        let fields: Vec<&str> = line.split('$').collect();
        match parse_demo_row(&fields) {
            Err(offense) => {
                sink.offend("DEMO", lineno + 1, offense, line)?;
                sink.report.demo.quarantined += 1;
            }
            Ok((pid, report)) => match by_pid.entry(pid) {
                Entry::Occupied(_) => {
                    let offense = (
                        Some(pid),
                        QuarantineReason::DuplicatePrimaryid,
                        format!("duplicate primaryid {pid}"),
                    );
                    sink.offend("DEMO", lineno + 1, offense, line)?;
                    sink.report.demo.quarantined += 1;
                }
                Entry::Vacant(slot) => {
                    slot.insert(reports.len());
                    reports.push(report);
                    sink.report.demo.ok += 1;
                }
            },
        }
    }

    let drug_lines: Vec<&str> = cq.drug.lines().collect();
    sink.check_header("DRUG", &drug_lines)?;
    let mut drug_rows: Vec<(u64, u32, DrugEntry)> = Vec::new();
    for (lineno, line) in drug_lines.iter().enumerate().skip(1) {
        sink.report.drug.rows += 1;
        let fields: Vec<&str> = line.split('$').collect();
        match parse_drug_row(&fields).and_then(|row| orphan_check(&by_pid, row.0).map(|()| row)) {
            Err(offense) => {
                sink.offend("DRUG", lineno + 1, offense, line)?;
                sink.report.drug.quarantined += 1;
            }
            Ok(row) => {
                drug_rows.push(row);
                sink.report.drug.ok += 1;
            }
        }
    }
    drug_rows.sort_by_key(|&(pid, seq, _)| (pid, seq));
    for (pid, _, entry) in drug_rows {
        reports[by_pid[&pid]].drugs.push(entry);
    }

    let reac_lines: Vec<&str> = cq.reac.lines().collect();
    sink.check_header("REAC", &reac_lines)?;
    for (lineno, line) in reac_lines.iter().enumerate().skip(1) {
        sink.report.reac.rows += 1;
        let fields: Vec<&str> = line.split('$').collect();
        match parse_reac_row(&fields).and_then(|row| orphan_check(&by_pid, row.0).map(|()| row)) {
            Err(offense) => {
                sink.offend("REAC", lineno + 1, offense, line)?;
                sink.report.reac.quarantined += 1;
            }
            Ok((pid, pt)) => {
                reports[by_pid[&pid]].reactions.push(pt.into());
                sink.report.reac.ok += 1;
            }
        }
    }

    let outc_lines: Vec<&str> = cq.outc.lines().collect();
    sink.check_header("OUTC", &outc_lines)?;
    for (lineno, line) in outc_lines.iter().enumerate().skip(1) {
        sink.report.outc.rows += 1;
        let fields: Vec<&str> = line.split('$').collect();
        let parsed = parse_outc_pid(&fields)
            .and_then(|pid| orphan_check(&by_pid, pid).map(|()| pid))
            .and_then(|pid| parse_outc_code(&fields).map(|o| (pid, o)));
        match parsed {
            Err(offense) => {
                sink.offend("OUTC", lineno + 1, offense, line)?;
                sink.report.outc.quarantined += 1;
            }
            Ok((pid, outcome)) => {
                reports[by_pid[&pid]].outcomes.push(outcome);
                sink.report.outc.ok += 1;
            }
        }
    }

    if let Some(max_frac) = opts.budget.max_bad_frac {
        if opts.mode == IngestMode::Lenient
            && !sink.report.quarantine.is_empty()
            && sink.report.bad_fraction() > max_frac
        {
            return Err(sink.budget_exceeded());
        }
    }

    Ok((QuarterData { id, reports }, sink.report))
}

// ---------------------------------------------------------------------------
// Fixtures and the comparison harness.
// ---------------------------------------------------------------------------

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Four seeded fault-injected quarters at different corruption rates,
/// from 0 (clean) up to 10%.
fn fixture_quarters() -> Vec<CorruptedQuarter> {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(97));
    let quarters = synth.generate_year(2015);
    let faults = [
        FaultConfig::new(7, 0.0),
        FaultConfig::new(11, 0.02),
        FaultConfig::new(13, 0.05),
        FaultConfig::new(17, 0.10),
    ];
    quarters.iter().zip(faults).map(|(q, cfg)| corrupt_quarter(q, &cfg)).collect()
}

fn new_read(
    cq: &CorruptedQuarter,
    opts: &IngestOptions,
) -> Result<(QuarterData, IngestReport), AsciiError> {
    read_quarter_with(
        cq.id,
        cq.demo.as_bytes(),
        cq.drug.as_bytes(),
        cq.reac.as_bytes(),
        cq.outc.as_bytes(),
        opts,
    )
    .map(|i| (i.data, i.report))
}

/// Asserts the new reader agrees with the oracle — success payloads
/// field-for-field (including the quarantine ledger, in order), failures
/// by full debug representation (variant + every field).
fn assert_agrees(cq: &CorruptedQuarter, opts: &IngestOptions, label: &str) {
    let expect = legacy_read(cq, opts);
    for threads in THREAD_COUNTS {
        let opts = (*opts).with_threads(threads);
        let got = new_read(cq, &opts);
        match (&expect, &got) {
            (Ok((edata, ereport)), Ok((gdata, greport))) => {
                assert_eq!(gdata, edata, "{label} @ {threads} threads: data diverged");
                assert_eq!(greport, ereport, "{label} @ {threads} threads: report diverged");
            }
            (Err(e), Err(g)) => {
                assert_eq!(
                    format!("{g:?}"),
                    format!("{e:?}"),
                    "{label} @ {threads} threads: error diverged"
                );
            }
            _ => panic!(
                "{label} @ {threads} threads: outcome diverged\n legacy: {expect:?}\n    new: {got:?}"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// The differential matrix.
// ---------------------------------------------------------------------------

#[test]
fn lenient_unlimited_is_byte_identical_across_thread_counts() {
    for (i, cq) in fixture_quarters().iter().enumerate() {
        assert_agrees(cq, &IngestOptions::lenient(), &format!("quarter {i} lenient"));
    }
}

#[test]
fn strict_mode_fails_identically() {
    for (i, cq) in fixture_quarters().iter().enumerate() {
        assert_agrees(cq, &IngestOptions::strict(), &format!("quarter {i} strict"));
    }
    // Sanity: the dirty quarters actually exercise the error path.
    let dirty = &fixture_quarters()[3];
    assert!(legacy_read(dirty, &IngestOptions::strict()).is_err());
}

#[test]
fn absolute_budget_trips_identically() {
    for (i, cq) in fixture_quarters().iter().enumerate() {
        for max in [0, 1, 3, 10] {
            let opts = IngestOptions::lenient_with(ErrorBudget::max_rows(max));
            assert_agrees(cq, &opts, &format!("quarter {i} max_rows={max}"));
        }
    }
}

#[test]
fn fractional_budget_settles_identically() {
    for (i, cq) in fixture_quarters().iter().enumerate() {
        for frac in [0.001, 0.03, 0.5] {
            let opts = IngestOptions::lenient_with(ErrorBudget::max_frac(frac));
            assert_agrees(cq, &opts, &format!("quarter {i} max_frac={frac}"));
        }
    }
}

#[test]
fn damaged_and_missing_headers_are_identical() {
    let mut cq = fixture_quarters().into_iter().nth(1).unwrap();
    cq.demo = cq.demo.replacen(DEMO_HEADER, "primaryid$oops", 1);
    cq.outc.clear();
    assert_agrees(&cq, &IngestOptions::lenient(), "broken headers lenient");
    assert_agrees(&cq, &IngestOptions::strict(), "broken headers strict");
}

#[test]
fn memoized_cleaning_is_byte_identical_on_ingested_data() {
    let cq = fixture_quarters().into_iter().nth(2).unwrap();
    let (data, _) = new_read(&cq, &IngestOptions::lenient()).unwrap();
    let dv = maras_faers::Vocabulary::drugs(150);
    let av = maras_faers::Vocabulary::adrs(120);
    let cached = CleanConfig::default();
    let uncached = CleanConfig { memoize: false, ..Default::default() };
    let (reports_c, stats_c) = clean_quarter(&data, &dv, &av, &cached);
    let (reports_u, stats_u) = clean_quarter(&data, &dv, &av, &uncached);
    assert_eq!(reports_c, reports_u);
    assert_eq!(stats_c.without_cache_counters(), stats_u.without_cache_counters());
    assert!(stats_c.drug_cache_hits + stats_c.adr_cache_hits > 0, "memo never hit");
}

/// One `Cleaner` shared across a whole (fault-injected) year must produce
/// exactly what fresh uncached per-quarter cleaning produces — the memo
/// carried between quarters cannot leak state into the output.
#[test]
fn shared_cleaner_across_year_is_byte_identical() {
    let dv = maras_faers::Vocabulary::drugs(150);
    let av = maras_faers::Vocabulary::adrs(120);
    let mut shared = maras_faers::Cleaner::new(&dv, &av, CleanConfig::default());
    let uncached = CleanConfig { memoize: false, ..Default::default() };
    let mut carried_hits = 0usize;
    for cq in fixture_quarters() {
        let (data, _) = new_read(&cq, &IngestOptions::lenient()).unwrap();
        let (reports_s, stats_s) = shared.clean_quarter(&data);
        let (reports_f, stats_f) = clean_quarter(&data, &dv, &av, &uncached);
        assert_eq!(reports_s, reports_f, "shared memo changed quarter {:?}", cq.id);
        assert_eq!(stats_s.without_cache_counters(), stats_f.without_cache_counters());
        carried_hits += stats_s.drug_cache_hits + stats_s.adr_cache_hits;
    }
    assert!(carried_hits > 0, "shared memo never hit across the year");
}
