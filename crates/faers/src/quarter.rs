//! A quarter of FAERS data and the corpus statistics of Table 5.1.

use crate::model::{CaseReport, ReportType};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a FAERS publication quarter, e.g. 2014 Q1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QuarterId {
    /// Calendar year.
    pub year: u16,
    /// Quarter within the year, 1–4.
    pub quarter: u8,
}

impl QuarterId {
    /// Creates a quarter id.
    ///
    /// # Panics
    /// Panics if `quarter` is not in 1..=4.
    pub fn new(year: u16, quarter: u8) -> Self {
        assert!((1..=4).contains(&quarter), "quarter must be 1-4, got {quarter}");
        QuarterId { year, quarter }
    }

    /// The file-label infix FAERS uses, e.g. `14Q1`.
    pub fn file_label(&self) -> String {
        format!("{:02}Q{}", self.year % 100, self.quarter)
    }

    /// All four quarters of a year, in order.
    pub fn year_quarters(year: u16) -> [QuarterId; 4] {
        [1, 2, 3, 4].map(|q| QuarterId::new(year, q))
    }
}

impl fmt::Display for QuarterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Q{}", self.year, self.quarter)
    }
}

/// One quarter's case reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarterData {
    /// Which quarter this is.
    pub id: QuarterId,
    /// The case reports (possibly with follow-up versions and noise — the
    /// raw feed the cleaning stage consumes).
    pub reports: Vec<CaseReport>,
}

impl QuarterData {
    /// Corpus statistics in Table 5.1's terms: reports, distinct (verbatim)
    /// drug strings, distinct ADR terms.
    pub fn stats(&self) -> QuarterStats {
        let mut drugs: FxHashSet<&str> = FxHashSet::default();
        let mut adrs: FxHashSet<&str> = FxHashSet::default();
        let mut expedited = 0usize;
        let mut serious = 0usize;
        for r in &self.reports {
            for d in &r.drugs {
                drugs.insert(d.name.as_str());
            }
            for a in &r.reactions {
                adrs.insert(a.as_str());
            }
            if r.report_type == ReportType::Expedited {
                expedited += 1;
            }
            if r.is_serious() {
                serious += 1;
            }
        }
        QuarterStats {
            reports: self.reports.len(),
            distinct_drugs: drugs.len(),
            distinct_adrs: adrs.len(),
            expedited,
            serious,
        }
    }

    /// Concatenates several quarters into one analysis window (e.g. a full
    /// year). The thesis mines per quarter; merging is the natural
    /// extension for slower-accruing signals. Case ids are expected to be
    /// disjoint across quarters (the cleaning stage de-duplicates by case
    /// id, so colliding ids would be collapsed as follow-ups).
    ///
    /// The merged window carries the first quarter's id.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn merge(quarters: &[QuarterData]) -> QuarterData {
        assert!(!quarters.is_empty(), "cannot merge zero quarters");
        QuarterData {
            id: quarters[0].id,
            reports: quarters.iter().flat_map(|q| q.reports.iter().cloned()).collect(),
        }
    }

    /// Keeps only expedited reports — the thesis's §5.1 selection ("reports
    /// submitted by manufacturers marked as expedited (EXP)").
    pub fn expedited_only(&self) -> QuarterData {
        QuarterData {
            id: self.id,
            reports: self
                .reports
                .iter()
                .filter(|r| r.report_type == ReportType::Expedited)
                .cloned()
                .collect(),
        }
    }
}

/// Table 5.1-style statistics of a quarter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarterStats {
    /// Number of case reports.
    pub reports: usize,
    /// Distinct verbatim drug strings.
    pub distinct_drugs: usize,
    /// Distinct ADR preferred terms.
    pub distinct_adrs: usize,
    /// Number of expedited (EXP) reports.
    pub expedited: usize,
    /// Number of serious cases (≥ 1 severe outcome).
    pub serious: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DrugEntry, DrugRole, Outcome, Sex};

    fn report(case_id: u64, rt: ReportType, drugs: &[&str], adrs: &[&str]) -> CaseReport {
        CaseReport {
            case_id,
            version: 1,
            report_type: rt,
            age: None,
            sex: Sex::Unknown,
            weight_kg: None,
            country: "US".into(),
            event_date: None,
            drugs: drugs.iter().map(|d| DrugEntry::new(*d, DrugRole::PrimarySuspect)).collect(),
            reactions: adrs.iter().map(|&a| a.into()).collect(),
            outcomes: vec![Outcome::Hospitalization],
        }
    }

    #[test]
    fn quarter_id_labels() {
        assert_eq!(QuarterId::new(2014, 1).file_label(), "14Q1");
        assert_eq!(QuarterId::new(2009, 4).file_label(), "09Q4");
        assert_eq!(QuarterId::new(2014, 2).to_string(), "2014 Q2");
    }

    #[test]
    #[should_panic(expected = "quarter must be 1-4")]
    fn quarter_id_rejects_q5() {
        QuarterId::new(2014, 5);
    }

    #[test]
    fn year_quarters_in_order() {
        let qs = QuarterId::year_quarters(2014);
        assert_eq!(qs.map(|q| q.quarter), [1, 2, 3, 4]);
        assert!(qs.iter().all(|q| q.year == 2014));
    }

    #[test]
    fn stats_count_distincts() {
        let q = QuarterData {
            id: QuarterId::new(2014, 1),
            reports: vec![
                report(1, ReportType::Expedited, &["A", "B"], &["x"]),
                report(2, ReportType::Periodic, &["B", "C"], &["x", "y"]),
                report(3, ReportType::Expedited, &["A"], &["z"]),
            ],
        };
        let s = q.stats();
        assert_eq!(s.reports, 3);
        assert_eq!(s.distinct_drugs, 3);
        assert_eq!(s.distinct_adrs, 3);
        assert_eq!(s.expedited, 2);
        assert_eq!(s.serious, 3);
    }

    #[test]
    fn expedited_only_filters() {
        let q = QuarterData {
            id: QuarterId::new(2014, 1),
            reports: vec![
                report(1, ReportType::Expedited, &["A"], &["x"]),
                report(2, ReportType::Periodic, &["B"], &["y"]),
                report(3, ReportType::Direct, &["C"], &["z"]),
            ],
        };
        let e = q.expedited_only();
        assert_eq!(e.reports.len(), 1);
        assert_eq!(e.reports[0].case_id, 1);
        assert_eq!(e.id, q.id);
    }

    #[test]
    fn merge_concatenates_quarters() {
        let q1 = QuarterData {
            id: QuarterId::new(2014, 1),
            reports: vec![report(1, ReportType::Expedited, &["A"], &["x"])],
        };
        let q2 = QuarterData {
            id: QuarterId::new(2014, 2),
            reports: vec![
                report(2, ReportType::Expedited, &["B"], &["y"]),
                report(3, ReportType::Periodic, &["C"], &["z"]),
            ],
        };
        let merged = QuarterData::merge(&[q1.clone(), q2]);
        assert_eq!(merged.id, q1.id);
        assert_eq!(merged.reports.len(), 3);
        assert_eq!(merged.stats().distinct_drugs, 3);
    }

    #[test]
    #[should_panic(expected = "cannot merge zero quarters")]
    fn merge_of_nothing_panics() {
        QuarterData::merge(&[]);
    }

    #[test]
    fn stats_of_empty_quarter() {
        let q = QuarterData { id: QuarterId::new(2014, 1), reports: vec![] };
        let s = q.stats();
        assert_eq!(s.reports, 0);
        assert_eq!(s.distinct_drugs, 0);
        assert_eq!(s.distinct_adrs, 0);
    }
}
