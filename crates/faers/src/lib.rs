//! FAERS substrate: the adverse-event-report layer MARAS mines (thesis §5.1–5.2).
//!
//! The FDA Adverse Event Reporting System publishes quarterly extracts as
//! `$`-delimited ASCII files (`DEMOyyQq`, `DRUGyyQq`, `REACyyQq`,
//! `OUTCyyQq`). This crate implements that substrate end to end:
//!
//! * [`model`] — the case-report data model (demographics, drug entries
//!   with suspect roles, reaction preferred terms, outcome codes).
//! * [`ascii`] — reader/writer for the quarterly ASCII exchange format.
//! * [`quarter`] — a quarter's worth of reports plus the corpus statistics
//!   Table 5.1 reports (report / distinct-drug / distinct-ADR counts).
//! * [`vocab`] — drug & ADR vocabularies with a BK-tree spelling index;
//!   seeded with every drug and ADR the thesis names so the case studies
//!   reproduce verbatim.
//! * [`clean`] — the §5.2 "data preparation and cleaning" step: case-version
//!   de-duplication, drug-name normalization and misspelling correction,
//!   ADR-term canonicalization.
//! * [`intern`] — string interning for the ingestion hot path: repeated
//!   drug names, ADR terms, and country codes are allocated once and
//!   shared by refcount thereafter.
//! * [`faults`] — deterministic fault injection over the ASCII format
//!   (truncation, stray delimiters, orphans, duplicates, header damage)
//!   with a ledger of expected quarantines, for robustness testing.
//! * [`synth`] — the synthetic FAERS generator substituting for the real
//!   2014 extract (see DESIGN.md, substitution 1): Zipf prescription
//!   marginals, comorbidity-driven co-prescription, per-drug ADR profiles,
//!   planted drug-drug interactions, spelling noise and follow-up
//!   duplicates.

#![warn(missing_docs)]

pub mod ascii;
pub mod atc;
pub mod clean;
pub mod faults;
pub mod intern;
pub mod meddra;
pub mod model;
pub mod quarter;
pub mod synth;
pub mod vocab;

pub use atc::{classify_drug, AtcGroup, AtcIndex};
pub use clean::{clean_quarter, CleanConfig, CleanedReport, Cleaner, CleaningStats};
pub use faults::{corrupt_quarter, CorruptedQuarter, FaultConfig, FaultKind, InjectedFault};
pub use intern::{IStr, InternStats, SymbolTable};
pub use meddra::{classify_term, Soc, SocIndex};
pub use model::{CaseReport, DrugEntry, DrugRole, Outcome, ReportType, Sex};
pub use quarter::{QuarterData, QuarterId, QuarterStats};
pub use synth::{PlantedInteraction, SynthConfig, Synthesizer};
pub use vocab::{levenshtein, BkTree, Vocabulary};
