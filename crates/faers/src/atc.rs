//! An ATC-like drug classification.
//!
//! Tatonetti et al. (thesis refs \[26–28\]) detect interactions *between
//! drug classes* rather than individual products; doing the same here needs
//! a drug → anatomical-class map. The real WHO ATC index is licensed, so
//! (DESIGN.md substitution 2) this module ships the 14 real first-level ATC
//! groups plus a deterministic classifier: an explicit table for the seed
//! brand names the thesis mentions, and International-Nonproprietary-Name
//! suffix heuristics (-statin, -pril, -mab, …) that also cover the
//! procedurally generated vocabulary.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// WHO ATC first-level anatomical main groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AtcGroup {
    /// A — Alimentary tract and metabolism.
    Alimentary,
    /// B — Blood and blood forming organs.
    Blood,
    /// C — Cardiovascular system.
    Cardiovascular,
    /// D — Dermatologicals.
    Dermatological,
    /// G — Genito-urinary system and sex hormones.
    GenitoUrinary,
    /// H — Systemic hormonal preparations.
    Hormonal,
    /// J — Antiinfectives for systemic use.
    Antiinfective,
    /// L — Antineoplastic and immunomodulating agents.
    Antineoplastic,
    /// M — Musculo-skeletal system.
    Musculoskeletal,
    /// N — Nervous system.
    NervousSystem,
    /// P — Antiparasitic products.
    Antiparasitic,
    /// R — Respiratory system.
    Respiratory,
    /// S — Sensory organs.
    SensoryOrgans,
    /// V — Various.
    Various,
}

impl AtcGroup {
    /// All groups in code order.
    pub const ALL: [AtcGroup; 14] = [
        AtcGroup::Alimentary,
        AtcGroup::Blood,
        AtcGroup::Cardiovascular,
        AtcGroup::Dermatological,
        AtcGroup::GenitoUrinary,
        AtcGroup::Hormonal,
        AtcGroup::Antiinfective,
        AtcGroup::Antineoplastic,
        AtcGroup::Musculoskeletal,
        AtcGroup::NervousSystem,
        AtcGroup::Antiparasitic,
        AtcGroup::Respiratory,
        AtcGroup::SensoryOrgans,
        AtcGroup::Various,
    ];

    /// The one-letter ATC code.
    pub fn code(self) -> char {
        match self {
            AtcGroup::Alimentary => 'A',
            AtcGroup::Blood => 'B',
            AtcGroup::Cardiovascular => 'C',
            AtcGroup::Dermatological => 'D',
            AtcGroup::GenitoUrinary => 'G',
            AtcGroup::Hormonal => 'H',
            AtcGroup::Antiinfective => 'J',
            AtcGroup::Antineoplastic => 'L',
            AtcGroup::Musculoskeletal => 'M',
            AtcGroup::NervousSystem => 'N',
            AtcGroup::Antiparasitic => 'P',
            AtcGroup::Respiratory => 'R',
            AtcGroup::SensoryOrgans => 'S',
            AtcGroup::Various => 'V',
        }
    }

    /// The group's name.
    pub fn name(self) -> &'static str {
        match self {
            AtcGroup::Alimentary => "Alimentary tract and metabolism",
            AtcGroup::Blood => "Blood and blood forming organs",
            AtcGroup::Cardiovascular => "Cardiovascular system",
            AtcGroup::Dermatological => "Dermatologicals",
            AtcGroup::GenitoUrinary => "Genito-urinary system and sex hormones",
            AtcGroup::Hormonal => "Systemic hormonal preparations",
            AtcGroup::Antiinfective => "Antiinfectives for systemic use",
            AtcGroup::Antineoplastic => "Antineoplastic and immunomodulating agents",
            AtcGroup::Musculoskeletal => "Musculo-skeletal system",
            AtcGroup::NervousSystem => "Nervous system",
            AtcGroup::Antiparasitic => "Antiparasitic products",
            AtcGroup::Respiratory => "Respiratory system",
            AtcGroup::SensoryOrgans => "Sensory organs",
            AtcGroup::Various => "Various",
        }
    }

    /// Dense index 0..14 (for item encoding in class-level rollups).
    pub fn index(self) -> u32 {
        Self::ALL.iter().position(|&g| g == self).expect("in ALL") as u32
    }
}

impl std::fmt::Display for AtcGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// Brand / generic names the thesis mentions, mapped explicitly.
const EXPLICIT: &[(&str, AtcGroup)] = &[
    ("ZOMETA", AtcGroup::Musculoskeletal),
    ("PRILOSEC", AtcGroup::Alimentary),
    ("XOLAIR", AtcGroup::Respiratory),
    ("SINGULAIR", AtcGroup::Respiratory),
    ("PREDNISONE", AtcGroup::Hormonal),
    ("ZANTAC", AtcGroup::Alimentary),
    ("METHOTREXATE", AtcGroup::Antineoplastic),
    ("PROGRAF", AtcGroup::Antineoplastic),
    ("NEXIUM", AtcGroup::Alimentary),
    ("TUMS", AtcGroup::Alimentary),
    ("AMBIEN", AtcGroup::NervousSystem),
    ("MELPHALAN", AtcGroup::Antineoplastic),
    ("MYLANTA", AtcGroup::Alimentary),
    ("ROLAIDS", AtcGroup::Alimentary),
    ("FLUDARABINE", AtcGroup::Antineoplastic),
    ("IBUPROFEN", AtcGroup::Musculoskeletal),
    ("METAMIZOLE", AtcGroup::NervousSystem),
    ("PREVACID", AtcGroup::Alimentary),
    ("ASPIRIN", AtcGroup::Blood),
    ("WARFARIN", AtcGroup::Blood),
    ("PEPCID", AtcGroup::Alimentary),
    ("POSICOR", AtcGroup::Cardiovascular),
    ("TROGLITAZONE", AtcGroup::Alimentary),
    ("CERIVASTATIN", AtcGroup::Cardiovascular),
    ("PAROXETINE", AtcGroup::NervousSystem),
    ("PRAVASTATIN", AtcGroup::Cardiovascular),
    ("ACETAMINOPHEN", AtcGroup::NervousSystem),
    ("METFORMIN", AtcGroup::Alimentary),
    ("INSULIN", AtcGroup::Alimentary),
    ("LEVOTHYROXINE", AtcGroup::Hormonal),
    ("SYNTHROID", AtcGroup::Hormonal),
    ("HUMIRA", AtcGroup::Antineoplastic),
    ("ENBREL", AtcGroup::Antineoplastic),
    ("REMICADE", AtcGroup::Antineoplastic),
    ("RITUXAN", AtcGroup::Antineoplastic),
    ("AVASTIN", AtcGroup::Antineoplastic),
    ("HERCEPTIN", AtcGroup::Antineoplastic),
    ("GLEEVEC", AtcGroup::Antineoplastic),
    ("REVLIMID", AtcGroup::Antineoplastic),
    ("VELCADE", AtcGroup::Antineoplastic),
    ("TYSABRI", AtcGroup::Antineoplastic),
    ("COPAXONE", AtcGroup::Antineoplastic),
    ("GILENYA", AtcGroup::Antineoplastic),
    ("TECFIDERA", AtcGroup::Antineoplastic),
    ("LIPITOR", AtcGroup::Cardiovascular),
    ("CRESTOR", AtcGroup::Cardiovascular),
    ("PLAVIX", AtcGroup::Blood),
    ("COUMADIN", AtcGroup::Blood),
    ("XARELTO", AtcGroup::Blood),
    ("ELIQUIS", AtcGroup::Blood),
    ("LANTUS", AtcGroup::Alimentary),
    ("VICTOZA", AtcGroup::Alimentary),
    ("JANUVIA", AtcGroup::Alimentary),
    ("ADVAIR", AtcGroup::Respiratory),
    ("SPIRIVA", AtcGroup::Respiratory),
    ("SYMBICORT", AtcGroup::Respiratory),
    ("VENTOLIN", AtcGroup::Respiratory),
    ("LYRICA", AtcGroup::NervousSystem),
    ("CYMBALTA", AtcGroup::NervousSystem),
    ("ABILIFY", AtcGroup::NervousSystem),
    ("SEROQUEL", AtcGroup::NervousSystem),
    ("ZOLOFT", AtcGroup::NervousSystem),
    ("LEXAPRO", AtcGroup::NervousSystem),
    ("PROZAC", AtcGroup::NervousSystem),
    ("XANAX", AtcGroup::NervousSystem),
    ("VALIUM", AtcGroup::NervousSystem),
    ("ATIVAN", AtcGroup::NervousSystem),
    ("KLONOPIN", AtcGroup::NervousSystem),
    ("ADDERALL", AtcGroup::NervousSystem),
    ("RITALIN", AtcGroup::NervousSystem),
    ("CONCERTA", AtcGroup::NervousSystem),
    ("TACROLIMUS", AtcGroup::Antineoplastic),
    ("CYCLOSPORINE", AtcGroup::Antineoplastic),
    ("MYCOPHENOLATE", AtcGroup::Antineoplastic),
    ("AZATHIOPRINE", AtcGroup::Antineoplastic),
    ("SIROLIMUS", AtcGroup::Antineoplastic),
    ("DEXAMETHASONE", AtcGroup::Hormonal),
    ("HYDROCORTISONE", AtcGroup::Hormonal),
    ("BUDESONIDE", AtcGroup::Respiratory),
    ("ALLOPURINOL", AtcGroup::Musculoskeletal),
    ("COLCHICINE", AtcGroup::Musculoskeletal),
];

/// INN-suffix heuristics, checked in order.
const SUFFIX_RULES: &[(&str, AtcGroup)] = &[
    ("STATIN", AtcGroup::Cardiovascular),
    ("SARTAN", AtcGroup::Cardiovascular),
    ("PRIL", AtcGroup::Cardiovascular),
    ("DIPINE", AtcGroup::Cardiovascular),
    ("OLOL", AtcGroup::Cardiovascular),
    ("SEMIDE", AtcGroup::Cardiovascular),
    ("ZOLE", AtcGroup::Alimentary), // -prazole PPIs dominate this suffix
    ("TIDINE", AtcGroup::Alimentary), // H2 blockers
    ("GLIPTIN", AtcGroup::Alimentary),
    ("CILLIN", AtcGroup::Antiinfective),
    ("MYCIN", AtcGroup::Antiinfective),
    ("FLOXACIN", AtcGroup::Antiinfective),
    ("VIR", AtcGroup::Antiinfective),
    ("MAB", AtcGroup::Antineoplastic),
    ("NIB", AtcGroup::Antineoplastic),
    ("PLATIN", AtcGroup::Antineoplastic),
    ("TAXEL", AtcGroup::Antineoplastic),
    ("RUBICIN", AtcGroup::Antineoplastic),
    ("POSIDE", AtcGroup::Antineoplastic),
    ("CITABINE", AtcGroup::Antineoplastic),
    ("TECAN", AtcGroup::Antineoplastic),
    ("ZOMIB", AtcGroup::Antineoplastic),
    ("DOMIDE", AtcGroup::Antineoplastic),
    ("PHAMIDE", AtcGroup::Antineoplastic),
    ("RISTINE", AtcGroup::Antineoplastic),
    ("PROFEN", AtcGroup::Musculoskeletal),
    ("DRONATE", AtcGroup::Musculoskeletal),
    ("FENAC", AtcGroup::Musculoskeletal),
    ("COXIB", AtcGroup::Musculoskeletal),
    ("PAM", AtcGroup::NervousSystem),
    ("BARBITAL", AtcGroup::NervousSystem),
    ("CAINE", AtcGroup::NervousSystem),
    ("TRIPTYLINE", AtcGroup::NervousSystem),
    ("OXETINE", AtcGroup::NervousSystem),
    ("AZEPINE", AtcGroup::NervousSystem),
    ("APENTIN", AtcGroup::NervousSystem),
    ("SETRON", AtcGroup::Alimentary),
];

/// Classifies a canonical drug name into an ATC group. Total: names with no
/// explicit entry and no matching suffix land in [`AtcGroup::Various`].
pub fn classify_drug(name: &str) -> AtcGroup {
    let upper = name.to_ascii_uppercase();
    for &(n, g) in EXPLICIT {
        if upper == n {
            return g;
        }
    }
    for &(suffix, g) in SUFFIX_RULES {
        if upper.ends_with(suffix) {
            return g;
        }
    }
    AtcGroup::Various
}

/// A precomputed drug-id → ATC-group table over a drug vocabulary.
#[derive(Debug, Clone)]
pub struct AtcIndex {
    by_id: Vec<AtcGroup>,
    counts: FxHashMap<AtcGroup, usize>,
}

impl AtcIndex {
    /// Classifies every canonical name of the vocabulary.
    pub fn build(drug_vocab: &crate::vocab::Vocabulary) -> Self {
        let mut by_id = Vec::with_capacity(drug_vocab.len());
        let mut counts: FxHashMap<AtcGroup, usize> = FxHashMap::default();
        for (_, name) in drug_vocab.iter() {
            let g = classify_drug(name);
            by_id.push(g);
            *counts.entry(g).or_insert(0) += 1;
        }
        AtcIndex { by_id, counts }
    }

    /// Group of a drug id.
    pub fn group(&self, drug_id: u32) -> AtcGroup {
        self.by_id[drug_id as usize]
    }

    /// Number of vocabulary drugs in a group.
    pub fn drug_count(&self, group: AtcGroup) -> usize {
        self.counts.get(&group).copied().unwrap_or(0)
    }

    /// The distinct groups of a set of drug ids, sorted.
    pub fn groups_of(&self, drug_ids: impl IntoIterator<Item = u32>) -> Vec<AtcGroup> {
        let mut gs: Vec<AtcGroup> = drug_ids.into_iter().map(|d| self.group(d)).collect();
        gs.sort_unstable();
        gs.dedup();
        gs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    #[test]
    fn case_study_drugs_route_correctly() {
        assert_eq!(classify_drug("IBUPROFEN"), AtcGroup::Musculoskeletal);
        assert_eq!(classify_drug("PROGRAF"), AtcGroup::Antineoplastic);
        assert_eq!(classify_drug("NEXIUM"), AtcGroup::Alimentary);
        assert_eq!(classify_drug("PREVACID"), AtcGroup::Alimentary);
        assert_eq!(classify_drug("WARFARIN"), AtcGroup::Blood);
        assert_eq!(classify_drug("XOLAIR"), AtcGroup::Respiratory);
    }

    #[test]
    fn ppi_pair_shares_a_class() {
        // §5.4 Case III is a *therapeutic duplication* — same ATC class.
        assert_eq!(classify_drug("PREVACID"), classify_drug("NEXIUM"));
        assert_eq!(classify_drug("PREVACID"), classify_drug("PRILOSEC"));
    }

    #[test]
    fn suffix_heuristics_cover_procedural_names() {
        assert_eq!(classify_drug("ABAVOMAB"), AtcGroup::Antineoplastic);
        assert_eq!(classify_drug("CARUSTATIN"), AtcGroup::Cardiovascular);
        assert_eq!(classify_drug("XIMOPRIL"), AtcGroup::Cardiovascular);
        assert_eq!(classify_drug("KETAZOLE"), AtcGroup::Alimentary);
        assert_eq!(classify_drug("valacyclovir"), AtcGroup::Antiinfective);
        assert_eq!(classify_drug("WEIRDNAME"), AtcGroup::Various);
    }

    #[test]
    fn index_is_total_over_vocabulary() {
        let vocab = Vocabulary::drugs(600);
        let index = AtcIndex::build(&vocab);
        let total: usize = AtcGroup::ALL.iter().map(|&g| index.drug_count(g)).sum();
        assert_eq!(total, vocab.len());
        // Procedural suffixes guarantee a spread across groups.
        let populated = AtcGroup::ALL.iter().filter(|&&g| index.drug_count(g) > 0).count();
        assert!(populated >= 6, "only {populated} groups populated");
    }

    #[test]
    fn groups_of_dedups() {
        let vocab = Vocabulary::drugs(200);
        let index = AtcIndex::build(&vocab);
        let prevacid = vocab.id_of("PREVACID").unwrap();
        let nexium = vocab.id_of("NEXIUM").unwrap();
        assert_eq!(index.groups_of([prevacid, nexium]), vec![AtcGroup::Alimentary]);
    }

    #[test]
    fn codes_and_indices_are_unique() {
        let mut codes: Vec<char> = AtcGroup::ALL.iter().map(|g| g.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 14);
        for (i, g) in AtcGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i as u32);
        }
        assert_eq!(AtcGroup::Blood.to_string(), "B (Blood and blood forming organs)");
    }
}
