//! Synthetic FAERS generator (DESIGN.md substitution 1).
//!
//! The thesis evaluates on the real 2014 FAERS extract (Table 5.1:
//! 121k–138k expedited reports, 33k–38k verbatim drug strings, ~9.2k ADR
//! terms per quarter). That data is not available here, so this module
//! generates quarters with the same *structure*:
//!
//! * **Zipf prescription marginals** — a few blockbuster drugs dominate;
//! * **comorbidity classes** — drugs cluster; a report samples most of its
//!   medications from one class, which is what creates recurring drug
//!   combinations (the co-prescription signal MARAS mines);
//! * **per-drug ADR profiles** — every drug has its own reactions, creating
//!   the single-drug context rules the exclusiveness score contrasts
//!   against;
//! * **planted drug–drug interactions** — configured drug sets that emit
//!   their ADRs (almost) only when co-reported: the ground truth the
//!   case-study experiments must recover;
//! * **reporting noise** — verbatim-string misspellings, dosage suffixes,
//!   case mangling, and follow-up case versions, exercising the cleaning
//!   stage exactly the way real FAERS does;
//! * **demographics & outcomes** — expedited reports always carry ≥ 1
//!   serious outcome, matching the §5.1 selection criterion.
//!
//! Everything is deterministic in `SynthConfig::seed`.

use crate::intern::IStr;
use crate::model::{CaseReport, DrugEntry, DrugRole, Outcome, ReportType, Sex};
use crate::quarter::{QuarterData, QuarterId};
use crate::vocab::Vocabulary;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal, Zipf};
use serde::{Deserialize, Serialize};

/// A ground-truth drug-drug interaction planted into the stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlantedInteraction {
    /// Canonical drug names (must exist in the drug vocabulary).
    pub drugs: Vec<String>,
    /// Canonical ADR terms the interaction triggers.
    pub adrs: Vec<String>,
    /// P(ADRs reported | all drugs co-reported) — high, e.g. 0.9.
    pub combo_reaction_prob: f64,
    /// P(ADRs reported | only a proper subset present) — low, e.g. 0.02.
    /// This is what makes the signal *exclusive* to the combination.
    pub single_reaction_prob: f64,
    /// Fraction of reports forced to contain the full combination.
    pub co_report_rate: f64,
}

impl PlantedInteraction {
    /// Convenience constructor with the defaults used across experiments.
    pub fn new(drugs: &[&str], adrs: &[&str]) -> Self {
        PlantedInteraction {
            drugs: drugs.iter().map(|s| s.to_string()).collect(),
            adrs: adrs.iter().map(|s| s.to_string()).collect(),
            combo_reaction_prob: 0.9,
            single_reaction_prob: 0.02,
            co_report_rate: 0.004,
        }
    }

    /// The interactions the thesis discusses: the three §5.4 case studies,
    /// the Table 3.1 asthma cluster, the §1.1 Zometa/Prilosec example and
    /// the intro's Aspirin/Warfarin interaction.
    pub fn paper_case_studies() -> Vec<PlantedInteraction> {
        vec![
            // Case I (§5.4): ranked 3rd from 2014 Q2.
            PlantedInteraction::new(&["IBUPROFEN", "METAMIZOLE"], &["Acute renal failure"]),
            // Case II (§5.4): ranked 2nd.
            PlantedInteraction::new(&["METHOTREXATE", "PROGRAF"], &["Drug ineffective"]),
            // Case III (§5.4): ranked 4th.
            PlantedInteraction::new(&["PREVACID", "NEXIUM"], &["Osteoporosis"]),
            // Table 3.1's three-drug cluster.
            PlantedInteraction::new(&["XOLAIR", "SINGULAIR", "PREDNISONE"], &["Asthma"]),
            // §1.1 motivating example.
            PlantedInteraction::new(
                &["ZOMETA", "PRILOSEC"],
                &["Osteoarthritis", "Neuropathy peripheral", "Osteonecrosis of jaw", "Pain"],
            ),
            // Intro example: excessive bleeding from aspirin + warfarin.
            PlantedInteraction::new(&["ASPIRIN", "WARFARIN"], &["Haemorrhage"]),
        ]
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Reports per quarter.
    pub n_reports: usize,
    /// Canonical drug vocabulary size (must cover the seed drugs, ≥ 150).
    pub n_drugs: usize,
    /// Canonical ADR vocabulary size (≥ 150).
    pub n_adrs: usize,
    /// Master seed; every quarter derives its own stream from it.
    pub seed: u64,
    /// Ground-truth interactions to plant.
    pub interactions: Vec<PlantedInteraction>,
    /// Probability a drug mention gets a spelling perturbation.
    pub misspelling_rate: f64,
    /// Distinct misspelled variants per drug. Real extracts contain far
    /// fewer distinct verbatim strings than mentions (Table 5.1 counts
    /// 33k–38k distinct strings per quarter against millions of rows)
    /// because reporters and manufacturers reuse the same garbled strings;
    /// each misspelled mention draws from a deterministic per-drug pool of
    /// this size instead of minting a fresh random edit.
    pub typo_variants_per_drug: usize,
    /// Probability a drug mention gets a dosage/formulation suffix.
    pub dosage_noise_rate: f64,
    /// Probability a case gets an additional follow-up version.
    pub duplicate_rate: f64,
    /// Fraction of expedited (EXP) reports.
    pub expedited_fraction: f64,
    /// Number of comorbidity classes drugs cluster into.
    pub n_comorbidity_classes: usize,
    /// Mean number of drugs per report (geometric, clamped to 1..=16).
    pub mean_drugs_per_report: f64,
    /// Probability each profile ADR of a reported drug is included.
    pub drug_adr_expression: f64,
    /// Probability of one extra background (indication-noise) reaction.
    pub background_adr_rate: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_reports: 5_000,
            n_drugs: 600,
            n_adrs: 400,
            seed: 2014,
            interactions: PlantedInteraction::paper_case_studies(),
            misspelling_rate: 0.08,
            typo_variants_per_drug: 3,
            dosage_noise_rate: 0.12,
            duplicate_rate: 0.04,
            expedited_fraction: 0.85,
            n_comorbidity_classes: 24,
            mean_drugs_per_report: 4.0,
            drug_adr_expression: 0.35,
            background_adr_rate: 0.25,
        }
    }
}

impl SynthConfig {
    /// Paper-scale configuration (≈1:6 of the real quarter sizes; see
    /// DESIGN.md) used by the experiment binaries.
    pub fn paper_scale(seed: u64) -> Self {
        SynthConfig { n_reports: 20_000, n_drugs: 2_000, n_adrs: 1_200, seed, ..Default::default() }
    }

    /// Small, fast configuration for tests.
    pub fn test_scale(seed: u64) -> Self {
        SynthConfig { n_reports: 800, n_drugs: 200, n_adrs: 160, seed, ..Default::default() }
    }
}

/// Per-drug generator state.
#[derive(Debug, Clone)]
struct DrugProfile {
    /// ADR ids this drug causes on its own.
    own_adrs: Vec<u32>,
    /// Comorbidity class.
    class: usize,
}

/// The synthetic FAERS source.
#[derive(Debug)]
pub struct Synthesizer {
    config: SynthConfig,
    drug_vocab: Vocabulary,
    adr_vocab: Vocabulary,
    profiles: Vec<DrugProfile>,
    classes: Vec<Vec<u32>>,
    /// Interactions resolved to vocabulary ids.
    planted: Vec<(Vec<u32>, Vec<u32>, PlantedInteraction)>,
    next_case_id: u64,
}

impl Synthesizer {
    /// Builds a synthesizer; vocabularies and drug profiles are derived
    /// deterministically from the seed.
    ///
    /// # Panics
    /// Panics if a planted interaction references a drug or ADR absent from
    /// the generated vocabularies, or if vocabulary sizes are too small to
    /// cover the seed lists.
    pub fn new(config: SynthConfig) -> Self {
        assert!(config.n_drugs >= 150, "n_drugs must cover the seed drugs");
        assert!(config.n_adrs >= 150, "n_adrs must cover the seed ADRs");
        let drug_vocab = Vocabulary::drugs(config.n_drugs);
        let adr_vocab = Vocabulary::adrs(config.n_adrs);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_ba5e);

        let planted: Vec<(Vec<u32>, Vec<u32>, PlantedInteraction)> = config
            .interactions
            .iter()
            .map(|pi| {
                let drugs: Vec<u32> = pi
                    .drugs
                    .iter()
                    .map(|d| {
                        drug_vocab
                            .id_of(d)
                            .unwrap_or_else(|| panic!("planted drug {d:?} not in vocabulary"))
                    })
                    .collect();
                let adrs: Vec<u32> = pi
                    .adrs
                    .iter()
                    .map(|a| {
                        adr_vocab
                            .id_of(a)
                            .unwrap_or_else(|| panic!("planted ADR {a:?} not in vocabulary"))
                    })
                    .collect();
                (drugs, adrs, pi.clone())
            })
            .collect();

        let n_classes = config.n_comorbidity_classes.max(1);
        let mut profiles = Vec::with_capacity(config.n_drugs);
        let mut classes: Vec<Vec<u32>> = vec![Vec::new(); n_classes];
        for drug in 0..config.n_drugs as u32 {
            let n_own = rng.gen_range(1..=4);
            let own_adrs: Vec<u32> =
                (0..n_own).map(|_| rng.gen_range(0..config.n_adrs as u32)).collect();
            let class = rng.gen_range(0..n_classes);
            classes[class].push(drug);
            profiles.push(DrugProfile { own_adrs, class });
        }
        // Planted combinations must share a class so the comorbidity sampler
        // also co-prescribes them organically.
        for (drugs, _, _) in &planted {
            let home = profiles[drugs[0] as usize].class;
            for &d in &drugs[1..] {
                let old = profiles[d as usize].class;
                if old != home {
                    classes[old].retain(|&x| x != d);
                    classes[home].push(d);
                    profiles[d as usize].class = home;
                }
            }
        }

        Synthesizer {
            config,
            drug_vocab,
            adr_vocab,
            profiles,
            classes,
            planted,
            next_case_id: 9_000_001,
        }
    }

    /// The canonical drug vocabulary the generator draws from.
    pub fn drug_vocab(&self) -> &Vocabulary {
        &self.drug_vocab
    }

    /// The canonical ADR vocabulary the generator draws from.
    pub fn adr_vocab(&self) -> &Vocabulary {
        &self.adr_vocab
    }

    /// The planted ground truth as `(drug ids, adr ids)` pairs.
    pub fn planted_truth(&self) -> Vec<(Vec<u32>, Vec<u32>)> {
        self.planted.iter().map(|(d, a, _)| (d.clone(), a.clone())).collect()
    }

    /// Generates one quarter. Case ids continue across calls, so a year's
    /// quarters have disjoint cases.
    pub fn generate_quarter(&mut self, id: QuarterId) -> QuarterData {
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ (u64::from(id.year) << 8) ^ u64::from(id.quarter),
        );
        let zipf = Zipf::new(self.config.n_drugs as u64, 1.05).expect("valid zipf");
        let mut reports = Vec::with_capacity(self.config.n_reports + 64);
        for _ in 0..self.config.n_reports {
            let case_id = self.next_case_id;
            self.next_case_id += 1;
            let report = self.generate_report(case_id, id, &zipf, &mut rng);
            // Follow-up duplicates: same case, higher version, one extra
            // reaction sometimes — exactly what cleaning must collapse.
            if rng.gen_bool(self.config.duplicate_rate) {
                let mut followup = report.clone();
                followup.version += 1;
                if rng.gen_bool(0.5) {
                    let extra = rng.gen_range(0..self.config.n_adrs as u32);
                    followup.reactions.push(self.adr_vocab.term(extra).into());
                }
                reports.push(report);
                reports.push(followup);
            } else {
                reports.push(report);
            }
        }
        QuarterData { id, reports }
    }

    /// Generates the four quarters of a year.
    pub fn generate_year(&mut self, year: u16) -> Vec<QuarterData> {
        QuarterId::year_quarters(year).into_iter().map(|q| self.generate_quarter(q)).collect()
    }

    fn generate_report(
        &self,
        case_id: u64,
        quarter: QuarterId,
        zipf: &Zipf<f64>,
        rng: &mut StdRng,
    ) -> CaseReport {
        // --- drug set -------------------------------------------------
        let mut drug_ids: Vec<u32> = Vec::new();
        // Planted combination injection (at most one per report).
        for (drugs, _, pi) in &self.planted {
            if rng.gen_bool(pi.co_report_rate) {
                drug_ids.extend_from_slice(drugs);
                break;
            }
        }
        // Geometric-ish count of additional drugs.
        let p = 1.0 / self.config.mean_drugs_per_report.max(1.0);
        let mut extra = 1usize;
        while extra < 16 && rng.gen_bool(1.0 - p) {
            extra += 1;
        }
        let anchor_class = if drug_ids.is_empty() {
            let anchor = zipf.sample(rng) as u32 - 1;
            drug_ids.push(anchor);
            self.profiles[anchor as usize].class
        } else {
            self.profiles[drug_ids[0] as usize].class
        };
        for _ in 0..extra {
            let d = if rng.gen_bool(0.7) && !self.classes[anchor_class].is_empty() {
                *self.classes[anchor_class].choose(rng).expect("non-empty class")
            } else {
                zipf.sample(rng) as u32 - 1
            };
            drug_ids.push(d);
        }
        drug_ids.sort_unstable();
        drug_ids.dedup();

        // --- reactions ------------------------------------------------
        let mut adr_ids: Vec<u32> = Vec::new();
        for &d in &drug_ids {
            for &a in &self.profiles[d as usize].own_adrs {
                if rng.gen_bool(self.config.drug_adr_expression) {
                    adr_ids.push(a);
                }
            }
        }
        for (drugs, adrs, pi) in &self.planted {
            let present = drugs.iter().filter(|d| drug_ids.binary_search(d).is_ok()).count();
            if present == drugs.len() {
                if rng.gen_bool(pi.combo_reaction_prob) {
                    adr_ids.extend_from_slice(adrs);
                }
            } else if present > 0 && rng.gen_bool(pi.single_reaction_prob) {
                adr_ids.extend_from_slice(adrs);
            }
        }
        if rng.gen_bool(self.config.background_adr_rate) {
            adr_ids.push(rng.gen_range(0..self.config.n_adrs as u32));
        }
        if adr_ids.is_empty() {
            // FAERS reports always carry at least one reaction.
            let d = drug_ids[rng.gen_range(0..drug_ids.len())];
            let profile = &self.profiles[d as usize];
            adr_ids.push(profile.own_adrs[rng.gen_range(0..profile.own_adrs.len())]);
        }
        adr_ids.sort_unstable();
        adr_ids.dedup();

        // --- verbatim strings with noise -------------------------------
        let drugs: Vec<DrugEntry> = drug_ids
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let name = self.noisy_drug_string(self.drug_vocab.term(d), rng);
                let role = if i == 0 {
                    DrugRole::PrimarySuspect
                } else if rng.gen_bool(0.3) {
                    DrugRole::SecondarySuspect
                } else if rng.gen_bool(0.1) {
                    DrugRole::Interacting
                } else {
                    DrugRole::Concomitant
                };
                DrugEntry::new(name, role)
            })
            .collect();
        let reactions: Vec<IStr> = adr_ids
            .iter()
            .map(|&a| {
                let term = self.adr_vocab.term(a);
                if rng.gen_bool(0.1) {
                    term.to_ascii_lowercase().into()
                } else if rng.gen_bool(0.05) {
                    term.to_ascii_uppercase().into()
                } else {
                    term.into()
                }
            })
            .collect();

        // --- demographics & outcomes -----------------------------------
        let report_type = if rng.gen_bool(self.config.expedited_fraction) {
            ReportType::Expedited
        } else if rng.gen_bool(0.7) {
            ReportType::Periodic
        } else {
            ReportType::Direct
        };
        let outcomes = self.sample_outcomes(report_type, rng);
        let age_dist = Normal::new(58.0f32, 18.0).expect("valid normal");
        let weight_dist = Normal::new(75.0f32, 15.0).expect("valid normal");
        let age = rng.gen_bool(0.9).then(|| age_dist.sample(rng).clamp(1.0, 100.0).round());
        let weight_kg = rng
            .gen_bool(0.75)
            .then(|| (weight_dist.sample(rng).clamp(30.0, 200.0) * 10.0).round() / 10.0);
        let sex = match rng.gen_range(0..10) {
            0..=4 => Sex::Female,
            5..=8 => Sex::Male,
            _ => Sex::Unknown,
        };
        let country: IStr =
            (*["US", "US", "US", "US", "US", "US", "GB", "CA", "JP", "FR", "DE", "MX"]
                .choose(rng)
                .expect("non-empty"))
            .into();
        let month = u32::from(quarter.quarter - 1) * 3 + rng.gen_range(1..=3);
        let day = rng.gen_range(1..=28);
        let event_date = Some(u32::from(quarter.year) * 10_000 + month * 100 + day);

        CaseReport {
            case_id,
            version: 1,
            report_type,
            age,
            sex,
            weight_kg,
            country,
            event_date,
            drugs,
            reactions,
            outcomes,
        }
    }

    fn sample_outcomes(&self, report_type: ReportType, rng: &mut StdRng) -> Vec<Outcome> {
        let mut out = Vec::new();
        if report_type == ReportType::Expedited {
            // §5.1: expedited reports contain at least one severe event.
            let serious = [
                (Outcome::Hospitalization, 55u32),
                (Outcome::Death, 10),
                (Outcome::LifeThreatening, 9),
                (Outcome::Disability, 8),
                (Outcome::RequiredIntervention, 15),
                (Outcome::CongenitalAnomaly, 3),
            ];
            let total: u32 = serious.iter().map(|&(_, w)| w).sum();
            let mut pick = rng.gen_range(0..total);
            for &(o, w) in &serious {
                if pick < w {
                    out.push(o);
                    break;
                }
                pick -= w;
            }
        }
        if rng.gen_bool(0.35) {
            out.push(Outcome::Other);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn noisy_drug_string(&self, canonical: &str, rng: &mut StdRng) -> String {
        let mut s = canonical.to_string();
        if rng.gen_bool(self.config.misspelling_rate) {
            // Draw from the drug's bounded variant pool: the variant index
            // seeds its own generator, so mention k of drug D always
            // produces the same garbled string, mention streams stay
            // deterministic, and distinct misspellings stay ≪ mentions.
            let k = rng.gen_range(0..self.config.typo_variants_per_drug.max(1)) as u64;
            let mut h = rustc_hash::FxHasher::default();
            std::hash::Hash::hash(canonical, &mut h);
            let mut pool_rng = StdRng::seed_from_u64(
                self.config.seed
                    ^ std::hash::Hasher::finish(&h)
                    ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            s = perturb_spelling(&s, &mut pool_rng);
        }
        if rng.gen_bool(self.config.dosage_noise_rate) {
            let strength = [5u32, 10, 20, 25, 40, 50, 100, 200, 500].choose(rng).unwrap();
            let unit = ["MG", "MG", "MG", "MCG", "ML"].choose(rng).unwrap();
            let form = ["TABLET", "CAPSULE", "INJECTION", "ORAL SOLUTION", ""].choose(rng).unwrap();
            s = format!("{s} {strength}{unit} {form}").trim().to_string();
        }
        if rng.gen_bool(0.08) {
            s = s.to_ascii_lowercase();
        }
        s
    }
}

/// Applies one random edit (substitute / delete / insert / transpose) to an
/// ASCII string, mimicking data-entry typos.
fn perturb_spelling(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return s.to_string();
    }
    let mut out = chars.clone();
    let pos = rng.gen_range(1..chars.len());
    match rng.gen_range(0..4) {
        0 => {
            // substitute with a nearby letter
            out[pos] = (b'A' + rng.gen_range(0..26)) as char;
        }
        1 => {
            out.remove(pos);
        }
        2 => {
            out.insert(pos, (b'A' + rng.gen_range(0..26)) as char);
        }
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out.swap(pos - 1, pos);
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::{clean_quarter, CleanConfig};

    fn small() -> Synthesizer {
        Synthesizer::new(SynthConfig::test_scale(7))
    }

    #[test]
    fn generates_requested_report_count() {
        let mut s = small();
        let q = s.generate_quarter(QuarterId::new(2014, 1));
        // Duplicates add a few extra rows.
        assert!(q.reports.len() >= 800);
        assert!(q.reports.len() < 900);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = Synthesizer::new(SynthConfig::test_scale(42));
        let mut b = Synthesizer::new(SynthConfig::test_scale(42));
        let qa = a.generate_quarter(QuarterId::new(2014, 2));
        let qb = b.generate_quarter(QuarterId::new(2014, 2));
        assert_eq!(qa, qb);
        let mut c = Synthesizer::new(SynthConfig::test_scale(43));
        let qc = c.generate_quarter(QuarterId::new(2014, 2));
        assert_ne!(qa, qc);
    }

    #[test]
    fn quarters_have_disjoint_case_ids() {
        let mut s = small();
        let q1 = s.generate_quarter(QuarterId::new(2014, 1));
        let q2 = s.generate_quarter(QuarterId::new(2014, 2));
        let max1 = q1.reports.iter().map(|r| r.case_id).max().unwrap();
        let min2 = q2.reports.iter().map(|r| r.case_id).min().unwrap();
        assert!(max1 < min2);
    }

    #[test]
    fn every_report_is_well_formed() {
        let mut s = small();
        let q = s.generate_quarter(QuarterId::new(2014, 3));
        for r in &q.reports {
            assert!(!r.drugs.is_empty(), "report without drugs: {r}");
            assert!(!r.reactions.is_empty(), "report without reactions: {r}");
            if r.report_type == ReportType::Expedited {
                assert!(r.is_serious(), "EXP report without serious outcome: {r}");
            }
            if let Some(d) = r.event_date {
                let month = d / 100 % 100;
                assert!((7..=9).contains(&month), "Q3 event in month {month}");
            }
        }
    }

    #[test]
    fn planted_combos_occur_and_express_adrs() {
        let mut s = small();
        let truth = s.planted_truth();
        let q = s.generate_quarter(QuarterId::new(2014, 1));
        let (cleaned, _) =
            clean_quarter(&q, s.drug_vocab(), s.adr_vocab(), &CleanConfig::default());
        // Case I: ibuprofen + metamizole must co-occur in several cleaned
        // reports, mostly with acute renal failure.
        let (drugs, adrs) = &truth[0];
        let combo_reports: Vec<_> =
            cleaned.iter().filter(|c| drugs.iter().all(|d| c.drug_ids.contains(d))).collect();
        assert!(
            combo_reports.len() >= 2,
            "expected several combo reports, got {}",
            combo_reports.len()
        );
        let with_adr =
            combo_reports.iter().filter(|c| adrs.iter().all(|a| c.adr_ids.contains(a))).count();
        assert!(
            with_adr * 2 > combo_reports.len(),
            "combo should usually express its ADR: {with_adr}/{}",
            combo_reports.len()
        );
    }

    #[test]
    fn noise_produces_verbatim_variants() {
        let mut s = small();
        let q = s.generate_quarter(QuarterId::new(2014, 1));
        let stats = q.stats();
        // More verbatim strings than canonical drugs => noise is active.
        assert!(
            stats.distinct_drugs > 200,
            "expected verbatim variants beyond the 200 canonical names, got {}",
            stats.distinct_drugs
        );
    }

    #[test]
    fn perturb_spelling_changes_string() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut changed = 0;
        for _ in 0..50 {
            if perturb_spelling("METHOTREXATE", &mut rng) != "METHOTREXATE" {
                changed += 1;
            }
        }
        assert!(changed >= 45, "perturbation almost always changes the string: {changed}");
        assert_eq!(perturb_spelling("AB", &mut rng), "AB"); // too short to touch
    }

    #[test]
    #[should_panic(expected = "not in vocabulary")]
    fn unknown_planted_drug_panics() {
        let mut cfg = SynthConfig::test_scale(1);
        cfg.interactions = vec![PlantedInteraction::new(&["NOSUCHDRUGXYZ"], &["Nausea"])];
        Synthesizer::new(cfg);
    }

    #[test]
    fn year_generation_produces_four_quarters() {
        let mut s = small();
        let year = s.generate_year(2014);
        assert_eq!(year.len(), 4);
        assert_eq!(year[2].id, QuarterId::new(2014, 3));
    }
}
