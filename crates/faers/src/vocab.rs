//! Drug and ADR vocabularies with a spelling index.
//!
//! FAERS drug strings are free text: the paper's Table 5.1 counts 33k–38k
//! *distinct strings* per quarter, most of them spelling/formulation
//! variants of a much smaller canonical vocabulary. The cleaning stage
//! (§5.2 step 1: "remove duplication and correct misspellings") needs a
//! dictionary plus approximate lookup; this module supplies both, with a
//! BK-tree over Levenshtein distance for sub-linear fuzzy search.
//!
//! The seed lists contain **every drug and ADR the thesis names** (Tables
//! 3.1 & 5.2, the three case studies, and the Aspirin/Warfarin intro
//! example) so the qualitative findings reproduce verbatim; procedural
//! names extend each vocabulary to any requested size.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Levenshtein edit distance (two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    levenshtein_buf(a, b, &mut prev, &mut cur)
}

/// [`levenshtein`] into caller-owned DP rows, so a tight loop (the BK-tree
/// walk) computes distances without touching the allocator. The strings
/// are walked as char iterators directly — the two-row recurrence only
/// needs sequential access, never random indexing.
fn levenshtein_buf(a: &str, b: &str, prev: &mut Vec<usize>, cur: &mut Vec<usize>) -> usize {
    let lb = b.chars().count();
    if a.is_empty() {
        return lb;
    }
    if lb == 0 {
        return a.chars().count();
    }
    prev.clear();
    prev.extend(0..=lb);
    cur.clear();
    cur.resize(lb + 1, 0);
    for (i, ca) in a.chars().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.chars().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[lb]
}

/// Levenshtein distance if ≤ `max`, else `None` (banded DP; the spelling
/// corrector only cares about small distances, so the band keeps lookups
/// linear in the string length).
pub fn levenshtein_within(a: &str, b: &str, max: usize) -> Option<usize> {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la.abs_diff(lb) > max {
        return None;
    }
    let d = levenshtein(a, b);
    (d <= max).then_some(d)
}

/// Whether a BK walk can skip `node` *and* its whole subtree without
/// computing the edit distance.
///
/// Length difference lower-bounds edit distance: `d ≥ |len(q) − len(t)|`.
/// If that bound already exceeds `radius + max_edge` (the largest child
/// edge), then the node is no candidate (`d > radius`) and no child
/// survives the triangle-inequality filter either: a child is visited only
/// when `cd ≥ d − radius`, but `d − radius > max_edge ≥ cd` for every
/// child. So the subtree is unreachable and the Levenshtein DP — the
/// dominant cost per visited node — can be skipped wholesale.
fn prune_subtree(query_len: usize, node: &BkNode, radius: usize) -> bool {
    let bound = query_len.abs_diff(node.term.chars().count());
    if bound <= radius {
        return false;
    }
    let max_edge = node.children.iter().map(|&(cd, _)| cd).max().unwrap_or(0);
    bound > radius + max_edge
}

/// A BK-tree over Levenshtein distance: metric-tree fuzzy lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BkTree {
    nodes: Vec<BkNode>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BkNode {
    term: String,
    /// Payload (vocabulary id).
    id: u32,
    /// Children keyed by distance-to-this-node.
    children: Vec<(usize, usize)>,
}

impl BkTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BkTree { nodes: Vec::new() }
    }

    /// Number of stored terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts a term with an id. Duplicate terms are ignored (first id wins).
    pub fn insert(&mut self, term: &str, id: u32) {
        if self.nodes.is_empty() {
            self.nodes.push(BkNode { term: term.to_string(), id, children: Vec::new() });
            return;
        }
        let mut cur = 0usize;
        loop {
            let d = levenshtein(term, &self.nodes[cur].term);
            if d == 0 {
                return; // already present
            }
            match self.nodes[cur].children.iter().find(|&&(cd, _)| cd == d) {
                Some(&(_, child)) => cur = child,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(BkNode { term: term.to_string(), id, children: Vec::new() });
                    self.nodes[cur].children.push((d, idx));
                    return;
                }
            }
        }
    }

    /// All terms within `max_dist` of `query`, as `(term, id, distance)`.
    pub fn lookup(&self, query: &str, max_dist: usize) -> Vec<(&str, u32, usize)> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let query_len = query.chars().count();
        let mut stack = vec![0usize];
        let (mut prev, mut cur) = (Vec::new(), Vec::new());
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if prune_subtree(query_len, node, max_dist) {
                continue;
            }
            let d = levenshtein_buf(query, &node.term, &mut prev, &mut cur);
            if d <= max_dist {
                out.push((node.term.as_str(), node.id, d));
            }
            // Triangle inequality: children at distance within [d-max, d+max].
            for &(cd, child) in &node.children {
                if cd + max_dist >= d && cd <= d + max_dist {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// The closest term within `max_dist`, ties broken lexicographically for
    /// determinism.
    ///
    /// Unlike [`BkTree::lookup`] this never materializes the candidate set:
    /// it walks the tree tracking the best hit so far, shrinking the search
    /// radius to the best distance as it improves. The radius stays
    /// *inclusive* (children within `[d - best, d + best]` are visited) so
    /// equal-distance candidates remain reachable for the lexicographic
    /// tie-break — this agrees with `lookup(..).min()` on every input.
    pub fn nearest(&self, query: &str, max_dist: usize) -> Option<(&str, u32, usize)> {
        if self.nodes.is_empty() {
            return None;
        }
        let query_len = query.chars().count();
        let mut best: Option<(usize, usize)> = None; // (distance, node index)
        let mut radius = max_dist;
        let mut stack = vec![0usize];
        let (mut prev, mut cur) = (Vec::new(), Vec::new());
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if prune_subtree(query_len, node, radius) {
                continue;
            }
            let d = levenshtein_buf(query, &node.term, &mut prev, &mut cur);
            let better = match best {
                None => d <= radius,
                Some((bd, bi)) => d < bd || (d == bd && node.term < self.nodes[bi].term),
            };
            if better {
                best = Some((d, idx));
                radius = d;
            }
            for &(cd, child) in &node.children {
                if cd + radius >= d && cd <= d + radius {
                    stack.push(child);
                }
            }
        }
        best.map(|(d, idx)| (self.nodes[idx].term.as_str(), self.nodes[idx].id, d))
    }
}

/// Every drug name the thesis mentions, plus common real-world drugs.
pub const SEED_DRUGS: &[&str] = &[
    // Table 3.1 / Table 5.2 / case studies / intro examples:
    "ZOMETA",
    "PRILOSEC",
    "XOLAIR",
    "SINGULAIR",
    "PREDNISONE",
    "ZANTAC",
    "METHOTREXATE",
    "PROGRAF",
    "NEXIUM",
    "TUMS",
    "AMBIEN",
    "MELPHALAN",
    "MYLANTA",
    "ROLAIDS",
    "FLUDARABINE",
    "IBUPROFEN",
    "METAMIZOLE",
    "PREVACID",
    "ASPIRIN",
    "WARFARIN",
    "PEPCID",
    // Withdrawn drugs named in §1.1:
    "POSICOR",
    "TROGLITAZONE",
    "CERIVASTATIN",
    // Related-work example (Tatonetti): paroxetine + pravastatin.
    "PAROXETINE",
    "PRAVASTATIN",
    // Common co-reported drugs to fill the head of the Zipf curve:
    "ACETAMINOPHEN",
    "METFORMIN",
    "LISINOPRIL",
    "ATORVASTATIN",
    "SIMVASTATIN",
    "OMEPRAZOLE",
    "AMLODIPINE",
    "METOPROLOL",
    "LOSARTAN",
    "GABAPENTIN",
    "HYDROCHLOROTHIAZIDE",
    "SERTRALINE",
    "FUROSEMIDE",
    "INSULIN",
    "LEVOTHYROXINE",
    "PANTOPRAZOLE",
    "PREGABALIN",
    "RAMIPRIL",
    "CLOPIDOGREL",
    "RIVAROXABAN",
    "APIXABAN",
    "DIGOXIN",
    "AMIODARONE",
    "SPIRONOLACTONE",
    "TRAMADOL",
    "OXYCODONE",
    "MORPHINE",
    "FENTANYL",
    "CELECOXIB",
    "NAPROXEN",
    "DICLOFENAC",
    "DULOXETINE",
    "VENLAFAXINE",
    "FLUOXETINE",
    "CITALOPRAM",
    "ESCITALOPRAM",
    "MIRTAZAPINE",
    "QUETIAPINE",
    "OLANZAPINE",
    "RISPERIDONE",
    "ARIPIPRAZOLE",
    "LAMOTRIGINE",
    "LEVETIRACETAM",
    "CARBAMAZEPINE",
    "VALPROATE",
    "PHENYTOIN",
    "ALLOPURINOL",
    "COLCHICINE",
    "HUMIRA",
    "ENBREL",
    "REMICADE",
    "RITUXAN",
    "AVASTIN",
    "HERCEPTIN",
    "GLEEVEC",
    "REVLIMID",
    "VELCADE",
    "TYSABRI",
    "COPAXONE",
    "GILENYA",
    "TECFIDERA",
    "LIPITOR",
    "CRESTOR",
    "PLAVIX",
    "COUMADIN",
    "XARELTO",
    "ELIQUIS",
    "LANTUS",
    "VICTOZA",
    "JANUVIA",
    "SYNTHROID",
    "ADVAIR",
    "SPIRIVA",
    "SYMBICORT",
    "VENTOLIN",
    "LYRICA",
    "CYMBALTA",
    "ABILIFY",
    "SEROQUEL",
    "ZOLOFT",
    "LEXAPRO",
    "PROZAC",
    "XANAX",
    "VALIUM",
    "ATIVAN",
    "KLONOPIN",
    "ADDERALL",
    "RITALIN",
    "CONCERTA",
    "TACROLIMUS",
    "CYCLOSPORINE",
    "MYCOPHENOLATE",
    "AZATHIOPRINE",
    "SIROLIMUS",
    "CISPLATIN",
    "CARBOPLATIN",
    "PACLITAXEL",
    "DOCETAXEL",
    "DOXORUBICIN",
    "CYCLOPHOSPHAMIDE",
    "VINCRISTINE",
    "ETOPOSIDE",
    "GEMCITABINE",
    "CAPECITABINE",
    "IRINOTECAN",
    "OXALIPLATIN",
    "BORTEZOMIB",
    "LENALIDOMIDE",
    "THALIDOMIDE",
    "DEXAMETHASONE",
    "HYDROCORTISONE",
    "BUDESONIDE",
];

/// Every ADR preferred term the thesis mentions, plus common MedDRA-style
/// terms.
pub const SEED_ADRS: &[&str] = &[
    // Table 3.1 / Table 5.2 / case studies:
    "Asthma",
    "Osteoporosis",
    "Chronic graft versus host disease",
    "Acute graft versus host disease",
    "Osteonecrosis of jaw",
    "Drug ineffective",
    "Granulocyte colony-stimulating factor nos",
    "Anxiety",
    "Osteoarthritis",
    "Neuropathy peripheral",
    "Pain",
    "Anaemia",
    "Acute renal failure",
    // Intro example (Aspirin+Warfarin) and related work:
    "Haemorrhage",
    "Blood glucose increased",
    // Common MedDRA preferred terms:
    "Nausea",
    "Vomiting",
    "Diarrhoea",
    "Headache",
    "Dizziness",
    "Fatigue",
    "Pyrexia",
    "Rash",
    "Pruritus",
    "Urticaria",
    "Dyspnoea",
    "Cough",
    "Oedema peripheral",
    "Hypotension",
    "Hypertension",
    "Tachycardia",
    "Bradycardia",
    "Atrial fibrillation",
    "Myocardial infarction",
    "Cardiac failure",
    "Cerebrovascular accident",
    "Syncope",
    "Convulsion",
    "Tremor",
    "Somnolence",
    "Insomnia",
    "Depression",
    "Confusional state",
    "Hallucination",
    "Renal failure",
    "Renal impairment",
    "Hepatotoxicity",
    "Hepatic function abnormal",
    "Jaundice",
    "Pancreatitis",
    "Gastrointestinal haemorrhage",
    "Abdominal pain",
    "Constipation",
    "Dyspepsia",
    "Decreased appetite",
    "Weight decreased",
    "Weight increased",
    "Alopecia",
    "Arthralgia",
    "Myalgia",
    "Back pain",
    "Muscular weakness",
    "Rhabdomyolysis",
    "Neutropenia",
    "Thrombocytopenia",
    "Leukopenia",
    "Pancytopenia",
    "Febrile neutropenia",
    "Sepsis",
    "Pneumonia",
    "Urinary tract infection",
    "Hypersensitivity",
    "Anaphylactic reaction",
    "Stevens-Johnson syndrome",
    "Toxic epidermal necrolysis",
    "QT prolonged",
    "Torsade de pointes",
    "Deep vein thrombosis",
    "Pulmonary embolism",
    "Interstitial lung disease",
    "Hyperkalaemia",
    "Hypokalaemia",
    "Hyponatraemia",
    "Hypoglycaemia",
    "Hyperglycaemia",
    "Blood pressure increased",
    "Hepatic enzyme increased",
    "Blood creatinine increased",
    "Fall",
    "Fracture",
    "Bone pain",
    "Malaise",
    "Asthenia",
    "Chest pain",
    "Palpitations",
    "Visual impairment",
    "Tinnitus",
    "Vertigo",
    "Dry mouth",
    "Dysgeusia",
    "Paraesthesia",
    "Hypoaesthesia",
    "Memory impairment",
    "Drug interaction",
    "Condition aggravated",
    "Disease progression",
    "Death",
    "Completed suicide",
    "Suicidal ideation",
    "Off label use",
    "Overdose",
    "Drug hypersensitivity",
    "Injection site reaction",
    "Infusion related reaction",
    "Mucosal inflammation",
    "Stomatitis",
    "Dysphagia",
];

/// A canonical vocabulary of terms (drugs or ADRs) with a dense id space and
/// a BK-tree spelling index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    entries: Vec<String>,
    index: FxHashMap<String, u32>,
    bk: BkTree,
    /// `(case-folded term, id)` sorted by the folded term — the binary-search
    /// backbone of [`Vocabulary::iter_prefix`] autocomplete.
    folded_sorted: Vec<(String, u32)>,
}

impl Vocabulary {
    /// Builds a vocabulary from explicit terms. Terms are kept verbatim;
    /// duplicates (after exact match) are dropped.
    pub fn from_terms<I: IntoIterator<Item = String>>(terms: I) -> Self {
        let mut entries = Vec::new();
        let mut index = FxHashMap::default();
        let mut bk = BkTree::new();
        for t in terms {
            if index.contains_key(&t) {
                continue;
            }
            let id = entries.len() as u32;
            index.insert(t.clone(), id);
            bk.insert(&t, id);
            entries.push(t);
        }
        let mut folded_sorted: Vec<(String, u32)> =
            entries.iter().enumerate().map(|(i, t)| (t.to_ascii_lowercase(), i as u32)).collect();
        folded_sorted.sort_unstable();
        Vocabulary { entries, index, bk, folded_sorted }
    }

    /// A drug vocabulary of exactly `n` canonical names: the seed drugs
    /// first (in order — so planted case-study drugs have stable ids),
    /// then procedurally generated names.
    pub fn drugs(n: usize) -> Self {
        let mut terms: Vec<String> = SEED_DRUGS.iter().map(|s| s.to_string()).collect();
        let mut i = 0usize;
        while terms.len() < n {
            let name = procedural_drug_name(i);
            if !terms.contains(&name) {
                terms.push(name);
            }
            i += 1;
        }
        terms.truncate(n);
        Vocabulary::from_terms(terms)
    }

    /// An ADR vocabulary of exactly `n` canonical preferred terms.
    pub fn adrs(n: usize) -> Self {
        let mut terms: Vec<String> = SEED_ADRS.iter().map(|s| s.to_string()).collect();
        let mut i = 0usize;
        while terms.len() < n {
            let name = procedural_adr_term(i);
            if !terms.contains(&name) {
                terms.push(name);
            }
            i += 1;
        }
        terms.truncate(n);
        Vocabulary::from_terms(terms)
    }

    /// Number of canonical terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonical term by id.
    pub fn term(&self, id: u32) -> &str {
        &self.entries[id as usize]
    }

    /// Exact lookup.
    pub fn id_of(&self, term: &str) -> Option<u32> {
        self.index.get(term).copied()
    }

    /// Fuzzy lookup: the closest canonical term within `max_dist` edits.
    ///
    /// ```
    /// use maras_faers::Vocabulary;
    /// let vocab = Vocabulary::drugs(200);
    /// let (id, distance) = vocab.nearest("IBUPROFFEN", 2).unwrap();
    /// assert_eq!(vocab.term(id), "IBUPROFEN");
    /// assert_eq!(distance, 1);
    /// assert!(vocab.nearest("ZZZZZZZZZ", 2).is_none());
    /// ```
    pub fn nearest(&self, query: &str, max_dist: usize) -> Option<(u32, usize)> {
        // Exact match short-circuits the tree walk.
        if let Some(id) = self.id_of(query) {
            return Some((id, 0));
        }
        self.bk.nearest(query, max_dist).map(|(_, id, d)| (id, d))
    }

    /// Iterates over `(id, term)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.entries.iter().enumerate().map(|(i, t)| (i as u32, t.as_str()))
    }

    /// Case-insensitive prefix iteration: every `(id, term)` whose canonical
    /// term starts with `prefix` (ASCII case-folded), in case-folded
    /// lexicographic order. Sub-linear via binary search over a sorted
    /// folded index — the autocomplete backbone of the serving layer.
    ///
    /// ```
    /// use maras_faers::Vocabulary;
    /// let v = Vocabulary::drugs(200);
    /// let hits: Vec<&str> = v.iter_prefix("warf").map(|(_, t)| t).collect();
    /// assert_eq!(hits, ["WARFARIN"]);
    /// assert_eq!(v.iter_prefix("zzzz").count(), 0);
    /// ```
    pub fn iter_prefix<'a>(&'a self, prefix: &str) -> impl Iterator<Item = (u32, &'a str)> + 'a {
        let folded = prefix.to_ascii_lowercase();
        let start = self.folded_sorted.partition_point(|(t, _)| t.as_str() < folded.as_str());
        self.folded_sorted[start..]
            .iter()
            .take_while(move |(t, _)| t.starts_with(&folded))
            .map(|&(_, id)| (id, self.term(id)))
    }
}

const DRUG_PREFIX: &[&str] = &[
    "AB", "CAR", "DEX", "FLU", "GLI", "KET", "LAM", "MEV", "NOR", "OXA", "PER", "QUI", "RAL",
    "SUL", "TER", "VAL", "XIM", "ZAL", "BEN", "DOR",
];
const DRUG_MID: &[&str] = &[
    "A", "I", "O", "U", "AVO", "ITRA", "ETO", "OBA", "UVI", "AXI", "OMI", "ERA", "ILO", "UTA",
    "ANDO",
];
const DRUG_SUFFIX: &[&str] = &[
    "MAB", "NIB", "PRIL", "SARTAN", "STATIN", "ZOLE", "CILLIN", "MYCIN", "PAM", "LOL", "DIPINE",
    "FLOXACIN", "TIDINE", "SETRON", "GLIPTIN", "PROFEN", "BARBITAL", "CAINE", "DRONATE", "VIR",
];

/// Deterministic pseudo-pharmaceutical name for index `i`.
pub fn procedural_drug_name(i: usize) -> String {
    let p = DRUG_PREFIX[i % DRUG_PREFIX.len()];
    let m = DRUG_MID[(i / DRUG_PREFIX.len()) % DRUG_MID.len()];
    let s = DRUG_SUFFIX[(i / (DRUG_PREFIX.len() * DRUG_MID.len())) % DRUG_SUFFIX.len()];
    let gen = i / (DRUG_PREFIX.len() * DRUG_MID.len() * DRUG_SUFFIX.len());
    if gen == 0 {
        format!("{p}{m}{s}")
    } else {
        format!("{p}{m}{s} {gen}")
    }
}

const ADR_SITE: &[&str] = &[
    "Hepatic",
    "Renal",
    "Cardiac",
    "Gastric",
    "Dermal",
    "Ocular",
    "Neural",
    "Pulmonary",
    "Vascular",
    "Splenic",
    "Thyroid",
    "Adrenal",
    "Pancreatic",
    "Muscular",
    "Osseous",
    "Lymphatic",
    "Biliary",
    "Urethral",
    "Retinal",
    "Cochlear",
];
const ADR_KIND: &[&str] = &[
    "disorder",
    "failure",
    "necrosis",
    "oedema",
    "haemorrhage",
    "hypertrophy",
    "atrophy",
    "inflammation",
    "neoplasm",
    "stenosis",
    "fibrosis",
    "calcification",
    "ulceration",
    "perforation",
    "dysplasia",
];

/// Deterministic MedDRA-style preferred term for index `i`.
pub fn procedural_adr_term(i: usize) -> String {
    let s = ADR_SITE[i % ADR_SITE.len()];
    let k = ADR_KIND[(i / ADR_SITE.len()) % ADR_KIND.len()];
    let gen = i / (ADR_SITE.len() * ADR_KIND.len());
    if gen == 0 {
        format!("{s} {k}")
    } else {
        format!("{s} {k} type {gen}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "xy"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("ASPIRIN", "ASPRIN"), 1);
        assert_eq!(levenshtein("WARFARIN", "WARFERIN"), 1);
    }

    #[test]
    fn levenshtein_within_band() {
        assert_eq!(levenshtein_within("IBUPROFEN", "IBUPROFEN", 2), Some(0));
        assert_eq!(levenshtein_within("IBUPROFEN", "IBUPROFFEN", 2), Some(1));
        assert_eq!(levenshtein_within("IBUPROFEN", "METAMIZOLE", 2), None);
        assert_eq!(levenshtein_within("AB", "ABCDEFG", 2), None); // length gap
    }

    #[test]
    fn bktree_lookup_finds_neighbors() {
        let mut t = BkTree::new();
        for (i, w) in ["ASPIRIN", "WARFARIN", "PROGRAF", "PREVACID", "PRILOSEC"].iter().enumerate()
        {
            t.insert(w, i as u32);
        }
        assert_eq!(t.len(), 5);
        let hits = t.lookup("ASPRIN", 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "ASPIRIN");
        assert_eq!(t.nearest("WARFERIN", 2).unwrap().0, "WARFARIN");
        assert!(t.nearest("XYZZY", 2).is_none());
    }

    #[test]
    fn bktree_duplicate_insert_ignored() {
        let mut t = BkTree::new();
        t.insert("ASPIRIN", 0);
        t.insert("ASPIRIN", 7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.nearest("ASPIRIN", 0).unwrap().1, 0);
    }

    #[test]
    fn bktree_matches_linear_scan() {
        let words: Vec<String> = (0..200).map(procedural_drug_name).collect();
        let mut t = BkTree::new();
        for (i, w) in words.iter().enumerate() {
            t.insert(w, i as u32);
        }
        for query in ["ABAMAB", "CARINIB", "XIMOPRIL", "KETUSTATIN", "NOPE"] {
            let mut expect: Vec<&str> =
                words.iter().filter(|w| levenshtein(query, w) <= 2).map(|w| w.as_str()).collect();
            expect.sort_unstable();
            let mut got: Vec<&str> = t.lookup(query, 2).into_iter().map(|(w, _, _)| w).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "query {query}");
        }
    }

    #[test]
    fn bktree_nearest_agrees_with_lookup_min() {
        // The shrinking-radius walk must agree with the materialize-then-min
        // legacy definition, including lexicographic tie-breaks.
        let words: Vec<String> = (0..400).map(procedural_drug_name).collect();
        let mut t = BkTree::new();
        for (i, w) in words.iter().enumerate() {
            t.insert(w, i as u32);
        }
        let queries = [
            "ABAMAB",
            "CARINIB",
            "XIMOPRIL",
            "KETUSTATIN",
            "NOPE",
            "",
            "A",
            "ABA",
            "PERAMAB",
            "SULOLOL",
            "VALANDOVIR",
            "ZALUVIMYCIN",
        ];
        for max_dist in 0..=3 {
            for query in queries {
                let via_lookup = t
                    .lookup(query, max_dist)
                    .into_iter()
                    .min_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(b.0)));
                assert_eq!(t.nearest(query, max_dist), via_lookup, "query {query} @ {max_dist}");
            }
        }
    }

    #[test]
    fn drug_vocabulary_contains_case_study_drugs() {
        let v = Vocabulary::drugs(500);
        assert_eq!(v.len(), 500);
        for d in ["IBUPROFEN", "METAMIZOLE", "METHOTREXATE", "PROGRAF", "PREVACID", "NEXIUM"] {
            assert!(v.id_of(d).is_some(), "{d} missing");
        }
        // Seed order is stable: ZOMETA is id 0.
        assert_eq!(v.id_of("ZOMETA"), Some(0));
    }

    #[test]
    fn adr_vocabulary_contains_case_study_terms() {
        let v = Vocabulary::adrs(300);
        assert_eq!(v.len(), 300);
        for a in ["Acute renal failure", "Drug ineffective", "Osteoporosis", "Asthma"] {
            assert!(v.id_of(a).is_some(), "{a} missing");
        }
    }

    #[test]
    fn vocabulary_nearest_corrects_typos() {
        let v = Vocabulary::drugs(200);
        let (id, d) = v.nearest("IBUPROFFEN", 2).unwrap();
        assert_eq!(v.term(id), "IBUPROFEN");
        assert_eq!(d, 1);
        let (id, d) = v.nearest("PREDNISONE", 2).unwrap();
        assert_eq!(v.term(id), "PREDNISONE");
        assert_eq!(d, 0);
    }

    #[test]
    fn procedural_names_unique_over_wide_range() {
        let mut names: Vec<String> = (0..5000).map(procedural_drug_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5000);
        let mut terms: Vec<String> = (0..2000).map(procedural_adr_term).collect();
        terms.sort_unstable();
        terms.dedup();
        assert_eq!(terms.len(), 2000);
    }

    #[test]
    fn prefix_iteration_is_case_insensitive_and_sorted() {
        let v = Vocabulary::drugs(500);
        let hits: Vec<&str> = v.iter_prefix("PR").map(|(_, t)| t).collect();
        assert!(hits.contains(&"PREDNISONE"));
        assert!(hits.contains(&"PRILOSEC"));
        assert!(hits.contains(&"PROGRAF"));
        // Sorted by the case-folded term.
        let folded: Vec<String> = hits.iter().map(|t| t.to_ascii_lowercase()).collect();
        assert!(folded.windows(2).all(|w| w[0] <= w[1]), "{folded:?}");
        // Lower-case query reaches the same set.
        let lower: Vec<&str> = v.iter_prefix("pr").map(|(_, t)| t).collect();
        assert_eq!(hits, lower);
        // Matches a brute-force scan.
        let mut expect: Vec<&str> = v
            .iter()
            .filter(|(_, t)| t.to_ascii_lowercase().starts_with("pr"))
            .map(|(_, t)| t)
            .collect();
        expect.sort_unstable_by_key(|t| t.to_ascii_lowercase());
        assert_eq!(hits, expect);
        // Empty prefix enumerates the whole vocabulary.
        assert_eq!(v.iter_prefix("").count(), v.len());
    }

    #[test]
    fn vocabulary_iter_roundtrips_ids() {
        let v = Vocabulary::drugs(50);
        for (id, term) in v.iter() {
            assert_eq!(v.id_of(term), Some(id));
            assert_eq!(v.term(id), term);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn levenshtein_is_metric(
                a in "[A-Z]{0,8}", b in "[A-Z]{0,8}", c in "[A-Z]{0,8}"
            ) {
                let dab = levenshtein(&a, &b);
                let dba = levenshtein(&b, &a);
                prop_assert_eq!(dab, dba); // symmetry
                prop_assert_eq!(dab == 0, a == b); // identity
                // triangle inequality
                prop_assert!(levenshtein(&a, &c) <= dab + levenshtein(&b, &c));
            }

            #[test]
            fn bktree_nearest_agrees_with_scan(
                words in proptest::collection::btree_set("[A-Z]{1,6}", 1..30),
                query in "[A-Z]{1,6}",
            ) {
                let words: Vec<String> = words.into_iter().collect();
                let mut t = BkTree::new();
                for (i, w) in words.iter().enumerate() {
                    t.insert(w, i as u32);
                }
                let best_scan = words
                    .iter()
                    .map(|w| (levenshtein(&query, w), w.clone()))
                    .filter(|&(d, _)| d <= 2)
                    .min();
                let best_tree = t.nearest(&query, 2).map(|(w, _, d)| (d, w.to_string()));
                prop_assert_eq!(best_tree, best_scan);
            }
        }
    }
}
