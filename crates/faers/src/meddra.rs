//! A MedDRA-like reaction-term hierarchy.
//!
//! FAERS reaction strings are MedDRA *preferred terms* (PTs); real
//! pharmacovigilance triage groups them by *System Organ Class* (SOC) —
//! renal events, cardiac events, blood dyscrasias — because a combination
//! that fires three renal PTs is one signal, not three. MedDRA itself is
//! licensed and cannot ship here (DESIGN.md substitution 2 applies), so
//! this module provides the structural equivalent: the 27 real SOC names,
//! and a deterministic keyword-based PT → SOC classifier that routes every
//! seed and procedural ADR term of [`crate::vocab`] to a sensible class.
//! The mapping is stable, total (unmatched terms land in *General
//! disorders*), and exercised by the SOC-rollup query layer.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// MedDRA's System Organ Classes (v26 names, abbreviated where customary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Soc {
    BloodLymphatic,
    Cardiac,
    CongenitalFamilial,
    EarLabyrinth,
    Endocrine,
    Eye,
    Gastrointestinal,
    GeneralAdministration,
    Hepatobiliary,
    ImmuneSystem,
    InfectionsInfestations,
    InjuryPoisoningProcedural,
    Investigations,
    MetabolismNutrition,
    Musculoskeletal,
    Neoplasms,
    NervousSystem,
    PregnancyPuerperium,
    ProductIssues,
    Psychiatric,
    RenalUrinary,
    ReproductiveBreast,
    RespiratoryThoracic,
    SkinSubcutaneous,
    SocialCircumstances,
    SurgicalMedical,
    Vascular,
}

impl Soc {
    /// Every SOC, in MedDRA's alphabetical order.
    pub const ALL: [Soc; 27] = [
        Soc::BloodLymphatic,
        Soc::Cardiac,
        Soc::CongenitalFamilial,
        Soc::EarLabyrinth,
        Soc::Endocrine,
        Soc::Eye,
        Soc::Gastrointestinal,
        Soc::GeneralAdministration,
        Soc::Hepatobiliary,
        Soc::ImmuneSystem,
        Soc::InfectionsInfestations,
        Soc::InjuryPoisoningProcedural,
        Soc::Investigations,
        Soc::MetabolismNutrition,
        Soc::Musculoskeletal,
        Soc::Neoplasms,
        Soc::NervousSystem,
        Soc::PregnancyPuerperium,
        Soc::ProductIssues,
        Soc::Psychiatric,
        Soc::RenalUrinary,
        Soc::ReproductiveBreast,
        Soc::RespiratoryThoracic,
        Soc::SkinSubcutaneous,
        Soc::SocialCircumstances,
        Soc::SurgicalMedical,
        Soc::Vascular,
    ];

    /// The official SOC name.
    pub fn name(self) -> &'static str {
        match self {
            Soc::BloodLymphatic => "Blood and lymphatic system disorders",
            Soc::Cardiac => "Cardiac disorders",
            Soc::CongenitalFamilial => "Congenital, familial and genetic disorders",
            Soc::EarLabyrinth => "Ear and labyrinth disorders",
            Soc::Endocrine => "Endocrine disorders",
            Soc::Eye => "Eye disorders",
            Soc::Gastrointestinal => "Gastrointestinal disorders",
            Soc::GeneralAdministration => "General disorders and administration site conditions",
            Soc::Hepatobiliary => "Hepatobiliary disorders",
            Soc::ImmuneSystem => "Immune system disorders",
            Soc::InfectionsInfestations => "Infections and infestations",
            Soc::InjuryPoisoningProcedural => "Injury, poisoning and procedural complications",
            Soc::Investigations => "Investigations",
            Soc::MetabolismNutrition => "Metabolism and nutrition disorders",
            Soc::Musculoskeletal => "Musculoskeletal and connective tissue disorders",
            Soc::Neoplasms => "Neoplasms benign, malignant and unspecified",
            Soc::NervousSystem => "Nervous system disorders",
            Soc::PregnancyPuerperium => "Pregnancy, puerperium and perinatal conditions",
            Soc::ProductIssues => "Product issues",
            Soc::Psychiatric => "Psychiatric disorders",
            Soc::RenalUrinary => "Renal and urinary disorders",
            Soc::ReproductiveBreast => "Reproductive system and breast disorders",
            Soc::RespiratoryThoracic => "Respiratory, thoracic and mediastinal disorders",
            Soc::SkinSubcutaneous => "Skin and subcutaneous tissue disorders",
            Soc::SocialCircumstances => "Social circumstances",
            Soc::SurgicalMedical => "Surgical and medical procedures",
            Soc::Vascular => "Vascular disorders",
        }
    }
}

impl std::fmt::Display for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Keyword → SOC routing rules, checked in order (first match wins). More
/// specific stems come before generic ones.
const KEYWORD_RULES: &[(&str, Soc)] = &[
    // Blood / marrow
    ("neutropenia", Soc::BloodLymphatic),
    ("thrombocytopenia", Soc::BloodLymphatic),
    ("leukopenia", Soc::BloodLymphatic),
    ("pancytopenia", Soc::BloodLymphatic),
    ("anaemia", Soc::BloodLymphatic),
    ("lymphatic", Soc::BloodLymphatic),
    ("splenic", Soc::BloodLymphatic),
    ("granulocyte", Soc::BloodLymphatic),
    // Cardiac
    ("cardiac", Soc::Cardiac),
    ("myocardial", Soc::Cardiac),
    ("atrial fibrillation", Soc::Cardiac),
    ("tachycardia", Soc::Cardiac),
    ("bradycardia", Soc::Cardiac),
    ("palpitations", Soc::Cardiac),
    ("torsade", Soc::Cardiac),
    // Investigations (measured values) — before organ stems so "blood
    // glucose increased" is an Investigation, not a blood disorder.
    ("increased", Soc::Investigations),
    ("decreased", Soc::Investigations),
    ("qt prolonged", Soc::Investigations),
    ("weight", Soc::Investigations),
    // Vascular
    ("haemorrhage", Soc::Vascular),
    ("hypertension", Soc::Vascular),
    ("hypotension", Soc::Vascular),
    ("thrombosis", Soc::Vascular),
    ("embolism", Soc::Vascular),
    ("vascular", Soc::Vascular),
    ("bleeding", Soc::Vascular),
    // Nervous system
    ("headache", Soc::NervousSystem),
    ("dizziness", Soc::NervousSystem),
    ("neuropathy", Soc::NervousSystem),
    ("convulsion", Soc::NervousSystem),
    ("tremor", Soc::NervousSystem),
    ("somnolence", Soc::NervousSystem),
    ("paraesthesia", Soc::NervousSystem),
    ("hypoaesthesia", Soc::NervousSystem),
    ("memory", Soc::NervousSystem),
    ("cerebrovascular", Soc::NervousSystem),
    ("syncope", Soc::NervousSystem),
    ("neural", Soc::NervousSystem),
    ("dysgeusia", Soc::NervousSystem),
    ("cochlear", Soc::EarLabyrinth),
    ("tinnitus", Soc::EarLabyrinth),
    ("vertigo", Soc::EarLabyrinth),
    // Psychiatric
    ("anxiety", Soc::Psychiatric),
    ("depression", Soc::Psychiatric),
    ("insomnia", Soc::Psychiatric),
    ("hallucination", Soc::Psychiatric),
    ("confusional", Soc::Psychiatric),
    ("suicid", Soc::Psychiatric),
    // Eye / ear
    ("visual", Soc::Eye),
    ("ocular", Soc::Eye),
    ("retinal", Soc::Eye),
    // Respiratory
    ("dyspnoea", Soc::RespiratoryThoracic),
    ("cough", Soc::RespiratoryThoracic),
    ("pneumonia", Soc::InfectionsInfestations),
    ("pulmonary", Soc::RespiratoryThoracic),
    ("asthma", Soc::RespiratoryThoracic),
    ("interstitial lung", Soc::RespiratoryThoracic),
    ("respiratory", Soc::RespiratoryThoracic),
    // GI
    ("nausea", Soc::Gastrointestinal),
    ("vomiting", Soc::Gastrointestinal),
    ("diarrhoea", Soc::Gastrointestinal),
    ("constipation", Soc::Gastrointestinal),
    ("dyspepsia", Soc::Gastrointestinal),
    ("abdominal", Soc::Gastrointestinal),
    ("gastrointestinal", Soc::Gastrointestinal),
    ("gastric", Soc::Gastrointestinal),
    ("pancreatitis", Soc::Gastrointestinal),
    ("stomatitis", Soc::Gastrointestinal),
    ("dysphagia", Soc::Gastrointestinal),
    ("dry mouth", Soc::Gastrointestinal),
    ("mucosal", Soc::Gastrointestinal),
    // Hepatic
    ("hepat", Soc::Hepatobiliary),
    ("jaundice", Soc::Hepatobiliary),
    ("biliary", Soc::Hepatobiliary),
    // Renal / urinary
    ("renal", Soc::RenalUrinary),
    ("urinary", Soc::RenalUrinary),
    ("urethral", Soc::RenalUrinary),
    // Skin
    ("rash", Soc::SkinSubcutaneous),
    ("pruritus", Soc::SkinSubcutaneous),
    ("urticaria", Soc::SkinSubcutaneous),
    ("alopecia", Soc::SkinSubcutaneous),
    ("stevens-johnson", Soc::SkinSubcutaneous),
    ("epidermal", Soc::SkinSubcutaneous),
    ("dermal", Soc::SkinSubcutaneous),
    // Musculoskeletal
    ("arthralgia", Soc::Musculoskeletal),
    ("myalgia", Soc::Musculoskeletal),
    ("osteo", Soc::Musculoskeletal),
    ("back pain", Soc::Musculoskeletal),
    ("muscular", Soc::Musculoskeletal),
    ("rhabdomyolysis", Soc::Musculoskeletal),
    ("bone", Soc::Musculoskeletal),
    ("fracture", Soc::InjuryPoisoningProcedural),
    ("fall", Soc::InjuryPoisoningProcedural),
    ("overdose", Soc::InjuryPoisoningProcedural),
    // Metabolic
    ("kalaemia", Soc::MetabolismNutrition),
    ("natraemia", Soc::MetabolismNutrition),
    ("glycaemia", Soc::MetabolismNutrition),
    ("appetite", Soc::MetabolismNutrition),
    // Immune / infection
    ("hypersensitivity", Soc::ImmuneSystem),
    ("anaphylactic", Soc::ImmuneSystem),
    ("graft versus host", Soc::ImmuneSystem),
    ("immune", Soc::ImmuneSystem),
    ("sepsis", Soc::InfectionsInfestations),
    ("infection", Soc::InfectionsInfestations),
    // Endocrine / repro
    ("thyroid", Soc::Endocrine),
    ("adrenal", Soc::Endocrine),
    ("endocrine", Soc::Endocrine),
    ("breast", Soc::ReproductiveBreast),
    // Neoplasms
    ("neoplasm", Soc::Neoplasms),
    // Congenital
    ("congenital", Soc::CongenitalFamilial),
    // Death and generic terms → General.
    ("death", Soc::GeneralAdministration),
    ("fatigue", Soc::GeneralAdministration),
    ("asthenia", Soc::GeneralAdministration),
    ("malaise", Soc::GeneralAdministration),
    ("pyrexia", Soc::GeneralAdministration),
    ("oedema", Soc::GeneralAdministration),
    ("chest pain", Soc::GeneralAdministration),
    ("pain", Soc::GeneralAdministration),
    ("drug ineffective", Soc::GeneralAdministration),
    ("drug interaction", Soc::GeneralAdministration),
    ("condition aggravated", Soc::GeneralAdministration),
    ("disease progression", Soc::GeneralAdministration),
    ("injection site", Soc::GeneralAdministration),
    ("infusion", Soc::GeneralAdministration),
    ("off label", Soc::GeneralAdministration),
];

/// Classifies one preferred term into a SOC. Total: unmatched terms fall
/// into [`Soc::GeneralAdministration`].
pub fn classify_term(term: &str) -> Soc {
    let lower = term.to_ascii_lowercase();
    for &(kw, soc) in KEYWORD_RULES {
        if lower.contains(kw) {
            return soc;
        }
    }
    Soc::GeneralAdministration
}

/// A precomputed PT-id → SOC table over an ADR vocabulary.
#[derive(Debug, Clone)]
pub struct SocIndex {
    by_id: Vec<Soc>,
    counts: FxHashMap<Soc, usize>,
}

impl SocIndex {
    /// Classifies every term of the vocabulary.
    pub fn build(adr_vocab: &crate::vocab::Vocabulary) -> Self {
        let mut by_id = Vec::with_capacity(adr_vocab.len());
        let mut counts: FxHashMap<Soc, usize> = FxHashMap::default();
        for (_, term) in adr_vocab.iter() {
            let soc = classify_term(term);
            by_id.push(soc);
            *counts.entry(soc).or_insert(0) += 1;
        }
        SocIndex { by_id, counts }
    }

    /// SOC of an ADR id.
    pub fn soc(&self, adr_id: u32) -> Soc {
        self.by_id[adr_id as usize]
    }

    /// Number of vocabulary terms in a SOC.
    pub fn term_count(&self, soc: Soc) -> usize {
        self.counts.get(&soc).copied().unwrap_or(0)
    }

    /// The distinct SOCs of a set of ADR ids, sorted.
    pub fn socs_of(&self, adr_ids: impl IntoIterator<Item = u32>) -> Vec<Soc> {
        let mut socs: Vec<Soc> = adr_ids.into_iter().map(|a| self.soc(a)).collect();
        socs.sort_unstable();
        socs.dedup();
        socs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    #[test]
    fn case_study_terms_route_correctly() {
        assert_eq!(classify_term("Acute renal failure"), Soc::RenalUrinary);
        assert_eq!(classify_term("Osteoporosis"), Soc::Musculoskeletal);
        assert_eq!(classify_term("Osteonecrosis of jaw"), Soc::Musculoskeletal);
        assert_eq!(classify_term("Drug ineffective"), Soc::GeneralAdministration);
        assert_eq!(classify_term("Asthma"), Soc::RespiratoryThoracic);
        assert_eq!(classify_term("Haemorrhage"), Soc::Vascular);
        assert_eq!(classify_term("Neuropathy peripheral"), Soc::NervousSystem);
        assert_eq!(classify_term("Chronic graft versus host disease"), Soc::ImmuneSystem);
    }

    #[test]
    fn measured_values_are_investigations() {
        assert_eq!(classify_term("Blood glucose increased"), Soc::Investigations);
        assert_eq!(classify_term("Weight decreased"), Soc::Investigations);
        assert_eq!(classify_term("Blood creatinine increased"), Soc::Investigations);
    }

    #[test]
    fn classification_is_total_and_case_insensitive() {
        assert_eq!(classify_term("zzz nonsense zzz"), Soc::GeneralAdministration);
        assert_eq!(classify_term("ACUTE RENAL FAILURE"), Soc::RenalUrinary);
        assert_eq!(classify_term(""), Soc::GeneralAdministration);
    }

    #[test]
    fn soc_index_covers_whole_vocabulary() {
        let vocab = Vocabulary::adrs(400);
        let index = SocIndex::build(&vocab);
        let total: usize = Soc::ALL.iter().map(|&s| index.term_count(s)).sum();
        assert_eq!(total, vocab.len());
        // Procedural terms like "Renal failure type 3" land in their organ SOC.
        let renal = vocab
            .id_of("Renal failure")
            .or_else(|| vocab.iter().find(|(_, t)| t.starts_with("Renal")).map(|(id, _)| id));
        if let Some(id) = renal {
            assert_eq!(index.soc(id), Soc::RenalUrinary);
        }
        // A healthy spread: at least 10 SOCs populated.
        let populated = Soc::ALL.iter().filter(|&&s| index.term_count(s) > 0).count();
        assert!(populated >= 10, "only {populated} SOCs populated");
    }

    #[test]
    fn socs_of_dedups_and_sorts() {
        let vocab = Vocabulary::adrs(200);
        let index = SocIndex::build(&vocab);
        let renal = vocab.id_of("Acute renal failure").unwrap();
        let renal2 = vocab.id_of("Renal failure").unwrap();
        let socs = index.socs_of([renal, renal2, renal]);
        assert_eq!(socs, vec![Soc::RenalUrinary]);
    }

    #[test]
    fn all_socs_have_distinct_names() {
        let mut names: Vec<&str> = Soc::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }
}
