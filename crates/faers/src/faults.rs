//! Deterministic fault injection for ingestion robustness testing.
//!
//! Real FAERS extracts are dirty: truncated rows, stray delimiters from
//! unescaped free text, child rows whose case was dropped upstream,
//! re-exported duplicates, and occasionally a damaged header. This module
//! manufactures those defects *on purpose* and *on record*: it takes a
//! clean [`QuarterData`], renders it through the canonical
//! [`QuarterWriter`], and applies seeded corruptions to the ASCII text —
//! returning both the corrupted tables and a precise ledger of every
//! injected fault plus every quarantine a lenient read is expected to
//! produce (including *collateral* orphans: child rows of a DEMO row that
//! a fault destroyed).
//!
//! Everything is driven by a single `u64` seed, so a failing robustness
//! test reproduces exactly.

use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::Path;

use crate::ascii::{self, AsciiError, IngestOptions, Ingested, QuarantineReason, QuarterWriter};
use crate::model::CaseReport;
use crate::quarter::{QuarterData, QuarterId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One kind of seeded corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Drop the last `$`-delimited field of a data row.
    TruncateFields,
    /// Insert a stray `$` delimiter into a data row.
    InjectDelimiter,
    /// Replace the DEMO `wt` field with non-numeric text.
    NonNumericWeight,
    /// Rewrite a child row's primaryid to one no DEMO row defines.
    OrphanRow,
    /// Append a verbatim copy of an existing DEMO row.
    DuplicatePrimaryid,
    /// Damage a table's header line.
    HeaderDamage,
}

impl FaultKind {
    /// Every fault kind, in a stable order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TruncateFields,
        FaultKind::InjectDelimiter,
        FaultKind::NonNumericWeight,
        FaultKind::OrphanRow,
        FaultKind::DuplicatePrimaryid,
        FaultKind::HeaderDamage,
    ];

    /// Stable snake_case label.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TruncateFields => "truncate_fields",
            FaultKind::InjectDelimiter => "inject_delimiter",
            FaultKind::NonNumericWeight => "non_numeric_weight",
            FaultKind::OrphanRow => "orphan_row",
            FaultKind::DuplicatePrimaryid => "duplicate_primaryid",
            FaultKind::HeaderDamage => "header_damage",
        }
    }

    /// The quarantine reason a lenient read must assign to a row carrying
    /// this fault.
    pub fn expected_reason(self) -> QuarantineReason {
        match self {
            FaultKind::TruncateFields | FaultKind::InjectDelimiter => QuarantineReason::FieldCount,
            FaultKind::NonNumericWeight => QuarantineReason::BadNumeric,
            FaultKind::OrphanRow => QuarantineReason::Orphan,
            FaultKind::DuplicatePrimaryid => QuarantineReason::DuplicatePrimaryid,
            FaultKind::HeaderDamage => QuarantineReason::HeaderDamage,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Seeded corruption policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; the whole corruption is a pure function of (quarter,
    /// config).
    pub seed: u64,
    /// Per-row probability of a direct corruption (also used per table
    /// for header damage and per clean DEMO row for duplication).
    pub rate: f64,
    /// Which fault kinds may be injected.
    pub kinds: Vec<FaultKind>,
}

impl FaultConfig {
    /// All fault kinds at the given seed and rate.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultConfig { seed, rate, kinds: FaultKind::ALL.to_vec() }
    }

    /// Restricts the config to the given kinds.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    fn enabled(&self, kind: FaultKind) -> bool {
        self.kinds.contains(&kind)
    }
}

/// One corruption that was actually applied, addressed by the line it
/// landed on in the *corrupted* output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Table name: `DEMO`, `DRUG`, `REAC`, or `OUTC`.
    pub file: &'static str,
    /// 1-based line in the corrupted table text.
    pub line: usize,
    /// What was done to the line.
    pub kind: FaultKind,
    /// The primaryid the line carried before corruption, if any.
    pub primaryid: Option<u64>,
}

/// A quarter's four tables after seeded corruption, with the full fault
/// ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptedQuarter {
    /// Quarter identity (drives on-disk file names).
    pub id: QuarterId,
    /// Corrupted DEMO table text (header + rows).
    pub demo: String,
    /// Corrupted DRUG table text.
    pub drug: String,
    /// Corrupted REAC table text.
    pub reac: String,
    /// Corrupted OUTC table text.
    pub outc: String,
    /// Every corruption that was applied, in table order.
    pub faults: Vec<InjectedFault>,
    /// Every quarantine a lenient read must produce: direct faults plus
    /// collateral orphans of destroyed DEMO rows.
    expected: Vec<(&'static str, usize, QuarantineReason)>,
    data_rows: usize,
}

impl CorruptedQuarter {
    /// Reads the corrupted tables under the given ingestion policy.
    pub fn read(&self, opts: &IngestOptions) -> Result<Ingested, AsciiError> {
        ascii::read_quarter_with(
            self.id,
            self.demo.as_bytes(),
            self.drug.as_bytes(),
            self.reac.as_bytes(),
            self.outc.as_bytes(),
            opts,
        )
    }

    /// Writes the corrupted tables into `dir` under the canonical FAERS
    /// file names (`DEMO14Q1.txt` etc.).
    pub fn write_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let label = self.id.file_label();
        for (name, text) in
            [("DEMO", &self.demo), ("DRUG", &self.drug), ("REAC", &self.reac), ("OUTC", &self.outc)]
        {
            std::fs::write(dir.join(format!("{name}{label}.txt")), text)?;
        }
        Ok(())
    }

    /// Every `(file, line, reason)` a lenient read must quarantine —
    /// direct faults plus collateral orphans.
    pub fn expected_quarantines(&self) -> &[(&'static str, usize, QuarantineReason)] {
        &self.expected
    }

    /// Expected per-reason quarantine counts, in [`QuarantineReason::ALL`]
    /// order with zero-count reasons omitted — directly comparable to
    /// [`ascii::IngestReport::counts_by_reason`].
    pub fn expected_reason_counts(&self) -> Vec<(QuarantineReason, usize)> {
        QuarantineReason::ALL
            .iter()
            .filter_map(|&reason| {
                let n = self.expected.iter().filter(|e| e.2 == reason).count();
                (n > 0).then_some((reason, n))
            })
            .collect()
    }

    /// Expected quarantined *data* rows (header damage excluded) — the
    /// number a lenient read's error budget is charged for.
    pub fn expected_bad_rows(&self) -> usize {
        self.expected.iter().filter(|e| e.2 != QuarantineReason::HeaderDamage).count()
    }

    /// Total data rows across the four corrupted tables.
    pub fn data_rows(&self) -> usize {
        self.data_rows
    }
}

/// Renders `quarter` through [`QuarterWriter`] and applies seeded
/// corruptions per `cfg`.
///
/// Requires every case id to be ≥ 1 (FAERS case ids are), so that a
/// primaryid below 100 is guaranteed to be an orphan.
pub fn corrupt_quarter(quarter: &QuarterData, cfg: &FaultConfig) -> CorruptedQuarter {
    assert!((0.0..=1.0).contains(&cfg.rate), "fault rate must be in [0, 1]");
    debug_assert!(
        quarter.reports.iter().all(|r| r.case_id >= 1),
        "orphan injection requires case ids >= 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut demo = Table::render("DEMO", QuarterWriter::write_demo, quarter);
    let mut drug = Table::render("DRUG", QuarterWriter::write_drug, quarter);
    let mut reac = Table::render("REAC", QuarterWriter::write_reac, quarter);
    let mut outc = Table::render("OUTC", QuarterWriter::write_outc, quarter);

    let demo_kinds: Vec<FaultKind> =
        [FaultKind::TruncateFields, FaultKind::InjectDelimiter, FaultKind::NonNumericWeight]
            .into_iter()
            .filter(|&k| cfg.enabled(k))
            .collect();
    let child_kinds: Vec<FaultKind> =
        [FaultKind::TruncateFields, FaultKind::InjectDelimiter, FaultKind::OrphanRow]
            .into_iter()
            .filter(|&k| cfg.enabled(k))
            .collect();

    let mut faults: Vec<InjectedFault> = Vec::new();
    let mut expected: Vec<(&'static str, usize, QuarantineReason)> = Vec::new();
    let mut killed: HashSet<u64> = HashSet::new();
    let mut demo_corrupted = vec![false; demo.rows.len()];

    // DEMO row faults destroy the case: its child rows become orphans.
    for (i, corrupted) in demo_corrupted.iter_mut().enumerate() {
        if !demo_kinds.is_empty() && rng.gen_bool(cfg.rate) {
            let kind = *demo_kinds.choose(&mut rng).expect("non-empty");
            apply_row_fault(&mut demo.rows[i], kind, &mut rng);
            faults.push(InjectedFault {
                file: "DEMO",
                line: i + 2,
                kind,
                primaryid: Some(demo.pids[i]),
            });
            expected.push(("DEMO", i + 2, kind.expected_reason()));
            killed.insert(demo.pids[i]);
            *corrupted = true;
        }
    }

    // Duplicates are appended copies of rows that survived intact, so the
    // original stays the first (and valid) occurrence.
    if cfg.enabled(FaultKind::DuplicatePrimaryid) {
        for (i, &was_corrupted) in demo_corrupted.iter().enumerate() {
            if !was_corrupted && rng.gen_bool(cfg.rate) {
                demo.rows.push(demo.rows[i].clone());
                let line = demo.rows.len() + 1;
                faults.push(InjectedFault {
                    file: "DEMO",
                    line,
                    kind: FaultKind::DuplicatePrimaryid,
                    primaryid: Some(demo.pids[i]),
                });
                expected.push(("DEMO", line, QuarantineReason::DuplicatePrimaryid));
            }
        }
    }

    // Child tables: direct faults, plus collateral orphans for rows whose
    // DEMO case a fault destroyed.
    for table in [&mut drug, &mut reac, &mut outc] {
        for i in 0..table.rows.len() {
            let line = i + 2;
            if !child_kinds.is_empty() && rng.gen_bool(cfg.rate) {
                let kind = *child_kinds.choose(&mut rng).expect("non-empty");
                apply_row_fault(&mut table.rows[i], kind, &mut rng);
                faults.push(InjectedFault {
                    file: table.file,
                    line,
                    kind,
                    primaryid: Some(table.pids[i]),
                });
                expected.push((table.file, line, kind.expected_reason()));
            } else if killed.contains(&table.pids[i]) {
                expected.push((table.file, line, QuarantineReason::Orphan));
            }
        }
    }

    // Header damage, decided last so row RNG draws are stable across
    // configs that toggle it.
    for table in [&mut demo, &mut drug, &mut reac, &mut outc] {
        if cfg.enabled(FaultKind::HeaderDamage) && rng.gen_bool(cfg.rate) {
            table.header.insert(0, 'X');
            faults.push(InjectedFault {
                file: table.file,
                line: 1,
                kind: FaultKind::HeaderDamage,
                primaryid: None,
            });
            expected.push((table.file, 1, QuarantineReason::HeaderDamage));
        }
    }

    let data_rows = demo.rows.len() + drug.rows.len() + reac.rows.len() + outc.rows.len();
    CorruptedQuarter {
        id: quarter.id,
        demo: demo.text(),
        drug: drug.text(),
        reac: reac.text(),
        outc: outc.text(),
        faults,
        expected,
        data_rows,
    }
}

/// One rendered table, split into header and data rows so faults can be
/// addressed by line.
struct Table {
    file: &'static str,
    header: String,
    rows: Vec<String>,
    /// The primaryid each data row carries, in writer order.
    pids: Vec<u64>,
}

impl Table {
    fn render(
        file: &'static str,
        write: fn(&mut Vec<u8>, &[CaseReport]) -> io::Result<()>,
        quarter: &QuarterData,
    ) -> Table {
        let mut buf = Vec::new();
        write(&mut buf, &quarter.reports).expect("writing to a Vec cannot fail");
        let text = String::from_utf8(buf).expect("ASCII writer output is UTF-8");
        let mut lines = text.lines().map(str::to_string);
        let header = lines.next().expect("writer always emits a header");
        let rows: Vec<String> = lines.collect();
        let pids: Vec<u64> = quarter
            .reports
            .iter()
            .flat_map(|r| {
                let pid = ascii::primary_id(r.case_id, r.version);
                let per_report = match file {
                    "DEMO" => 1,
                    "DRUG" => r.drugs.len(),
                    "REAC" => r.reactions.len(),
                    _ => r.outcomes.len(),
                };
                std::iter::repeat_n(pid, per_report)
            })
            .collect();
        debug_assert_eq!(rows.len(), pids.len());
        Table { file, header, rows, pids }
    }

    fn text(&self) -> String {
        let mut out = String::with_capacity(
            self.header.len() + self.rows.iter().map(|r| r.len() + 1).sum::<usize>() + 1,
        );
        out.push_str(&self.header);
        out.push('\n');
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }
}

fn apply_row_fault(row: &mut String, kind: FaultKind, rng: &mut StdRng) {
    let mut fields: Vec<String> = row.split('$').map(str::to_string).collect();
    match kind {
        FaultKind::TruncateFields => {
            fields.pop();
        }
        FaultKind::InjectDelimiter => {
            let at = rng.gen_range(0..=fields.len());
            fields.insert(at, String::new());
        }
        FaultKind::NonNumericWeight => {
            fields[6] = "heavy".to_string();
        }
        FaultKind::OrphanRow => {
            fields[0] = rng.gen_range(1u64..100).to_string();
        }
        FaultKind::DuplicatePrimaryid | FaultKind::HeaderDamage => {
            unreachable!("{kind} is not a row fault")
        }
    }
    *row = fields.join("$");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ascii::IngestMode;
    use crate::synth::{SynthConfig, Synthesizer};

    fn sample_quarter(seed: u64) -> QuarterData {
        Synthesizer::new(SynthConfig::test_scale(seed)).generate_quarter(QuarterId::new(2014, 1))
    }

    #[test]
    fn zero_rate_is_the_identity() {
        let q = sample_quarter(11);
        let corrupted = corrupt_quarter(&q, &FaultConfig::new(1, 0.0));
        assert!(corrupted.faults.is_empty());
        assert!(corrupted.expected_quarantines().is_empty());
        let back = corrupted.read(&IngestOptions::strict()).unwrap();
        assert_eq!(back.data, q);
    }

    #[test]
    fn corruption_is_deterministic_in_the_seed() {
        let q = sample_quarter(12);
        let a = corrupt_quarter(&q, &FaultConfig::new(42, 0.05));
        let b = corrupt_quarter(&q, &FaultConfig::new(42, 0.05));
        assert_eq!(a, b);
        let c = corrupt_quarter(&q, &FaultConfig::new(43, 0.05));
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn lenient_read_quarantines_exactly_the_ledger() {
        let q = sample_quarter(13);
        let corrupted = corrupt_quarter(&q, &FaultConfig::new(7, 0.03));
        assert!(!corrupted.faults.is_empty(), "rate 3% on a synth quarter must fault");
        let ingested = corrupted.read(&IngestOptions::lenient()).unwrap();
        let report = &ingested.report;

        assert_eq!(report.counts_by_reason(), corrupted.expected_reason_counts());
        assert_eq!(report.quarantined(), corrupted.expected_quarantines().len());
        assert_eq!(report.bad_rows(), corrupted.expected_bad_rows());
        // Quarantines land on exactly the predicted (file, line) pairs.
        let got: Vec<(&str, usize, QuarantineReason)> =
            report.quarantine.iter().map(|r| (r.file, r.line, r.reason)).collect();
        let mut want: Vec<(&str, usize, QuarantineReason)> =
            corrupted.expected_quarantines().to_vec();
        // The ledger appends header-damage entries last; the reader sees a
        // damaged header first in its file. Compare as sets of rows.
        want.sort_unstable();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, want);
        // Every data row is either parsed or quarantined.
        assert_eq!(report.rows_read(), corrupted.data_rows());
        assert_eq!(report.rows_ok() + report.bad_rows(), report.rows_read());
        assert_eq!(report.mode, IngestMode::Lenient);
    }

    #[test]
    fn strict_read_fails_on_a_faulted_quarter() {
        let q = sample_quarter(14);
        let corrupted = corrupt_quarter(&q, &FaultConfig::new(9, 0.05));
        assert!(!corrupted.faults.is_empty());
        assert!(corrupted.read(&IngestOptions::strict()).is_err());
    }

    #[test]
    fn restricting_kinds_restricts_faults() {
        let q = sample_quarter(15);
        let cfg = FaultConfig::new(21, 0.10).with_kinds(&[FaultKind::OrphanRow]);
        let corrupted = corrupt_quarter(&q, &cfg);
        assert!(!corrupted.faults.is_empty());
        assert!(corrupted.faults.iter().all(|f| f.kind == FaultKind::OrphanRow));
        let ingested = corrupted.read(&IngestOptions::lenient()).unwrap();
        assert!(ingested.report.quarantine.iter().all(|r| r.reason == QuarantineReason::Orphan));
    }

    #[test]
    fn write_dir_roundtrips_through_the_dir_reader() {
        let dir = std::env::temp_dir().join(format!("maras_faults_{}", std::process::id()));
        let q = sample_quarter(16);
        let corrupted = corrupt_quarter(&q, &FaultConfig::new(3, 0.02));
        corrupted.write_dir(&dir).unwrap();
        let from_dir = ascii::read_quarter_dir_with(&dir, q.id, &IngestOptions::lenient()).unwrap();
        let from_mem = corrupted.read(&IngestOptions::lenient()).unwrap();
        assert_eq!(from_dir, from_mem);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
