//! Data preparation and cleaning (thesis §5.2, step 1): "We extracted the
//! drugs and ADRs from FAERS reports and merged them for each single case.
//! We performed some preliminary cleaning on drug names and ADRs to remove
//! duplication and correct misspellings."
//!
//! Concretely this stage:
//!
//! 1. de-duplicates case versions — follow-ups share a `case_id`; the
//!    highest version wins;
//! 2. normalizes verbatim drug strings: uppercasing, dosage/formulation
//!    token stripping, then exact → fuzzy (BK-tree, bounded edit distance)
//!    matching against the canonical drug vocabulary;
//! 3. canonicalizes reaction terms: case-folded exact match, then fuzzy
//!    matching against the ADR vocabulary;
//! 4. abstracts each surviving case into its (drug-id set, ADR-id set) pair,
//!    keeping a pointer back to the source report for drill-down (§4.1).

use crate::model::{CaseReport, Outcome};
use crate::quarter::QuarterData;
use crate::vocab::Vocabulary;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Configuration of the cleaning stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleanConfig {
    /// Maximum Levenshtein distance for spelling correction (0 disables
    /// fuzzy matching).
    pub max_edit_distance: usize,
    /// Strip dosage / formulation tokens from drug strings before matching.
    pub strip_dosage: bool,
    /// Minimum drugs a cleaned report must retain to be kept.
    pub min_drugs: usize,
    /// Minimum reactions a cleaned report must retain to be kept.
    pub min_reactions: usize,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig { max_edit_distance: 2, strip_dosage: true, min_drugs: 1, min_reactions: 1 }
    }
}

/// A cleaned, abstracted case: canonical drug and ADR id sets plus a link
/// back to the raw report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanedReport {
    /// FAERS case id.
    pub case_id: u64,
    /// Canonical drug ids, sorted, de-duplicated.
    pub drug_ids: Vec<u32>,
    /// Canonical ADR ids, sorted, de-duplicated.
    pub adr_ids: Vec<u32>,
    /// Whether the case is serious (≥ 1 severe outcome).
    pub serious: bool,
    /// Most severe outcome, if any.
    pub max_severity: Option<Outcome>,
    /// Index of the kept version inside the source `QuarterData::reports`.
    pub source_index: usize,
}

/// Counters describing what cleaning did (§5.3-style at-a-glance numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningStats {
    /// Raw reports in.
    pub input_reports: usize,
    /// Follow-up versions removed by case de-duplication.
    pub deduplicated_versions: usize,
    /// Cleaned reports out.
    pub output_reports: usize,
    /// Reports dropped for having too few drugs/reactions after matching.
    pub dropped_sparse: usize,
    /// Drug mentions processed.
    pub drug_mentions: usize,
    /// Drug mentions resolved only by fuzzy matching (a spelling fix).
    pub corrected_drugs: usize,
    /// Drug mentions that matched no canonical name and were dropped.
    pub unmatched_drugs: usize,
    /// Reaction mentions processed.
    pub adr_mentions: usize,
    /// Reaction mentions resolved only by fuzzy / case-folded matching.
    pub corrected_adrs: usize,
    /// Reaction mentions that matched no canonical term and were dropped.
    pub unmatched_adrs: usize,
}

/// Formulation / dosage tokens stripped from verbatim drug strings.
const FORMULATION_TOKENS: &[&str] = &[
    "TABLET",
    "TABLETS",
    "TAB",
    "TABS",
    "CAPSULE",
    "CAPSULES",
    "CAP",
    "CAPS",
    "INJECTION",
    "INJ",
    "ORAL",
    "SOLUTION",
    "SUSPENSION",
    "CREAM",
    "GEL",
    "PATCH",
    "SYRUP",
    "DROPS",
    "SPRAY",
    "ER",
    "XR",
    "SR",
    "CR",
    "HCL",
    "HCT",
    "SODIUM",
    "CALCIUM",
    "POTASSIUM",
    "UNKNOWN",
    "NOS",
    "MG",
    "MCG",
    "ML",
    "IU",
];

fn is_dosage_token(tok: &str) -> bool {
    if tok.chars().all(|c| c.is_ascii_digit()) && !tok.is_empty() {
        return true;
    }
    // e.g. 10MG, 2.5MG, 100MCG, 5ML, 40IU, 0.5%, 10MG/ML
    let mut digits = 0usize;
    for c in tok.chars() {
        if c.is_ascii_digit() {
            digits += 1;
        }
    }
    if digits == 0 {
        return false;
    }
    let unit_part: String = tok.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    matches!(unit_part.as_str(), "" | "MG" | "MCG" | "ML" | "G" | "IU" | "MGML" | "MCGML")
        || tok.ends_with('%')
}

/// Normalizes a verbatim drug string: uppercase, collapse whitespace, and
/// (optionally) strip dosage / formulation tokens.
pub fn normalize_drug_string(raw: &str, strip_dosage: bool) -> String {
    let upper = raw.to_ascii_uppercase();
    let tokens: Vec<&str> = upper
        .split_whitespace()
        .filter(|t| {
            if !strip_dosage {
                return true;
            }
            !is_dosage_token(t) && !FORMULATION_TOKENS.contains(t)
        })
        .collect();
    if tokens.is_empty() {
        // A pure-dosage string: fall back to the collapsed original.
        upper.split_whitespace().collect::<Vec<_>>().join(" ")
    } else {
        tokens.join(" ")
    }
}

/// Runs the cleaning pipeline over a quarter.
pub fn clean_quarter(
    quarter: &QuarterData,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
    config: &CleanConfig,
) -> (Vec<CleanedReport>, CleaningStats) {
    let mut stats = CleaningStats { input_reports: quarter.reports.len(), ..Default::default() };

    // 1. Case de-duplication: keep the highest version per case id (later
    //    index wins ties, matching FAERS "latest row wins" guidance).
    let mut latest: FxHashMap<u64, usize> = FxHashMap::default();
    for (idx, r) in quarter.reports.iter().enumerate() {
        match latest.entry(r.case_id) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(idx);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                stats.deduplicated_versions += 1;
                if quarter.reports[*e.get()].version <= r.version {
                    e.insert(idx);
                }
            }
        }
    }
    let mut kept: Vec<usize> = latest.into_values().collect();
    kept.sort_unstable();

    // Case-folded exact index for ADR terms.
    let folded_adrs: FxHashMap<String, u32> =
        adr_vocab.iter().map(|(id, t)| (t.to_ascii_lowercase(), id)).collect();

    let mut out = Vec::with_capacity(kept.len());
    for idx in kept {
        let report = &quarter.reports[idx];
        let (drug_ids, adr_ids) =
            clean_one(report, drug_vocab, adr_vocab, &folded_adrs, config, &mut stats);
        if drug_ids.len() < config.min_drugs || adr_ids.len() < config.min_reactions {
            stats.dropped_sparse += 1;
            continue;
        }
        out.push(CleanedReport {
            case_id: report.case_id,
            drug_ids,
            adr_ids,
            serious: report.is_serious(),
            max_severity: report.max_severity(),
            source_index: idx,
        });
    }
    stats.output_reports = out.len();
    (out, stats)
}

fn clean_one(
    report: &CaseReport,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
    folded_adrs: &FxHashMap<String, u32>,
    config: &CleanConfig,
    stats: &mut CleaningStats,
) -> (Vec<u32>, Vec<u32>) {
    let mut drug_ids: Vec<u32> = Vec::with_capacity(report.drugs.len());
    for entry in &report.drugs {
        stats.drug_mentions += 1;
        let normalized = normalize_drug_string(&entry.name, config.strip_dosage);
        match drug_vocab.nearest(&normalized, config.max_edit_distance) {
            Some((id, 0)) => {
                if normalized != entry.name {
                    stats.corrected_drugs += 1;
                }
                drug_ids.push(id);
            }
            Some((id, _)) => {
                stats.corrected_drugs += 1;
                drug_ids.push(id);
            }
            None => stats.unmatched_drugs += 1,
        }
    }
    drug_ids.sort_unstable();
    drug_ids.dedup();

    let mut adr_ids: Vec<u32> = Vec::with_capacity(report.reactions.len());
    for raw in &report.reactions {
        stats.adr_mentions += 1;
        let trimmed: String = raw.split_whitespace().collect::<Vec<_>>().join(" ");
        if let Some(id) = adr_vocab.id_of(&trimmed) {
            adr_ids.push(id);
            continue;
        }
        if let Some(&id) = folded_adrs.get(&trimmed.to_ascii_lowercase()) {
            stats.corrected_adrs += 1;
            adr_ids.push(id);
            continue;
        }
        match adr_vocab.nearest(&trimmed, config.max_edit_distance) {
            Some((id, _)) => {
                stats.corrected_adrs += 1;
                adr_ids.push(id);
            }
            None => stats.unmatched_adrs += 1,
        }
    }
    adr_ids.sort_unstable();
    adr_ids.dedup();

    (drug_ids, adr_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DrugEntry, DrugRole, ReportType, Sex};
    use crate::quarter::QuarterId;

    fn report(case_id: u64, version: u32, drugs: &[&str], adrs: &[&str]) -> CaseReport {
        CaseReport {
            case_id,
            version,
            report_type: ReportType::Expedited,
            age: None,
            sex: Sex::Unknown,
            weight_kg: None,
            country: "US".into(),
            event_date: None,
            drugs: drugs.iter().map(|d| DrugEntry::new(*d, DrugRole::PrimarySuspect)).collect(),
            reactions: adrs.iter().map(|a| a.to_string()).collect(),
            outcomes: vec![Outcome::Hospitalization],
        }
    }

    fn quarter(reports: Vec<CaseReport>) -> QuarterData {
        QuarterData { id: QuarterId::new(2014, 1), reports }
    }

    fn vocabs() -> (Vocabulary, Vocabulary) {
        (Vocabulary::drugs(150), Vocabulary::adrs(120))
    }

    #[test]
    fn normalize_strips_dosage_and_formulation() {
        assert_eq!(normalize_drug_string("Ibuprofen 200mg Tablet", true), "IBUPROFEN");
        assert_eq!(normalize_drug_string("warfarin  sodium 5 MG", true), "WARFARIN");
        assert_eq!(normalize_drug_string("NEXIUM 40MG CAPSULES", true), "NEXIUM");
        assert_eq!(normalize_drug_string("ASPIRIN", false), "ASPIRIN");
        assert_eq!(normalize_drug_string("aspirin 81mg", false), "ASPIRIN 81MG");
    }

    #[test]
    fn normalize_pure_dosage_string_falls_back() {
        assert_eq!(normalize_drug_string("10MG TABLET", true), "10MG TABLET");
    }

    #[test]
    fn exact_and_fuzzy_drug_matching() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(
            1,
            1,
            &["IBUPROFEN", "METAMIZOLE 500MG", "IBUPROFFEN", "XQZWJK"],
            &["Acute renal failure"],
        )]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert_eq!(cleaned.len(), 1);
        let names: Vec<&str> = cleaned[0].drug_ids.iter().map(|&id| dv.term(id)).collect();
        // IBUPROFEN appears once despite exact + typo duplicates.
        assert_eq!(names.iter().filter(|n| **n == "IBUPROFEN").count(), 1, "names: {names:?}");
        assert!(names.contains(&"METAMIZOLE"));
        assert_eq!(stats.unmatched_drugs, 1); // XQZWJK
        assert!(stats.corrected_drugs >= 2); // dosage strip + typo fix
    }

    #[test]
    fn adr_case_folding_and_typos() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(
            1,
            1,
            &["ASPIRIN"],
            &["acute renal failure", "OSTEOPOROSIS", "Naussea", "Zzzz-not-a-term"],
        )]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        let terms: Vec<&str> = cleaned[0].adr_ids.iter().map(|&id| av.term(id)).collect();
        assert!(terms.contains(&"Acute renal failure"), "{terms:?}");
        assert!(terms.contains(&"Osteoporosis"), "{terms:?}");
        assert!(terms.contains(&"Nausea"), "{terms:?}");
        assert_eq!(stats.unmatched_adrs, 1);
    }

    #[test]
    fn followup_versions_deduplicated_keeping_latest() {
        let (dv, av) = vocabs();
        let q = quarter(vec![
            report(42, 1, &["ASPIRIN"], &["Nausea"]),
            report(42, 3, &["ASPIRIN", "WARFARIN"], &["Haemorrhage"]),
            report(42, 2, &["ASPIRIN"], &["Headache"]),
            report(43, 1, &["NEXIUM"], &["Osteoporosis"]),
        ]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert_eq!(stats.deduplicated_versions, 2);
        assert_eq!(cleaned.len(), 2);
        let c42 = cleaned.iter().find(|c| c.case_id == 42).unwrap();
        assert_eq!(c42.source_index, 1); // version 3
        assert_eq!(c42.drug_ids.len(), 2);
        let terms: Vec<&str> = c42.adr_ids.iter().map(|&id| av.term(id)).collect();
        assert_eq!(terms, vec!["Haemorrhage"]);
    }

    #[test]
    fn sparse_reports_dropped() {
        let (dv, av) = vocabs();
        let q = quarter(vec![
            report(1, 1, &["NOTADRUGATALLXYZQ"], &["Nausea"]), // no drug survives
            report(2, 1, &["ASPIRIN"], &[]),                   // no reactions
            report(3, 1, &["ASPIRIN"], &["Nausea"]),
        ]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert_eq!(cleaned.len(), 1);
        assert_eq!(cleaned[0].case_id, 3);
        assert_eq!(stats.dropped_sparse, 2);
        assert_eq!(stats.output_reports, 1);
    }

    #[test]
    fn fuzzy_disabled_with_zero_distance() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(1, 1, &["IBUPROFFEN", "ASPIRIN"], &["Nausea"])]);
        let cfg = CleanConfig { max_edit_distance: 0, ..Default::default() };
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &cfg);
        assert_eq!(stats.unmatched_drugs, 1);
        assert_eq!(cleaned[0].drug_ids.len(), 1);
    }

    #[test]
    fn drug_ids_sorted_and_unique() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(
            1,
            1,
            &["WARFARIN", "ASPIRIN", "WARFARIN 5MG", "aspirin"],
            &["Haemorrhage", "haemorrhage"],
        )]);
        let (cleaned, _) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        let ids = &cleaned[0].drug_ids;
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "{ids:?}");
        assert_eq!(ids.len(), 2);
        assert_eq!(cleaned[0].adr_ids.len(), 1);
    }

    #[test]
    fn serious_flag_carries_through() {
        let (dv, av) = vocabs();
        let mut r = report(1, 1, &["ASPIRIN"], &["Nausea"]);
        r.outcomes = vec![Outcome::Death];
        let q = quarter(vec![r]);
        let (cleaned, _) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert!(cleaned[0].serious);
        assert_eq!(cleaned[0].max_severity, Some(Outcome::Death));
    }
}
