//! Data preparation and cleaning (thesis §5.2, step 1): "We extracted the
//! drugs and ADRs from FAERS reports and merged them for each single case.
//! We performed some preliminary cleaning on drug names and ADRs to remove
//! duplication and correct misspellings."
//!
//! Concretely this stage:
//!
//! 1. de-duplicates case versions — follow-ups share a `case_id`; the
//!    highest version wins;
//! 2. normalizes verbatim drug strings: uppercasing, dosage/formulation
//!    token stripping, then exact → fuzzy (BK-tree, bounded edit distance)
//!    matching against the canonical drug vocabulary;
//! 3. canonicalizes reaction terms: case-folded exact match, then fuzzy
//!    matching against the ADR vocabulary;
//! 4. abstracts each surviving case into its (drug-id set, ADR-id set) pair,
//!    keeping a pointer back to the source report for drill-down (§4.1).

use crate::model::{CaseReport, Outcome};
use crate::quarter::QuarterData;
use crate::vocab::Vocabulary;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Configuration of the cleaning stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleanConfig {
    /// Maximum Levenshtein distance for spelling correction (0 disables
    /// fuzzy matching).
    pub max_edit_distance: usize,
    /// Strip dosage / formulation tokens from drug strings before matching.
    pub strip_dosage: bool,
    /// Minimum drugs a cleaned report must retain to be kept.
    pub min_drugs: usize,
    /// Minimum reactions a cleaned report must retain to be kept.
    pub min_reactions: usize,
    /// Memoize canonicalization per raw string. Raw FAERS strings are
    /// wildly repetitive, so most mentions replay a cached verdict instead
    /// of re-running normalization + the BK-tree walk. Output and the
    /// legacy stats counters are identical either way (differential-
    /// tested); only the `*_cache_*` counters depend on this flag.
    pub memoize: bool,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            max_edit_distance: 2,
            strip_dosage: true,
            min_drugs: 1,
            min_reactions: 1,
            memoize: true,
        }
    }
}

/// A cleaned, abstracted case: canonical drug and ADR id sets plus a link
/// back to the raw report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanedReport {
    /// FAERS case id.
    pub case_id: u64,
    /// Canonical drug ids, sorted, de-duplicated.
    pub drug_ids: Vec<u32>,
    /// Canonical ADR ids, sorted, de-duplicated.
    pub adr_ids: Vec<u32>,
    /// Whether the case is serious (≥ 1 severe outcome).
    pub serious: bool,
    /// Most severe outcome, if any.
    pub max_severity: Option<Outcome>,
    /// Index of the kept version inside the source `QuarterData::reports`.
    pub source_index: usize,
}

/// Counters describing what cleaning did (§5.3-style at-a-glance numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningStats {
    /// Raw reports in.
    pub input_reports: usize,
    /// Follow-up versions removed by case de-duplication.
    pub deduplicated_versions: usize,
    /// Cleaned reports out.
    pub output_reports: usize,
    /// Reports dropped for having too few drugs/reactions after matching.
    pub dropped_sparse: usize,
    /// Drug mentions processed.
    pub drug_mentions: usize,
    /// Drug mentions resolved only by fuzzy matching (a spelling fix).
    pub corrected_drugs: usize,
    /// Drug mentions that matched no canonical name and were dropped.
    pub unmatched_drugs: usize,
    /// Reaction mentions processed.
    pub adr_mentions: usize,
    /// Reaction mentions resolved only by fuzzy / case-folded matching.
    pub corrected_adrs: usize,
    /// Reaction mentions that matched no canonical term and were dropped.
    pub unmatched_adrs: usize,
    /// Drug mentions answered by the canonicalization memo.
    pub drug_cache_hits: usize,
    /// Drug mentions that ran full normalization + BK-tree resolution.
    pub drug_cache_misses: usize,
    /// Reaction mentions answered by the canonicalization memo.
    pub adr_cache_hits: usize,
    /// Reaction mentions that ran full resolution.
    pub adr_cache_misses: usize,
}

impl CleaningStats {
    /// These stats with the memo counters zeroed. Cleaning output and the
    /// legacy counters are identical with memoization on or off; only the
    /// cache counters may differ, so comparisons across the two paths go
    /// through this.
    pub fn without_cache_counters(mut self) -> Self {
        self.drug_cache_hits = 0;
        self.drug_cache_misses = 0;
        self.adr_cache_hits = 0;
        self.adr_cache_misses = 0;
        self
    }

    /// Field-wise sum of these stats and another quarter's, for run-level
    /// rollups across a shared-[`Cleaner`] multi-quarter run.
    pub fn merged(&self, other: &Self) -> Self {
        CleaningStats {
            input_reports: self.input_reports + other.input_reports,
            deduplicated_versions: self.deduplicated_versions + other.deduplicated_versions,
            output_reports: self.output_reports + other.output_reports,
            dropped_sparse: self.dropped_sparse + other.dropped_sparse,
            drug_mentions: self.drug_mentions + other.drug_mentions,
            corrected_drugs: self.corrected_drugs + other.corrected_drugs,
            unmatched_drugs: self.unmatched_drugs + other.unmatched_drugs,
            adr_mentions: self.adr_mentions + other.adr_mentions,
            corrected_adrs: self.corrected_adrs + other.corrected_adrs,
            unmatched_adrs: self.unmatched_adrs + other.unmatched_adrs,
            drug_cache_hits: self.drug_cache_hits + other.drug_cache_hits,
            drug_cache_misses: self.drug_cache_misses + other.drug_cache_misses,
            adr_cache_hits: self.adr_cache_hits + other.adr_cache_hits,
            adr_cache_misses: self.adr_cache_misses + other.adr_cache_misses,
        }
    }

    /// Fraction of drug + ADR mentions answered by the memo, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.drug_cache_hits + self.adr_cache_hits;
        let total = hits + self.drug_cache_misses + self.adr_cache_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Formulation / dosage tokens stripped from verbatim drug strings.
const FORMULATION_TOKENS: &[&str] = &[
    "TABLET",
    "TABLETS",
    "TAB",
    "TABS",
    "CAPSULE",
    "CAPSULES",
    "CAP",
    "CAPS",
    "INJECTION",
    "INJ",
    "ORAL",
    "SOLUTION",
    "SUSPENSION",
    "CREAM",
    "GEL",
    "PATCH",
    "SYRUP",
    "DROPS",
    "SPRAY",
    "ER",
    "XR",
    "SR",
    "CR",
    "HCL",
    "HCT",
    "SODIUM",
    "CALCIUM",
    "POTASSIUM",
    "UNKNOWN",
    "NOS",
    "MG",
    "MCG",
    "ML",
    "IU",
];

/// Dosage unit spellings (the alphabetic residue of tokens like `10MG`,
/// `2.5MG`, `100MCG`, `5ML`, `40IU`, `10MG/ML`).
const DOSAGE_UNITS: &[&str] = &["", "MG", "MCG", "ML", "G", "IU", "MGML", "MCGML"];

fn is_dosage_token(tok: &str) -> bool {
    if tok.chars().all(|c| c.is_ascii_digit()) && !tok.is_empty() {
        return true;
    }
    // e.g. 10MG, 2.5MG, 100MCG, 5ML, 40IU, 0.5%, 10MG/ML
    let mut digits = 0usize;
    for c in tok.chars() {
        if c.is_ascii_digit() {
            digits += 1;
        }
    }
    if digits == 0 {
        return false;
    }
    let alpha = || tok.chars().filter(|c| c.is_ascii_alphabetic());
    DOSAGE_UNITS.iter().any(|u| alpha().eq(u.chars())) || tok.ends_with('%')
}

/// Normalizes a verbatim drug string: uppercase, collapse whitespace, and
/// (optionally) strip dosage / formulation tokens.
pub fn normalize_drug_string(raw: &str, strip_dosage: bool) -> String {
    let mut out = String::new();
    normalize_drug_string_into(raw, strip_dosage, &mut out);
    out
}

/// [`normalize_drug_string`] into a reused buffer: one pass, appending
/// each uppercased token and truncating it back off when it turns out to
/// be a dosage / formulation token.
fn normalize_drug_string_into(raw: &str, strip_dosage: bool, out: &mut String) {
    out.clear();
    for tok in raw.split_whitespace() {
        let sep_start = out.len();
        if !out.is_empty() {
            out.push(' ');
        }
        let tok_start = out.len();
        for c in tok.chars() {
            out.push(c.to_ascii_uppercase());
        }
        if strip_dosage {
            let up = &out[tok_start..];
            if is_dosage_token(up) || FORMULATION_TOKENS.contains(&up) {
                out.truncate(sep_start);
            }
        }
    }
    if out.is_empty() {
        // A pure-dosage string: fall back to the collapsed original.
        for tok in raw.split_whitespace() {
            if !out.is_empty() {
                out.push(' ');
            }
            for c in tok.chars() {
                out.push(c.to_ascii_uppercase());
            }
        }
    }
}

/// Collapses runs of whitespace to single spaces into a reused buffer
/// (the single-pass replacement for `split_whitespace().collect().join()`).
fn collapse_whitespace_into(raw: &str, out: &mut String) {
    out.clear();
    for tok in raw.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(tok);
    }
}

/// Runs the cleaning pipeline over a quarter with a fresh [`Cleaner`].
///
/// When cleaning several quarters against the same vocabularies (a year
/// run), construct one [`Cleaner`] and call
/// [`Cleaner::clean_quarter`] per quarter instead: the canonicalization
/// memos carry over, so repeated raw strings pay the fuzzy vocabulary
/// search only once per run rather than once per quarter.
pub fn clean_quarter(
    quarter: &QuarterData,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
    config: &CleanConfig,
) -> (Vec<CleanedReport>, CleaningStats) {
    Cleaner::new(drug_vocab, adr_vocab, config.clone()).clean_quarter(quarter)
}

/// Reusable cleaning state: vocabularies, the case-folded ADR index,
/// the canonicalization memos, and reused scratch buffers.
///
/// The memos are keyed on the *raw* string and store the full verdict —
/// canonical id (or none) plus whether resolving it counted as a
/// correction — so replaying a hit updates every stats counter exactly as
/// the uncached path would. A memo entry depends only on the vocabularies
/// and config (both fixed for the cleaner's lifetime), never on the
/// quarter, so one cleaner may be shared across every quarter of a run:
/// output is identical to cleaning each quarter with a fresh cleaner, and
/// statistics stay per-call.
#[derive(Debug)]
pub struct Cleaner<'a> {
    drug_vocab: &'a Vocabulary,
    adr_vocab: &'a Vocabulary,
    folded_adrs: FxHashMap<String, u32>,
    config: CleanConfig,
    drug_memo: FxHashMap<Box<str>, Option<(u32, bool)>>,
    /// Second-level memo keyed on the *normalized* drug string, gating the
    /// BK-tree walk: dosage/case variants of one misspelling normalize to
    /// the same string, so only the first pays the fuzzy search. Stores
    /// the `(id, distance)` the vocabulary returned.
    drug_norm_memo: FxHashMap<Box<str>, Option<(u32, usize)>>,
    adr_memo: FxHashMap<Box<str>, Option<(u32, bool)>>,
    buf: String,
    folded_buf: String,
}

impl<'a> Cleaner<'a> {
    /// Builds a cleaner over the given vocabularies, including the
    /// case-folded exact index for ADR terms.
    pub fn new(drug_vocab: &'a Vocabulary, adr_vocab: &'a Vocabulary, config: CleanConfig) -> Self {
        let folded_adrs: FxHashMap<String, u32> =
            adr_vocab.iter().map(|(id, t)| (t.to_ascii_lowercase(), id)).collect();
        Cleaner {
            drug_vocab,
            adr_vocab,
            folded_adrs,
            config,
            drug_memo: FxHashMap::default(),
            drug_norm_memo: FxHashMap::default(),
            adr_memo: FxHashMap::default(),
            buf: String::new(),
            folded_buf: String::new(),
        }
    }

    /// The drug vocabulary this cleaner resolves against.
    pub fn drug_vocab(&self) -> &'a Vocabulary {
        self.drug_vocab
    }

    /// The ADR vocabulary this cleaner resolves against.
    pub fn adr_vocab(&self) -> &'a Vocabulary {
        self.adr_vocab
    }

    /// The active cleaning configuration.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// Runs the cleaning pipeline over one quarter.
    ///
    /// Statistics cover this call only; the canonicalization memos persist
    /// across calls (see the type-level docs for why that is sound).
    pub fn clean_quarter(&mut self, quarter: &QuarterData) -> (Vec<CleanedReport>, CleaningStats) {
        let _span = maras_obs::span("clean");
        let mut stats =
            CleaningStats { input_reports: quarter.reports.len(), ..Default::default() };

        // 1. Case de-duplication: keep the highest version per case id
        //    (later index wins ties, matching FAERS "latest row wins"
        //    guidance).
        let mut latest: FxHashMap<u64, usize> = FxHashMap::default();
        for (idx, r) in quarter.reports.iter().enumerate() {
            match latest.entry(r.case_id) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(idx);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    stats.deduplicated_versions += 1;
                    if quarter.reports[*e.get()].version <= r.version {
                        e.insert(idx);
                    }
                }
            }
        }
        let mut kept: Vec<usize> = latest.into_values().collect();
        kept.sort_unstable();

        let mut out = Vec::with_capacity(kept.len());
        for idx in kept {
            let report = &quarter.reports[idx];
            let (drug_ids, adr_ids) = self.clean_one(report, &mut stats);
            if drug_ids.len() < self.config.min_drugs || adr_ids.len() < self.config.min_reactions {
                stats.dropped_sparse += 1;
                continue;
            }
            out.push(CleanedReport {
                case_id: report.case_id,
                drug_ids,
                adr_ids,
                serious: report.is_serious(),
                max_severity: report.max_severity(),
                source_index: idx,
            });
        }
        stats.output_reports = out.len();
        maras_obs::counter("maras_clean_reports_total", "cleaned reports emitted")
            .add(out.len() as u64);
        maras_obs::counter("maras_clean_cache_hits_total", "canonicalization memo hits")
            .add((stats.drug_cache_hits + stats.adr_cache_hits) as u64);
        maras_obs::counter("maras_clean_cache_misses_total", "canonicalization memo misses")
            .add((stats.drug_cache_misses + stats.adr_cache_misses) as u64);
        (out, stats)
    }

    fn clean_one(
        &mut self,
        report: &CaseReport,
        stats: &mut CleaningStats,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut drug_ids: Vec<u32> = Vec::with_capacity(report.drugs.len());
        for entry in &report.drugs {
            stats.drug_mentions += 1;
            match self.resolve_drug(&entry.name, stats) {
                Some((id, corrected)) => {
                    if corrected {
                        stats.corrected_drugs += 1;
                    }
                    drug_ids.push(id);
                }
                None => stats.unmatched_drugs += 1,
            }
        }
        drug_ids.sort_unstable();
        drug_ids.dedup();

        let mut adr_ids: Vec<u32> = Vec::with_capacity(report.reactions.len());
        for raw in &report.reactions {
            stats.adr_mentions += 1;
            match self.resolve_adr(raw, stats) {
                Some((id, corrected)) => {
                    if corrected {
                        stats.corrected_adrs += 1;
                    }
                    adr_ids.push(id);
                }
                None => stats.unmatched_adrs += 1,
            }
        }
        adr_ids.sort_unstable();
        adr_ids.dedup();

        (drug_ids, adr_ids)
    }

    fn resolve_drug(&mut self, raw: &str, stats: &mut CleaningStats) -> Option<(u32, bool)> {
        if !self.config.memoize {
            return self.resolve_drug_uncached(raw);
        }
        if let Some(&verdict) = self.drug_memo.get(raw) {
            stats.drug_cache_hits += 1;
            return verdict;
        }
        stats.drug_cache_misses += 1;
        normalize_drug_string_into(raw, self.config.strip_dosage, &mut self.buf);
        let nearest = match self.drug_norm_memo.get(self.buf.as_str()) {
            Some(&hit) => hit,
            None => {
                let computed = self.drug_vocab.nearest(&self.buf, self.config.max_edit_distance);
                self.drug_norm_memo.insert(self.buf.as_str().into(), computed);
                computed
            }
        };
        let verdict = match nearest {
            Some((id, 0)) => Some((id, self.buf != raw)),
            Some((id, _)) => Some((id, true)),
            None => None,
        };
        self.drug_memo.insert(raw.into(), verdict);
        verdict
    }

    fn resolve_drug_uncached(&mut self, raw: &str) -> Option<(u32, bool)> {
        normalize_drug_string_into(raw, self.config.strip_dosage, &mut self.buf);
        match self.drug_vocab.nearest(&self.buf, self.config.max_edit_distance) {
            // Exact match still counts as a correction when normalization
            // changed the string (dosage strip, case fix).
            Some((id, 0)) => Some((id, self.buf != raw)),
            Some((id, _)) => Some((id, true)),
            None => None,
        }
    }

    fn resolve_adr(&mut self, raw: &str, stats: &mut CleaningStats) -> Option<(u32, bool)> {
        if !self.config.memoize {
            return self.resolve_adr_uncached(raw);
        }
        if let Some(&verdict) = self.adr_memo.get(raw) {
            stats.adr_cache_hits += 1;
            return verdict;
        }
        stats.adr_cache_misses += 1;
        let verdict = self.resolve_adr_uncached(raw);
        self.adr_memo.insert(raw.into(), verdict);
        verdict
    }

    fn resolve_adr_uncached(&mut self, raw: &str) -> Option<(u32, bool)> {
        collapse_whitespace_into(raw, &mut self.buf);
        if let Some(id) = self.adr_vocab.id_of(&self.buf) {
            return Some((id, false));
        }
        self.folded_buf.clear();
        self.folded_buf.push_str(&self.buf);
        self.folded_buf.make_ascii_lowercase();
        if let Some(&id) = self.folded_adrs.get(&self.folded_buf) {
            return Some((id, true));
        }
        self.adr_vocab.nearest(&self.buf, self.config.max_edit_distance).map(|(id, _)| (id, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DrugEntry, DrugRole, ReportType, Sex};
    use crate::quarter::QuarterId;

    fn report(case_id: u64, version: u32, drugs: &[&str], adrs: &[&str]) -> CaseReport {
        CaseReport {
            case_id,
            version,
            report_type: ReportType::Expedited,
            age: None,
            sex: Sex::Unknown,
            weight_kg: None,
            country: "US".into(),
            event_date: None,
            drugs: drugs.iter().map(|d| DrugEntry::new(*d, DrugRole::PrimarySuspect)).collect(),
            reactions: adrs.iter().map(|&a| a.into()).collect(),
            outcomes: vec![Outcome::Hospitalization],
        }
    }

    fn quarter(reports: Vec<CaseReport>) -> QuarterData {
        QuarterData { id: QuarterId::new(2014, 1), reports }
    }

    fn vocabs() -> (Vocabulary, Vocabulary) {
        (Vocabulary::drugs(150), Vocabulary::adrs(120))
    }

    #[test]
    fn normalize_strips_dosage_and_formulation() {
        assert_eq!(normalize_drug_string("Ibuprofen 200mg Tablet", true), "IBUPROFEN");
        assert_eq!(normalize_drug_string("warfarin  sodium 5 MG", true), "WARFARIN");
        assert_eq!(normalize_drug_string("NEXIUM 40MG CAPSULES", true), "NEXIUM");
        assert_eq!(normalize_drug_string("ASPIRIN", false), "ASPIRIN");
        assert_eq!(normalize_drug_string("aspirin 81mg", false), "ASPIRIN 81MG");
    }

    #[test]
    fn normalize_pure_dosage_string_falls_back() {
        assert_eq!(normalize_drug_string("10MG TABLET", true), "10MG TABLET");
    }

    #[test]
    fn exact_and_fuzzy_drug_matching() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(
            1,
            1,
            &["IBUPROFEN", "METAMIZOLE 500MG", "IBUPROFFEN", "XQZWJK"],
            &["Acute renal failure"],
        )]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert_eq!(cleaned.len(), 1);
        let names: Vec<&str> = cleaned[0].drug_ids.iter().map(|&id| dv.term(id)).collect();
        // IBUPROFEN appears once despite exact + typo duplicates.
        assert_eq!(names.iter().filter(|n| **n == "IBUPROFEN").count(), 1, "names: {names:?}");
        assert!(names.contains(&"METAMIZOLE"));
        assert_eq!(stats.unmatched_drugs, 1); // XQZWJK
        assert!(stats.corrected_drugs >= 2); // dosage strip + typo fix
    }

    #[test]
    fn adr_case_folding_and_typos() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(
            1,
            1,
            &["ASPIRIN"],
            &["acute renal failure", "OSTEOPOROSIS", "Naussea", "Zzzz-not-a-term"],
        )]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        let terms: Vec<&str> = cleaned[0].adr_ids.iter().map(|&id| av.term(id)).collect();
        assert!(terms.contains(&"Acute renal failure"), "{terms:?}");
        assert!(terms.contains(&"Osteoporosis"), "{terms:?}");
        assert!(terms.contains(&"Nausea"), "{terms:?}");
        assert_eq!(stats.unmatched_adrs, 1);
    }

    #[test]
    fn followup_versions_deduplicated_keeping_latest() {
        let (dv, av) = vocabs();
        let q = quarter(vec![
            report(42, 1, &["ASPIRIN"], &["Nausea"]),
            report(42, 3, &["ASPIRIN", "WARFARIN"], &["Haemorrhage"]),
            report(42, 2, &["ASPIRIN"], &["Headache"]),
            report(43, 1, &["NEXIUM"], &["Osteoporosis"]),
        ]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert_eq!(stats.deduplicated_versions, 2);
        assert_eq!(cleaned.len(), 2);
        let c42 = cleaned.iter().find(|c| c.case_id == 42).unwrap();
        assert_eq!(c42.source_index, 1); // version 3
        assert_eq!(c42.drug_ids.len(), 2);
        let terms: Vec<&str> = c42.adr_ids.iter().map(|&id| av.term(id)).collect();
        assert_eq!(terms, vec!["Haemorrhage"]);
    }

    #[test]
    fn sparse_reports_dropped() {
        let (dv, av) = vocabs();
        let q = quarter(vec![
            report(1, 1, &["NOTADRUGATALLXYZQ"], &["Nausea"]), // no drug survives
            report(2, 1, &["ASPIRIN"], &[]),                   // no reactions
            report(3, 1, &["ASPIRIN"], &["Nausea"]),
        ]);
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert_eq!(cleaned.len(), 1);
        assert_eq!(cleaned[0].case_id, 3);
        assert_eq!(stats.dropped_sparse, 2);
        assert_eq!(stats.output_reports, 1);
    }

    #[test]
    fn fuzzy_disabled_with_zero_distance() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(1, 1, &["IBUPROFFEN", "ASPIRIN"], &["Nausea"])]);
        let cfg = CleanConfig { max_edit_distance: 0, ..Default::default() };
        let (cleaned, stats) = clean_quarter(&q, &dv, &av, &cfg);
        assert_eq!(stats.unmatched_drugs, 1);
        assert_eq!(cleaned[0].drug_ids.len(), 1);
    }

    #[test]
    fn drug_ids_sorted_and_unique() {
        let (dv, av) = vocabs();
        let q = quarter(vec![report(
            1,
            1,
            &["WARFARIN", "ASPIRIN", "WARFARIN 5MG", "aspirin"],
            &["Haemorrhage", "haemorrhage"],
        )]);
        let (cleaned, _) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        let ids = &cleaned[0].drug_ids;
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "{ids:?}");
        assert_eq!(ids.len(), 2);
        assert_eq!(cleaned[0].adr_ids.len(), 1);
    }

    #[test]
    fn memoized_cleaning_matches_uncached() {
        let (dv, av) = vocabs();
        // Heavy repetition across reports so the memo actually gets hits,
        // plus typos/dosage noise so every resolution path is exercised.
        let mut reports = Vec::new();
        for i in 0..40u64 {
            reports.push(report(
                i + 1,
                1,
                &["IBUPROFEN 200MG", "IBUPROFFEN", "warfarin  sodium 5 MG", "XQZWJK"],
                &["acute renal failure", "Naussea", "OSTEOPOROSIS", "Zzzz-not-a-term"],
            ));
        }
        let q = quarter(reports);
        let cached_cfg = CleanConfig::default();
        let uncached_cfg = CleanConfig { memoize: false, ..Default::default() };
        let (cleaned_c, stats_c) = clean_quarter(&q, &dv, &av, &cached_cfg);
        let (cleaned_u, stats_u) = clean_quarter(&q, &dv, &av, &uncached_cfg);
        assert_eq!(cleaned_c, cleaned_u);
        assert_eq!(stats_c.without_cache_counters(), stats_u.without_cache_counters());
        // The uncached path never touches the memo.
        assert_eq!(stats_u.drug_cache_hits + stats_u.drug_cache_misses, 0);
        assert_eq!(stats_u.adr_cache_hits + stats_u.adr_cache_misses, 0);
        // The cached path: 4 unique strings per vocabulary, rest are hits.
        assert_eq!(stats_c.drug_cache_misses, 4);
        assert_eq!(stats_c.drug_cache_hits, 40 * 4 - 4);
        assert_eq!(stats_c.adr_cache_misses, 4);
        assert_eq!(stats_c.adr_cache_hits, 40 * 4 - 4);
        assert!(stats_c.cache_hit_rate() > 0.9, "{}", stats_c.cache_hit_rate());
    }

    #[test]
    fn shared_cleaner_across_quarters_matches_fresh_per_quarter() {
        let (dv, av) = vocabs();
        let make = |offset: u64| {
            let mut reports = Vec::new();
            for i in 0..12u64 {
                reports.push(report(
                    offset + i + 1,
                    1,
                    &["IBUPROFEN 200MG", "IBUPROFFEN", "warfarin  sodium 5 MG"],
                    &["acute renal failure", "Naussea"],
                ));
            }
            quarter(reports)
        };
        let (q1, q2) = (make(0), make(100));

        let mut shared = Cleaner::new(&dv, &av, CleanConfig::default());
        let (s1, st1) = shared.clean_quarter(&q1);
        let (s2, st2) = shared.clean_quarter(&q2);
        let (f1, ft1) = clean_quarter(&q1, &dv, &av, &CleanConfig::default());
        let (f2, ft2) = clean_quarter(&q2, &dv, &av, &CleanConfig::default());

        // Memo entries depend only on the vocabularies and config, so the
        // carried-over memo cannot change the output...
        assert_eq!(s1, f1);
        assert_eq!(s2, f2);
        assert_eq!(st1.without_cache_counters(), ft1.without_cache_counters());
        assert_eq!(st2.without_cache_counters(), ft2.without_cache_counters());
        assert_eq!(st1, ft1); // first quarter: memo started empty either way
                              // ...but the second quarter resolves every string from the memo.
        assert_eq!(st2.drug_cache_misses, 0);
        assert_eq!(st2.adr_cache_misses, 0);
        assert_eq!(st2.drug_cache_hits, 12 * 3);
        assert_eq!(st2.adr_cache_hits, 12 * 2);
    }

    #[test]
    fn without_cache_counters_zeroes_only_cache_fields() {
        let stats = CleaningStats {
            drug_mentions: 7,
            drug_cache_hits: 5,
            drug_cache_misses: 2,
            adr_cache_hits: 3,
            adr_cache_misses: 1,
            ..Default::default()
        };
        let wiped = stats.without_cache_counters();
        assert_eq!(wiped.drug_mentions, 7);
        assert_eq!(wiped.drug_cache_hits, 0);
        assert_eq!(wiped.drug_cache_misses, 0);
        assert_eq!(wiped.adr_cache_hits, 0);
        assert_eq!(wiped.adr_cache_misses, 0);
    }

    #[test]
    fn empty_quarter_cache_hit_rate_is_zero() {
        let stats = CleaningStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
    }

    #[test]
    fn serious_flag_carries_through() {
        let (dv, av) = vocabs();
        let mut r = report(1, 1, &["ASPIRIN"], &["Nausea"]);
        r.outcomes = vec![Outcome::Death];
        let q = quarter(vec![r]);
        let (cleaned, _) = clean_quarter(&q, &dv, &av, &CleanConfig::default());
        assert!(cleaned[0].serious);
        assert_eq!(cleaned[0].max_severity, Some(Outcome::Death));
    }
}
