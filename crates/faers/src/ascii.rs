//! Reader/writer for the FAERS quarterly `$`-delimited ASCII exchange format.
//!
//! A quarter is published as four joined tables keyed by `primaryid`
//! (the case id concatenated with the case version):
//!
//! * `DEMOyyQq.txt` — one row per case version: demographics + report type;
//! * `DRUGyyQq.txt` — one row per reported medication;
//! * `REACyyQq.txt` — one row per reaction preferred term;
//! * `OUTCyyQq.txt` — one row per outcome code.
//!
//! Each file starts with a `$`-delimited header line. This module implements
//! a faithful subset of the real column inventory (the columns MARAS's
//! pipeline consumes) with exact round-tripping, strict error reporting
//! (file + line), and delimiter sanitization on write.

use crate::intern::{InternStats, SymbolTable};
use crate::model::{CaseReport, DrugEntry, DrugRole, Outcome, ReportType, Sex};
use crate::quarter::{QuarterData, QuarterId};
use rustc_hash::FxHashMap;
use std::collections::hash_map::Entry;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::time::Instant;

/// Errors raised while reading a FAERS ASCII quarter.
#[derive(Debug)]
pub enum AsciiError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row: file label, 1-based line number, description.
    Malformed {
        /// Which table the row came from (`DEMO`, `DRUG`, `REAC`, `OUTC`).
        file: &'static str,
        /// 1-based line number within that file.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A DRUG/REAC/OUTC row references a primaryid absent from DEMO.
    OrphanRow {
        /// Which table the orphan row came from.
        file: &'static str,
        /// The unresolved primaryid.
        primaryid: u64,
    },
    /// Lenient ingestion quarantined more rows than the
    /// [`ErrorBudget`] allows; the read is abandoned as a hard failure.
    BudgetExceeded {
        /// Rows quarantined when the budget tripped.
        bad_rows: usize,
        /// Data rows read when the budget tripped (all four tables).
        rows_read: usize,
        /// The configured budget.
        budget: ErrorBudget,
        /// The first record quarantined in this read — names the file and
        /// line where the trouble started.
        first: Box<QuarantinedRecord>,
    },
}

impl fmt::Display for AsciiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsciiError::Io(e) => write!(f, "I/O error: {e}"),
            AsciiError::Malformed { file, line, message } => {
                write!(f, "{file} line {line}: {message}")
            }
            AsciiError::OrphanRow { file, primaryid } => {
                write!(f, "{file}: row references unknown primaryid {primaryid}")
            }
            AsciiError::BudgetExceeded { bad_rows, rows_read, budget, first } => {
                write!(
                    f,
                    "error budget exceeded: {bad_rows} of {rows_read} rows quarantined \
                     (budget: {budget}); first offending row: {} line {} ({})",
                    first.file, first.line, first.detail
                )
            }
        }
    }
}

impl std::error::Error for AsciiError {}

impl From<io::Error> for AsciiError {
    fn from(e: io::Error) -> Self {
        AsciiError::Io(e)
    }
}

const DEMO_HEADER: &str =
    "primaryid$caseid$caseversion$rept_cod$age$sex$wt$reporter_country$event_dt";
const DRUG_HEADER: &str = "primaryid$drug_seq$role_cod$drugname";
const REAC_HEADER: &str = "primaryid$pt";
const OUTC_HEADER: &str = "primaryid$outc_cod";

/// Computes the `primaryid` of a case version (caseid ⧺ two-digit version,
/// matching FAERS's concatenation convention).
pub fn primary_id(case_id: u64, version: u32) -> u64 {
    case_id * 100 + u64::from(version % 100)
}

fn sanitize(field: &str) -> String {
    field.replace(['$', '\n', '\r'], " ")
}

/// How the reader treats rows it cannot parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Fail the whole read on the first malformed or orphan row
    /// (historical behaviour, and the default).
    #[default]
    Strict,
    /// Capture malformed rows in a dead-letter quarantine and keep going,
    /// subject to the [`ErrorBudget`].
    Lenient,
}

impl fmt::Display for IngestMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IngestMode::Strict => "strict",
            IngestMode::Lenient => "lenient",
        })
    }
}

impl IngestMode {
    /// Parses `"strict"` / `"lenient"` (case-insensitive).
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "strict" => Some(IngestMode::Strict),
            "lenient" => Some(IngestMode::Lenient),
            _ => None,
        }
    }
}

/// How much quarantined data a lenient read tolerates before escalating
/// to [`AsciiError::BudgetExceeded`].
///
/// Both limits are optional and conjunctive: the absolute limit is
/// enforced as soon as it is crossed (fail fast mid-read); the fractional
/// limit is checked once the denominator — total data rows across the
/// four tables — is known at end of read.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBudget {
    /// Maximum number of quarantined rows (`None` = unlimited).
    pub max_bad_rows: Option<usize>,
    /// Maximum quarantined fraction of all data rows in `[0, 1]`
    /// (`None` = unlimited).
    pub max_bad_frac: Option<f64>,
}

impl ErrorBudget {
    /// No limits: quarantine everything that fails to parse.
    pub fn unlimited() -> Self {
        ErrorBudget::default()
    }

    /// At most `n` quarantined rows.
    pub fn max_rows(n: usize) -> Self {
        ErrorBudget { max_bad_rows: Some(n), max_bad_frac: None }
    }

    /// At most `frac` (e.g. `0.01` for 1%) of data rows quarantined.
    pub fn max_frac(frac: f64) -> Self {
        ErrorBudget { max_bad_rows: None, max_bad_frac: Some(frac) }
    }
}

impl fmt::Display for ErrorBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.max_bad_rows, self.max_bad_frac) {
            (None, None) => f.write_str("unlimited"),
            (Some(n), None) => write!(f, "<= {n} rows"),
            (None, Some(p)) => write!(f, "<= {:.2}% of rows", p * 100.0),
            (Some(n), Some(p)) => write!(f, "<= {n} rows and <= {:.2}% of rows", p * 100.0),
        }
    }
}

/// Full ingestion policy for one quarter read.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IngestOptions {
    /// Strict or lenient row handling.
    pub mode: IngestMode,
    /// Error budget applied in lenient mode (ignored in strict mode).
    pub budget: ErrorBudget,
    /// Parse worker threads for the read side; `0` means "use the
    /// machine's available parallelism". Safe at any value: the parallel
    /// parse is a pure per-line map and the merge that applies mode,
    /// budget, and quarantine policy is sequential, so the output is
    /// byte-identical at every thread count (differential-tested).
    pub n_threads: usize,
}

impl IngestOptions {
    /// Historical fail-fast behaviour.
    pub fn strict() -> Self {
        IngestOptions::default()
    }

    /// Lenient mode with an unlimited budget.
    pub fn lenient() -> Self {
        IngestOptions { mode: IngestMode::Lenient, ..IngestOptions::default() }
    }

    /// Lenient mode with the given budget.
    pub fn lenient_with(budget: ErrorBudget) -> Self {
        IngestOptions { mode: IngestMode::Lenient, budget, ..IngestOptions::default() }
    }

    /// Same policy with an explicit parse thread count (`0` = auto).
    pub fn with_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    /// Resolves [`Self::n_threads`] to a concrete worker count: `0` maps
    /// to the machine's available parallelism (falling back to 1 when
    /// that is unknowable), anything else is taken literally.
    pub fn effective_threads(&self) -> usize {
        if self.n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.n_threads
        }
    }
}

/// Why a row was quarantined instead of parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QuarantineReason {
    /// Wrong number of `$`-separated fields.
    FieldCount,
    /// The `primaryid` column failed to parse as an integer.
    BadPrimaryid,
    /// A numeric column (caseid, caseversion, age, wt, event_dt,
    /// drug_seq) failed to parse.
    BadNumeric,
    /// A coded column (rept_cod, role_cod, outc_cod) held an unknown code.
    UnknownCode,
    /// `primaryid` does not equal `caseid * 100 + caseversion % 100`.
    InconsistentPrimaryid,
    /// A DEMO row repeats a primaryid already established.
    DuplicatePrimaryid,
    /// A DRUG/REAC/OUTC row references a primaryid with no DEMO row.
    Orphan,
    /// The header line is damaged or missing; data rows are still
    /// attempted positionally.
    HeaderDamage,
}

impl QuarantineReason {
    /// All reasons, in stable reporting order.
    pub const ALL: [QuarantineReason; 8] = [
        QuarantineReason::FieldCount,
        QuarantineReason::BadPrimaryid,
        QuarantineReason::BadNumeric,
        QuarantineReason::UnknownCode,
        QuarantineReason::InconsistentPrimaryid,
        QuarantineReason::DuplicatePrimaryid,
        QuarantineReason::Orphan,
        QuarantineReason::HeaderDamage,
    ];

    /// A stable snake_case label (used in reports and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            QuarantineReason::FieldCount => "field_count",
            QuarantineReason::BadPrimaryid => "bad_primaryid",
            QuarantineReason::BadNumeric => "bad_numeric",
            QuarantineReason::UnknownCode => "unknown_code",
            QuarantineReason::InconsistentPrimaryid => "inconsistent_primaryid",
            QuarantineReason::DuplicatePrimaryid => "duplicate_primaryid",
            QuarantineReason::Orphan => "orphan",
            QuarantineReason::HeaderDamage => "header_damage",
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One row the lenient reader refused to parse, preserved verbatim in the
/// dead-letter sink.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRecord {
    /// Which table the row came from (`DEMO`, `DRUG`, `REAC`, `OUTC`).
    pub file: &'static str,
    /// 1-based line number within that file.
    pub line: usize,
    /// The row's primaryid, when it could at least be parsed.
    pub primaryid: Option<u64>,
    /// Why the row was quarantined.
    pub reason: QuarantineReason,
    /// Human-readable specifics (mirrors the strict-mode error message).
    pub detail: String,
    /// The offending line, verbatim.
    pub raw: String,
}

/// Row accounting for one of the four tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FileCounts {
    /// Non-header lines seen.
    pub rows: usize,
    /// Rows parsed into the quarter.
    pub ok: usize,
    /// Rows quarantined (excludes a damaged header, which is not a data
    /// row; see [`IngestReport::damaged_headers`]).
    pub quarantined: usize,
}

/// What one quarter ingest read, skipped, and why — emitted by every
/// lenient read and threaded through the pipeline into CLI/JSON output.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// The quarter that was read.
    pub quarter: QuarterId,
    /// The mode the read ran under.
    pub mode: IngestMode,
    /// The budget the read ran under.
    pub budget: ErrorBudget,
    /// DEMO table accounting.
    pub demo: FileCounts,
    /// DRUG table accounting.
    pub drug: FileCounts,
    /// REAC table accounting.
    pub reac: FileCounts,
    /// OUTC table accounting.
    pub outc: FileCounts,
    /// The dead-letter sink: every quarantined row, in read order.
    pub quarantine: Vec<QuarantinedRecord>,
}

impl IngestReport {
    fn new(quarter: QuarterId, opts: &IngestOptions) -> Self {
        IngestReport {
            quarter,
            mode: opts.mode,
            budget: opts.budget,
            demo: FileCounts::default(),
            drug: FileCounts::default(),
            reac: FileCounts::default(),
            outc: FileCounts::default(),
            quarantine: Vec::new(),
        }
    }

    /// Per-table accounting, in file order.
    pub fn files(&self) -> [(&'static str, FileCounts); 4] {
        [("DEMO", self.demo), ("DRUG", self.drug), ("REAC", self.reac), ("OUTC", self.outc)]
    }

    /// Total data rows read across the four tables.
    pub fn rows_read(&self) -> usize {
        self.demo.rows + self.drug.rows + self.reac.rows + self.outc.rows
    }

    /// Total rows parsed into the quarter.
    pub fn rows_ok(&self) -> usize {
        self.demo.ok + self.drug.ok + self.reac.ok + self.outc.ok
    }

    /// Total quarantined records (including damaged headers) — what the
    /// [`ErrorBudget`] counts.
    pub fn quarantined(&self) -> usize {
        self.quarantine.len()
    }

    /// Quarantined *data* rows (damaged headers excluded), so that
    /// `rows_ok() + bad_rows() == rows_read()` always holds.
    pub fn bad_rows(&self) -> usize {
        self.demo.quarantined
            + self.drug.quarantined
            + self.reac.quarantined
            + self.outc.quarantined
    }

    /// Quarantine counts per reason (only reasons that occurred), in
    /// [`QuarantineReason::ALL`] order.
    pub fn counts_by_reason(&self) -> Vec<(QuarantineReason, usize)> {
        QuarantineReason::ALL
            .iter()
            .filter_map(|&r| {
                let n = self.quarantine.iter().filter(|q| q.reason == r).count();
                (n > 0).then_some((r, n))
            })
            .collect()
    }

    /// Tables whose header line was damaged or missing.
    pub fn damaged_headers(&self) -> Vec<&'static str> {
        self.quarantine
            .iter()
            .filter(|q| q.reason == QuarantineReason::HeaderDamage)
            .map(|q| q.file)
            .collect()
    }

    /// `true` when nothing was quarantined — the read was
    /// indistinguishable from a strict read.
    pub fn is_clean(&self) -> bool {
        self.quarantine.is_empty()
    }

    /// Fraction of data rows quarantined (0.0 when no rows were read).
    pub fn bad_fraction(&self) -> f64 {
        if self.rows_read() == 0 {
            0.0
        } else {
            self.quarantine.len() as f64 / self.rows_read() as f64
        }
    }
}

/// A successfully ingested quarter: the parsed data plus the accounting
/// of everything that was skipped to get it.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The parsed quarter.
    pub data: QuarterData,
    /// What was read, skipped, and why.
    pub report: IngestReport,
    /// Wall-time and interner accounting for the read.
    pub metrics: IngestMetrics,
}

/// Equality deliberately ignores [`Ingested::metrics`]: two reads of the
/// same bytes are "the same ingest" even though their wall times differ.
impl PartialEq for Ingested {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data && self.report == other.report
    }
}

/// Where one quarter read spent its time, plus what the string interner
/// absorbed. Surfaced through `maras analyze --json` so ingestion
/// regressions are observable without a profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestMetrics {
    /// Microseconds reading each file's bytes (DEMO, DRUG, REAC, OUTC).
    pub io_us: [u64; 4],
    /// Microseconds parsing each file's rows, summed across workers
    /// (DEMO, DRUG, REAC, OUTC).
    pub parse_us: [u64; 4],
    /// Microseconds in the sequential merge (policy, budget, join).
    pub merge_us: u64,
    /// Microseconds for the whole read, wall clock.
    pub total_us: u64,
    /// Parse workers the read ran with (resolved, never 0).
    pub threads: usize,
    /// What the string interner deduplicated.
    pub intern: InternStats,
}

impl IngestMetrics {
    /// Per-file `(name, io µs, parse µs)` rows, in file order.
    pub fn per_file(&self) -> [(&'static str, u64, u64); 4] {
        [
            ("DEMO", self.io_us[0], self.parse_us[0]),
            ("DRUG", self.io_us[1], self.parse_us[1]),
            ("REAC", self.io_us[2], self.parse_us[2]),
            ("OUTC", self.io_us[3], self.parse_us[3]),
        ]
    }
}

/// Writes one table to a writer. Exposed for targeted tests; use
/// [`write_quarter_dir`] for the on-disk layout.
pub struct QuarterWriter;

impl QuarterWriter {
    /// Writes the DEMO table.
    pub fn write_demo<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{DEMO_HEADER}")?;
        for r in reports {
            writeln!(
                w,
                "{}${}${}${}${}${}${}${}${}",
                primary_id(r.case_id, r.version),
                r.case_id,
                r.version,
                r.report_type.code(),
                r.age.map_or(String::new(), |a| format!("{a}")),
                r.sex.code(),
                r.weight_kg.map_or(String::new(), |wt| format!("{wt}")),
                sanitize(&r.country),
                r.event_date.map_or(String::new(), |d| d.to_string()),
            )?;
        }
        Ok(())
    }

    /// Writes the DRUG table.
    pub fn write_drug<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{DRUG_HEADER}")?;
        for r in reports {
            for (seq, d) in r.drugs.iter().enumerate() {
                writeln!(
                    w,
                    "{}${}${}${}",
                    primary_id(r.case_id, r.version),
                    seq + 1,
                    d.role.code(),
                    sanitize(&d.name),
                )?;
            }
        }
        Ok(())
    }

    /// Writes the REAC table.
    pub fn write_reac<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{REAC_HEADER}")?;
        for r in reports {
            for pt in &r.reactions {
                writeln!(w, "{}${}", primary_id(r.case_id, r.version), sanitize(pt))?;
            }
        }
        Ok(())
    }

    /// Writes the OUTC table.
    pub fn write_outc<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{OUTC_HEADER}")?;
        for r in reports {
            for o in &r.outcomes {
                writeln!(w, "{}${}", primary_id(r.case_id, r.version), o.code())?;
            }
        }
        Ok(())
    }
}

/// Writes a quarter as the four ASCII files into `dir`, named
/// `DEMO14Q1.txt` etc. after the quarter id.
pub fn write_quarter_dir(dir: &Path, quarter: &QuarterData) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let label = quarter.id.file_label();
    let mut demo = std::fs::File::create(dir.join(format!("DEMO{label}.txt")))?;
    QuarterWriter::write_demo(&mut demo, &quarter.reports)?;
    let mut drug = std::fs::File::create(dir.join(format!("DRUG{label}.txt")))?;
    QuarterWriter::write_drug(&mut drug, &quarter.reports)?;
    let mut reac = std::fs::File::create(dir.join(format!("REAC{label}.txt")))?;
    QuarterWriter::write_reac(&mut reac, &quarter.reports)?;
    let mut outc = std::fs::File::create(dir.join(format!("OUTC{label}.txt")))?;
    QuarterWriter::write_outc(&mut outc, &quarter.reports)?;
    Ok(())
}

/// Reads a quarter back from the four ASCII files in `dir`, strictly.
pub fn read_quarter_dir(dir: &Path, id: QuarterId) -> Result<QuarterData, AsciiError> {
    read_quarter_dir_with(dir, id, &IngestOptions::strict()).map(|i| i.data)
}

/// Reads a quarter from the four ASCII files in `dir` under the given
/// ingestion policy.
pub fn read_quarter_dir_with(
    dir: &Path,
    id: QuarterId,
    opts: &IngestOptions,
) -> Result<Ingested, AsciiError> {
    let label = id.file_label();
    let open = |name: String| -> Result<std::fs::File, AsciiError> {
        std::fs::File::open(dir.join(&name)).map_err(AsciiError::Io)
    };
    read_quarter_with(
        id,
        open(format!("DEMO{label}.txt"))?,
        open(format!("DRUG{label}.txt"))?,
        open(format!("REAC{label}.txt"))?,
        open(format!("OUTC{label}.txt"))?,
        opts,
    )
}

/// Reads a quarter from the four table streams, strictly: the first
/// malformed or orphan row fails the whole read.
pub fn read_quarter<R1: Read, R2: Read, R3: Read, R4: Read>(
    id: QuarterId,
    demo: R1,
    drug: R2,
    reac: R3,
    outc: R4,
) -> Result<QuarterData, AsciiError> {
    read_quarter_with(id, demo, drug, reac, outc, &IngestOptions::strict()).map(|i| i.data)
}

/// A row offense before mode policy is applied: primaryid if known,
/// reason, and the strict-mode message.
type Offense = (Option<u64>, QuarantineReason, String);

/// Applies the ingestion policy to row offenses: strict mode converts the
/// first offense into the historical [`AsciiError`]; lenient mode feeds
/// the dead-letter sink and enforces the absolute error budget.
struct Sink {
    mode: IngestMode,
    budget: ErrorBudget,
    report: IngestReport,
}

impl Sink {
    fn offend(
        &mut self,
        file: &'static str,
        line: usize,
        offense: Offense,
        raw: &str,
    ) -> Result<(), AsciiError> {
        let (primaryid, reason, detail) = offense;
        match self.mode {
            IngestMode::Strict => Err(if reason == QuarantineReason::Orphan {
                AsciiError::OrphanRow { file, primaryid: primaryid.unwrap_or(0) }
            } else {
                AsciiError::Malformed { file, line, message: detail }
            }),
            IngestMode::Lenient => {
                self.report.quarantine.push(QuarantinedRecord {
                    file,
                    line,
                    primaryid,
                    reason,
                    detail,
                    raw: raw.to_string(),
                });
                match self.budget.max_bad_rows {
                    Some(max) if self.report.quarantine.len() > max => Err(self.budget_exceeded()),
                    _ => Ok(()),
                }
            }
        }
    }

    fn budget_exceeded(&self) -> AsciiError {
        AsciiError::BudgetExceeded {
            bad_rows: self.report.quarantine.len(),
            rows_read: self.report.rows_read(),
            budget: self.budget,
            first: Box::new(self.report.quarantine[0].clone()),
        }
    }

    fn check_header(&mut self, file: &'static str, first: Option<&str>) -> Result<(), AsciiError> {
        let expected = match file {
            "DEMO" => DEMO_HEADER,
            "DRUG" => DRUG_HEADER,
            "REAC" => REAC_HEADER,
            _ => OUTC_HEADER,
        };
        match first {
            None => {
                let offense = (None, QuarantineReason::HeaderDamage, "missing header".to_string());
                self.offend(file, 1, offense, "")
            }
            Some(line) if line != expected => {
                let offense =
                    (None, QuarantineReason::HeaderDamage, format!("bad header {line:?}"));
                self.offend(file, 1, offense, line)
            }
            Some(_) => Ok(()),
        }
    }
}

/// Reads a quarter from the four table streams under the given ingestion
/// policy.
///
/// Strict mode reproduces [`read_quarter`]'s fail-fast behaviour exactly.
/// Lenient mode parses what it can: malformed rows, orphans, duplicate
/// DEMO primaryids, and damaged headers land in the returned report's
/// quarantine; the read only fails hard on I/O errors or when the
/// [`ErrorBudget`] is exceeded (absolute limits fail fast mid-read,
/// fractional limits are settled at end of read).
pub fn read_quarter_with<R1: Read, R2: Read, R3: Read, R4: Read>(
    id: QuarterId,
    demo: R1,
    drug: R2,
    reac: R3,
    outc: R4,
    opts: &IngestOptions,
) -> Result<Ingested, AsciiError> {
    let t_total = Instant::now();
    let _span = maras_obs::span("ingest");
    let mut metrics = IngestMetrics { threads: opts.effective_threads(), ..Default::default() };

    // Phase 0: slurp each file into one buffer; every field below is a
    // borrow into these buffers until the CaseReport boundary.
    //
    // The legacy reader interleaved I/O and parsing table by table, so an
    // I/O failure in a later file could be masked by a strict parse error
    // in an earlier one. Reading all four buffers up front means I/O
    // errors now always surface first; parse, quarantine, and budget
    // behaviour is otherwise byte-identical (differential-tested).
    let io_span = maras_obs::span("io");
    let demo_buf = slurp(demo, &mut metrics.io_us[0])?;
    let drug_buf = slurp(drug, &mut metrics.io_us[1])?;
    let reac_buf = slurp(reac, &mut metrics.io_us[2])?;
    let outc_buf = slurp(outc, &mut metrics.io_us[3])?;
    drop(io_span);
    let line_sets: [Vec<&str>; 4] = [
        demo_buf.lines().collect(),
        drug_buf.lines().collect(),
        reac_buf.lines().collect(),
        outc_buf.lines().collect(),
    ];
    let headers: [Option<&str>; 4] = [
        line_sets[0].first().copied(),
        line_sets[1].first().copied(),
        line_sets[2].first().copied(),
        line_sets[3].first().copied(),
    ];
    let rows: [&[&str]; 4] = [
        data_rows(&line_sets[0]),
        data_rows(&line_sets[1]),
        data_rows(&line_sets[2]),
        data_rows(&line_sets[3]),
    ];

    // Phase 1: embarrassingly parallel pure parse over line ranges.
    let parse_span = maras_obs::span("parse");
    let parsed = parse_phase(&rows, metrics.threads, &mut metrics.parse_us);
    drop(parse_span);

    // Phase 2: sequential merge applies mode/budget/quarantine policy in
    // exact legacy row order and interns the repeated strings.
    let t_merge = Instant::now();
    let merge_span = maras_obs::span("merge");
    let mut interner = SymbolTable::new();
    let merged = merge_quarter(id, opts, headers, rows, parsed, &mut interner);
    drop(merge_span);
    metrics.merge_us = t_merge.elapsed().as_micros() as u64;
    metrics.intern = interner.stats();
    metrics.total_us = t_total.elapsed().as_micros() as u64;
    let (data, report) = merged?;
    publish_ingest_metrics(&report, &metrics);
    maras_obs::Event::new(maras_obs::Level::Info, "ingest.quarter")
        .field("quarter", id.to_string())
        .field("rows_ok", report.rows_ok())
        .field("quarantined", report.quarantined())
        .field("reports", data.reports.len())
        .field("total_us", metrics.total_us)
        .emit();
    Ok(Ingested { data, report, metrics })
}

/// Folds one quarter's ingest accounting into the global metrics
/// registry: cumulative row outcomes, per-phase wall time, and the
/// interner's footprint (a gauge — it describes the latest quarter).
fn publish_ingest_metrics(report: &IngestReport, metrics: &IngestMetrics) {
    let (ok, quarantined) = report.files().iter().fold((0u64, 0u64), |(ok, q), (_, counts)| {
        (ok + counts.ok as u64, q + counts.quarantined as u64)
    });
    maras_obs::counter("maras_ingest_rows_ok_total", "FAERS data rows parsed into quarters")
        .add(ok);
    maras_obs::counter("maras_ingest_rows_quarantined_total", "FAERS data rows quarantined")
        .add(quarantined);
    for (phase, us) in [
        ("io", metrics.io_us.iter().sum::<u64>()),
        ("parse", metrics.parse_us.iter().sum::<u64>()),
        ("merge", metrics.merge_us),
    ] {
        maras_obs::counter_with(
            "maras_ingest_phase_us_total",
            "ingest wall time by phase",
            &[("phase", phase)],
        )
        .add(us);
    }
    maras_obs::counter("maras_intern_hits_total", "string-interner lookups answered by cache")
        .add(metrics.intern.hits);
    maras_obs::gauge("maras_intern_unique", "distinct strings in the latest quarter's interner")
        .set(metrics.intern.unique as f64);
    maras_obs::gauge("maras_intern_bytes", "bytes owned by the latest quarter's interner")
        .set(metrics.intern.bytes as f64);
}

/// Reads a whole stream into one buffer, accumulating the wall time.
fn slurp<R: Read>(mut reader: R, io_us: &mut u64) -> Result<String, AsciiError> {
    let t = Instant::now();
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    *io_us += t.elapsed().as_micros() as u64;
    Ok(buf)
}

/// The data rows of a file: everything after the header line.
fn data_rows<'a>(lines: &'a [&'a str]) -> &'a [&'a str] {
    if lines.is_empty() {
        &[]
    } else {
        &lines[1..]
    }
}

/// A DEMO row parsed into borrowed fields, before interning.
struct DemoRow<'a> {
    pid: u64,
    case_id: u64,
    version: u32,
    report_type: ReportType,
    age: Option<f32>,
    sex: Sex,
    weight_kg: Option<f32>,
    country: &'a str,
    event_date: Option<u32>,
}

/// A DRUG row parsed into borrowed fields, before interning.
struct DrugRow<'a> {
    pid: u64,
    seq: u32,
    role: DrugRole,
    name: &'a str,
}

/// An OUTC row after parsing: primaryid plus a *deferred* outcome-code
/// validation, so the merge can apply the legacy error precedence
/// (primaryid parse, then orphan check, then code).
type OutcRow = (u64, Result<Outcome, Offense>);

/// One file's rows after the parallel parse phase.
struct ParsedQuarter<'a> {
    demo: Vec<Result<DemoRow<'a>, Offense>>,
    drug: Vec<Result<DrugRow<'a>, Offense>>,
    reac: Vec<Result<(u64, &'a str), Offense>>,
    outc: Vec<Result<OutcRow, Offense>>,
}

/// One contiguous line range's parse output, tagged by table.
enum ParsedChunk<'a> {
    Demo(Vec<Result<DemoRow<'a>, Offense>>),
    Drug(Vec<Result<DrugRow<'a>, Offense>>),
    Reac(Vec<Result<(u64, &'a str), Offense>>),
    Outc(Vec<Result<OutcRow, Offense>>),
}

fn parse_chunk<'a>(file: usize, lines: &[&'a str]) -> ParsedChunk<'a> {
    match file {
        0 => ParsedChunk::Demo(lines.iter().map(|l| parse_demo_line(l)).collect()),
        1 => ParsedChunk::Drug(lines.iter().map(|l| parse_drug_line(l)).collect()),
        2 => ParsedChunk::Reac(lines.iter().map(|l| parse_reac_line(l)).collect()),
        _ => ParsedChunk::Outc(lines.iter().map(|l| parse_outc_line(l)).collect()),
    }
}

/// Parses all four tables' data rows, sharding each table's line ranges
/// across `n_threads` scoped workers. Parsing a row is a pure function of
/// its text, so reassembling chunks in job order makes the result
/// independent of scheduling by construction.
fn parse_phase<'a>(
    rows: &[&'a [&'a str]; 4],
    n_threads: usize,
    parse_us: &mut [u64; 4],
) -> ParsedQuarter<'a> {
    // Job list in (file, offset) order: reassembly is plain concatenation.
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for (f, file_rows) in rows.iter().enumerate() {
        let len = file_rows.len();
        let chunk = len.div_ceil(n_threads).max(1);
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            jobs.push((f, start, end));
            start = end;
        }
    }

    const TABLE: [&str; 4] = ["DEMO", "DRUG", "REAC", "OUTC"];
    let workers = n_threads.min(jobs.len()).max(1);
    let parent = maras_obs::current_path().unwrap_or_default();
    let mut results: Vec<(usize, ParsedChunk<'a>, u64)> = Vec::with_capacity(jobs.len());
    if workers <= 1 {
        for (i, &(f, start, end)) in jobs.iter().enumerate() {
            let t = Instant::now();
            let _job = maras_obs::span(TABLE[f]);
            let chunk = parse_chunk(f, &rows[f][start..end]);
            results.push((i, chunk, t.elapsed().as_micros() as u64));
        }
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let jobs = &jobs;
                    let parent = &parent;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for (i, &(f, start, end)) in jobs.iter().enumerate() {
                            if i % workers != w {
                                continue;
                            }
                            let t = Instant::now();
                            let _job = maras_obs::span_under(parent, TABLE[f]);
                            let chunk = parse_chunk(f, &rows[f][start..end]);
                            out.push((i, chunk, t.elapsed().as_micros() as u64));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("parse worker panicked"));
            }
        });
        results.sort_unstable_by_key(|r| r.0);
    }

    let mut parsed = ParsedQuarter {
        demo: Vec::with_capacity(rows[0].len()),
        drug: Vec::with_capacity(rows[1].len()),
        reac: Vec::with_capacity(rows[2].len()),
        outc: Vec::with_capacity(rows[3].len()),
    };
    for (i, chunk, us) in results {
        parse_us[jobs[i].0] += us;
        match chunk {
            ParsedChunk::Demo(v) => parsed.demo.extend(v),
            ParsedChunk::Drug(v) => parsed.drug.extend(v),
            ParsedChunk::Reac(v) => parsed.reac.extend(v),
            ParsedChunk::Outc(v) => parsed.outc.extend(v),
        }
    }
    parsed
}

/// Sequentially replays the parsed rows through the mode/budget/quarantine
/// policy in exact legacy order, joining child tables onto their cases and
/// interning repeated strings at the [`CaseReport`] boundary.
fn merge_quarter(
    id: QuarterId,
    opts: &IngestOptions,
    headers: [Option<&str>; 4],
    rows: [&[&str]; 4],
    parsed: ParsedQuarter<'_>,
    interner: &mut SymbolTable,
) -> Result<(QuarterData, IngestReport), AsciiError> {
    let mut reports: Vec<CaseReport> = Vec::new();
    let mut by_pid: FxHashMap<u64, usize> = FxHashMap::default();
    let mut sink =
        Sink { mode: opts.mode, budget: opts.budget, report: IngestReport::new(id, opts) };

    // DEMO establishes the cases.
    sink.check_header("DEMO", headers[0])?;
    for (i, res) in parsed.demo.into_iter().enumerate() {
        let (lineno, line) = (i + 2, rows[0][i]);
        sink.report.demo.rows += 1;
        match res {
            Err(offense) => {
                sink.offend("DEMO", lineno, offense, line)?;
                sink.report.demo.quarantined += 1;
            }
            Ok(d) => match by_pid.entry(d.pid) {
                Entry::Occupied(_) => {
                    let offense = (
                        Some(d.pid),
                        QuarantineReason::DuplicatePrimaryid,
                        format!("duplicate primaryid {}", d.pid),
                    );
                    sink.offend("DEMO", lineno, offense, line)?;
                    sink.report.demo.quarantined += 1;
                }
                Entry::Vacant(slot) => {
                    slot.insert(reports.len());
                    reports.push(CaseReport {
                        case_id: d.case_id,
                        version: d.version,
                        report_type: d.report_type,
                        age: d.age,
                        sex: d.sex,
                        weight_kg: d.weight_kg,
                        country: interner.intern(d.country),
                        event_date: d.event_date,
                        drugs: Vec::new(),
                        reactions: Vec::new(),
                        outcomes: Vec::new(),
                    });
                    sink.report.demo.ok += 1;
                }
            },
        }
    }

    // DRUG rows attach medications (kept in drug_seq order).
    sink.check_header("DRUG", headers[1])?;
    let mut drug_rows: Vec<DrugRow<'_>> = Vec::new();
    for (i, res) in parsed.drug.into_iter().enumerate() {
        let (lineno, line) = (i + 2, rows[1][i]);
        sink.report.drug.rows += 1;
        match res.and_then(|row| orphan_check(&by_pid, row.pid).map(|()| row)) {
            Err(offense) => {
                sink.offend("DRUG", lineno, offense, line)?;
                sink.report.drug.quarantined += 1;
            }
            Ok(row) => {
                drug_rows.push(row);
                sink.report.drug.ok += 1;
            }
        }
    }
    drug_rows.sort_by_key(|r| (r.pid, r.seq));
    for r in drug_rows {
        let entry = DrugEntry { name: interner.intern(r.name), role: r.role };
        reports[by_pid[&r.pid]].drugs.push(entry);
    }

    // REAC rows attach reactions.
    sink.check_header("REAC", headers[2])?;
    for (i, res) in parsed.reac.into_iter().enumerate() {
        let (lineno, line) = (i + 2, rows[2][i]);
        sink.report.reac.rows += 1;
        match res.and_then(|row| orphan_check(&by_pid, row.0).map(|()| row)) {
            Err(offense) => {
                sink.offend("REAC", lineno, offense, line)?;
                sink.report.reac.quarantined += 1;
            }
            Ok((pid, pt)) => {
                let pt = interner.intern(pt);
                reports[by_pid[&pid]].reactions.push(pt);
                sink.report.reac.ok += 1;
            }
        }
    }

    // OUTC rows attach outcomes. (The orphan check precedes code
    // validation, preserving strict-mode error precedence.)
    sink.check_header("OUTC", headers[3])?;
    for (i, res) in parsed.outc.into_iter().enumerate() {
        let (lineno, line) = (i + 2, rows[3][i]);
        sink.report.outc.rows += 1;
        let resolved = res
            .and_then(|(pid, code)| orphan_check(&by_pid, pid).map(|()| (pid, code)))
            .and_then(|(pid, code)| code.map(|outcome| (pid, outcome)));
        match resolved {
            Err(offense) => {
                sink.offend("OUTC", lineno, offense, line)?;
                sink.report.outc.quarantined += 1;
            }
            Ok((pid, outcome)) => {
                reports[by_pid[&pid]].outcomes.push(outcome);
                sink.report.outc.ok += 1;
            }
        }
    }

    // Fractional budget: settled now that the denominator is known.
    if let Some(max_frac) = opts.budget.max_bad_frac {
        if opts.mode == IngestMode::Lenient
            && !sink.report.quarantine.is_empty()
            && sink.report.bad_fraction() > max_frac
        {
            return Err(sink.budget_exceeded());
        }
    }

    Ok((QuarterData { id, reports }, sink.report))
}

fn orphan_check(by_pid: &FxHashMap<u64, usize>, pid: u64) -> Result<(), Offense> {
    if by_pid.contains_key(&pid) {
        Ok(())
    } else {
        let msg = format!("row references unknown primaryid {pid}");
        Err((Some(pid), QuarantineReason::Orphan, msg))
    }
}

/// Splits a line into exactly `N` `$`-separated borrowed fields without
/// allocating; `Err` carries the actual field count for the legacy
/// `FieldCount` message.
fn split_fixed<const N: usize>(line: &str) -> Result<[&str; N], usize> {
    let mut out = [""; N];
    let mut n = 0;
    for part in line.split('$') {
        if n < N {
            out[n] = part;
        }
        n += 1;
    }
    if n == N {
        Ok(out)
    } else {
        Err(n)
    }
}

fn parse_demo_line(line: &str) -> Result<DemoRow<'_>, Offense> {
    use QuarantineReason as Q;
    let fields: [&str; 9] = split_fixed(line)
        .map_err(|n| (None, Q::FieldCount, format!("expected 9 fields, got {n}")))?;
    let pid: u64 = fields[0]
        .parse()
        .map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))?;
    let case_id: u64 = fields[1]
        .parse()
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad caseid {:?}", fields[1])))?;
    let version: u32 = fields[2]
        .parse()
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad caseversion {:?}", fields[2])))?;
    let report_type = ReportType::from_code(fields[3])
        .ok_or_else(|| (Some(pid), Q::UnknownCode, format!("bad rept_cod {:?}", fields[3])))?;
    let age = parse_opt_f32(fields[4])
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad age {:?}", fields[4])))?;
    let sex = Sex::from_code(fields[5]);
    let weight_kg = parse_opt_f32(fields[6])
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad wt {:?}", fields[6])))?;
    let event_date = if fields[8].is_empty() {
        None
    } else {
        Some(
            fields[8]
                .parse()
                .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad event_dt {:?}", fields[8])))?,
        )
    };
    if primary_id(case_id, version) != pid {
        return Err((
            Some(pid),
            Q::InconsistentPrimaryid,
            format!("primaryid {pid} inconsistent with caseid {case_id} v{version}"),
        ));
    }
    Ok(DemoRow {
        pid,
        case_id,
        version,
        report_type,
        age,
        sex,
        weight_kg,
        country: fields[7],
        event_date,
    })
}

fn parse_drug_line(line: &str) -> Result<DrugRow<'_>, Offense> {
    use QuarantineReason as Q;
    let fields: [&str; 4] = split_fixed(line)
        .map_err(|n| (None, Q::FieldCount, format!("expected 4 fields, got {n}")))?;
    let pid: u64 = fields[0]
        .parse()
        .map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))?;
    let seq: u32 = fields[1]
        .parse()
        .map_err(|_| (Some(pid), Q::BadNumeric, format!("bad drug_seq {:?}", fields[1])))?;
    let role = DrugRole::from_code(fields[2])
        .ok_or_else(|| (Some(pid), Q::UnknownCode, format!("bad role_cod {:?}", fields[2])))?;
    Ok(DrugRow { pid, seq, role, name: fields[3] })
}

fn parse_reac_line(line: &str) -> Result<(u64, &str), Offense> {
    use QuarantineReason as Q;
    let fields: [&str; 2] = split_fixed(line)
        .map_err(|n| (None, Q::FieldCount, format!("expected 2 fields, got {n}")))?;
    let pid: u64 = fields[0]
        .parse()
        .map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))?;
    Ok((pid, fields[1]))
}

fn parse_outc_line(line: &str) -> Result<(u64, Result<Outcome, Offense>), Offense> {
    use QuarantineReason as Q;
    let fields: [&str; 2] = split_fixed(line)
        .map_err(|n| (None, Q::FieldCount, format!("expected 2 fields, got {n}")))?;
    let pid: u64 = fields[0]
        .parse()
        .map_err(|_| (None, Q::BadPrimaryid, format!("bad primaryid {:?}", fields[0])))?;
    let code = Outcome::from_code(fields[1])
        .ok_or_else(|| (None, Q::UnknownCode, format!("bad outc_cod {:?}", fields[1])));
    Ok((pid, code))
}

fn parse_opt_f32(field: &str) -> Result<Option<f32>, std::num::ParseFloatError> {
    if field.is_empty() {
        Ok(None)
    } else {
        field.parse().map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<CaseReport> {
        vec![
            CaseReport {
                case_id: 9000001,
                version: 1,
                report_type: ReportType::Expedited,
                age: Some(63.0),
                sex: Sex::Female,
                weight_kg: Some(71.5),
                country: "US".into(),
                event_date: Some(20140117),
                drugs: vec![
                    DrugEntry::new("IBUPROFEN", DrugRole::PrimarySuspect),
                    DrugEntry::new("METAMIZOLE", DrugRole::SecondarySuspect),
                ],
                reactions: vec!["Acute renal failure".into()],
                outcomes: vec![Outcome::Hospitalization],
            },
            CaseReport {
                case_id: 9000002,
                version: 2,
                report_type: ReportType::Periodic,
                age: None,
                sex: Sex::Unknown,
                weight_kg: None,
                country: "MX".into(),
                event_date: None,
                drugs: vec![DrugEntry::new("ASPIRIN", DrugRole::Concomitant)],
                reactions: vec!["Headache".into(), "Nausea".into()],
                outcomes: vec![],
            },
        ]
    }

    fn roundtrip(reports: Vec<CaseReport>) -> QuarterData {
        let id = QuarterId::new(2014, 1);
        let q = QuarterData { id, reports };
        let mut demo = Vec::new();
        let mut drug = Vec::new();
        let mut reac = Vec::new();
        let mut outc = Vec::new();
        QuarterWriter::write_demo(&mut demo, &q.reports).unwrap();
        QuarterWriter::write_drug(&mut drug, &q.reports).unwrap();
        QuarterWriter::write_reac(&mut reac, &q.reports).unwrap();
        QuarterWriter::write_outc(&mut outc, &q.reports).unwrap();
        read_quarter(id, &demo[..], &drug[..], &reac[..], &outc[..]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_reports() {
        let reports = sample_reports();
        let back = roundtrip(reports.clone());
        assert_eq!(back.reports, reports);
    }

    #[test]
    fn primary_id_concatenates_version() {
        assert_eq!(primary_id(9000001, 1), 900000101);
        assert_eq!(primary_id(9000001, 12), 900000112);
    }

    #[test]
    fn dollar_in_drugname_is_sanitized() {
        let mut reports = sample_reports();
        reports[0].drugs[0].name = "IBU$PROFEN".into();
        let back = roundtrip(reports);
        assert_eq!(back.reports[0].drugs[0].name, "IBU PROFEN");
    }

    #[test]
    fn orphan_drug_row_is_error() {
        let demo = format!("{DEMO_HEADER}\n");
        let drug = format!("{DRUG_HEADER}\n999$1$PS$ASPIRIN\n");
        let reac = format!("{REAC_HEADER}\n");
        let outc = format!("{OUTC_HEADER}\n");
        let err = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            drug.as_bytes(),
            reac.as_bytes(),
            outc.as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, AsciiError::OrphanRow { file: "DRUG", primaryid: 999 }));
    }

    #[test]
    fn malformed_demo_row_reports_line() {
        let demo = format!("{DEMO_HEADER}\nnot-a-number$1$1$EXP$$UNK$$US$\n");
        let err = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            format!("{DRUG_HEADER}\n").as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap_err();
        match err {
            AsciiError::Malformed { file: "DEMO", line: 2, .. } => {}
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_quarter(
            QuarterId::new(2014, 1),
            "wrong$header\n".as_bytes(),
            format!("{DRUG_HEADER}\n").as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, AsciiError::Malformed { file: "DEMO", line: 1, .. }));
    }

    #[test]
    fn inconsistent_primaryid_rejected() {
        let demo = format!("{DEMO_HEADER}\n777$9000001$1$EXP$$UNK$$US$\n");
        let err = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            format!("{DRUG_HEADER}\n").as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, AsciiError::Malformed { file: "DEMO", line: 2, .. }));
    }

    #[test]
    fn dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("maras_ascii_test_{}", std::process::id()));
        let q = QuarterData { id: QuarterId::new(2014, 3), reports: sample_reports() };
        write_quarter_dir(&dir, &q).unwrap();
        assert!(dir.join("DEMO14Q3.txt").exists());
        let back = read_quarter_dir(&dir, q.id).unwrap();
        assert_eq!(back.reports, q.reports);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drug_rows_rejoin_in_seq_order() {
        // Shuffle DRUG rows across cases; reader must restore per-case order.
        let demo = format!(
            "{DEMO_HEADER}\n{}$1$1$EXP$$UNK$$US$\n{}$2$1$EXP$$UNK$$US$\n",
            primary_id(1, 1),
            primary_id(2, 1)
        );
        let drug = format!(
            "{DRUG_HEADER}\n{}$2$SS$B2\n{}$1$PS$A1\n{}$1$PS$B1\n",
            primary_id(2, 1),
            primary_id(1, 1),
            primary_id(2, 1)
        );
        let q = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            drug.as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap();
        let names: Vec<&str> = q.reports[1].drug_names().collect();
        assert_eq!(names, vec!["B1", "B2"]);
    }

    // --- lenient-mode ingestion ---

    /// One good DEMO row, one bad-age DEMO row, one orphan DRUG row.
    fn dirty_streams() -> (String, String, String, String) {
        let good = primary_id(9000001, 1);
        let demo = format!(
            "{DEMO_HEADER}\n{good}$9000001$1$EXP$63$F$71.5$US$20140117\n\
             {}$9000002$1$EXP$sixty$M$$US$\n",
            primary_id(9000002, 1)
        );
        let drug = format!("{DRUG_HEADER}\n{good}$1$PS$IBUPROFEN\n999$1$PS$ASPIRIN\n");
        let reac = format!("{REAC_HEADER}\n{good}$Acute renal failure\n");
        let outc = format!("{OUTC_HEADER}\n{good}$HO\n");
        (demo, drug, reac, outc)
    }

    fn read_with(
        streams: &(String, String, String, String),
        opts: &IngestOptions,
    ) -> Result<Ingested, AsciiError> {
        read_quarter_with(
            QuarterId::new(2014, 1),
            streams.0.as_bytes(),
            streams.1.as_bytes(),
            streams.2.as_bytes(),
            streams.3.as_bytes(),
            opts,
        )
    }

    #[test]
    fn lenient_quarantines_bad_rows_and_keeps_good_ones() {
        let ingested = read_with(&dirty_streams(), &IngestOptions::lenient()).unwrap();
        assert_eq!(ingested.data.reports.len(), 1);
        assert_eq!(ingested.data.reports[0].case_id, 9000001);
        assert_eq!(ingested.data.reports[0].drugs.len(), 1);

        let report = &ingested.report;
        assert_eq!(report.quarantined(), 2);
        assert_eq!(report.demo, FileCounts { rows: 2, ok: 1, quarantined: 1 });
        assert_eq!(report.drug, FileCounts { rows: 2, ok: 1, quarantined: 1 });
        let reasons = report.counts_by_reason();
        assert_eq!(reasons, vec![(QuarantineReason::BadNumeric, 1), (QuarantineReason::Orphan, 1)]);
        let q = &report.quarantine[0];
        assert_eq!((q.file, q.line), ("DEMO", 3));
        assert!(q.detail.contains("bad age"), "detail: {}", q.detail);
        assert!(q.raw.contains("sixty"));
        assert_eq!(report.quarantine[1].primaryid, Some(999));
    }

    #[test]
    fn strict_still_fails_on_dirty_input() {
        let err = read_with(&dirty_streams(), &IngestOptions::strict()).unwrap_err();
        assert!(matches!(err, AsciiError::Malformed { file: "DEMO", line: 3, .. }));
    }

    #[test]
    fn lenient_on_clean_input_matches_strict_with_empty_report() {
        let id = QuarterId::new(2014, 1);
        let q = QuarterData { id, reports: sample_reports() };
        let mut demo = Vec::new();
        let mut drug = Vec::new();
        let mut reac = Vec::new();
        let mut outc = Vec::new();
        QuarterWriter::write_demo(&mut demo, &q.reports).unwrap();
        QuarterWriter::write_drug(&mut drug, &q.reports).unwrap();
        QuarterWriter::write_reac(&mut reac, &q.reports).unwrap();
        QuarterWriter::write_outc(&mut outc, &q.reports).unwrap();
        let strict = read_quarter(id, &demo[..], &drug[..], &reac[..], &outc[..]).unwrap();
        let lenient = read_quarter_with(
            id,
            &demo[..],
            &drug[..],
            &reac[..],
            &outc[..],
            &IngestOptions::lenient(),
        )
        .unwrap();
        assert_eq!(lenient.data, strict);
        assert!(lenient.report.is_clean());
        assert_eq!(lenient.report.rows_ok(), lenient.report.rows_read());
    }

    #[test]
    fn absolute_budget_fails_fast_with_first_offender() {
        let opts = IngestOptions::lenient_with(ErrorBudget::max_rows(1));
        let err = read_with(&dirty_streams(), &opts).unwrap_err();
        match err {
            AsciiError::BudgetExceeded { bad_rows, first, .. } => {
                assert_eq!(bad_rows, 2);
                assert_eq!((first.file, first.line), ("DEMO", 3));
                assert_eq!(first.reason, QuarantineReason::BadNumeric);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn fractional_budget_is_settled_at_end_of_read() {
        // 2 bad of 6 data rows = 33%; a 10% budget trips, a 50% one passes.
        let tight = IngestOptions::lenient_with(ErrorBudget::max_frac(0.10));
        assert!(matches!(
            read_with(&dirty_streams(), &tight).unwrap_err(),
            AsciiError::BudgetExceeded { .. }
        ));
        let loose = IngestOptions::lenient_with(ErrorBudget::max_frac(0.50));
        let ingested = read_with(&dirty_streams(), &loose).unwrap();
        assert_eq!(ingested.report.quarantined(), 2);
    }

    #[test]
    fn lenient_header_damage_is_quarantined_and_rows_still_parse() {
        let good = primary_id(9000001, 1);
        let demo = format!("wrong$header\n{good}$9000001$1$EXP$$UNK$$US$\n");
        let ingested = read_quarter_with(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            format!("{DRUG_HEADER}\n").as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
            &IngestOptions::lenient(),
        )
        .unwrap();
        assert_eq!(ingested.data.reports.len(), 1);
        assert_eq!(ingested.report.damaged_headers(), vec!["DEMO"]);
        // Header damage is not a data-row quarantine.
        assert_eq!(ingested.report.demo, FileCounts { rows: 1, ok: 1, quarantined: 0 });
        assert_eq!(ingested.report.quarantine[0].reason, QuarantineReason::HeaderDamage);
    }

    #[test]
    fn duplicate_primaryid_strict_errors_lenient_quarantines() {
        let pid = primary_id(9000001, 1);
        let demo = format!(
            "{DEMO_HEADER}\n{pid}$9000001$1$EXP$$UNK$$US$\n{pid}$9000001$1$EXP$$UNK$$US$\n"
        );
        let make = |opts: &IngestOptions| {
            read_quarter_with(
                QuarterId::new(2014, 1),
                demo.as_bytes(),
                format!("{DRUG_HEADER}\n").as_bytes(),
                format!("{REAC_HEADER}\n").as_bytes(),
                format!("{OUTC_HEADER}\n").as_bytes(),
                opts,
            )
        };
        let err = make(&IngestOptions::strict()).unwrap_err();
        assert!(matches!(err, AsciiError::Malformed { file: "DEMO", line: 3, .. }));
        let ingested = make(&IngestOptions::lenient()).unwrap();
        assert_eq!(ingested.data.reports.len(), 1);
        assert_eq!(
            ingested.report.counts_by_reason(),
            vec![(QuarantineReason::DuplicatePrimaryid, 1)]
        );
    }

    #[test]
    fn lenient_dir_roundtrip_reports_clean() {
        let dir = std::env::temp_dir().join(format!("maras_ascii_lenient_{}", std::process::id()));
        let q = QuarterData { id: QuarterId::new(2015, 2), reports: sample_reports() };
        write_quarter_dir(&dir, &q).unwrap();
        let ingested = read_quarter_dir_with(&dir, q.id, &IngestOptions::lenient()).unwrap();
        assert_eq!(ingested.data.reports, q.reports);
        assert!(ingested.report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
