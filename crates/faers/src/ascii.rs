//! Reader/writer for the FAERS quarterly `$`-delimited ASCII exchange format.
//!
//! A quarter is published as four joined tables keyed by `primaryid`
//! (the case id concatenated with the case version):
//!
//! * `DEMOyyQq.txt` — one row per case version: demographics + report type;
//! * `DRUGyyQq.txt` — one row per reported medication;
//! * `REACyyQq.txt` — one row per reaction preferred term;
//! * `OUTCyyQq.txt` — one row per outcome code.
//!
//! Each file starts with a `$`-delimited header line. This module implements
//! a faithful subset of the real column inventory (the columns MARAS's
//! pipeline consumes) with exact round-tripping, strict error reporting
//! (file + line), and delimiter sanitization on write.

use crate::model::{CaseReport, DrugEntry, DrugRole, Outcome, ReportType, Sex};
use crate::quarter::{QuarterData, QuarterId};
use rustc_hash::FxHashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised while reading a FAERS ASCII quarter.
#[derive(Debug)]
pub enum AsciiError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row: file label, 1-based line number, description.
    Malformed {
        /// Which table the row came from (`DEMO`, `DRUG`, `REAC`, `OUTC`).
        file: &'static str,
        /// 1-based line number within that file.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A DRUG/REAC/OUTC row references a primaryid absent from DEMO.
    OrphanRow {
        /// Which table the orphan row came from.
        file: &'static str,
        /// The unresolved primaryid.
        primaryid: u64,
    },
}

impl fmt::Display for AsciiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsciiError::Io(e) => write!(f, "I/O error: {e}"),
            AsciiError::Malformed { file, line, message } => {
                write!(f, "{file} line {line}: {message}")
            }
            AsciiError::OrphanRow { file, primaryid } => {
                write!(f, "{file}: row references unknown primaryid {primaryid}")
            }
        }
    }
}

impl std::error::Error for AsciiError {}

impl From<io::Error> for AsciiError {
    fn from(e: io::Error) -> Self {
        AsciiError::Io(e)
    }
}

const DEMO_HEADER: &str = "primaryid$caseid$caseversion$rept_cod$age$sex$wt$reporter_country$event_dt";
const DRUG_HEADER: &str = "primaryid$drug_seq$role_cod$drugname";
const REAC_HEADER: &str = "primaryid$pt";
const OUTC_HEADER: &str = "primaryid$outc_cod";

/// Computes the `primaryid` of a case version (caseid ⧺ two-digit version,
/// matching FAERS's concatenation convention).
pub fn primary_id(case_id: u64, version: u32) -> u64 {
    case_id * 100 + u64::from(version % 100)
}

fn sanitize(field: &str) -> String {
    field.replace(['$', '\n', '\r'], " ")
}

/// Writes one table to a writer. Exposed for targeted tests; use
/// [`write_quarter_dir`] for the on-disk layout.
pub struct QuarterWriter;

impl QuarterWriter {
    /// Writes the DEMO table.
    pub fn write_demo<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{DEMO_HEADER}")?;
        for r in reports {
            writeln!(
                w,
                "{}${}${}${}${}${}${}${}${}",
                primary_id(r.case_id, r.version),
                r.case_id,
                r.version,
                r.report_type.code(),
                r.age.map_or(String::new(), |a| format!("{a}")),
                r.sex.code(),
                r.weight_kg.map_or(String::new(), |wt| format!("{wt}")),
                sanitize(&r.country),
                r.event_date.map_or(String::new(), |d| d.to_string()),
            )?;
        }
        Ok(())
    }

    /// Writes the DRUG table.
    pub fn write_drug<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{DRUG_HEADER}")?;
        for r in reports {
            for (seq, d) in r.drugs.iter().enumerate() {
                writeln!(
                    w,
                    "{}${}${}${}",
                    primary_id(r.case_id, r.version),
                    seq + 1,
                    d.role.code(),
                    sanitize(&d.name),
                )?;
            }
        }
        Ok(())
    }

    /// Writes the REAC table.
    pub fn write_reac<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{REAC_HEADER}")?;
        for r in reports {
            for pt in &r.reactions {
                writeln!(w, "{}${}", primary_id(r.case_id, r.version), sanitize(pt))?;
            }
        }
        Ok(())
    }

    /// Writes the OUTC table.
    pub fn write_outc<W: Write>(w: &mut W, reports: &[CaseReport]) -> io::Result<()> {
        writeln!(w, "{OUTC_HEADER}")?;
        for r in reports {
            for o in &r.outcomes {
                writeln!(w, "{}${}", primary_id(r.case_id, r.version), o.code())?;
            }
        }
        Ok(())
    }
}

/// Writes a quarter as the four ASCII files into `dir`, named
/// `DEMO14Q1.txt` etc. after the quarter id.
pub fn write_quarter_dir(dir: &Path, quarter: &QuarterData) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let label = quarter.id.file_label();
    let mut demo = std::fs::File::create(dir.join(format!("DEMO{label}.txt")))?;
    QuarterWriter::write_demo(&mut demo, &quarter.reports)?;
    let mut drug = std::fs::File::create(dir.join(format!("DRUG{label}.txt")))?;
    QuarterWriter::write_drug(&mut drug, &quarter.reports)?;
    let mut reac = std::fs::File::create(dir.join(format!("REAC{label}.txt")))?;
    QuarterWriter::write_reac(&mut reac, &quarter.reports)?;
    let mut outc = std::fs::File::create(dir.join(format!("OUTC{label}.txt")))?;
    QuarterWriter::write_outc(&mut outc, &quarter.reports)?;
    Ok(())
}

/// Reads a quarter back from the four ASCII files in `dir`.
pub fn read_quarter_dir(dir: &Path, id: QuarterId) -> Result<QuarterData, AsciiError> {
    let label = id.file_label();
    let open = |name: String| -> Result<std::fs::File, AsciiError> {
        std::fs::File::open(dir.join(&name)).map_err(AsciiError::Io)
    };
    read_quarter(
        id,
        open(format!("DEMO{label}.txt"))?,
        open(format!("DRUG{label}.txt"))?,
        open(format!("REAC{label}.txt"))?,
        open(format!("OUTC{label}.txt"))?,
    )
}

/// Reads a quarter from the four table streams.
pub fn read_quarter<R1: Read, R2: Read, R3: Read, R4: Read>(
    id: QuarterId,
    demo: R1,
    drug: R2,
    reac: R3,
    outc: R4,
) -> Result<QuarterData, AsciiError> {
    let mut reports: Vec<CaseReport> = Vec::new();
    let mut by_pid: FxHashMap<u64, usize> = FxHashMap::default();

    // DEMO establishes the cases.
    for (lineno, line) in lines(demo, "DEMO")?.into_iter().enumerate().skip(1) {
        let fields: Vec<&str> = line.split('$').collect();
        let ctx = |msg: String| AsciiError::Malformed { file: "DEMO", line: lineno + 1, message: msg };
        if fields.len() != 9 {
            return Err(ctx(format!("expected 9 fields, got {}", fields.len())));
        }
        let pid: u64 = fields[0].parse().map_err(|_| ctx(format!("bad primaryid {:?}", fields[0])))?;
        let case_id: u64 =
            fields[1].parse().map_err(|_| ctx(format!("bad caseid {:?}", fields[1])))?;
        let version: u32 =
            fields[2].parse().map_err(|_| ctx(format!("bad caseversion {:?}", fields[2])))?;
        let report_type = ReportType::from_code(fields[3])
            .ok_or_else(|| ctx(format!("bad rept_cod {:?}", fields[3])))?;
        let age = parse_opt_f32(fields[4]).map_err(|_| ctx(format!("bad age {:?}", fields[4])))?;
        let sex = Sex::from_code(fields[5]);
        let weight_kg =
            parse_opt_f32(fields[6]).map_err(|_| ctx(format!("bad wt {:?}", fields[6])))?;
        let event_date = if fields[8].is_empty() {
            None
        } else {
            Some(fields[8].parse().map_err(|_| ctx(format!("bad event_dt {:?}", fields[8])))?)
        };
        if primary_id(case_id, version) != pid {
            return Err(ctx(format!(
                "primaryid {pid} inconsistent with caseid {case_id} v{version}"
            )));
        }
        by_pid.insert(pid, reports.len());
        reports.push(CaseReport {
            case_id,
            version,
            report_type,
            age,
            sex,
            weight_kg,
            country: fields[7].to_string(),
            event_date,
            drugs: Vec::new(),
            reactions: Vec::new(),
            outcomes: Vec::new(),
        });
    }

    // DRUG rows attach medications (kept in drug_seq order).
    let mut drug_rows: Vec<(u64, u32, DrugEntry)> = Vec::new();
    for (lineno, line) in lines(drug, "DRUG")?.into_iter().enumerate().skip(1) {
        let fields: Vec<&str> = line.split('$').collect();
        let ctx = |msg: String| AsciiError::Malformed { file: "DRUG", line: lineno + 1, message: msg };
        if fields.len() != 4 {
            return Err(ctx(format!("expected 4 fields, got {}", fields.len())));
        }
        let pid: u64 = fields[0].parse().map_err(|_| ctx(format!("bad primaryid {:?}", fields[0])))?;
        let seq: u32 = fields[1].parse().map_err(|_| ctx(format!("bad drug_seq {:?}", fields[1])))?;
        let role = DrugRole::from_code(fields[2])
            .ok_or_else(|| ctx(format!("bad role_cod {:?}", fields[2])))?;
        if !by_pid.contains_key(&pid) {
            return Err(AsciiError::OrphanRow { file: "DRUG", primaryid: pid });
        }
        drug_rows.push((pid, seq, DrugEntry::new(fields[3], role)));
    }
    drug_rows.sort_by_key(|&(pid, seq, _)| (pid, seq));
    for (pid, _, entry) in drug_rows {
        reports[by_pid[&pid]].drugs.push(entry);
    }

    // REAC rows attach reactions.
    for (lineno, line) in lines(reac, "REAC")?.into_iter().enumerate().skip(1) {
        let fields: Vec<&str> = line.split('$').collect();
        let ctx = |msg: String| AsciiError::Malformed { file: "REAC", line: lineno + 1, message: msg };
        if fields.len() != 2 {
            return Err(ctx(format!("expected 2 fields, got {}", fields.len())));
        }
        let pid: u64 = fields[0].parse().map_err(|_| ctx(format!("bad primaryid {:?}", fields[0])))?;
        let idx = *by_pid
            .get(&pid)
            .ok_or(AsciiError::OrphanRow { file: "REAC", primaryid: pid })?;
        reports[idx].reactions.push(fields[1].to_string());
    }

    // OUTC rows attach outcomes.
    for (lineno, line) in lines(outc, "OUTC")?.into_iter().enumerate().skip(1) {
        let fields: Vec<&str> = line.split('$').collect();
        let ctx = |msg: String| AsciiError::Malformed { file: "OUTC", line: lineno + 1, message: msg };
        if fields.len() != 2 {
            return Err(ctx(format!("expected 2 fields, got {}", fields.len())));
        }
        let pid: u64 = fields[0].parse().map_err(|_| ctx(format!("bad primaryid {:?}", fields[0])))?;
        let idx = *by_pid
            .get(&pid)
            .ok_or(AsciiError::OrphanRow { file: "OUTC", primaryid: pid })?;
        let outcome = Outcome::from_code(fields[1])
            .ok_or_else(|| ctx(format!("bad outc_cod {:?}", fields[1])))?;
        reports[idx].outcomes.push(outcome);
    }

    Ok(QuarterData { id, reports })
}

fn parse_opt_f32(field: &str) -> Result<Option<f32>, std::num::ParseFloatError> {
    if field.is_empty() {
        Ok(None)
    } else {
        field.parse().map(Some)
    }
}

fn lines<R: Read>(reader: R, file: &'static str) -> Result<Vec<String>, AsciiError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if i == 0 {
            let expected = match file {
                "DEMO" => DEMO_HEADER,
                "DRUG" => DRUG_HEADER,
                "REAC" => REAC_HEADER,
                "OUTC" => OUTC_HEADER,
                _ => unreachable!(),
            };
            if line != expected {
                return Err(AsciiError::Malformed {
                    file,
                    line: 1,
                    message: format!("bad header {line:?}"),
                });
            }
        }
        out.push(line);
    }
    if out.is_empty() {
        return Err(AsciiError::Malformed { file, line: 1, message: "missing header".into() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<CaseReport> {
        vec![
            CaseReport {
                case_id: 9000001,
                version: 1,
                report_type: ReportType::Expedited,
                age: Some(63.0),
                sex: Sex::Female,
                weight_kg: Some(71.5),
                country: "US".into(),
                event_date: Some(20140117),
                drugs: vec![
                    DrugEntry::new("IBUPROFEN", DrugRole::PrimarySuspect),
                    DrugEntry::new("METAMIZOLE", DrugRole::SecondarySuspect),
                ],
                reactions: vec!["Acute renal failure".into()],
                outcomes: vec![Outcome::Hospitalization],
            },
            CaseReport {
                case_id: 9000002,
                version: 2,
                report_type: ReportType::Periodic,
                age: None,
                sex: Sex::Unknown,
                weight_kg: None,
                country: "MX".into(),
                event_date: None,
                drugs: vec![DrugEntry::new("ASPIRIN", DrugRole::Concomitant)],
                reactions: vec!["Headache".into(), "Nausea".into()],
                outcomes: vec![],
            },
        ]
    }

    fn roundtrip(reports: Vec<CaseReport>) -> QuarterData {
        let id = QuarterId::new(2014, 1);
        let q = QuarterData { id, reports };
        let mut demo = Vec::new();
        let mut drug = Vec::new();
        let mut reac = Vec::new();
        let mut outc = Vec::new();
        QuarterWriter::write_demo(&mut demo, &q.reports).unwrap();
        QuarterWriter::write_drug(&mut drug, &q.reports).unwrap();
        QuarterWriter::write_reac(&mut reac, &q.reports).unwrap();
        QuarterWriter::write_outc(&mut outc, &q.reports).unwrap();
        read_quarter(id, &demo[..], &drug[..], &reac[..], &outc[..]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_reports() {
        let reports = sample_reports();
        let back = roundtrip(reports.clone());
        assert_eq!(back.reports, reports);
    }

    #[test]
    fn primary_id_concatenates_version() {
        assert_eq!(primary_id(9000001, 1), 900000101);
        assert_eq!(primary_id(9000001, 12), 900000112);
    }

    #[test]
    fn dollar_in_drugname_is_sanitized() {
        let mut reports = sample_reports();
        reports[0].drugs[0].name = "IBU$PROFEN".into();
        let back = roundtrip(reports);
        assert_eq!(back.reports[0].drugs[0].name, "IBU PROFEN");
    }

    #[test]
    fn orphan_drug_row_is_error() {
        let demo = format!("{DEMO_HEADER}\n");
        let drug = format!("{DRUG_HEADER}\n999$1$PS$ASPIRIN\n");
        let reac = format!("{REAC_HEADER}\n");
        let outc = format!("{OUTC_HEADER}\n");
        let err = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            drug.as_bytes(),
            reac.as_bytes(),
            outc.as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, AsciiError::OrphanRow { file: "DRUG", primaryid: 999 }));
    }

    #[test]
    fn malformed_demo_row_reports_line() {
        let demo = format!("{DEMO_HEADER}\nnot-a-number$1$1$EXP$$UNK$$US$\n");
        let err = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            format!("{DRUG_HEADER}\n").as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap_err();
        match err {
            AsciiError::Malformed { file: "DEMO", line: 2, .. } => {}
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_quarter(
            QuarterId::new(2014, 1),
            "wrong$header\n".as_bytes(),
            format!("{DRUG_HEADER}\n").as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, AsciiError::Malformed { file: "DEMO", line: 1, .. }));
    }

    #[test]
    fn inconsistent_primaryid_rejected() {
        let demo = format!("{DEMO_HEADER}\n777$9000001$1$EXP$$UNK$$US$\n");
        let err = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            format!("{DRUG_HEADER}\n").as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, AsciiError::Malformed { file: "DEMO", line: 2, .. }));
    }

    #[test]
    fn dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("maras_ascii_test_{}", std::process::id()));
        let q = QuarterData { id: QuarterId::new(2014, 3), reports: sample_reports() };
        write_quarter_dir(&dir, &q).unwrap();
        assert!(dir.join("DEMO14Q3.txt").exists());
        let back = read_quarter_dir(&dir, q.id).unwrap();
        assert_eq!(back.reports, q.reports);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drug_rows_rejoin_in_seq_order() {
        // Shuffle DRUG rows across cases; reader must restore per-case order.
        let demo = format!(
            "{DEMO_HEADER}\n{}$1$1$EXP$$UNK$$US$\n{}$2$1$EXP$$UNK$$US$\n",
            primary_id(1, 1),
            primary_id(2, 1)
        );
        let drug = format!(
            "{DRUG_HEADER}\n{}$2$SS$B2\n{}$1$PS$A1\n{}$1$PS$B1\n",
            primary_id(2, 1),
            primary_id(1, 1),
            primary_id(2, 1)
        );
        let q = read_quarter(
            QuarterId::new(2014, 1),
            demo.as_bytes(),
            drug.as_bytes(),
            format!("{REAC_HEADER}\n").as_bytes(),
            format!("{OUTC_HEADER}\n").as_bytes(),
        )
        .unwrap();
        let names: Vec<&str> = q.reports[1].drug_names().collect();
        assert_eq!(names, vec!["B1", "B2"]);
    }
}
