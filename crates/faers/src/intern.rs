//! String interning for the ingestion hot path.
//!
//! FAERS quarters repeat the same handful of strings millions of times: a
//! few hundred drug names, a few hundred ADR preferred terms, and a few
//! dozen country codes cover every row. The legacy reader called
//! `to_string()` once per field, so a 20k-report quarter allocated hundreds
//! of thousands of tiny owned strings that were byte-for-byte duplicates.
//!
//! [`SymbolTable`] deduplicates those at the parse → [`crate::CaseReport`]
//! boundary: the first occurrence of a string allocates one [`IStr`] (a
//! shared `Arc<str>`), every later occurrence bumps a refcount. The table
//! also keeps hit/byte counters so the CLI and `bench_ingest` can report
//! how much allocation the interner absorbed.

use rustc_hash::FxHashSet;
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable, interned string.
///
/// Behaves like a `String` for comparison, hashing, ordering, display, and
/// `&str` access (via [`Deref`]/[`AsRef`]/[`Borrow`]), but cloning is a
/// refcount bump instead of a heap copy. Equality and hashing delegate to
/// the underlying `str`, so an `IStr` can be looked up in hashed
/// collections by `&str` and compared against `String`s in tests.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IStr(Arc<str>);

impl IStr {
    /// The string contents.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for IStr {
    fn default() -> Self {
        IStr(Arc::from(""))
    }
}

impl Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr(Arc::from(s))
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr(Arc::from(s))
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.as_str(), f)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<IStr> for String {
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == other.as_str()
    }
}

/// Deduplicating store of [`IStr`]s with hit accounting.
#[derive(Debug, Default)]
pub struct SymbolTable {
    set: FxHashSet<IStr>,
    hits: u64,
    bytes: u64,
}

impl SymbolTable {
    /// A fresh, empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Returns the interned handle for `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> IStr {
        if let Some(existing) = self.set.get(s) {
            self.hits += 1;
            return existing.clone();
        }
        let new = IStr::from(s);
        self.bytes += s.len() as u64;
        self.set.insert(new.clone());
        new
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> InternStats {
        InternStats { unique: self.set.len() as u64, hits: self.hits, bytes: self.bytes }
    }
}

/// What a [`SymbolTable`] absorbed: how many distinct strings it holds, how
/// many lookups it served without allocating, and the bytes it does own.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct strings interned (each allocated exactly once).
    pub unique: u64,
    /// Lookups answered by an existing entry — each one an allocation the
    /// legacy `to_string()` path would have made.
    pub hits: u64,
    /// Total bytes owned by the table (sum of unique string lengths).
    pub bytes: u64,
}

impl InternStats {
    /// Total intern calls (hits plus first sights).
    pub fn lookups(&self) -> u64 {
        self.hits + self.unique
    }

    /// Fraction of lookups served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    #[test]
    fn interning_deduplicates_and_counts() {
        let mut table = SymbolTable::new();
        let a = table.intern("IBUPROFEN");
        let b = table.intern("IBUPROFEN");
        let c = table.intern("ASPIRIN");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.0, &b.0), "repeat interns must share storage");
        assert_ne!(a, c);
        let stats = table.stats();
        assert_eq!(stats.unique, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.bytes, "IBUPROFEN".len() as u64 + "ASPIRIN".len() as u64);
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn istr_compares_like_a_string() {
        let s = IStr::from("Headache");
        assert_eq!(s, "Headache");
        assert_eq!("Headache", s);
        assert_eq!(s, String::from("Headache"));
        assert_eq!(String::from("Headache"), s);
        assert_eq!(s.as_str(), "Headache");
        assert_eq!(format!("{s}"), "Headache");
        assert_eq!(format!("{s:?}"), "\"Headache\"");
        assert_eq!(IStr::default(), "");
        let (a, b) = (IStr::from("A"), IStr::from("B"));
        assert!(a < b);
    }

    #[test]
    fn istr_hashes_like_str_for_map_lookups() {
        let mut map: FxHashMap<IStr, u32> = FxHashMap::default();
        map.insert(IStr::from("US"), 1);
        // Borrow<str> lets &str key the lookup.
        assert_eq!(map.get("US"), Some(&1));
        assert_eq!(map.get("DE"), None);
    }

    #[test]
    fn empty_table_hit_rate_is_zero() {
        assert_eq!(SymbolTable::new().stats().hit_rate(), 0.0);
    }
}
