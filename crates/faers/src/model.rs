//! The FAERS case-report data model.
//!
//! Field inventory follows the public FAERS quarterly extracts: a DEMO row
//! per case version (demographics, report type), DRUG rows (one per reported
//! medication, with a suspect-role code), REAC rows (one per reaction
//! preferred term) and OUTC rows (one per outcome code). The thesis selects
//! "mandatory reports submitted by manufacturers marked as expedited (EXP)
//! as these reports contain at least one severe adverse event" (§5.1).

use crate::intern::IStr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the report entered the surveillance system (DEMO `rept_cod`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportType {
    /// Expedited (15-day) manufacturer report — carries ≥ 1 serious event.
    Expedited,
    /// Periodic (non-expedited) manufacturer report.
    Periodic,
    /// Direct voluntary report (MedWatch).
    Direct,
}

impl ReportType {
    /// FAERS code string.
    pub fn code(self) -> &'static str {
        match self {
            ReportType::Expedited => "EXP",
            ReportType::Periodic => "PER",
            ReportType::Direct => "DIR",
        }
    }

    /// Parses a FAERS code string.
    pub fn from_code(code: &str) -> Option<Self> {
        match code.trim() {
            "EXP" => Some(ReportType::Expedited),
            "PER" => Some(ReportType::Periodic),
            "DIR" => Some(ReportType::Direct),
            _ => None,
        }
    }
}

/// Patient sex (DEMO `sex`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sex {
    /// Female.
    Female,
    /// Male.
    Male,
    /// Unknown / unreported.
    Unknown,
}

impl Sex {
    /// FAERS code string.
    pub fn code(self) -> &'static str {
        match self {
            Sex::Female => "F",
            Sex::Male => "M",
            Sex::Unknown => "UNK",
        }
    }

    /// Parses a FAERS code string (empty and unknown map to `Unknown`).
    pub fn from_code(code: &str) -> Self {
        match code.trim() {
            "F" => Sex::Female,
            "M" => Sex::Male,
            _ => Sex::Unknown,
        }
    }
}

/// Outcome of the adverse event (OUTC `outc_cod`). Any outcome other than
/// `Other` marks the case *serious* under FDA criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Outcome {
    /// Death.
    Death,
    /// Life-threatening.
    LifeThreatening,
    /// Hospitalization (initial or prolonged).
    Hospitalization,
    /// Disability.
    Disability,
    /// Congenital anomaly.
    CongenitalAnomaly,
    /// Required intervention to prevent permanent impairment.
    RequiredIntervention,
    /// Other serious / medically important.
    Other,
}

impl Outcome {
    /// FAERS two-letter code.
    pub fn code(self) -> &'static str {
        match self {
            Outcome::Death => "DE",
            Outcome::LifeThreatening => "LT",
            Outcome::Hospitalization => "HO",
            Outcome::Disability => "DS",
            Outcome::CongenitalAnomaly => "CA",
            Outcome::RequiredIntervention => "RI",
            Outcome::Other => "OT",
        }
    }

    /// Parses a FAERS two-letter code.
    pub fn from_code(code: &str) -> Option<Self> {
        match code.trim() {
            "DE" => Some(Outcome::Death),
            "LT" => Some(Outcome::LifeThreatening),
            "HO" => Some(Outcome::Hospitalization),
            "DS" => Some(Outcome::Disability),
            "CA" => Some(Outcome::CongenitalAnomaly),
            "RI" => Some(Outcome::RequiredIntervention),
            "OT" => Some(Outcome::Other),
            _ => None,
        }
    }

    /// All outcome codes in severity order (most severe first).
    pub const ALL: [Outcome; 7] = [
        Outcome::Death,
        Outcome::LifeThreatening,
        Outcome::Hospitalization,
        Outcome::Disability,
        Outcome::CongenitalAnomaly,
        Outcome::RequiredIntervention,
        Outcome::Other,
    ];

    /// Severity weight for ranking filters: death = 6 … other = 0.
    pub fn severity(self) -> u8 {
        match self {
            Outcome::Death => 6,
            Outcome::LifeThreatening => 5,
            Outcome::Hospitalization => 4,
            Outcome::Disability => 3,
            Outcome::CongenitalAnomaly => 2,
            Outcome::RequiredIntervention => 1,
            Outcome::Other => 0,
        }
    }
}

/// Reported role of a drug within a case (DRUG `role_cod`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DrugRole {
    /// Primary suspect.
    PrimarySuspect,
    /// Secondary suspect.
    SecondarySuspect,
    /// Concomitant.
    Concomitant,
    /// Interacting.
    Interacting,
}

impl DrugRole {
    /// FAERS code string.
    pub fn code(self) -> &'static str {
        match self {
            DrugRole::PrimarySuspect => "PS",
            DrugRole::SecondarySuspect => "SS",
            DrugRole::Concomitant => "C",
            DrugRole::Interacting => "I",
        }
    }

    /// Parses a FAERS code string.
    pub fn from_code(code: &str) -> Option<Self> {
        match code.trim() {
            "PS" => Some(DrugRole::PrimarySuspect),
            "SS" => Some(DrugRole::SecondarySuspect),
            "C" => Some(DrugRole::Concomitant),
            "I" => Some(DrugRole::Interacting),
            _ => None,
        }
    }
}

/// One medication line of a report: the verbatim (possibly misspelled,
/// dosage-laden) drug string plus its suspect role.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DrugEntry {
    /// Verbatim drug name as reported (`drugname`), interned: reports that
    /// name the same drug share one allocation.
    pub name: IStr,
    /// Suspect role.
    pub role: DrugRole,
}

impl DrugEntry {
    /// Convenience constructor.
    pub fn new(name: impl Into<IStr>, role: DrugRole) -> Self {
        DrugEntry { name: name.into(), role }
    }
}

/// One adverse-event case report (one DEMO row joined with its DRUG, REAC
/// and OUTC rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// FAERS case number; follow-ups share it.
    pub case_id: u64,
    /// Version of the case (follow-ups increment it; cleaning keeps the max).
    pub version: u32,
    /// How the report entered the system.
    pub report_type: ReportType,
    /// Patient age in years, if reported.
    pub age: Option<f32>,
    /// Patient sex.
    pub sex: Sex,
    /// Patient weight in kilograms, if reported.
    pub weight_kg: Option<f32>,
    /// Reporter country (ISO-3166 alpha-2), interned.
    pub country: IStr,
    /// Event date `YYYYMMDD`, if reported.
    pub event_date: Option<u32>,
    /// Reported medications.
    pub drugs: Vec<DrugEntry>,
    /// Reaction preferred terms (verbatim), interned.
    pub reactions: Vec<IStr>,
    /// Outcome codes.
    pub outcomes: Vec<Outcome>,
}

impl CaseReport {
    /// Whether the case is serious: any outcome more severe than `Other`.
    pub fn is_serious(&self) -> bool {
        self.outcomes.iter().any(|o| o.severity() > 0)
    }

    /// Most severe outcome, if any outcomes were reported.
    pub fn max_severity(&self) -> Option<Outcome> {
        self.outcomes.iter().copied().max_by_key(|o| o.severity())
    }

    /// Verbatim drug names in report order.
    pub fn drug_names(&self) -> impl Iterator<Item = &str> {
        self.drugs.iter().map(|d| d.name.as_str())
    }
}

impl fmt::Display for CaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "case {} v{} [{}] drugs=[{}] reactions=[{}]",
            self.case_id,
            self.version,
            self.report_type.code(),
            self.drugs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>().join("; "),
            self.reactions.iter().map(|r| r.as_str()).collect::<Vec<_>>().join("; "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CaseReport {
        CaseReport {
            case_id: 10001,
            version: 1,
            report_type: ReportType::Expedited,
            age: Some(63.0),
            sex: Sex::Female,
            weight_kg: Some(71.5),
            country: "US".into(),
            event_date: Some(20140117),
            drugs: vec![
                DrugEntry::new("IBUPROFEN", DrugRole::PrimarySuspect),
                DrugEntry::new("METAMIZOLE", DrugRole::SecondarySuspect),
            ],
            reactions: vec!["Acute renal failure".into()],
            outcomes: vec![Outcome::Hospitalization],
        }
    }

    #[test]
    fn code_roundtrips() {
        for rt in [ReportType::Expedited, ReportType::Periodic, ReportType::Direct] {
            assert_eq!(ReportType::from_code(rt.code()), Some(rt));
        }
        for o in Outcome::ALL {
            assert_eq!(Outcome::from_code(o.code()), Some(o));
        }
        for r in [
            DrugRole::PrimarySuspect,
            DrugRole::SecondarySuspect,
            DrugRole::Concomitant,
            DrugRole::Interacting,
        ] {
            assert_eq!(DrugRole::from_code(r.code()), Some(r));
        }
        for s in [Sex::Female, Sex::Male, Sex::Unknown] {
            assert_eq!(Sex::from_code(s.code()), s);
        }
    }

    #[test]
    fn unknown_codes_rejected() {
        assert_eq!(ReportType::from_code("XYZ"), None);
        assert_eq!(Outcome::from_code(""), None);
        assert_eq!(DrugRole::from_code("Q"), None);
        assert_eq!(Sex::from_code("??"), Sex::Unknown);
    }

    #[test]
    fn seriousness() {
        let mut r = report();
        assert!(r.is_serious());
        assert_eq!(r.max_severity(), Some(Outcome::Hospitalization));
        r.outcomes = vec![Outcome::Other];
        assert!(!r.is_serious());
        r.outcomes.clear();
        assert!(!r.is_serious());
        assert_eq!(r.max_severity(), None);
        r.outcomes = vec![Outcome::Other, Outcome::Death, Outcome::Hospitalization];
        assert_eq!(r.max_severity(), Some(Outcome::Death));
    }

    #[test]
    fn severity_ordering_is_strict() {
        let sevs: Vec<u8> = Outcome::ALL.iter().map(|o| o.severity()).collect();
        assert!(sevs.windows(2).all(|w| w[0] > w[1]), "{sevs:?}");
    }

    #[test]
    fn display_mentions_drugs_and_reactions() {
        let s = report().to_string();
        assert!(s.contains("IBUPROFEN"));
        assert!(s.contains("Acute renal failure"));
        assert!(s.contains("EXP"));
    }
}
