//! The structured-log flight recorder.
//!
//! Every layer emits leveled key-value events through one process-wide
//! recorder with two independent outputs:
//!
//! * a **bounded in-memory ring** that always records (the flight
//!   recorder proper) — the newest [`DEFAULT_RING_CAPACITY`] events are
//!   retained, older ones are evicted and counted in [`logs_dropped`],
//!   the same drop-accounting discipline as the span collector. The ring
//!   is what `GET /debug/logs` and the panic hook read.
//! * an optional **JSON-lines sink** (stderr and/or a file) gated by a
//!   minimum level, configured from `--log-level` / `MARAS_LOG`.
//!
//! Unlike the span collector — which batches in thread-local buffers
//! because spans arrive at kernel granularity — events here are
//! request- and phase-granular (orders of magnitude rarer), and the
//! most recent events are exactly the ones a crash dump or a live
//! `/debug/logs` probe needs. So the recorder renders through a
//! thread-local scratch buffer but publishes each event to the ring
//! immediately; the ring push is a short mutex hold on a preallocated
//! deque, kept affordable by the low event rate (see `bench_serve`'s
//! logging-overhead guard). Eviction keeps the *newest* events, the
//! opposite bias from the span collector, because a flight recorder
//! that forgets the crash and remembers the boot is useless.
//!
//! Event names are dotted lowercase paths (`serve.request`,
//! `pipeline.mine`); the keys `ts_ms`, `level`, `event`, and `seq` are
//! reserved for the envelope and must not be used as field names.

use crate::metrics::{registry, Counter};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default cap on ring-buffered events. Beyond it the oldest events are
/// evicted and counted in [`logs_dropped`], bounding recorder memory in
/// long-running servers.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Events written by the panic hook's flight-recorder dump.
const PANIC_DUMP_EVENTS: usize = 64;

/// Name of the Prometheus series counting discarded observability
/// records (spans at collector capacity, log events evicted from the
/// ring), labeled by `kind`.
pub const DROPPED_SERIES: &str = "maras_obs_dropped_total";

/// Help text for [`DROPPED_SERIES`].
pub const DROPPED_HELP: &str = "observability records discarded at capacity, by kind";

/// Sentinel byte meaning "no emission" in the emit-level atomic.
const EMIT_OFF: u8 = u8::MAX;

static EMIT_LEVEL: AtomicU8 = AtomicU8::new(EMIT_OFF);
static RING_ENABLED: AtomicBool = AtomicBool::new(true);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<VecDeque<LogEvent>> = Mutex::new(VecDeque::new());
static FILE_SINK: Mutex<Option<File>> = Mutex::new(None);

/// Severity of a log event, ordered `Trace < Debug < Info < Warn <
/// Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Per-request chatter; ring-only in any sane configuration.
    Trace,
    /// Detail useful when reconstructing one request or phase.
    Debug,
    /// Normal operational milestones (phase complete, reload done).
    Info,
    /// Degraded but handled: sheds, timeouts, malformed requests.
    Warn,
    /// Failures: panics, reload errors, 5xx responses.
    Error,
}

impl Level {
    /// All levels, ascending.
    pub const ALL: [Level; 5] =
        [Level::Trace, Level::Debug, Level::Info, Level::Warn, Level::Error];

    /// Parses a level name (`trace|debug|info|warn|error`,
    /// case-insensitive). `None` for anything else — callers treat
    /// `off` and friends themselves.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    /// The lowercase level name, as rendered in JSON lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn byte(self) -> u8 {
        match self {
            Level::Trace => 0,
            Level::Debug => 1,
            Level::Info => 2,
            Level::Warn => 3,
            Level::Error => 4,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed field value on an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string value, JSON-escaped on render.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl FieldValue {
    fn render_into(&self, out: &mut String) {
        match self {
            FieldValue::Str(s) => {
                out.push('"');
                escape_json_into(out, s);
                out.push('"');
            }
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// One recorded event: envelope (sequence number, wall-clock
/// timestamp, level, name) plus its key-value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    /// Process-wide sequence number, monotonically increasing.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// Dotted event name, e.g. `serve.request`.
    pub name: Box<str>,
    /// Key-value fields in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl LogEvent {
    /// Renders the event as one JSON object on a single line (no
    /// trailing newline).
    pub fn json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        let _ = write!(out, "{{\"ts_ms\":{},\"level\":\"{}\",\"event\":\"", self.ts_ms, self.level);
        escape_json_into(out, &self.name);
        let _ = write!(out, "\",\"seq\":{}", self.seq);
        for (key, value) in &self.fields {
            out.push_str(",\"");
            escape_json_into(out, key);
            out.push_str("\":");
            value.render_into(out);
        }
        out.push('}');
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Looks up a string field by key.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Builder for one event; terminate with [`Event::emit`].
///
/// ```
/// use maras_obs::log::{Event, Level};
/// Event::new(Level::Info, "pipeline.mine").field("patterns", 42_u64).emit();
/// ```
#[must_use = "an event records nothing until .emit() is called"]
pub struct Event {
    level: Level,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Starts an event named `name` at `level`.
    pub fn new(level: Level, name: &'static str) -> Event {
        Event { level, name, fields: Vec::new() }
    }

    /// Attaches a key-value field. Keys are static and must avoid the
    /// reserved envelope keys (`ts_ms`, `level`, `event`, `seq`).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Records the event: into the ring unconditionally (while
    /// recording is on) and onto the JSON-lines sinks when the level
    /// clears the configured emission threshold.
    pub fn emit(self) {
        let record = RING_ENABLED.load(Ordering::Relaxed);
        let emit = self.level.byte() >= EMIT_LEVEL.load(Ordering::Relaxed);
        if !record && !emit {
            return;
        }
        let event = LogEvent {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ms: unix_ms(),
            level: self.level,
            name: self.name.into(),
            fields: self.fields,
        };
        if emit {
            emit_line(&event);
        }
        if record {
            push_ring(event);
        }
    }
}

thread_local! {
    /// Per-thread render scratch so emission does not allocate a fresh
    /// line buffer per event.
    static SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

fn emit_line(event: &LogEvent) {
    SCRATCH.with(|scratch| {
        let mut line = scratch.borrow_mut();
        line.clear();
        event.render_into(&mut line);
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
        let mut sink = FILE_SINK.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(file) = sink.as_mut() {
            let _ = file.write_all(line.as_bytes());
        }
    });
}

fn push_ring(event: LogEvent) {
    let cap = RING_CAP.load(Ordering::Relaxed).max(1);
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    while ring.len() >= cap {
        ring.pop_front();
        dropped_logs_counter().inc();
    }
    ring.push_back(event);
}

fn unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// The registry counter for log events evicted from the ring
/// (`maras_obs_dropped_total{kind="logs"}`).
fn dropped_logs_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER
        .get_or_init(|| registry().counter_with(DROPPED_SERIES, DROPPED_HELP, &[("kind", "logs")]))
}

/// Recorder configuration, applied process-wide by [`init_logging`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogConfig {
    /// Minimum level written to the JSON-lines sinks; `None` disables
    /// emission entirely (the ring still records).
    pub emit_level: Option<Level>,
    /// Optional JSON-lines file sink (appended), in addition to stderr.
    pub file: Option<PathBuf>,
    /// Ring capacity (see [`DEFAULT_RING_CAPACITY`]).
    pub ring_capacity: usize,
    /// Whether the ring records at all; benchmarks turn this off to
    /// measure recorder overhead.
    pub recording: bool,
    /// Install a panic hook that dumps the ring tail to stderr.
    pub panic_hook: bool,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            emit_level: None,
            file: None,
            ring_capacity: DEFAULT_RING_CAPACITY,
            recording: true,
            panic_hook: false,
        }
    }
}

impl LogConfig {
    /// The default configuration with the emission threshold taken from
    /// the `MARAS_LOG` environment variable (`trace|debug|info|warn|
    /// error`; anything else, including unset and `off`, leaves
    /// emission disabled).
    pub fn from_env() -> LogConfig {
        let emit_level = std::env::var("MARAS_LOG").ok().and_then(|s| Level::parse(&s));
        LogConfig { emit_level, ..LogConfig::default() }
    }
}

/// Applies a recorder configuration process-wide. Opens the file sink
/// if one is configured (errors propagate; the rest of the
/// configuration is already applied by then).
pub fn init_logging(config: &LogConfig) -> std::io::Result<()> {
    set_emit_level(config.emit_level);
    RING_CAP.store(config.ring_capacity.max(1), Ordering::Relaxed);
    RING_ENABLED.store(config.recording, Ordering::Relaxed);
    // Touch both drop counters so a scrape shows them at zero instead
    // of omitting them until the first drop.
    dropped_logs_counter();
    crate::span::spans_dropped();
    let file = match &config.file {
        Some(path) => Some(File::options().create(true).append(true).open(path)?),
        None => None,
    };
    *FILE_SINK.lock().unwrap_or_else(|e| e.into_inner()) = file;
    if config.panic_hook {
        install_panic_hook();
    }
    Ok(())
}

/// Changes the JSON-lines emission threshold without touching the
/// ring; `None` disables emission.
pub fn set_emit_level(level: Option<Level>) {
    EMIT_LEVEL.store(level.map_or(EMIT_OFF, Level::byte), Ordering::Relaxed);
}

/// Turns ring recording on or off without touching emission.
pub fn set_recording(on: bool) {
    RING_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the ring is currently recording events.
pub fn recording_enabled() -> bool {
    RING_ENABLED.load(Ordering::Relaxed)
}

/// Log events evicted from the ring at capacity, since process start.
pub fn logs_dropped() -> u64 {
    dropped_logs_counter().get()
}

/// Events recorded (sequence numbers handed out) since process start.
pub fn log_events_seen() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// The newest `limit` ring events at or above `min_level`, oldest
/// first. Non-draining: the ring keeps its contents.
pub fn log_tail(limit: usize, min_level: Level) -> Vec<LogEvent> {
    let ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<LogEvent> =
        ring.iter().rev().filter(|e| e.level >= min_level).take(limit).cloned().collect();
    out.reverse();
    out
}

/// Empties the ring without counting evictions. Test isolation helper:
/// the ring is process-global, and suites that assert on its contents
/// need a known-empty starting point.
pub fn clear_log_ring() {
    RING.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Writes the newest `limit` ring events to `w` as JSON lines, oldest
/// first — the panic hook's crash dump, usable directly too.
pub fn dump_log_tail(w: &mut dyn Write, limit: usize) -> std::io::Result<()> {
    for event in log_tail(limit, Level::Trace) {
        writeln!(w, "{}", event.json_line())?;
    }
    Ok(())
}

/// Installs a process-wide panic hook (once; later calls are no-ops)
/// that records the panic as an `error`-level event and dumps the ring
/// tail to stderr before delegating to the previously installed hook —
/// so an abort leaves the flight recorder's last words on stderr.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            let location = info.location().map_or_else(String::new, |l| l.to_string());
            Event::new(Level::Error, "panic")
                .field("message", message)
                .field("location", location)
                .emit();
            prev(info);
            let stderr = std::io::stderr();
            let mut w = stderr.lock();
            let _ = writeln!(w, "--- flight recorder tail ({PANIC_DUMP_EVENTS} newest events) ---");
            let _ = dump_log_tail(&mut w, PANIC_DUMP_EVENTS);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The recorder is process-global; serialize tests that reconfigure
    // or inspect it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse(""), None);
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        for level in Level::ALL {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
    }

    #[test]
    fn ring_retains_newest_and_accounts_evictions() {
        let _g = lock();
        init_logging(&LogConfig { ring_capacity: 4, ..LogConfig::default() }).unwrap();
        clear_log_ring();
        let dropped_before = logs_dropped();
        for i in 0..10_u64 {
            Event::new(Level::Info, "test.ring").field("i", i).emit();
        }
        let tail = log_tail(100, Level::Trace);
        let ours: Vec<u64> = tail
            .iter()
            .filter(|e| &*e.name == "test.ring")
            .map(|e| match e.field("i") {
                Some(FieldValue::U64(v)) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(ours, vec![6, 7, 8, 9], "ring keeps the newest events");
        assert_eq!(logs_dropped() - dropped_before, 6, "evictions are drop-accounted");
        init_logging(&LogConfig::default()).unwrap();
    }

    #[test]
    fn tail_filters_by_level_and_limits() {
        let _g = lock();
        init_logging(&LogConfig::default()).unwrap();
        clear_log_ring();
        Event::new(Level::Debug, "test.filter").field("k", "low").emit();
        Event::new(Level::Warn, "test.filter").field("k", "mid").emit();
        Event::new(Level::Error, "test.filter").field("k", "high").emit();
        let warns = log_tail(100, Level::Warn);
        let kinds: Vec<&str> = warns.iter().filter_map(|e| e.field_str("k")).collect();
        assert_eq!(kinds, vec!["mid", "high"]);
        let last = log_tail(1, Level::Trace);
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].field_str("k"), Some("high"));
        let mut seqs: Vec<u64> = log_tail(100, Level::Trace).iter().map(|e| e.seq).collect();
        let sorted = seqs.clone();
        seqs.sort_unstable();
        assert_eq!(seqs, sorted, "tail is chronological");
    }

    #[test]
    fn json_line_escapes_and_types_fields() {
        let event = LogEvent {
            seq: 7,
            ts_ms: 1234,
            level: Level::Warn,
            name: "test.\"json\"".into(),
            fields: vec![
                ("s", FieldValue::Str("a\"b\\c\nd".into())),
                ("n", FieldValue::U64(42)),
                ("neg", FieldValue::I64(-3)),
                ("f", FieldValue::F64(1.5)),
                ("nan", FieldValue::F64(f64::NAN)),
                ("ok", FieldValue::Bool(true)),
            ],
        };
        assert_eq!(
            event.json_line(),
            "{\"ts_ms\":1234,\"level\":\"warn\",\"event\":\"test.\\\"json\\\"\",\"seq\":7,\
             \"s\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"neg\":-3,\"f\":1.5,\"nan\":null,\"ok\":true}"
        );
    }

    #[test]
    fn file_sink_gates_on_emit_level() {
        let _g = lock();
        let dir = std::env::temp_dir().join(format!("maras-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.jsonl");
        init_logging(&LogConfig {
            emit_level: Some(Level::Warn),
            file: Some(path.clone()),
            ..LogConfig::default()
        })
        .unwrap();
        Event::new(Level::Info, "test.sink").field("visible", false).emit();
        Event::new(Level::Warn, "test.sink").field("visible", true).emit();
        init_logging(&LogConfig::default()).unwrap(); // close the sink
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written.lines().count(), 1, "below-threshold event must not be written");
        assert!(written.contains("\"event\":\"test.sink\""), "{written}");
        assert!(written.contains("\"visible\":true"), "{written}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recording_off_records_nothing() {
        let _g = lock();
        init_logging(&LogConfig { recording: false, ..LogConfig::default() }).unwrap();
        clear_log_ring();
        Event::new(Level::Error, "test.off").emit();
        assert!(log_tail(100, Level::Trace).is_empty());
        init_logging(&LogConfig::default()).unwrap();
        Event::new(Level::Error, "test.on").emit();
        assert!(log_tail(100, Level::Trace).iter().any(|e| &*e.name == "test.on"));
    }
}
