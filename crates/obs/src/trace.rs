//! Chrome trace-event export: renders recorded spans as the JSON object
//! format `chrome://tracing` and Perfetto load directly.
//!
//! Each span becomes one complete (`"ph":"X"`) event with microsecond
//! timestamps; thread ids map to trace `tid`s so parallel workers render
//! as separate tracks. The full hierarchical path rides along in `args`
//! for filtering.

use crate::span::SpanRecord;

/// Escapes a string for embedding in a JSON string literal.
fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders spans as a Chrome trace-event JSON document.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + records.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        push_json_escaped(&mut out, r.name());
        out.push_str("\",\"cat\":\"maras\",\"ph\":\"X\",\"ts\":");
        out.push_str(&format!("{:.3}", r.start_ns as f64 / 1_000.0));
        out.push_str(",\"dur\":");
        out.push_str(&format!("{:.3}", r.dur_ns as f64 / 1_000.0));
        out.push_str(&format!(",\"pid\":1,\"tid\":{}", r.tid));
        out.push_str(",\"args\":{\"path\":\"");
        push_json_escaped(&mut out, &r.path);
        out.push_str("\"}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, start: u64, dur: u64, tid: u64) -> SpanRecord {
        SpanRecord { path: path.into(), start_ns: start, dur_ns: dur, tid }
    }

    #[test]
    fn renders_valid_json_with_complete_events() {
        let json = chrome_trace(&[
            rec("run", 0, 2_500_000, 0),
            rec("run/step \"odd\"\\name", 1_000, 500_000, 3),
        ]);
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value["displayTimeUnit"], "ms");
        let events = value["traceEvents"].as_array().expect("events array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["name"], "run");
        assert_eq!(events[0]["dur"].as_f64().unwrap(), 2500.0);
        assert_eq!(events[1]["tid"], 3u64);
        assert_eq!(events[1]["name"], "step \"odd\"\\name");
        assert_eq!(events[1]["args"]["path"], "run/step \"odd\"\\name");
    }

    #[test]
    fn empty_input_is_an_empty_event_list() {
        let value: serde_json::Value = serde_json::from_str(&chrome_trace(&[])).unwrap();
        assert_eq!(value["traceEvents"].as_array().unwrap().len(), 0);
    }
}
