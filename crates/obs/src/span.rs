//! The hierarchical span tracer.
//!
//! Entering a span ([`span`]) pushes a frame onto a thread-local stack and
//! extends the thread's current path string; dropping the returned RAII
//! guard pops the frame and appends a completed [`SpanRecord`] to a
//! thread-local buffer. Buffers flush into one bounded process-wide
//! collector when the thread's span stack empties (or on thread exit), so
//! the hot path never takes a lock. [`take_spans`] drains the collector.
//!
//! Worker threads attach their spans under a parent recorded on another
//! thread with [`span_under`], passing the parent's [`current_path`]; the
//! merged tree then has no orphans as long as every worker span is opened
//! under a live parent span.

use crate::metrics::{registry, Counter};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default cap on buffered completed spans process-wide. Beyond it new
/// spans are counted in [`spans_dropped`] instead of stored, which bounds
/// tracer memory in long-running servers between drains.
pub const DEFAULT_MAX_SPANS: usize = 1 << 18;

/// Thread-local buffers flush to the global collector at this size even
/// if the span stack has not emptied (deep recursions, long phases).
const FLUSH_THRESHOLD: usize = 512;

static ENABLED: AtomicBool = AtomicBool::new(true);
static MAX_SPANS: AtomicUsize = AtomicUsize::new(DEFAULT_MAX_SPANS);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Tracer configuration, applied process-wide by [`init`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether spans are recorded at all. Disabled spans cost one relaxed
    /// atomic load.
    pub tracing: bool,
    /// Cap on buffered completed spans (see [`DEFAULT_MAX_SPANS`]).
    pub max_spans: usize,
}

impl ObsConfig {
    /// The always-on default: tracing enabled, default buffer cap.
    pub fn enabled() -> ObsConfig {
        ObsConfig { tracing: true, max_spans: DEFAULT_MAX_SPANS }
    }

    /// Tracing off; used by benchmarks to measure tracer overhead.
    pub fn disabled() -> ObsConfig {
        ObsConfig { tracing: false, max_spans: DEFAULT_MAX_SPANS }
    }
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::enabled()
    }
}

/// Applies a tracer configuration process-wide.
pub fn init(config: &ObsConfig) {
    ENABLED.store(config.tracing, Ordering::Relaxed);
    MAX_SPANS.store(config.max_spans.max(1), Ordering::Relaxed);
}

/// Turns span recording on or off without touching the buffer cap.
pub fn set_tracing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The registry counter for spans discarded at collector capacity
/// (`maras_obs_dropped_total{kind="spans"}`), so drops are visible to a
/// Prometheus scrape and not only in-process.
fn dropped_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter_with(
            crate::log::DROPPED_SERIES,
            crate::log::DROPPED_HELP,
            &[("kind", "spans")],
        )
    })
}

/// Spans discarded because the collector was at capacity, since process
/// start.
pub fn spans_dropped() -> u64 {
    dropped_counter().get()
}

/// Nanoseconds since the process-wide tracing epoch (first span ever).
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Full `/`-joined path, e.g. `ingest/parse/DRUG`.
    pub path: Box<str>,
    /// Start, nanoseconds since the tracing epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense id of the recording thread (stable within a process).
    pub tid: u64,
}

impl SpanRecord {
    /// The span's own name: the last path segment.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Nesting depth (number of path segments, 1-based).
    pub fn depth(&self) -> usize {
        self.path.split('/').count()
    }

    /// The parent span's path, or `None` for a root span.
    pub fn parent_path(&self) -> Option<&str> {
        self.path.rsplit_once('/').map(|(p, _)| p)
    }
}

struct Frame {
    /// Length to truncate the thread path back to on exit.
    prev_len: usize,
    start_ns: u64,
}

struct LocalBuf {
    tid: u64,
    path: String,
    stack: Vec<Frame>,
    buf: Vec<SpanRecord>,
}

impl LocalBuf {
    fn new() -> LocalBuf {
        LocalBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            path: String::new(),
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_into_global(&mut self.buf);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

fn flush_into_global(buf: &mut Vec<SpanRecord>) {
    if buf.is_empty() {
        return;
    }
    let mut global = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    let room = MAX_SPANS.load(Ordering::Relaxed).saturating_sub(global.len());
    if buf.len() > room {
        dropped_counter().add((buf.len() - room) as u64);
        buf.truncate(room);
    }
    global.append(buf);
}

/// RAII guard for an open span; the span closes (and is recorded) when
/// the guard drops. Created by [`span`] / [`span_under`].
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let Some(frame) = l.stack.pop() else { return };
            let record = SpanRecord {
                path: l.path.as_str().into(),
                start_ns: frame.start_ns,
                dur_ns: end.saturating_sub(frame.start_ns),
                tid: l.tid,
            };
            l.path.truncate(frame.prev_len);
            l.buf.push(record);
            if l.stack.is_empty() || l.buf.len() >= FLUSH_THRESHOLD {
                let mut buf = std::mem::take(&mut l.buf);
                flush_into_global(&mut buf);
                l.buf = buf;
            }
        });
    }
}

fn enter(name: &str, base: Option<&str>) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { armed: false };
    }
    let start_ns = now_ns();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let prev_len = if l.stack.is_empty() {
            // Thread-root span: adopt the caller-provided ambient parent
            // path (cross-thread attachment) and reset fully on exit.
            l.path.clear();
            if let Some(parent) = base.filter(|p| !p.is_empty()) {
                l.path.push_str(parent);
                l.path.push('/');
            }
            l.path.push_str(name);
            0
        } else {
            let prev_len = l.path.len();
            l.path.push('/');
            l.path.push_str(name);
            prev_len
        };
        l.stack.push(Frame { prev_len, start_ns });
    });
    SpanGuard { armed: true }
}

/// Opens a span named `name` nested under the thread's current span (or
/// as a thread root). Names must not contain `/`.
pub fn span(name: &str) -> SpanGuard {
    enter(name, None)
}

/// Opens a thread-root span attached under `parent` — a path obtained
/// from [`current_path`] on the spawning thread. If this thread already
/// has open spans the parent is ignored and the span nests normally.
pub fn span_under(parent: &str, name: &str) -> SpanGuard {
    enter(name, Some(parent))
}

/// The calling thread's current span path, if any span is open. Capture
/// this before spawning workers and pass it to [`span_under`].
pub fn current_path() -> Option<String> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    LOCAL.with(|l| {
        let l = l.borrow();
        if l.stack.is_empty() {
            None
        } else {
            Some(l.path.clone())
        }
    })
}

/// Drains every completed span collected so far, sorted by start time
/// (ties broken by path for determinism). The calling thread's own buffer
/// is flushed first; other threads' unflushed buffers are included once
/// their span stacks empty or they exit — both of which have happened by
/// the time a pipeline run returns.
pub fn take_spans() -> Vec<SpanRecord> {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let mut buf = std::mem::take(&mut l.buf);
        flush_into_global(&mut buf);
    });
    let mut spans = std::mem::take(&mut *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()));
    spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then_with(|| a.path.cmp(&b.path)));
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The tracer is process-global; serialize tests that drain it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn nesting_builds_paths_and_parent_outlives_children() {
        let _g = lock();
        init(&ObsConfig::enabled());
        let _ = take_spans();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                let _leaf = span("leaf");
            }
            let _sibling = span("sibling");
        }
        let spans = take_spans();
        let paths: Vec<&str> = spans.iter().map(|s| &*s.path).collect();
        assert!(paths.contains(&"outer"));
        assert!(paths.contains(&"outer/inner"));
        assert!(paths.contains(&"outer/inner/leaf"));
        assert!(paths.contains(&"outer/sibling"));
        let outer = spans.iter().find(|s| &*s.path == "outer").unwrap();
        let leaf = spans.iter().find(|s| &*s.path == "outer/inner/leaf").unwrap();
        assert!(outer.dur_ns >= leaf.dur_ns, "parent spans its children");
        assert!(outer.start_ns <= leaf.start_ns);
        assert_eq!(leaf.name(), "leaf");
        assert_eq!(leaf.depth(), 3);
        assert_eq!(leaf.parent_path(), Some("outer/inner"));
    }

    #[test]
    fn span_under_attaches_worker_threads() {
        let _g = lock();
        init(&ObsConfig::enabled());
        let _ = take_spans();
        {
            let _parent = span("parent");
            let path = current_path().expect("parent is open");
            assert_eq!(path, "parent");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let path = path.clone();
                    scope.spawn(move || {
                        let _w = span_under(&path, "worker");
                        let _c = span("chunk");
                    });
                }
            });
        }
        let spans = take_spans();
        let count = |p: &str| spans.iter().filter(|s| &*s.path == p).count();
        assert_eq!(count("parent"), 1);
        assert_eq!(count("parent/worker"), 2);
        assert_eq!(count("parent/worker/chunk"), 2);
        // Worker tids differ from the parent's.
        let parent_tid = spans.iter().find(|s| &*s.path == "parent").unwrap().tid;
        assert!(spans.iter().filter(|s| &*s.path == "parent/worker").all(|s| s.tid != parent_tid));
    }

    #[test]
    fn disabled_records_nothing_and_reenabling_resumes() {
        let _g = lock();
        init(&ObsConfig::disabled());
        let _ = take_spans();
        {
            let _s = span("invisible");
        }
        assert!(take_spans().is_empty());
        assert_eq!(current_path(), None);
        init(&ObsConfig::enabled());
        {
            let _s = span("visible");
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(&*spans[0].path, "visible");
    }

    #[test]
    fn collector_cap_drops_and_counts() {
        let _g = lock();
        init(&ObsConfig { tracing: true, max_spans: 8 });
        let _ = take_spans();
        let dropped_before = spans_dropped();
        for _ in 0..40 {
            let _s = span("one");
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 8);
        assert_eq!(spans_dropped() - dropped_before, 32);
        init(&ObsConfig::enabled());
    }
}
