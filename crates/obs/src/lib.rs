//! Unified observability for the MARAS workspace: hierarchical span
//! tracing, a global metrics registry, and exporters — with zero
//! dependencies beyond `std`.
//!
//! Every layer of the pipeline (ingest, clean, mine, rules, MCAC) and the
//! query server records into this one substrate, so a year-scale run or a
//! slow `/search` can be broken down without a profiler:
//!
//! * [`span`] / [`span_under`] — RAII span guards building a process-wide
//!   hierarchical timing tree. The hot path touches only a thread-local
//!   buffer plus one relaxed atomic load; completed spans are flushed to
//!   a bounded global collector when a thread's stack empties, so the
//!   tracer is cheap enough to stay on in production (see `bench_mining`'s
//!   overhead guard).
//! * [`log`] — the structured-log flight recorder: leveled key-value
//!   events in a bounded in-memory ring (served by `GET /debug/logs` and
//!   dumped by the panic hook) with optional JSON-lines emission to
//!   stderr/file gated by `--log-level` / `MARAS_LOG`.
//! * [`Registry`] — named counters, gauges, and fixed-bucket histograms
//!   (with optional labels) that replace per-layer bespoke stat structs as
//!   the scrapeable surface.
//! * [`prom`] — Prometheus text exposition v0.0.4 rendering (`# HELP` /
//!   `# TYPE`, label escaping, cumulative `_bucket` series ending in
//!   `+Inf`), served by `maras serve` on `GET /metrics`.
//! * [`chrome_trace`] — Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto) written by `maras analyze|year --trace out.json`.
//! * [`SpanTree`] — the merged span tree, aggregated by path, rendered as
//!   the `--timings` table.
//!
//! ## Why std-only and always-on
//!
//! The tracer must be available in every crate of the workspace, including
//! the leaf parsing crates, without pulling an async runtime or a
//! subscriber framework into a build that is otherwise dependency-free.
//! A disabled span is one relaxed atomic load; an enabled one is a
//! monotonic clock read plus a thread-local push, far below the cost of
//! the quarter-, file-, and phase-granularity work being measured.
//!
//! ## Span naming convention
//!
//! Span names are `/`-free segments; the tracer joins them with `/` into
//! hierarchical paths (`quarter 2014 Q1/ingest/parse/DRUG`). Dynamic
//! segments (quarter ids) go in the name; high-cardinality values (case
//! ids, query strings) belong in metrics labels or nowhere.

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod prom;
pub mod span;
pub mod trace;
pub mod tree;

pub use log::{
    clear_log_ring, dump_log_tail, init_logging, install_panic_hook, log_events_seen, log_tail,
    logs_dropped, recording_enabled, set_emit_level, set_recording, Event, FieldValue, Level,
    LogConfig, LogEvent, DROPPED_HELP, DROPPED_SERIES,
};
pub use metrics::{
    counter, counter_with, gauge, gauge_with, histogram, histogram_with, quantile_from_buckets,
    registry, Counter, Gauge, Histogram, Registry,
};
pub use prom::PromText;
pub use span::{
    current_path, init, set_tracing, span, span_under, spans_dropped, take_spans, tracing_enabled,
    ObsConfig, SpanGuard, SpanRecord,
};
pub use trace::chrome_trace;
pub use tree::{SpanNode, SpanTree};
