//! The global metrics registry: named counters, gauges, and fixed-bucket
//! histograms with optional labels, rendered for Prometheus scrapes.
//!
//! Registration goes through the global [`registry`]; handles are cheap
//! `Arc`-backed atomics, so callers register once (often in a `OnceLock`)
//! and update lock-free on the hot path.

use crate::prom::PromText;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared state of a histogram: one overflow bucket past the last bound.
#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last one is the `+Inf` overflow.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram with upper-bound buckets plus `+Inf` overflow.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.0.bounds.partition_point(|&ub| ub < v);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bucket upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts, including the trailing `+Inf` overflow bucket.
    pub fn counts(&self) -> Vec<u64> {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile, interpolated within the containing bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.0.bounds, &self.counts(), q)
    }
}

/// Estimates quantile `q` (in `[0, 1]`) from per-bucket counts by linear
/// interpolation within the containing bucket.
///
/// `counts` has one more entry than `bounds`: the trailing `+Inf` overflow
/// bucket. The first bucket interpolates from 0; a quantile landing in the
/// overflow bucket is clamped to the last finite bound (there is nothing
/// defensible to interpolate toward). Returns `None` when no observations
/// were recorded.
pub fn quantile_from_buckets(bounds: &[f64], counts: &[u64], q: f64) -> Option<f64> {
    assert_eq!(counts.len(), bounds.len() + 1, "counts must include +Inf bucket");
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        let prev = cum;
        cum += c;
        if (cum as f64) >= rank && c > 0 {
            if i >= bounds.len() {
                // Overflow bucket: clamp to the last finite bound.
                return Some(bounds.last().copied().unwrap_or(0.0));
            }
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
            let hi = bounds[i];
            let frac = (rank - prev as f64) / c as f64;
            return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
        }
    }
    Some(bounds.last().copied().unwrap_or(0.0))
}

/// Label set attached to a series: sorted key→value pairs.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Labels,
}

#[derive(Debug, Clone)]
enum SeriesValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Series {
    help: String,
    value: SeriesValue,
}

/// A registry of named metric series. One process-global instance lives
/// behind [`registry`]; fresh instances exist only for tests.
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, Series>>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

impl Registry {
    /// Creates an empty registry (tests; production uses [`registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or registers an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Gets or registers a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let key = SeriesKey { name: name.to_string(), labels: sorted_labels(labels) };
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let entry = series.entry(key).or_insert_with(|| Series {
            help: help.to_string(),
            value: SeriesValue::Counter(Counter(Arc::new(AtomicU64::new(0)))),
        });
        match &entry.value {
            SeriesValue::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gets or registers an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Gets or registers a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = SeriesKey { name: name.to_string(), labels: sorted_labels(labels) };
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let entry = series.entry(key).or_insert_with(|| Series {
            help: help.to_string(),
            value: SeriesValue::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))),
        });
        match &entry.value {
            SeriesValue::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gets or registers an unlabelled histogram with the given bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Gets or registers a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let key = SeriesKey { name: name.to_string(), labels: sorted_labels(labels) };
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let entry = series.entry(key).or_insert_with(|| Series {
            help: help.to_string(),
            value: SeriesValue::Histogram(Histogram::new(bounds)),
        });
        match &entry.value {
            SeriesValue::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Renders every registered series as Prometheus exposition text.
    pub fn render_prometheus(&self) -> String {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let mut text = PromText::new();
        for (key, s) in series.iter() {
            let labels: Vec<(&str, &str)> =
                key.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            match &s.value {
                SeriesValue::Counter(c) => {
                    text.counter(&key.name, &s.help, &labels, c.get());
                }
                SeriesValue::Gauge(g) => {
                    text.gauge(&key.name, &s.help, &labels, g.get());
                }
                SeriesValue::Histogram(h) => {
                    text.histogram(&key.name, &s.help, &labels, h.bounds(), &h.counts(), h.sum());
                }
            }
        }
        text.finish()
    }

    /// Removes every registered series (tests only; existing handles keep
    /// working but are no longer rendered).
    pub fn reset(&self) {
        self.series.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Gets or registers an unlabelled counter in the global registry.
pub fn counter(name: &str, help: &str) -> Counter {
    registry().counter(name, help)
}

/// Gets or registers a labelled counter in the global registry.
pub fn counter_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
    registry().counter_with(name, help, labels)
}

/// Gets or registers an unlabelled gauge in the global registry.
pub fn gauge(name: &str, help: &str) -> Gauge {
    registry().gauge(name, help)
}

/// Gets or registers a labelled gauge in the global registry.
pub fn gauge_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
    registry().gauge_with(name, help, labels)
}

/// Gets or registers an unlabelled histogram in the global registry.
pub fn histogram(name: &str, help: &str, bounds: &[f64]) -> Histogram {
    registry().histogram(name, help, bounds)
}

/// Gets or registers a labelled histogram in the global registry.
pub fn histogram_with(
    name: &str,
    help: &str,
    bounds: &[f64],
    labels: &[(&str, &str)],
) -> Histogram {
    registry().histogram_with(name, help, bounds, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total", "jobs");
        c.inc();
        c.add(4);
        // Re-registering returns the same underlying series.
        assert_eq!(reg.counter("jobs_total", "jobs").get(), 5);
        let g = reg.gauge("depth", "queue depth");
        g.set(2.5);
        assert_eq!(reg.gauge("depth", "queue depth").get(), 2.5);
    }

    #[test]
    fn labelled_series_are_distinct_and_order_insensitive() {
        let reg = Registry::new();
        let a = reg.counter_with("req", "requests", &[("ep", "search"), ("code", "200")]);
        let same = reg.counter_with("req", "requests", &[("code", "200"), ("ep", "search")]);
        let other = reg.counter_with("req", "requests", &[("ep", "cluster"), ("code", "200")]);
        a.inc();
        same.inc();
        assert_eq!(a.get(), 2, "label order must not split the series");
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn histogram_buckets_sum_and_count() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "latency", &[10.0, 100.0]);
        for v in [5.0, 10.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), vec![2, 1, 1], "10.0 lands in the <=10 bucket");
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 565.0);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let bounds = [50.0, 100.0];
        // All 100 observations fell in (50, 100].
        let counts = [0, 100, 0];
        assert_eq!(quantile_from_buckets(&bounds, &counts, 0.5), Some(75.0));
        assert_eq!(quantile_from_buckets(&bounds, &counts, 0.99), Some(99.5));
        assert_eq!(quantile_from_buckets(&bounds, &counts, 0.0), Some(50.0));
        assert_eq!(quantile_from_buckets(&bounds, &counts, 1.0), Some(100.0));
    }

    #[test]
    fn quantile_handles_overflow_and_empty() {
        let bounds = [50.0, 100.0];
        assert_eq!(quantile_from_buckets(&bounds, &[0, 0, 0], 0.5), None);
        // Everything overflowed: clamp to the last finite bound.
        assert_eq!(quantile_from_buckets(&bounds, &[0, 0, 10], 0.5), Some(100.0));
        // First bucket interpolates from zero.
        assert_eq!(quantile_from_buckets(&bounds, &[10, 0, 0], 0.5), Some(25.0));
    }

    #[test]
    fn quantile_edge_cases_empty_all_inf_and_single_bucket() {
        // A histogram with no finite bounds at all: only the +Inf bucket
        // exists. Zero mass is still `None`; any mass clamps to 0.0
        // because there is no finite bound to clamp to.
        assert_eq!(quantile_from_buckets(&[], &[0], 0.5), None);
        assert_eq!(quantile_from_buckets(&[], &[7], 0.5), Some(0.0));
        // All mass in the +Inf bucket: every quantile, including the
        // extremes, clamps to the last finite bound.
        let bounds = [10.0, 20.0, 40.0];
        let counts = [0, 0, 0, 9];
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(quantile_from_buckets(&bounds, &counts, q), Some(40.0), "q={q}");
        }
        // Single-bucket histogram: interpolation spans [0, bound].
        assert_eq!(quantile_from_buckets(&[8.0], &[4, 0], 0.0), Some(0.0));
        assert_eq!(quantile_from_buckets(&[8.0], &[4, 0], 0.25), Some(2.0));
        assert_eq!(quantile_from_buckets(&[8.0], &[4, 0], 0.5), Some(4.0));
        assert_eq!(quantile_from_buckets(&[8.0], &[4, 0], 1.0), Some(8.0));
        // Out-of-range q is clamped, not an error.
        assert_eq!(quantile_from_buckets(&[8.0], &[4, 0], -1.0), Some(0.0));
        assert_eq!(quantile_from_buckets(&[8.0], &[4, 0], 2.0), Some(8.0));
    }

    #[test]
    fn render_includes_every_series_type() {
        let reg = Registry::new();
        reg.counter("c_total", "a counter").add(3);
        reg.gauge("g", "a gauge").set(1.5);
        reg.histogram("h", "a histogram", &[1.0]).observe(0.5);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total 3"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("g 1.5"));
        assert!(text.contains("# TYPE h histogram"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("h_count 1"));
    }
}
