//! The merged span tree: per-path aggregation of raw [`SpanRecord`]s and
//! the human `--timings` rendering.

use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// One aggregated node of the span tree: every recorded span sharing a
/// path, regardless of thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Full `/`-joined path.
    pub path: String,
    /// Last path segment.
    pub name: String,
    /// How many spans were recorded at this path.
    pub count: u64,
    /// Summed wall time of those spans, nanoseconds. Sibling workers
    /// overlap in wall clock, so a parent's total can be smaller than the
    /// sum of its children.
    pub total_ns: u64,
    /// Earliest start among them (epoch-relative nanoseconds).
    pub first_start_ns: u64,
    /// Child nodes, ordered by first start time (ties by path).
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Mean wall time per span, nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns / self.count.max(1)
    }
}

/// The process-wide span tree, aggregated by path.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// Top-level nodes, ordered by first start time.
    pub roots: Vec<SpanNode>,
    /// Paths whose parent path was never recorded (should be empty; a
    /// non-empty list means a worker span outlived or missed its parent).
    pub orphans: Vec<String>,
}

impl SpanTree {
    /// Aggregates raw records into the merged tree.
    pub fn build(records: &[SpanRecord]) -> SpanTree {
        let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for r in records {
            let e = agg.entry(&r.path).or_insert((0, 0, u64::MAX));
            e.0 += 1;
            e.1 += r.dur_ns;
            e.2 = e.2.min(r.start_ns);
        }
        let mut nodes: BTreeMap<&str, SpanNode> = agg
            .into_iter()
            .map(|(path, (count, total_ns, first_start_ns))| {
                let name = path.rsplit('/').next().unwrap_or(path).to_string();
                (
                    path,
                    SpanNode {
                        path: path.to_string(),
                        name,
                        count,
                        total_ns,
                        first_start_ns,
                        children: Vec::new(),
                    },
                )
            })
            .collect();

        // Attach children to parents bottom-up: reverse-lexicographic
        // iteration visits every `a/b` before `a`.
        let paths: Vec<&str> = nodes.keys().rev().copied().collect();
        let mut roots = Vec::new();
        let mut orphans = Vec::new();
        for path in paths {
            let node = nodes.remove(path).expect("node exists");
            match path.rsplit_once('/') {
                None => roots.push(node),
                Some((parent, _)) => match nodes.get_mut(parent) {
                    Some(parent_node) => parent_node.children.push(node),
                    None => {
                        orphans.push(node.path.clone());
                        roots.push(node);
                    }
                },
            }
        }
        fn sort_rec(nodes: &mut Vec<SpanNode>) {
            nodes.sort_by(|a, b| {
                a.first_start_ns.cmp(&b.first_start_ns).then_with(|| a.path.cmp(&b.path))
            });
            for n in nodes {
                sort_rec(&mut n.children);
            }
        }
        sort_rec(&mut roots);
        orphans.sort();
        SpanTree { roots, orphans }
    }

    /// Every `(path, count)` pair in the tree, sorted by path — the
    /// deterministic structural fingerprint tests compare across runs.
    pub fn paths_and_counts(&self) -> Vec<(String, u64)> {
        fn walk(node: &SpanNode, out: &mut Vec<(String, u64)>) {
            out.push((node.path.clone(), node.count));
            for c in &node.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, &mut out);
        }
        out.sort();
        out
    }

    /// Renders the indented timing table (`--timings` output).
    pub fn render(&self) -> String {
        fn name_width(node: &SpanNode, depth: usize, w: &mut usize) {
            *w = (*w).max(2 * depth + node.name.len());
            for c in &node.children {
                name_width(c, depth + 1, w);
            }
        }
        fn walk(node: &SpanNode, depth: usize, width: usize, out: &mut String) {
            let label = format!("{:indent$}{}", "", node.name, indent = 2 * depth);
            out.push_str(&format!(
                "{label:<width$}  {:>7}  {:>12.3}  {:>12.3}\n",
                node.count,
                node.total_ns as f64 / 1e6,
                node.mean_ns() as f64 / 1e6,
            ));
            for c in &node.children {
                walk(c, depth + 1, width, out);
            }
        }
        let mut width = "span".len();
        for r in &self.roots {
            name_width(r, 0, &mut width);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<width$}  {:>7}  {:>12}  {:>12}\n",
            "span", "count", "total ms", "mean ms"
        ));
        for r in &self.roots {
            walk(r, 0, width, &mut out);
        }
        if !self.orphans.is_empty() {
            out.push_str(&format!("orphan spans: {}\n", self.orphans.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord { path: path.into(), start_ns: start, dur_ns: dur, tid: 0 }
    }

    #[test]
    fn aggregates_counts_and_orders_children_by_start() {
        let records = vec![
            rec("run", 0, 100),
            rec("run/late", 60, 10),
            rec("run/early", 10, 20),
            rec("run/early", 35, 20),
            rec("run/early/sub", 12, 5),
        ];
        let tree = SpanTree::build(&records);
        assert!(tree.orphans.is_empty());
        assert_eq!(tree.roots.len(), 1);
        let run = &tree.roots[0];
        assert_eq!((run.name.as_str(), run.count, run.total_ns), ("run", 1, 100));
        let names: Vec<&str> = run.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["early", "late"], "children ordered by first start time");
        assert_eq!(run.children[0].count, 2);
        assert_eq!(run.children[0].total_ns, 40);
        assert_eq!(run.children[0].mean_ns(), 20);
        assert_eq!(run.children[0].children[0].name, "sub");
        let fingerprint = tree.paths_and_counts();
        assert_eq!(
            fingerprint,
            vec![
                ("run".to_string(), 1),
                ("run/early".to_string(), 2),
                ("run/early/sub".to_string(), 1),
                ("run/late".to_string(), 1),
            ]
        );
    }

    #[test]
    fn missing_parent_is_reported_as_orphan() {
        let tree = SpanTree::build(&[rec("a/b/c", 0, 1), rec("a", 0, 5)]);
        assert_eq!(tree.orphans, vec!["a/b/c".to_string()]);
        // Still rendered, attached at the root level.
        assert_eq!(tree.roots.len(), 2);
    }

    #[test]
    fn render_contains_every_name_and_header() {
        let tree = SpanTree::build(&[rec("run", 0, 2_000_000), rec("run/step", 1, 1_000_000)]);
        let table = tree.render();
        assert!(table.starts_with("span"));
        assert!(table.contains("run"));
        assert!(table.contains("  step"), "children are indented: {table}");
        assert!(table.contains("2.000"));
    }
}
