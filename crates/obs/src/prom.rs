//! Prometheus text exposition format v0.0.4 rendering.
//!
//! [`PromText`] is an append-only writer: callers emit series in any
//! order; `# HELP` / `# TYPE` headers are written once per metric name
//! (the first help string wins), label values are escaped per the spec,
//! and histograms expand into cumulative `_bucket` series ending in
//! `le="+Inf"` plus `_sum` and `_count`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Incremental writer for Prometheus exposition text.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    typed: BTreeSet<String>,
}

/// Escapes a label value: backslash, double-quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP string: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way Prometheus expects: integral values without a
/// trailing `.0`, everything else via the shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

impl PromText {
    /// Creates an empty writer.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.typed.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name}{} {value}", fmt_labels(labels));
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name}{} {}", fmt_labels(labels), fmt_f64(value));
    }

    /// Emits one histogram: cumulative `_bucket` series per bound, the
    /// mandatory `le="+Inf"` bucket, then `_sum` and `_count`.
    ///
    /// `counts` are per-bucket (non-cumulative) and must have one more
    /// entry than `bounds` — the trailing overflow bucket.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        counts: &[u64],
        sum: f64,
    ) {
        assert_eq!(counts.len(), bounds.len() + 1, "counts must include +Inf bucket");
        self.header(name, help, "histogram");
        let mut cum = 0u64;
        for (i, &ub) in bounds.iter().enumerate() {
            cum += counts[i];
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le = fmt_f64(ub);
            with_le.push(("le", &le));
            let _ = writeln!(self.out, "{name}_bucket{} {cum}", fmt_labels(&with_le));
        }
        cum += counts[bounds.len()];
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        let _ = writeln!(self.out, "{name}_bucket{} {cum}", fmt_labels(&with_le));
        let _ = writeln!(self.out, "{name}_sum{} {}", fmt_labels(labels), fmt_f64(sum));
        let _ = writeln!(self.out, "{name}_count{} {cum}", fmt_labels(labels));
    }

    /// Returns the accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_type_emitted_once_per_name() {
        let mut t = PromText::new();
        t.counter("req_total", "requests", &[("ep", "a")], 1);
        t.counter("req_total", "requests", &[("ep", "b")], 2);
        let out = t.finish();
        assert_eq!(out.matches("# HELP req_total").count(), 1);
        assert_eq!(out.matches("# TYPE req_total counter").count(), 1);
        assert!(out.contains("req_total{ep=\"a\"} 1\n"));
        assert!(out.contains("req_total{ep=\"b\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut t = PromText::new();
        t.gauge("g", "with \\ and \"quotes\"\nnewline", &[("k", "a\\b\"c\nd")], 1.0);
        let out = t.finish();
        assert!(out.contains("# HELP g with \\\\ and \"quotes\"\\nnewline\n"));
        assert!(out.contains("g{k=\"a\\\\b\\\"c\\nd\"} 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let mut t = PromText::new();
        t.histogram("lat", "latency", &[], &[50.0, 100.0], &[2, 3, 1], 321.5);
        let out = t.finish();
        assert!(out.contains("# TYPE lat histogram"));
        assert!(out.contains("lat_bucket{le=\"50\"} 2\n"));
        assert!(out.contains("lat_bucket{le=\"100\"} 5\n"));
        assert!(out.contains("lat_bucket{le=\"+Inf\"} 6\n"));
        assert!(out.contains("lat_sum 321.5\n"));
        assert!(out.contains("lat_count 6\n"));
        // Bucket counts never decrease.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("lat_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_labels_compose_with_le() {
        let mut t = PromText::new();
        t.histogram("lat", "latency", &[("ep", "search")], &[1.0], &[1, 0], 0.5);
        let out = t.finish();
        assert!(out.contains("lat_bucket{ep=\"search\",le=\"1\"} 1\n"));
        assert!(out.contains("lat_bucket{ep=\"search\",le=\"+Inf\"} 1\n"));
        assert!(out.contains("lat_sum{ep=\"search\"} 0.5\n"));
        assert!(out.contains("lat_count{ep=\"search\"} 1\n"));
    }
}
