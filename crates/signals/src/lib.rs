//! Disproportionality-analysis baselines (thesis §1.2, §6).
//!
//! The statistical pharmacovigilance methods MARAS positions itself
//! against: relative reporting ratio, PRR, ROR, χ² (Tatonetti et al.,
//! Harpaz et al. — refs \[17\], \[26–28\]), plus an interaction-contrast score
//! for multi-drug signals. These serve as comparison baselines in the
//! benchmark harness and let the library double as a conventional
//! signal-detection toolkit.

#![warn(missing_docs)]

pub mod contingency;
pub mod disproportionality;
pub mod ebgm;
pub mod gamma;
pub mod ic;
pub mod interaction;
pub mod stratified;

pub use contingency::ContingencyTable;
pub use disproportionality::{
    chi_square_yates, evans_signal, prr, ror, rrr, ConfidenceInterval, SignalScores,
};
pub use ebgm::{ebgm, ebgm_from_table, EbgmScores, GammaMixturePrior};
pub use ic::{information_component, InformationComponent};
pub use interaction::{harpaz_rank, interaction_contrast, HarpazSignal};
pub use stratified::{crude_or, mantel_haenszel_or, mantel_haenszel_rr};
