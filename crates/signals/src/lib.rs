//! Disproportionality-analysis baselines (thesis §1.2, §6).
//!
//! The statistical pharmacovigilance methods MARAS positions itself
//! against: relative reporting ratio, PRR, ROR, χ² (Tatonetti et al.,
//! Harpaz et al. — refs \[17\], \[26–28\]), plus an interaction-contrast score
//! for multi-drug signals. The [`engine`] module bundles every measure into
//! one batch scoring pass over mined rules, fed straight from each rule's
//! stored tid-list marginals; `maras-core` runs it on every ranked rule and
//! the snapshot/server layers carry the resulting [`SignalScores`] block to
//! clients.

#![warn(missing_docs)]

pub mod contingency;
pub mod disproportionality;
pub mod ebgm;
pub mod engine;
pub mod gamma;
pub mod ic;
pub mod interaction;
pub mod metrics;
pub mod stratified;

pub use contingency::{ContingencyError, ContingencyTable};
pub use disproportionality::{
    chi_square_yates, evans_signal, prr, ror, rrr, ConfidenceInterval, SignalScores,
};
pub use ebgm::{ebgm, ebgm_from_table, EbgmScores, GammaMixturePrior};
pub use engine::{score_rule, score_rules};
pub use ic::{information_component, InformationComponent};
pub use interaction::{harpaz_rank, interaction_contrast, HarpazSignal};
pub use metrics::SignalsMetrics;
pub use stratified::{crude_or, mantel_haenszel_or, mantel_haenszel_rr};
