//! The 2×2 contingency table all disproportionality measures derive from.

use maras_mining::{ItemSet, TransactionDb};
use maras_rules::RuleStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Inconsistent marginal counts handed to [`ContingencyTable::from_supports`].
///
/// The cells of a 2×2 table are derived from the marginals by
/// inclusion–exclusion; counts that could not have come from one report set
/// (a joint support exceeding a marginal, or margins whose union exceeds the
/// total) would silently wrap the unsigned subtraction, so they are rejected
/// with a typed error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContingencyError {
    /// `joint` exceeds the exposure or event marginal.
    JointExceedsMarginal {
        /// Joint support `|A ∩ B|`.
        joint: u64,
        /// Exposure marginal `|A|`.
        exposed: u64,
        /// Event marginal `|B|`.
        event: u64,
    },
    /// The union `exposed + event − joint` exceeds the total `n` (this also
    /// covers a single marginal exceeding `n`).
    UnionExceedsTotal {
        /// Joint support `|A ∩ B|`.
        joint: u64,
        /// Exposure marginal `|A|`.
        exposed: u64,
        /// Event marginal `|B|`.
        event: u64,
        /// Total report count.
        n: u64,
    },
}

impl fmt::Display for ContingencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContingencyError::JointExceedsMarginal { joint, exposed, event } => write!(
                f,
                "joint support {joint} exceeds a marginal (exposed={exposed}, event={event})"
            ),
            ContingencyError::UnionExceedsTotal { joint, exposed, event, n } => write!(
                f,
                "union {} of exposed={exposed} and event={event} (joint={joint}) \
                 exceeds total n={n}",
                (*exposed as u128 + *event as u128) - *joint as u128
            ),
        }
    }
}

impl std::error::Error for ContingencyError {}

/// Report counts cross-classified by exposure (the drug set) and event (the
/// ADR set):
///
/// |            | event    | no event |
/// |------------|----------|----------|
/// | exposed    | `a`      | `b`      |
/// | unexposed  | `c`      | `d`      |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContingencyTable {
    /// Exposed with the event.
    pub a: u64,
    /// Exposed without the event.
    pub b: u64,
    /// Unexposed with the event.
    pub c: u64,
    /// Unexposed without the event.
    pub d: u64,
}

impl ContingencyTable {
    /// Builds a table from marginal counts: joint support, exposure support,
    /// event support, and the total report count.
    ///
    /// # Errors
    /// Returns a [`ContingencyError`] if the counts are inconsistent
    /// (`joint` exceeding a marginal, or the margins' union exceeding `n`) —
    /// in release builds too, where the subtraction would otherwise wrap.
    pub fn from_supports(
        joint: u64,
        exposed: u64,
        event: u64,
        n: u64,
    ) -> Result<Self, ContingencyError> {
        if joint > exposed || joint > event {
            return Err(ContingencyError::JointExceedsMarginal { joint, exposed, event });
        }
        // Inclusion–exclusion: |A ∪ B| = exposed + event − joint must fit in
        // n, otherwise `d` underflows. Widened to u128 so the check itself
        // cannot overflow.
        if exposed as u128 + event as u128 > n as u128 + joint as u128 {
            return Err(ContingencyError::UnionExceedsTotal { joint, exposed, event, n });
        }
        Ok(ContingencyTable {
            a: joint,
            b: exposed - joint,
            c: event - joint,
            d: ((n as u128 + joint as u128) - exposed as u128 - event as u128) as u64,
        })
    }

    /// Builds the table straight from a rule's stored marginals — the O(1)
    /// path the [`crate::engine`] batch scorer runs on. The stats carry
    /// exactly the tid-list intersection counts the miner established, so no
    /// database pass is needed.
    pub fn from_stats(stats: &RuleStats) -> Result<Self, ContingencyError> {
        Self::from_supports(
            stats.support_ab,
            stats.support_a,
            stats.support_b,
            stats.n_transactions,
        )
    }

    /// Counts the table for a drug set and ADR set directly from the
    /// transaction database.
    pub fn from_db(db: &TransactionDb, drugs: &ItemSet, adrs: &ItemSet) -> Self {
        let joint = db.support(&drugs.union(adrs)) as u64;
        let exposed = db.support(drugs) as u64;
        let event = db.support(adrs) as u64;
        Self::from_supports(joint, exposed, event, db.len() as u64)
            .expect("supports counted from one database are consistent")
    }

    /// Total number of reports.
    pub fn n(&self) -> u64 {
        self.a + self.b + self.c + self.d
    }

    /// Exposed margin `a + b`.
    pub fn exposed(&self) -> u64 {
        self.a + self.b
    }

    /// Event margin `a + c`.
    pub fn event(&self) -> u64 {
        self.a + self.c
    }

    /// Expected count in cell `a` under independence.
    pub fn expected_a(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            return 0.0;
        }
        self.exposed() as f64 * self.event() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::Item;

    #[test]
    fn from_supports_partitions_n() {
        let t = ContingencyTable::from_supports(10, 40, 25, 1000).unwrap();
        assert_eq!(t.a, 10);
        assert_eq!(t.b, 30);
        assert_eq!(t.c, 15);
        assert_eq!(t.d, 945);
        assert_eq!(t.n(), 1000);
        assert_eq!(t.exposed(), 40);
        assert_eq!(t.event(), 25);
    }

    #[test]
    fn expected_under_independence() {
        let t = ContingencyTable::from_supports(10, 100, 50, 1000).unwrap();
        assert!((t.expected_a() - 5.0).abs() < 1e-12);
        let empty = ContingencyTable::from_supports(0, 0, 0, 0).unwrap();
        assert_eq!(empty.expected_a(), 0.0);
    }

    #[test]
    fn inconsistent_supports_are_typed_errors() {
        // Joint above a marginal.
        assert_eq!(
            ContingencyTable::from_supports(50, 40, 60, 1000),
            Err(ContingencyError::JointExceedsMarginal { joint: 50, exposed: 40, event: 60 })
        );
        assert_eq!(
            ContingencyTable::from_supports(50, 60, 40, 1000),
            Err(ContingencyError::JointExceedsMarginal { joint: 50, exposed: 60, event: 40 })
        );
        // Margins whose union exceeds n — the case that used to wrap `d`
        // in release builds.
        assert_eq!(
            ContingencyTable::from_supports(0, 60, 60, 100),
            Err(ContingencyError::UnionExceedsTotal { joint: 0, exposed: 60, event: 60, n: 100 })
        );
        // A single marginal above n is the same inconsistency.
        assert!(ContingencyTable::from_supports(0, 2000, 0, 1000).is_err());
        // Errors render without panicking.
        let e = ContingencyTable::from_supports(0, 60, 60, 100).unwrap_err();
        assert!(e.to_string().contains("exceeds total"), "{e}");
    }

    #[test]
    fn boundary_supports_are_accepted() {
        // Union exactly fills n.
        let t = ContingencyTable::from_supports(10, 60, 50, 100).unwrap();
        assert_eq!(t.d, 0);
        // Joint equals both marginals.
        let t = ContingencyTable::from_supports(5, 5, 5, 5).unwrap();
        assert_eq!((t.a, t.b, t.c, t.d), (5, 0, 0, 0));
    }

    #[test]
    fn from_stats_matches_from_supports() {
        let stats =
            RuleStats { support_ab: 10, support_a: 40, support_b: 25, n_transactions: 1000 };
        assert_eq!(
            ContingencyTable::from_stats(&stats).unwrap(),
            ContingencyTable::from_supports(10, 40, 25, 1000).unwrap()
        );
    }

    #[test]
    fn from_db_counts_match_manual() {
        let db = TransactionDb::new(vec![
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(10)],
            vec![Item(1), Item(2)],
            vec![Item(3), Item(11)],
        ]);
        let drugs = ItemSet::from_ids([0u32, 1]);
        let adrs = ItemSet::from_ids([10u32]);
        let t = ContingencyTable::from_db(&db, &drugs, &adrs);
        assert_eq!(t.a, 2); // both reports with {0,1,10}
        assert_eq!(t.b, 0); // {0,1} never without 10
        assert_eq!(t.c, 1); // {0,10} has the event without full exposure
        assert_eq!(t.d, 2);
    }
}
