//! The 2×2 contingency table all disproportionality measures derive from.

use maras_mining::{ItemSet, TransactionDb};
use serde::{Deserialize, Serialize};

/// Report counts cross-classified by exposure (the drug set) and event (the
/// ADR set):
///
/// |            | event    | no event |
/// |------------|----------|----------|
/// | exposed    | `a`      | `b`      |
/// | unexposed  | `c`      | `d`      |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContingencyTable {
    /// Exposed with the event.
    pub a: u64,
    /// Exposed without the event.
    pub b: u64,
    /// Unexposed with the event.
    pub c: u64,
    /// Unexposed without the event.
    pub d: u64,
}

impl ContingencyTable {
    /// Builds a table from marginal counts: joint support, exposure support,
    /// event support, and the total report count.
    ///
    /// # Panics
    /// Panics (debug) if the counts are inconsistent (`joint` exceeding a
    /// marginal, or marginals exceeding `n`).
    pub fn from_supports(joint: u64, exposed: u64, event: u64, n: u64) -> Self {
        debug_assert!(joint <= exposed && joint <= event);
        debug_assert!(exposed <= n && event <= n);
        ContingencyTable {
            a: joint,
            b: exposed - joint,
            c: event - joint,
            // Ordered to avoid intermediate underflow: n + joint ≥ exposed + event
            // by inclusion–exclusion.
            d: n + joint - exposed - event,
        }
    }

    /// Counts the table for a drug set and ADR set directly from the
    /// transaction database.
    pub fn from_db(db: &TransactionDb, drugs: &ItemSet, adrs: &ItemSet) -> Self {
        let joint = db.support(&drugs.union(adrs)) as u64;
        let exposed = db.support(drugs) as u64;
        let event = db.support(adrs) as u64;
        Self::from_supports(joint, exposed, event, db.len() as u64)
    }

    /// Total number of reports.
    pub fn n(&self) -> u64 {
        self.a + self.b + self.c + self.d
    }

    /// Exposed margin `a + b`.
    pub fn exposed(&self) -> u64 {
        self.a + self.b
    }

    /// Event margin `a + c`.
    pub fn event(&self) -> u64 {
        self.a + self.c
    }

    /// Expected count in cell `a` under independence.
    pub fn expected_a(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            return 0.0;
        }
        self.exposed() as f64 * self.event() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::Item;

    #[test]
    fn from_supports_partitions_n() {
        let t = ContingencyTable::from_supports(10, 40, 25, 1000);
        assert_eq!(t.a, 10);
        assert_eq!(t.b, 30);
        assert_eq!(t.c, 15);
        assert_eq!(t.d, 945);
        assert_eq!(t.n(), 1000);
        assert_eq!(t.exposed(), 40);
        assert_eq!(t.event(), 25);
    }

    #[test]
    fn expected_under_independence() {
        let t = ContingencyTable::from_supports(10, 100, 50, 1000);
        assert!((t.expected_a() - 5.0).abs() < 1e-12);
        let empty = ContingencyTable::from_supports(0, 0, 0, 0);
        assert_eq!(empty.expected_a(), 0.0);
    }

    #[test]
    fn from_db_counts_match_manual() {
        let db = TransactionDb::new(vec![
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(10)],
            vec![Item(1), Item(2)],
            vec![Item(3), Item(11)],
        ]);
        let drugs = ItemSet::from_ids([0u32, 1]);
        let adrs = ItemSet::from_ids([10u32]);
        let t = ContingencyTable::from_db(&db, &drugs, &adrs);
        assert_eq!(t.a, 2); // both reports with {0,1,10}
        assert_eq!(t.b, 0); // {0,1} never without 10
        assert_eq!(t.c, 1); // {0,10} has the event without full exposure
        assert_eq!(t.d, 2);
    }
}
