//! The batch score engine: one parallel pass deriving every rule's full
//! disproportionality block from its stored tid-list marginals.
//!
//! The legacy path re-derived each rule's 2×2 table with three
//! [`TransactionDb::support`] scans per rule
//! ([`ContingencyTable::from_db`]), then called each measure separately —
//! O(rules × |DB|) across a ranking pass. Every mined [`DrugAdrRule`]
//! already carries its exact marginals in [`maras_rules::RuleStats`],
//! established once by the miner's compressed tid-set intersections
//! (hybrid array/bitmap kernels from `maras-tidset`), so the table is
//! an O(1) inclusion–exclusion rearrangement ([`ContingencyTable::from_stats`])
//! and the only remaining database probes are the per-constituent-drug
//! lookups the interaction contrast needs. The differential suite in
//! `tests/signals_differential.rs` proves the tables and every score
//! bit-identical to the legacy per-rule path at 1/2/4 threads.

use crate::contingency::ContingencyTable;
use crate::disproportionality::SignalScores;
use crate::metrics::SignalsMetrics;
use maras_mining::TransactionDb;
use maras_rules::DrugAdrRule;
use std::time::Instant;

/// Scores every rule in one pass, sharded across `n_threads` workers
/// (clamped to ≥ 1). Output order matches input order and is identical at
/// every thread count — worker `w` takes the rules whose index is
/// `≡ w (mod n_threads)` and the shards merge back by index.
pub fn score_rules(
    db: &TransactionDb,
    rules: &[DrugAdrRule],
    n_threads: usize,
) -> Vec<SignalScores> {
    let n_threads = n_threads.max(1);
    let metrics = SignalsMetrics::global();
    let started = Instant::now();
    let score_span = maras_obs::span("signals");
    let out = if n_threads == 1 || rules.len() < 2 {
        rules.iter().map(|r| score_rule(db, r)).collect()
    } else {
        score_sharded(db, rules, n_threads)
    };
    drop(score_span);
    metrics.rules_scored.add(rules.len() as u64);
    metrics.batches.inc();
    metrics.batch_us.observe(started.elapsed().as_micros() as f64);
    metrics.threads.set(n_threads as f64);
    out
}

fn score_sharded(db: &TransactionDb, rules: &[DrugAdrRule], n_threads: usize) -> Vec<SignalScores> {
    let parent = maras_obs::current_path().unwrap_or_default();
    let parent = &parent;
    let shards: Vec<Vec<(usize, SignalScores)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                scope.spawn(move || {
                    let _shard = maras_obs::span_under(parent, "shard");
                    rules
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| idx % n_threads == w)
                        .map(|(idx, rule)| (idx, score_rule(db, rule)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scorer thread panicked")).collect()
    });
    let mut out: Vec<Option<SignalScores>> = vec![None; rules.len()];
    for shard in shards {
        for (idx, scores) in shard {
            out[idx] = Some(scores);
        }
    }
    out.into_iter().map(|s| s.expect("every rule index scored exactly once")).collect()
}

/// Scores one rule: the table-derived measures from its stored marginals,
/// plus the interaction contrast for multi-drug rules. The exclusiveness
/// slot stays 0 here — it needs the rule's contextual cluster, which
/// `maras-mcac` attaches during ranking.
pub fn score_rule(db: &TransactionDb, rule: &DrugAdrRule) -> SignalScores {
    let table =
        ContingencyTable::from_stats(&rule.stats).expect("miner-derived rule stats are consistent");
    let base = SignalScores::from_table(table);
    if !rule.is_multi_drug() {
        return base;
    }
    base.with_interaction(interaction_from_stats(db, rule))
}

/// Interaction contrast from the rule's stored joint/antecedent supports
/// plus one tid-list probe per constituent drug.
///
/// This reproduces [`crate::interaction::interaction_contrast`] bit for bit:
/// the stored `support_ab`/`support_a` are the same integers that function
/// re-derives with two `db.support` scans, so the combo term divides
/// identical `f64` values, and the per-drug terms run the same lookups in
/// the same (sorted) drug order with the same `fold(0.0, f64::max)`.
fn interaction_from_stats(db: &TransactionDb, rule: &DrugAdrRule) -> f64 {
    let n = db.len().max(1) as f64;
    let s = 0.5 / n;
    let p_combo = if rule.stats.support_a == 0 {
        0.0
    } else {
        rule.stats.support_ab as f64 / rule.stats.support_a as f64
    };
    let adrs = rule.adrs.items();
    let p_best_single = rule
        .drugs
        .items()
        .iter()
        .map(|&d| {
            let single = [d];
            let exposed = db.support_of(&single) as f64;
            if exposed == 0.0 {
                0.0
            } else {
                db.support_of_union(&single, adrs) as f64 / exposed
            }
        })
        .fold(0.0f64, f64::max);
    ((p_combo + s) / (p_best_single + s)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::interaction_contrast;
    use maras_mining::Item;
    use maras_rules::{multi_drug_rules, ItemPartition};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    const P: ItemPartition = ItemPartition { adr_start: 10 };

    fn example_db() -> TransactionDb {
        db(&[
            &[0, 1, 10],
            &[0, 1, 10],
            &[0, 1, 11],
            &[0, 2, 10],
            &[1, 2, 11],
            &[2, 10],
            &[3, 11],
            &[0, 10],
            &[1, 10],
            &[2, 3, 10, 11],
        ])
    }

    #[test]
    fn engine_matches_legacy_per_rule_path() {
        let d = example_db();
        let rules = multi_drug_rules(&d, &P, 1);
        assert!(!rules.is_empty());
        let scored = score_rules(&d, &rules, 1);
        assert_eq!(scored.len(), rules.len());
        for (rule, got) in rules.iter().zip(&scored) {
            let table = ContingencyTable::from_db(&d, &rule.drugs, &rule.adrs);
            let want = SignalScores::from_table(table).with_interaction(interaction_contrast(
                &d,
                &rule.drugs,
                &rule.adrs,
            ));
            assert_eq!(got, &want, "rule {rule}");
        }
    }

    #[test]
    fn thread_count_does_not_change_scores() {
        let d = example_db();
        let rules = multi_drug_rules(&d, &P, 1);
        let baseline = score_rules(&d, &rules, 1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(score_rules(&d, &rules, threads), baseline, "threads={threads}");
        }
        // More workers than rules must still cover every index.
        let two = &rules[..2.min(rules.len())];
        assert_eq!(score_rules(&d, two, 8), score_rules(&d, two, 1));
    }

    #[test]
    fn empty_batch_is_fine() {
        let d = example_db();
        assert!(score_rules(&d, &[], 4).is_empty());
    }

    #[test]
    fn single_drug_rules_get_zero_interaction() {
        let d = example_db();
        let single = maras_rules::DrugAdrRule::from_split_slices(&[Item(0)], &[Item(10)], &d);
        let scored = score_rules(&d, std::slice::from_ref(&single), 1);
        assert_eq!(scored[0].interaction, 0.0);
        assert!(scored[0].prr.estimate > 0.0);
    }
}
