//! DuMouchel's Multi-item Gamma Poisson Shrinker (MGPS) — the empirical-
//! Bayes method behind the FDA's own FAERS screening and the thesis's
//! ref. \[12\] (Fram, Almenoff & DuMouchel, KDD'03).
//!
//! Model: the observed count `N` of a (drug set, ADR) pair is Poisson with
//! mean `λ·E`, where `E` is the expected count under independence and the
//! relative-reporting ratio `λ` has a two-component gamma mixture prior.
//! The posterior is again a gamma mixture (conjugacy), giving closed forms
//! for the shrunken geometric mean **EBGM = 2^{E[log₂ λ]}** and the
//! posterior quantiles **EB05 / EB95** used as signal thresholds
//! (EB05 ≥ 2 is the conventional criterion).
//!
//! The prior defaults are DuMouchel's published FAERS fit
//! (α₁=0.2, β₁=0.1, α₂=2, β₂=4, w=1/3); fitting the prior by maximum
//! likelihood is out of scope — the defaults are what production MGPS
//! deployments commonly start from.

use crate::contingency::ContingencyTable;
use crate::gamma::{digamma, gamma_p, gamma_quantile, ln_gamma};
use serde::{Deserialize, Serialize};

/// Two-component gamma mixture prior on the reporting ratio λ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaMixturePrior {
    /// Shape of component 1.
    pub alpha1: f64,
    /// Rate of component 1.
    pub beta1: f64,
    /// Shape of component 2.
    pub alpha2: f64,
    /// Rate of component 2.
    pub beta2: f64,
    /// Mixing weight of component 1.
    pub w: f64,
}

impl Default for GammaMixturePrior {
    fn default() -> Self {
        // DuMouchel (1999) FAERS prior.
        GammaMixturePrior { alpha1: 0.2, beta1: 0.1, alpha2: 2.0, beta2: 4.0, w: 1.0 / 3.0 }
    }
}

/// The shrunken signal scores for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EbgmScores {
    /// Posterior geometric mean of λ.
    pub ebgm: f64,
    /// 5th posterior percentile (the screening threshold statistic).
    pub eb05: f64,
    /// 95th posterior percentile.
    pub eb95: f64,
    /// Posterior weight of the first (null-ish) component.
    pub posterior_w1: f64,
}

impl EbgmScores {
    /// The conventional MGPS signal criterion: `EB05 ≥ 2`.
    pub fn is_signal(&self) -> bool {
        self.eb05 >= 2.0
    }
}

/// Log marginal likelihood of observing `n` under prior component
/// `(alpha, beta)` with expectation `e` — a negative binomial.
fn ln_marginal(n: f64, e: f64, alpha: f64, beta: f64) -> f64 {
    // P(N=n) = Γ(α+n)/(Γ(α) n!) · (β/(β+E))^α · (E/(β+E))^n
    ln_gamma(alpha + n) - ln_gamma(alpha) - ln_gamma(n + 1.0)
        + alpha * (beta / (beta + e)).ln()
        + n * (e / (beta + e)).ln()
}

/// Computes the MGPS scores for an observed count `n` with expectation `e`.
///
/// `e` is clamped to a small positive floor (an all-zero margin means no
/// information, not infinite signal).
pub fn ebgm(n: u64, e: f64, prior: &GammaMixturePrior) -> EbgmScores {
    let n = n as f64;
    let e = e.max(1e-9);

    // Posterior component parameters (gamma-Poisson conjugacy).
    let a1 = prior.alpha1 + n;
    let b1 = prior.beta1 + e;
    let a2 = prior.alpha2 + n;
    let b2 = prior.beta2 + e;

    // Posterior mixture weight via marginal likelihoods.
    let l1 = ln_marginal(n, e, prior.alpha1, prior.beta1) + prior.w.ln();
    let l2 = ln_marginal(n, e, prior.alpha2, prior.beta2) + (1.0 - prior.w).ln();
    let m = l1.max(l2);
    let w1 = ((l1 - m).exp()) / ((l1 - m).exp() + (l2 - m).exp());

    // E[ln λ] for a Gamma(a, b) is ψ(a) − ln b.
    let e_ln = w1 * (digamma(a1) - b1.ln()) + (1.0 - w1) * (digamma(a2) - b2.ln());
    let ebgm = e_ln.exp();

    // Quantiles of the posterior mixture via bisection on its CDF.
    let cdf = |x: f64| -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        w1 * gamma_p(a1, x * b1) + (1.0 - w1) * gamma_p(a2, x * b2)
    };
    let quantile = |p: f64| -> f64 {
        // Bracket using the wider component quantile.
        let hi0 = gamma_quantile(0.999, a1, b1).max(gamma_quantile(0.999, a2, b2));
        let mut lo = 0.0;
        let mut hi = hi0.max(1e-9);
        while cdf(hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-10 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    };

    EbgmScores { ebgm, eb05: quantile(0.05), eb95: quantile(0.95), posterior_w1: w1 }
}

/// Convenience: MGPS scores straight from a 2×2 table (`n` = observed joint
/// count, `e` = expected under independence).
pub fn ebgm_from_table(t: &ContingencyTable, prior: &GammaMixturePrior) -> EbgmScores {
    ebgm(t.a, t.expected_a(), prior)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_prior() -> GammaMixturePrior {
        GammaMixturePrior::default()
    }

    #[test]
    fn strong_evidence_converges_to_observed_ratio() {
        // N=200, E=20: the data overwhelm the prior; EBGM ≈ 10.
        let s = ebgm(200, 20.0, &default_prior());
        assert!((s.ebgm - 10.0).abs() < 1.0, "ebgm={}", s.ebgm);
        assert!(s.eb05 < s.ebgm && s.ebgm < s.eb95);
        assert!(s.is_signal());
    }

    #[test]
    fn weak_evidence_is_shrunk_hard() {
        // N=1, E=0.1 — crude RR = 10, but one report cannot sustain that.
        let s = ebgm(1, 0.1, &default_prior());
        assert!(s.ebgm < 6.0, "shrinkage too weak: {}", s.ebgm);
        assert!(!s.is_signal() || s.eb05 < 3.0, "one report must not be a strong signal");
        // Compare against the strong-evidence case with the same crude RR.
        let strong = ebgm(100, 10.0, &default_prior());
        assert!(strong.ebgm > s.ebgm);
        assert!(strong.eb05 > s.eb05);
    }

    #[test]
    fn null_pair_scores_near_one() {
        // Observed equals expected: λ ≈ 1.
        let s = ebgm(50, 50.0, &default_prior());
        assert!((s.ebgm - 1.0).abs() < 0.2, "ebgm={}", s.ebgm);
        assert!(!s.is_signal());
    }

    #[test]
    fn zero_count_is_finite_and_small() {
        let s = ebgm(0, 5.0, &default_prior());
        assert!(s.ebgm.is_finite() && s.ebgm < 1.0);
        assert!(s.eb05 >= 0.0);
        assert!(!s.is_signal());
    }

    #[test]
    fn quantiles_bracket_and_order() {
        for (n, e) in [(3u64, 0.5), (10, 2.0), (40, 4.0), (7, 7.0)] {
            let s = ebgm(n, e, &default_prior());
            assert!(s.eb05 <= s.ebgm + 1e-9, "n={n} e={e}: {s:?}");
            assert!(s.ebgm <= s.eb95 + 1e-9, "n={n} e={e}: {s:?}");
            assert!((0.0..=1.0).contains(&s.posterior_w1));
        }
    }

    #[test]
    fn posterior_weight_tracks_evidence() {
        // A clearly elevated pair should favour the diffuse component less
        // than a null pair does... direction depends on parameterization;
        // the robust property: weights differ and stay in (0,1).
        let elevated = ebgm(60, 6.0, &default_prior());
        let null = ebgm(6, 6.0, &default_prior());
        assert!((elevated.posterior_w1 - null.posterior_w1).abs() > 1e-3);
    }

    #[test]
    fn from_table_matches_direct_call() {
        let t = ContingencyTable { a: 25, b: 75, c: 50, d: 850 };
        let a = ebgm_from_table(&t, &default_prior());
        let b = ebgm(25, t.expected_a(), &default_prior());
        assert_eq!(a, b);
        // This textbook table is a real signal under MGPS too.
        assert!(a.is_signal(), "{a:?}");
    }

    #[test]
    fn ebgm_is_monotone_in_observed_count() {
        let prior = default_prior();
        let scores: Vec<f64> =
            [1u64, 3, 10, 30, 100].iter().map(|&n| ebgm(n, 2.0, &prior).ebgm).collect();
        assert!(scores.windows(2).all(|w| w[0] < w[1]), "{scores:?}");
    }
}
