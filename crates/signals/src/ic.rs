//! The Bayesian Information Component (IC) of the WHO/UMC BCPNN method
//! (Bate et al., 1998) — the measure VigiBase screening runs on, and thus
//! the method behind the WHO newsletter study that validated the thesis's
//! Case I (Ibuprofen + Metamizole, §5.4).
//!
//! `IC = log₂ P(drug, adr) / (P(drug)·P(adr))` with Bayesian shrinkage: the
//! standard credibility-interval approximation uses expected counts
//!
//! `IC₀₂₅ ≈ log₂ (a + 0.5) / (E + 0.5) − 3.3·(a+0.5)^(−1/2) − 2·(a+0.5)^(−3/2)`
//!
//! (Norén et al.'s widely-used closed form), where `E` is the expected
//! joint count under independence. A positive lower bound (`ic025 > 0`) is
//! the conventional signal criterion.

use crate::contingency::ContingencyTable;
use serde::{Deserialize, Serialize};

/// The shrunken information component with its 95% credibility bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InformationComponent {
    /// Shrunken point estimate `log₂((a+0.5)/(E+0.5))`.
    pub ic: f64,
    /// Lower 2.5% credibility bound.
    pub ic025: f64,
    /// Upper 97.5% credibility bound.
    pub ic975: f64,
}

impl InformationComponent {
    /// The conventional BCPNN signal criterion: the credibility interval's
    /// lower bound is above zero.
    pub fn is_signal(&self) -> bool {
        self.ic025 > 0.0
    }
}

/// Computes the shrunken IC from a 2×2 table.
pub fn information_component(t: &ContingencyTable) -> InformationComponent {
    let a = t.a as f64;
    let expected = t.expected_a();
    let ic = ((a + 0.5) / (expected + 0.5)).log2();
    // Norén's closed-form credibility approximation.
    let s = a + 0.5;
    let half_width_lo = 3.3 * s.powf(-0.5) + 2.0 * s.powf(-1.5);
    let half_width_hi = 2.4 * s.powf(-0.5) + 0.5 * s.powf(-1.5);
    InformationComponent { ic, ic025: ic - half_width_lo, ic975: ic + half_width_hi }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_signal_positive_ic() {
        // a=25 observed vs E=7.5 expected.
        let t = ContingencyTable { a: 25, b: 75, c: 50, d: 850 };
        let ic = information_component(&t);
        let expect = (25.5f64 / 8.0).log2();
        assert!((ic.ic - expect).abs() < 1e-12);
        assert!(ic.is_signal(), "ic025 = {}", ic.ic025);
        assert!(ic.ic025 < ic.ic && ic.ic < ic.ic975);
    }

    #[test]
    fn independence_ic_near_zero() {
        let t = ContingencyTable::from_supports(10, 100, 100, 1000).unwrap();
        let ic = information_component(&t);
        assert!(ic.ic.abs() < 0.1, "{}", ic.ic);
        assert!(!ic.is_signal());
    }

    #[test]
    fn zero_count_is_shrunken_not_degenerate() {
        let t = ContingencyTable { a: 0, b: 100, c: 100, d: 800 };
        let ic = information_component(&t);
        assert!(ic.ic.is_finite());
        assert!(ic.ic < 0.0);
        assert!(!ic.is_signal());
    }

    #[test]
    fn small_counts_cannot_signal() {
        // Even a 'perfect' association with a=1 must not fire: shrinkage
        // dominates — the whole point of the Bayesian variant.
        let t = ContingencyTable { a: 1, b: 0, c: 0, d: 999 };
        let ic = information_component(&t);
        assert!(!ic.is_signal(), "ic025={}", ic.ic025);
    }

    #[test]
    fn width_shrinks_with_count() {
        let narrow = information_component(&ContingencyTable { a: 400, b: 600, c: 100, d: 900 });
        let wide = information_component(&ContingencyTable { a: 4, b: 6, c: 100, d: 900 });
        assert!(
            (narrow.ic975 - narrow.ic025) < (wide.ic975 - wide.ic025),
            "credibility interval must tighten with evidence"
        );
    }
}
