//! Mantel–Haenszel stratified estimators.
//!
//! Crude disproportionality confounds with demographics: an ADR reported
//! mostly by elderly patients co-occurs with every drug the elderly take
//! (Simpson's paradox). Regulatory practice stratifies the 2×2 table by
//! age band / sex and pools with the Mantel–Haenszel estimators:
//!
//! * `OR_MH = Σᵢ(aᵢdᵢ/nᵢ) / Σᵢ(bᵢcᵢ/nᵢ)`
//! * `RR_MH = Σᵢ aᵢ(cᵢ+dᵢ)/nᵢ / Σᵢ cᵢ(aᵢ+bᵢ)/nᵢ`
//!
//! Strata arrive as plain [`ContingencyTable`]s, so any partitioning of the
//! report set (age, sex, country, quarter) plugs in; `maras-core` supplies
//! the demographic partitioner.

use crate::contingency::ContingencyTable;

/// Mantel–Haenszel pooled odds ratio over strata.
///
/// Degenerate strata (nᵢ = 0) contribute nothing; if the pooled denominator
/// is 0 the estimate is `INFINITY` when any numerator mass exists, else 0.
pub fn mantel_haenszel_or(strata: &[ContingencyTable]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for t in strata {
        let n = t.n() as f64;
        if n == 0.0 {
            continue;
        }
        num += (t.a as f64) * (t.d as f64) / n;
        den += (t.b as f64) * (t.c as f64) / n;
    }
    ratio(num, den)
}

/// Mantel–Haenszel pooled risk (reporting) ratio over strata.
pub fn mantel_haenszel_rr(strata: &[ContingencyTable]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for t in strata {
        let n = t.n() as f64;
        if n == 0.0 {
            continue;
        }
        num += (t.a as f64) * ((t.c + t.d) as f64) / n;
        den += (t.c as f64) * ((t.a + t.b) as f64) / n;
    }
    ratio(num, den)
}

/// Crude (unstratified) odds ratio of the collapsed table, for contrast.
pub fn crude_or(strata: &[ContingencyTable]) -> f64 {
    let mut total = ContingencyTable { a: 0, b: 0, c: 0, d: 0 };
    for t in strata {
        total.a += t.a;
        total.b += t.b;
        total.c += t.c;
        total.d += t.d;
    }
    ratio((total.a * total.d) as f64, (total.b * total.c) as f64)
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stratum_equals_crude() {
        let t = ContingencyTable { a: 25, b: 75, c: 50, d: 850 };
        let strata = [t];
        assert!((mantel_haenszel_or(&strata) - crude_or(&strata)).abs() < 1e-12);
        // OR = 25*850 / (75*50)
        assert!((mantel_haenszel_or(&strata) - 21250.0 / 3750.0).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_strata_pool_to_common_or() {
        // Two strata, both with true OR = 4.
        let s1 = ContingencyTable { a: 40, b: 10, c: 50, d: 50 };
        let s2 = ContingencyTable { a: 8, b: 2, c: 10, d: 10 };
        let or = mantel_haenszel_or(&[s1, s2]);
        assert!((or - 4.0).abs() < 1e-9, "{or}");
    }

    #[test]
    fn simpsons_paradox_is_corrected() {
        // Classic confounding construction: within each age stratum the
        // drug has NO effect (ORᵢ = 1), but the old stratum has both more
        // exposure and more events, so the crude OR looks elevated.
        let young = ContingencyTable { a: 10, b: 990, c: 10, d: 990 }; // 1% event rate
        let old = ContingencyTable { a: 200, b: 300, c: 40, d: 60 }; // 40% event, 5x exposure
        let crude = crude_or(&[young, old]);
        let adjusted = mantel_haenszel_or(&[young, old]);
        assert!(crude > 2.0, "confounded crude OR should be inflated: {crude}");
        assert!((adjusted - 1.0).abs() < 0.05, "MH must recover the null effect: {adjusted}");
    }

    #[test]
    fn rr_mh_on_homogeneous_strata() {
        // RR = (a/(a+b)) / (c/(c+d)) = (40/50)/(50/100) = 1.6 in both.
        let s1 = ContingencyTable { a: 40, b: 10, c: 50, d: 50 };
        let s2 = ContingencyTable { a: 80, b: 20, c: 100, d: 100 };
        let rr = mantel_haenszel_rr(&[s1, s2]);
        assert!((rr - 1.6).abs() < 1e-9, "{rr}");
    }

    #[test]
    fn degenerate_strata_are_skipped() {
        let empty = ContingencyTable { a: 0, b: 0, c: 0, d: 0 };
        let real = ContingencyTable { a: 40, b: 10, c: 50, d: 50 };
        assert_eq!(mantel_haenszel_or(&[empty, real]), mantel_haenszel_or(&[real]));
        assert_eq!(mantel_haenszel_or(&[empty]), 0.0);
        assert_eq!(mantel_haenszel_or(&[]), 0.0);
    }

    #[test]
    fn zero_denominator_yields_infinity() {
        // No unexposed events at all.
        let t = ContingencyTable { a: 5, b: 0, c: 0, d: 95 };
        assert_eq!(mantel_haenszel_or(&[t]), f64::INFINITY);
    }

    #[test]
    fn all_zero_cell_strata_keep_ranking_keys_total() {
        // Strata where both the MH numerator and denominator terms vanish
        // (a·d = 0 and b·c = 0) must pool to 0, never NaN — these are
        // ranking keys downstream.
        let no_events = ContingencyTable { a: 0, b: 50, c: 0, d: 50 };
        let all_events = ContingencyTable { a: 5, b: 0, c: 5, d: 0 };
        let exposed_only = ContingencyTable { a: 3, b: 7, c: 0, d: 0 };
        for strata in [
            vec![no_events],
            vec![all_events],
            vec![exposed_only],
            vec![no_events, all_events, exposed_only],
        ] {
            for est in [mantel_haenszel_or(&strata), mantel_haenszel_rr(&strata), crude_or(&strata)]
            {
                assert!(!est.is_nan(), "strata={strata:?} est={est}");
            }
        }
        assert_eq!(mantel_haenszel_or(&[no_events]), 0.0);
        assert_eq!(mantel_haenszel_rr(&[no_events]), 0.0);
        // Mixing a degenerate stratum with a real one keeps the estimate
        // finite and driven by the informative stratum.
        let real = ContingencyTable { a: 40, b: 10, c: 50, d: 50 };
        let mixed = mantel_haenszel_or(&[no_events, real, all_events]);
        assert!(mixed.is_finite() && mixed > 0.0, "{mixed}");
    }

    #[test]
    fn single_zero_cell_stratum_still_equals_crude() {
        // The single-stratum ≡ crude identity must survive zero cells.
        for t in [
            ContingencyTable { a: 0, b: 10, c: 5, d: 85 },
            ContingencyTable { a: 5, b: 0, c: 5, d: 90 },
            ContingencyTable { a: 5, b: 10, c: 0, d: 85 },
            ContingencyTable { a: 5, b: 10, c: 5, d: 0 },
        ] {
            let mh = mantel_haenszel_or(&[t]);
            let crude = crude_or(&[t]);
            assert!(!mh.is_nan() && !crude.is_nan(), "{t:?}");
            assert_eq!(mh, crude, "{t:?}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_stratum() -> impl Strategy<Value = ContingencyTable> {
            (1u64..100, 1u64..100, 1u64..100, 1u64..100).prop_map(|(a, b, c, d)| ContingencyTable {
                a,
                b,
                c,
                d,
            })
        }

        proptest! {
            #[test]
            fn mh_or_between_stratum_extremes(
                strata in proptest::collection::vec(arb_stratum(), 1..6)
            ) {
                // The pooled OR is a weighted mean of stratum ORs: it must
                // lie within [min, max] of the per-stratum ORs.
                let ors: Vec<f64> = strata
                    .iter()
                    .map(|t| (t.a * t.d) as f64 / (t.b * t.c) as f64)
                    .collect();
                let lo = ors.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = ors.iter().cloned().fold(0.0f64, f64::max);
                let mh = mantel_haenszel_or(&strata);
                prop_assert!(mh >= lo - 1e-9 && mh <= hi + 1e-9, "mh={mh} lo={lo} hi={hi}");
            }

            #[test]
            fn estimators_never_nan(strata in proptest::collection::vec(arb_stratum(), 0..6)) {
                prop_assert!(!mantel_haenszel_or(&strata).is_nan());
                prop_assert!(!mantel_haenszel_rr(&strata).is_nan());
                prop_assert!(!crude_or(&strata).is_nan());
            }

            #[test]
            fn estimators_total_with_zero_cells(
                strata in proptest::collection::vec(
                    (0u64..20, 0u64..20, 0u64..20, 0u64..20).prop_map(|(a, b, c, d)| {
                        ContingencyTable { a, b, c, d }
                    }),
                    0..6,
                )
            ) {
                // Zero cells everywhere — the estimators must stay total
                // (0, finite, or +∞; never NaN, never negative).
                for est in [
                    mantel_haenszel_or(&strata),
                    mantel_haenszel_rr(&strata),
                    crude_or(&strata),
                ] {
                    prop_assert!(!est.is_nan());
                    prop_assert!(est >= 0.0);
                }
            }
        }
    }
}
