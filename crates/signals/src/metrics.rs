//! `maras_signals_*` instrumentation, registered in a `maras-obs` registry
//! so the series ride the existing `/metrics` exposition.

use maras_obs::{Counter, Gauge, Histogram, Registry};

/// Microsecond buckets for whole-batch scoring passes — a few thousand rules
/// score in the low milliseconds, dominated by the EBGM posterior quantiles.
pub const SIGNALS_LATENCY_BUCKETS_US: [f64; 10] =
    [100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 100000.0, 500000.0];

/// Handles to the score engine's metric series.
#[derive(Clone)]
pub struct SignalsMetrics {
    /// Rules scored across all batches.
    pub rules_scored: Counter,
    /// Scoring batches run (one per `score_rules` call).
    pub batches: Counter,
    /// Wall time of one whole scoring batch, µs.
    pub batch_us: Histogram,
    /// Worker threads used by the latest batch.
    pub threads: Gauge,
}

impl SignalsMetrics {
    /// Registers (or re-acquires) the series in `reg`.
    pub fn register(reg: &Registry) -> SignalsMetrics {
        SignalsMetrics {
            rules_scored: reg
                .counter("maras_signals_rules_scored_total", "rules scored by the signal engine"),
            batches: reg.counter("maras_signals_batches_total", "signal-scoring batches completed"),
            batch_us: reg.histogram(
                "maras_signals_batch_us",
                "signal-scoring batch wall time in microseconds",
                &SIGNALS_LATENCY_BUCKETS_US,
            ),
            threads: reg
                .gauge("maras_signals_threads", "worker threads used by the latest scoring batch"),
        }
    }

    /// Registers the series in the process-global registry (what `/metrics`
    /// exposes).
    pub fn global() -> SignalsMetrics {
        SignalsMetrics::register(maras_obs::registry())
    }
}
