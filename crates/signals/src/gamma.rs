//! Special functions for the empirical-Bayes layer: log-gamma, digamma,
//! the regularized incomplete gamma functions and the gamma-distribution
//! quantile. No external math crates; implementations follow the standard
//! Lanczos / series / continued-fraction constructions with accuracy
//! adequate for signal scoring (~1e-10 relative).

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g=7, n=9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function ψ(x) (recurrence + asymptotic series).
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    // Shift x up until the asymptotic series is accurate.
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x) / Γ(a)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's continued fraction for Q(a,x).
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Quantile of the Gamma(shape, rate) distribution: the `p`-th percentile of
/// a gamma with the given shape and *rate* (not scale). Bisection on the
/// CDF — robust, and signal scoring calls it rarely enough that speed is
/// irrelevant.
pub fn gamma_quantile(p: f64, shape: f64, rate: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
    assert!(shape > 0.0 && rate > 0.0);
    if p == 0.0 {
        return 0.0;
    }
    let cdf = |x: f64| gamma_p(shape, x * rate);
    // Bracket the quantile: start around the mean, expand upward.
    let mut hi = (shape / rate).max(1e-12);
    while cdf(hi) < p {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_property() {
        // Γ(x+1) = x·Γ(x) → lnΓ(x+1) = ln x + lnΓ(x).
        for x in [0.3, 1.7, 4.2, 9.9, 55.5] {
            assert!((ln_gamma(x + 1.0) - (x.ln() + ln_gamma(x))).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn digamma_known_values() {
        assert!((digamma(1.0) + EULER_GAMMA).abs() < 1e-10);
        assert!((digamma(2.0) - (1.0 - EULER_GAMMA)).abs() < 1e-10);
        assert!((digamma(0.5) + EULER_GAMMA + 2.0 * 2f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_recurrence_property() {
        // ψ(x+1) = ψ(x) + 1/x.
        for x in [0.2, 1.3, 7.7, 42.0] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // Shape 1 ⇒ exponential: P(1, x) = 1 − e^{-x}.
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn gamma_p_chi_square_median() {
        // χ²(2) median is 2·ln2: P(1, ln2·2/2) = 0.5 at x=ln2 for shape 1...
        // Simpler: P(a, a) approaches 0.5 for large a (median ≈ mean).
        assert!((gamma_p(100.0, 100.0) - 0.5).abs() < 0.03);
        // Exact check: exponential median.
        assert!((gamma_p(1.0, 2f64.ln()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for (a, x) in [(0.5, 0.2), (1.0, 1.0), (3.5, 2.0), (10.0, 20.0), (2.0, 0.01)] {
            assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12, "a={a} x={x}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for (p, shape, rate) in
            [(0.05, 2.0, 4.0), (0.5, 1.0, 1.0), (0.95, 10.0, 0.5), (0.25, 0.2, 0.1)]
        {
            let q = gamma_quantile(p, shape, rate);
            assert!((gamma_p(shape, q * rate) - p).abs() < 1e-9, "p={p} shape={shape}");
        }
        // Exponential(1) median = ln 2.
        assert!((gamma_quantile(0.5, 1.0, 1.0) - 2f64.ln()).abs() < 1e-9);
        assert_eq!(gamma_quantile(0.0, 3.0, 1.0), 0.0);
    }

    #[test]
    fn quantiles_are_monotone_in_p() {
        let qs: Vec<f64> =
            [0.05, 0.25, 0.5, 0.75, 0.95].iter().map(|&p| gamma_quantile(p, 3.0, 2.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] < w[1]), "{qs:?}");
    }
}
