//! Multi-drug interaction baselines.
//!
//! * [`harpaz_rank`] — Harpaz, Chase & Friedman's method (thesis ref. \[17\]):
//!   mine closed multi-item drug→ADR associations and rank them by relative
//!   reporting ratio. This is the closest prior art the thesis's §6 compares
//!   MARAS against ("lacks … contextual information").
//! * [`interaction_contrast`] — a shrunken log-contrast between the
//!   combination's event rate and the best single-drug event rate, in the
//!   spirit of Norén-style Ω interaction scores: positive only when the
//!   combination out-reports every constituent.

use crate::contingency::ContingencyTable;
use crate::disproportionality::rrr;
use maras_mining::{Item, ItemSet, TransactionDb};
use maras_rules::{multi_drug_rules, DrugAdrRule, ItemPartition};
use serde::{Deserialize, Serialize};

/// A multi-item association scored by relative reporting ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarpazSignal {
    /// The association.
    pub rule: DrugAdrRule,
    /// Relative reporting ratio of the complete itemset.
    pub rrr: f64,
}

/// Harpaz-style baseline: closed multi-drug associations ranked by RRR,
/// ties broken by support then antecedent for determinism.
pub fn harpaz_rank(
    db: &TransactionDb,
    partition: &ItemPartition,
    min_support: u64,
) -> Vec<HarpazSignal> {
    let mut out: Vec<HarpazSignal> = multi_drug_rules(db, partition, min_support)
        .into_iter()
        .map(|rule| {
            let t = ContingencyTable::from_db(db, &rule.drugs, &rule.adrs);
            HarpazSignal { rrr: rrr(&t), rule }
        })
        .collect();
    out.sort_by(|a, b| {
        b.rrr
            .partial_cmp(&a.rrr)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.rule.support().cmp(&a.rule.support()))
            .then_with(|| a.rule.drugs.cmp(&b.rule.drugs))
    });
    out
}

/// Shrunken log₂ contrast between the combination's conditional event
/// probability and the strongest single constituent's:
///
/// `IC = log₂[(P(B|A) + s) / (maxᵢ P(B|{dᵢ}) + s)]`, with shrinkage
/// `s = 0.5 / N` taming zero counts. Positive values indicate the
/// combination reports the ADR more often than any of its drugs alone.
pub fn interaction_contrast(db: &TransactionDb, drugs: &ItemSet, adrs: &ItemSet) -> f64 {
    assert!(drugs.len() >= 2, "interaction contrast needs >= 2 drugs");
    let n = db.len().max(1) as f64;
    let s = 0.5 / n;
    let p_combo = conditional(db, drugs, adrs);
    let p_best_single = drugs
        .iter()
        .map(|d| conditional(db, &ItemSet::singleton(Item(d.0)), adrs))
        .fold(0.0f64, f64::max);
    ((p_combo + s) / (p_best_single + s)).log2()
}

fn conditional(db: &TransactionDb, drugs: &ItemSet, adrs: &ItemSet) -> f64 {
    let exposed = db.support(drugs) as f64;
    if exposed == 0.0 {
        return 0.0;
    }
    db.support(&drugs.union(adrs)) as f64 / exposed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    const P: ItemPartition = ItemPartition { adr_start: 10 };

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn contrast_positive_for_exclusive_combo() {
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        // P(10|{0,1}) = 1.0; best single is P(10|{0}) = 0.5 (the combo
        // reports count toward single-drug exposure too) → contrast ≈ 1 bit.
        let ic = interaction_contrast(&d, &set(&[0, 1]), &set(&[10]));
        assert!(ic > 0.8, "exclusive combo should have positive contrast: {ic}");
    }

    #[test]
    fn contrast_near_zero_for_dominated_combo() {
        // Drug 0 alone causes the ADR at the same rate.
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 10], &[0, 10], &[1, 2]]);
        let ic = interaction_contrast(&d, &set(&[0, 1]), &set(&[10]));
        assert!(ic.abs() < 0.1, "dominated combo contrast should vanish: {ic}");
    }

    #[test]
    fn contrast_negative_when_single_stronger() {
        let d = db(&[&[0, 10], &[0, 10], &[0, 10], &[0, 1, 10], &[0, 1, 2], &[0, 1, 3]]);
        // P(10|{0,1}) = 1/3 ; P(10|{0}) = 4/6.
        let ic = interaction_contrast(&d, &set(&[0, 1]), &set(&[10]));
        assert!(ic < -0.5, "{ic}");
    }

    #[test]
    fn contrast_handles_unseen_combo() {
        let d = db(&[&[0, 10], &[1, 11]]);
        let ic = interaction_contrast(&d, &set(&[0, 1]), &set(&[10]));
        assert!(ic.is_finite());
    }

    #[test]
    #[should_panic(expected = ">= 2 drugs")]
    fn contrast_rejects_single_drug() {
        let d = db(&[&[0, 10]]);
        interaction_contrast(&d, &set(&[0]), &set(&[10]));
    }

    #[test]
    fn harpaz_ranks_by_rrr() {
        let d = db(&[
            // rare combo with rare ADR → huge RRR
            &[0, 1, 12],
            &[0, 1, 12],
            // frequent combo with frequent ADR → modest RRR
            &[2, 3, 10],
            &[2, 3, 10],
            &[2, 3, 10],
            &[4, 10],
            &[5, 10],
            &[6, 10],
            &[7, 2],
            &[8, 3],
        ]);
        let ranked = harpaz_rank(&d, &P, 2);
        assert!(!ranked.is_empty());
        assert!(ranked.windows(2).all(|w| w[0].rrr >= w[1].rrr));
        let top = &ranked[0];
        assert_eq!(top.rule.drugs, set(&[0, 1]));
        assert!(top.rrr > ranked.last().unwrap().rrr);
    }

    #[test]
    fn harpaz_scores_match_manual_rrr() {
        let d = db(&[&[0, 1, 10], &[0, 1, 10], &[0, 2], &[3, 10]]);
        for s in harpaz_rank(&d, &P, 1) {
            let t = ContingencyTable::from_db(&d, &s.rule.drugs, &s.rule.adrs);
            assert_eq!(s.rrr, rrr(&t));
        }
    }
}
