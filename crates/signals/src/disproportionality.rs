//! Classical disproportionality measures: RRR, PRR, ROR, χ².
//!
//! Conventions follow the pharmacovigilance literature (Evans et al. for
//! PRR; van Puijenbroek for ROR). Degenerate tables with a zero cell take
//! the Haldane–Anscombe continuity correction — 0.5 added to every cell —
//! so both the point estimate and the 95% CI stay finite and usable instead
//! of collapsing to `0.0`/`INFINITY`; a table with no reports at all scores
//! zero. Ranking stays total either way.

use crate::contingency::ContingencyTable;
use crate::ebgm::{ebgm_from_table, EbgmScores, GammaMixturePrior};
use crate::ic::{information_component, InformationComponent};
use serde::{Deserialize, Serialize};

/// A 95% confidence interval on the log scale, exponentiated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower 95% bound.
    pub lower: f64,
    /// Upper 95% bound.
    pub upper: f64,
}

const Z95: f64 = 1.959_963_984_540_054;

/// The four cells as floats, Haldane–Anscombe corrected when any cell is
/// zero: 0.5 is added to all four so ratio estimates and their log-scale
/// standard errors are defined on degenerate tables.
fn ha_cells(t: &ContingencyTable) -> (f64, f64, f64, f64) {
    if t.a == 0 || t.b == 0 || t.c == 0 || t.d == 0 {
        (t.a as f64 + 0.5, t.b as f64 + 0.5, t.c as f64 + 0.5, t.d as f64 + 0.5)
    } else {
        (t.a as f64, t.b as f64, t.c as f64, t.d as f64)
    }
}

/// Relative reporting ratio: observed over expected count of the joint cell,
/// `RR = a·N / ((a+b)(a+c))` — the measure Harpaz et al. \[17\] rank
/// multi-item associations with.
pub fn rrr(t: &ContingencyTable) -> f64 {
    let expected = t.expected_a();
    if expected == 0.0 {
        return if t.a == 0 { 0.0 } else { f64::INFINITY };
    }
    t.a as f64 / expected
}

/// Proportional reporting ratio `PRR = [a/(a+b)] / [c/(c+d)]` with a 95% CI
/// via the standard log-normal approximation. Zero-cell tables are
/// Haldane–Anscombe corrected (estimate and CI both computed from the
/// corrected cells); an empty table scores zero.
///
/// ```
/// use maras_signals::{prr, ContingencyTable};
/// let t = ContingencyTable { a: 25, b: 75, c: 50, d: 850 };
/// let ci = prr(&t);
/// assert!((ci.estimate - 4.5).abs() < 1e-12);
/// assert!(ci.lower > 1.0); // the CI excludes the null
/// ```
pub fn prr(t: &ContingencyTable) -> ConfidenceInterval {
    if t.n() == 0 {
        return ConfidenceInterval { estimate: 0.0, lower: 0.0, upper: 0.0 };
    }
    let (a, b, c, d) = ha_cells(t);
    let estimate = (a / (a + b)) / (c / (c + d));
    let se = (1.0 / a - 1.0 / (a + b) + 1.0 / c - 1.0 / (c + d)).max(0.0).sqrt();
    let ln = estimate.ln();
    ConfidenceInterval { estimate, lower: (ln - Z95 * se).exp(), upper: (ln + Z95 * se).exp() }
}

/// Reporting odds ratio `ROR = (a·d)/(b·c)` with a 95% CI. Zero-cell tables
/// are Haldane–Anscombe corrected; an empty table scores zero.
pub fn ror(t: &ContingencyTable) -> ConfidenceInterval {
    if t.n() == 0 {
        return ConfidenceInterval { estimate: 0.0, lower: 0.0, upper: 0.0 };
    }
    let (a, b, c, d) = ha_cells(t);
    let estimate = (a * d) / (b * c);
    let se = (1.0 / a + 1.0 / b + 1.0 / c + 1.0 / d).sqrt();
    let ln = estimate.ln();
    ConfidenceInterval { estimate, lower: (ln - Z95 * se).exp(), upper: (ln + Z95 * se).exp() }
}

/// Pearson χ² with Yates continuity correction.
pub fn chi_square_yates(t: &ContingencyTable) -> f64 {
    let (a, b, c, d) = (t.a as f64, t.b as f64, t.c as f64, t.d as f64);
    let n = a + b + c + d;
    let denom = (a + b) * (c + d) * (a + c) * (b + d);
    if denom == 0.0 {
        return 0.0;
    }
    let diff = (a * d - b * c).abs() - n / 2.0;
    let diff = diff.max(0.0);
    n * diff * diff / denom
}

/// Evans et al.'s standard signal criterion: `PRR ≥ 2`, `χ² ≥ 4`, `a ≥ 3`.
pub fn evans_signal(t: &ContingencyTable) -> bool {
    t.a >= 3 && prr(t).estimate >= 2.0 && chi_square_yates(t) >= 4.0
}

/// All scores for one (drug set, ADR set) pair, bundled for reporting: the
/// classical frequentist measures, the Bayesian shrinkage baselines (BCPNN
/// IC, MGPS EBGM), the multi-drug interaction contrast, and the MARAS
/// exclusiveness score of the rule's cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalScores {
    /// The underlying table.
    pub table: ContingencyTable,
    /// Relative reporting ratio.
    pub rrr: f64,
    /// Proportional reporting ratio with CI.
    pub prr: ConfidenceInterval,
    /// Reporting odds ratio with CI.
    pub ror: ConfidenceInterval,
    /// Yates-corrected χ².
    pub chi2: f64,
    /// Whether the Evans criterion fires.
    pub evans: bool,
    /// BCPNN information component with 95% credibility bounds.
    pub ic: InformationComponent,
    /// MGPS empirical-Bayes scores under the default DuMouchel prior.
    pub ebgm: EbgmScores,
    /// Shrunken log₂ interaction contrast (0 for single-drug rules, set by
    /// [`with_interaction`](Self::with_interaction)).
    pub interaction: f64,
    /// Exclusiveness of the rule's contextual cluster (0 until ranked, set
    /// by [`with_exclusiveness`](Self::with_exclusiveness)).
    pub exclusiveness: f64,
}

impl SignalScores {
    /// Computes every table-derived measure. The interaction contrast and
    /// exclusiveness need context beyond the 2×2 table and default to 0;
    /// use the `with_*` builders to attach them.
    pub fn from_table(table: ContingencyTable) -> Self {
        SignalScores {
            table,
            rrr: rrr(&table),
            prr: prr(&table),
            ror: ror(&table),
            chi2: chi_square_yates(&table),
            evans: evans_signal(&table),
            ic: information_component(&table),
            ebgm: ebgm_from_table(&table, &GammaMixturePrior::default()),
            interaction: 0.0,
            exclusiveness: 0.0,
        }
    }

    /// Attaches the multi-drug interaction contrast.
    pub fn with_interaction(mut self, interaction: f64) -> Self {
        self.interaction = interaction;
        self
    }

    /// Attaches the cluster exclusiveness score.
    pub fn with_exclusiveness(mut self, exclusiveness: f64) -> Self {
        self.exclusiveness = exclusiveness;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worked example used across pharmacovigilance tutorials:
    /// a=25, b=75, c=50, d=850.
    fn textbook() -> ContingencyTable {
        ContingencyTable { a: 25, b: 75, c: 50, d: 850 }
    }

    #[test]
    fn rrr_observed_over_expected() {
        let t = textbook();
        // expected = 100 * 75 / 1000 = 7.5 ; RR = 25/7.5
        assert!((rrr(&t) - 25.0 / 7.5).abs() < 1e-12);
    }

    #[test]
    fn prr_point_estimate() {
        let t = textbook();
        // PRR = (25/100) / (50/900) = 0.25 / 0.0555… = 4.5
        let ci = prr(&t);
        assert!((ci.estimate - 4.5).abs() < 1e-12);
        assert!(ci.lower < ci.estimate && ci.estimate < ci.upper);
        assert!(ci.lower > 1.0, "strong signal: CI should exclude 1, lower={}", ci.lower);
    }

    #[test]
    fn ror_point_estimate() {
        let t = textbook();
        // ROR = (25*850)/(75*50) = 21250/3750 = 5.666…
        let ci = ror(&t);
        assert!((ci.estimate - 21250.0 / 3750.0).abs() < 1e-12);
        assert!(ci.lower < ci.estimate && ci.estimate < ci.upper);
    }

    #[test]
    fn chi2_yates_hand_computed() {
        let t = ContingencyTable { a: 20, b: 30, c: 10, d: 40 };
        // n=100; |ad-bc| = |800-300| = 500; corrected = 450
        // chi2 = 100*450^2 / (50*50*30*70) = 20250000/5250000 = 3.857142...
        assert!((chi_square_yates(&t) - 20_250_000.0 / 5_250_000.0).abs() < 1e-9);
    }

    #[test]
    fn independence_scores_near_one() {
        // Perfectly independent margins.
        let t = ContingencyTable::from_supports(10, 100, 100, 1000).unwrap();
        assert!((rrr(&t) - 1.0).abs() < 1e-12);
        assert!((prr(&t).estimate - 1.0).abs() < 0.12);
        assert!(chi_square_yates(&t) < 1.0);
        assert!(!evans_signal(&t));
    }

    #[test]
    fn evans_criterion_thresholds() {
        assert!(evans_signal(&textbook()));
        // Too few exposed-event reports.
        let few = ContingencyTable { a: 2, b: 1, c: 5, d: 992 };
        assert!(!evans_signal(&few));
    }

    #[test]
    fn zero_cells_get_haldane_anscombe_correction() {
        // Any zero cell → 0.5 added to all four cells, so the estimate and
        // CI come out finite and positive instead of 0 / INFINITY.
        let zero_a = ContingencyTable { a: 0, b: 10, c: 5, d: 985 };
        let zero_b = ContingencyTable { a: 5, b: 0, c: 3, d: 992 };
        let zero_c = ContingencyTable { a: 5, b: 10, c: 0, d: 985 };
        let zero_d = ContingencyTable { a: 5, b: 10, c: 20, d: 0 };
        for t in [zero_a, zero_b, zero_c, zero_d] {
            for ci in [prr(&t), ror(&t)] {
                assert!(ci.estimate.is_finite() && ci.estimate > 0.0, "{t:?}: {ci:?}");
                assert!(ci.lower.is_finite() && ci.upper.is_finite(), "{t:?}: {ci:?}");
                assert!(ci.lower > 0.0, "{t:?}: {ci:?}");
                assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper, "{t:?}: {ci:?}");
            }
            assert!(!rrr(&t).is_nan());
            assert!(!chi_square_yates(&t).is_nan());
        }
        // Hand-checked corrected estimates for the zero-a table
        // (cells 0.5, 10.5, 5.5, 985.5):
        let ci = prr(&zero_a);
        assert!((ci.estimate - (0.5 / 11.0) / (5.5 / 991.0)).abs() < 1e-12);
        let ci = ror(&zero_a);
        assert!((ci.estimate - (0.5 * 985.5) / (10.5 * 5.5)).abs() < 1e-12);
        // Direction is preserved: no unexposed events → large PRR/ROR.
        assert!(prr(&zero_c).estimate > 10.0);
        assert!(ror(&zero_c).estimate > 10.0);
    }

    #[test]
    fn uncorrected_tables_keep_classic_estimates() {
        // No zero cell → the correction must not perturb the textbook values
        // (asserted exactly, not within a tolerance).
        let t = textbook();
        assert_eq!(prr(&t).estimate, (25.0 / 100.0) / (50.0 / 900.0));
        assert_eq!(ror(&t).estimate, (25.0 * 850.0) / (75.0 * 50.0));
    }

    #[test]
    fn empty_table_scores_zero() {
        let empty = ContingencyTable { a: 0, b: 0, c: 0, d: 0 };
        for ci in [prr(&empty), ror(&empty)] {
            assert_eq!(ci.estimate, 0.0);
            assert_eq!(ci.lower, 0.0);
            assert_eq!(ci.upper, 0.0);
        }
        assert_eq!(rrr(&empty), 0.0);
        assert_eq!(chi_square_yates(&empty), 0.0);
    }

    #[test]
    fn bundle_is_consistent() {
        let s = SignalScores::from_table(textbook());
        assert_eq!(s.rrr, rrr(&textbook()));
        assert_eq!(s.prr, prr(&textbook()));
        assert_eq!(s.ic, crate::ic::information_component(&textbook()));
        assert_eq!(
            s.ebgm,
            crate::ebgm::ebgm_from_table(&textbook(), &GammaMixturePrior::default())
        );
        assert_eq!(s.interaction, 0.0);
        assert_eq!(s.exclusiveness, 0.0);
        assert!(s.evans);
        let s = s.with_interaction(1.25).with_exclusiveness(0.75);
        assert_eq!(s.interaction, 1.25);
        assert_eq!(s.exclusiveness, 0.75);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_table() -> impl Strategy<Value = ContingencyTable> {
            (0u64..200, 0u64..200, 0u64..200, 0u64..2000)
                .prop_map(|(a, b, c, d)| ContingencyTable { a, b, c, d })
        }

        proptest! {
            #[test]
            fn measures_never_nan(t in arb_table()) {
                prop_assert!(!rrr(&t).is_nan());
                prop_assert!(!prr(&t).estimate.is_nan());
                prop_assert!(!ror(&t).estimate.is_nan());
                prop_assert!(!chi_square_yates(&t).is_nan());
                prop_assert!(chi_square_yates(&t) >= 0.0);
            }

            #[test]
            fn prr_ror_always_finite(t in arb_table()) {
                // Post-correction totality: no table, however degenerate,
                // yields an infinite estimate or bound.
                for ci in [prr(&t), ror(&t)] {
                    prop_assert!(ci.estimate.is_finite());
                    prop_assert!(ci.lower.is_finite());
                    prop_assert!(ci.upper.is_finite());
                }
            }

            #[test]
            fn ci_brackets_estimate(t in arb_table()) {
                for ci in [prr(&t), ror(&t)] {
                    if ci.estimate.is_finite() && ci.estimate > 0.0 {
                        prop_assert!(ci.lower <= ci.estimate + 1e-9);
                        prop_assert!(ci.estimate <= ci.upper + 1e-9);
                    }
                }
            }
        }
    }
}
