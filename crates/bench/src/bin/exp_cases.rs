//! E5 — §5.4 case studies: MARAS must rediscover the literature-validated
//! drug-drug interactions planted in the synthetic stream, rank them near
//! the top, and show weak single-drug context (the exclusiveness
//! signature). The thesis reports: Case I (Ibuprofen+Metamizole → acute
//! renal failure) ranked 3rd in Q2; Case II (Methotrexate+Prograf → drug
//! ineffective) ranked 2nd; Case III (Prevacid+Nexium → osteoporosis)
//! ranked 4th.

use maras_bench::{generate_corpus, print_table, run_pipeline};
use maras_core::{supporting_reports, KnowledgeBase, PipelineConfig};

struct Case {
    label: &'static str,
    drugs: &'static [&'static str],
    adrs: &'static [&'static str],
    paper_rank: &'static str,
    quarter_index: usize, // Case I came from Q2 in the thesis
}

const CASES: &[Case] = &[
    Case {
        label: "Case I: Ibuprofen + Metamizole",
        drugs: &["IBUPROFEN", "METAMIZOLE"],
        adrs: &["Acute renal failure"],
        paper_rank: "3 (Q2)",
        quarter_index: 1,
    },
    Case {
        label: "Case II: Methotrexate + Prograf",
        drugs: &["METHOTREXATE", "PROGRAF"],
        adrs: &["Drug ineffective"],
        paper_rank: "2",
        quarter_index: 0,
    },
    Case {
        label: "Case III: Prevacid + Nexium",
        drugs: &["PREVACID", "NEXIUM"],
        adrs: &["Osteoporosis"],
        paper_rank: "4",
        quarter_index: 0,
    },
];

fn main() {
    let corpus = generate_corpus();
    // The planted interactions are co-reported ~0.4% of the time (≈70–110
    // reports/quarter at paper scale). A support floor of 10 keeps them
    // comfortably while suppressing the random 4-report coincidences the
    // synthetic tail produces far more often than real FAERS does.
    let config = PipelineConfig::default().with_min_support(10);
    let kb = KnowledgeBase::literature_validated();
    println!("\n=== §5.4 case studies (planted ground truth) ===\n");

    let mut rows = Vec::new();
    let mut results_cache: Vec<Option<maras_core::AnalysisResult>> =
        (0..corpus.quarters.len()).map(|_| None).collect();
    for case in CASES {
        if results_cache[case.quarter_index].is_none() {
            results_cache[case.quarter_index] =
                Some(run_pipeline(&corpus, case.quarter_index, config.clone()));
        }
        let result = results_cache[case.quarter_index].as_ref().expect("cached");
        let rank = result.rank_of(case.drugs, case.adrs, &corpus.drug_vocab, &corpus.adr_vocab);
        let (rank_str, detail) = match rank {
            Some(r) => {
                let rm = &result.ranked[r];
                let n_support = supporting_reports(result, &rm.cluster.target).len();
                let max_single_conf = rm
                    .cluster
                    .singleton_level()
                    .rules
                    .iter()
                    .map(|c| c.confidence())
                    .fold(0.0f64, f64::max);
                (
                    format!("{} of {}", r + 1, result.ranked.len()),
                    format!(
                        "score={:.3} conf={:.2} single-drug max conf={:.2} reports={}",
                        rm.score,
                        rm.cluster.target.confidence(),
                        max_single_conf,
                        n_support
                    ),
                )
            }
            None => ("NOT MINED".to_string(), String::new()),
        };
        rows.push(vec![
            case.label.to_string(),
            case.paper_rank.to_string(),
            rank_str,
            if kb.is_known(case.drugs) { "known (validated)".into() } else { "unknown".into() },
            detail,
        ]);
    }
    print_table(&["case", "paper rank", "our rank", "knowledge base", "details"], &rows);

    // The §5.4 closing claim: detection is not limited to documented
    // interactions — show the best-ranked *undocumented* combination too.
    let result = results_cache[0].as_ref().expect("Q1 analyzed");
    for r in result.ranked.iter().take(20) {
        let names =
            result.encoded.names(&r.cluster.target.drugs, &corpus.drug_vocab, &corpus.adr_vocab);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        if !kb.is_known(&refs) {
            let adrs =
                result.encoded.names(&r.cluster.target.adrs, &corpus.drug_vocab, &corpus.adr_vocab);
            println!(
                "\ntop undocumented signal: [{}] => [{}] (score {:.3}) — the 'unknown DDI' MARAS surfaces for triage",
                names.join(" + "),
                adrs.join(", "),
                r.score
            );
            break;
        }
    }
}
