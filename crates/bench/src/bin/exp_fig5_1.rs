//! E2 — Fig. 5.1: reduction in number of rules, per quarter.
//!
//! Three series on a log₁₀ axis: Total Rules (traditional association rule
//! mining over all frequent itemsets), Filtered Rules (drug→ADR only), and
//! MCACs (closed multi-drug associations). Shape to check: each step of the
//! funnel drops the count by ≥ ~1 order of magnitude, for every quarter.
//! Writes `target/figures/fig5_1.svg`.

use maras_bench::{figures_dir, generate_corpus, print_table};
use maras_core::{Pipeline, PipelineConfig};
use maras_viz::{grouped_bars, BarGroup, GroupedBarConfig};

fn main() {
    let corpus = generate_corpus();
    let config = PipelineConfig::default();
    println!(
        "\n=== Fig 5.1 (synthetic analogue): rule-space reduction (min_support={}) ===\n",
        config.min_support
    );

    let mut rows = Vec::new();
    let mut groups = Vec::new();
    for q in &corpus.quarters {
        let result =
            Pipeline::new(config.clone()).run(q.clone(), &corpus.drug_vocab, &corpus.adr_vocab);
        let c = result.counts;
        rows.push(vec![
            format!("Q{}", q.id.quarter),
            c.total_rules.to_string(),
            c.filtered_rules.to_string(),
            c.mcacs.to_string(),
            format!("{:.1}x", c.total_rules as f64 / c.filtered_rules.max(1) as f64),
            format!("{:.1}x", c.filtered_rules as f64 / c.mcacs.max(1) as f64),
        ]);
        groups.push(BarGroup {
            label: format!("Q{}", q.id.quarter),
            values: vec![c.total_rules as f64, c.filtered_rules as f64, c.mcacs as f64],
        });
    }
    print_table(
        &["quarter", "total rules", "filtered rules", "MCACs", "total/filtered", "filtered/MCAC"],
        &rows,
    );

    let chart_cfg = GroupedBarConfig {
        title: "Fig 5.1 - Reduction in number of rules (log scale)".into(),
        series: vec!["Total Rules".into(), "Filtered Rules".into(), "MCACs".into()],
        log10: true,
        ..Default::default()
    };
    let path = figures_dir().join("fig5_1.svg");
    grouped_bars(&groups, &chart_cfg).save(&path).expect("write fig5_1.svg");
    println!("\nfigure written to {}", path.display());
}
