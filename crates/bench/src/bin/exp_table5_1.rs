//! E1 — Table 5.1: FAERS corpus statistics per 2014 quarter.
//!
//! Paper values (real FAERS, expedited reports only):
//! Q1 126,755 / 37,661 / 9,079 · Q2 138,278 / 37,780 / 9,324 ·
//! Q3 121,725 / 33,133 / 9,418 · Q4 121,490 / 32,721 / 9,234.
//! Ours are a ≈1:6-scale synthetic analogue (DESIGN.md substitution 1); the
//! shape to check is: report counts stable across quarters, verbatim drug
//! strings ≫ canonical vocabulary (noise), ADR terms roughly constant.

use maras_bench::{generate_corpus, print_table};

fn main() {
    let corpus = generate_corpus();
    println!("\n=== Table 5.1 (synthetic analogue): FAERS Data From 2014 ===\n");
    let mut rows = vec![
        vec!["Reports".to_string()],
        vec!["Drugs (verbatim strings)".to_string()],
        vec!["ADRs (distinct terms)".to_string()],
        vec!["Expedited (EXP)".to_string()],
        vec!["Serious cases".to_string()],
    ];
    let mut headers: Vec<String> = vec![String::new()];
    for q in &corpus.quarters {
        let exp = q.expedited_only();
        let s = exp.stats();
        headers.push(format!("Q{}", q.id.quarter));
        rows[0].push(s.reports.to_string());
        rows[1].push(s.distinct_drugs.to_string());
        rows[2].push(s.distinct_adrs.to_string());
        rows[3].push(s.expedited.to_string());
        rows[4].push(s.serious.to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!("\npaper (real FAERS 2014, EXP only):");
    print_table(
        &["", "Q1", "Q2", "Q3", "Q4"],
        &[
            vec![
                "Reports".into(),
                "126,755".into(),
                "138,278".into(),
                "121,725".into(),
                "121,490".into(),
            ],
            vec![
                "Drugs".into(),
                "37,661".into(),
                "37,780".into(),
                "33,133".into(),
                "32,721".into(),
            ],
            vec!["ADRs".into(), "9,079".into(), "9,324".into(), "9,418".into(), "9,234".into()],
        ],
    );
}
