//! E6 — the §4 visualization figures, rendered from mined data:
//!
//! * `fig4_1_contextual_glyph.svg` — one contextual glyph (Fig. 4.1);
//! * `fig4_2_panoramagram.svg` — the top-ranked clusters as a glyph grid
//!   (Fig. 4.2);
//! * `fig4_3_zoom.svg` — the zoom-in glyph view with labels (Fig. 4.3);
//! * `fig5_3_mcac_barchart.svg` — the same cluster as the baseline bar
//!   chart (Fig. 5.3);
//! * `appendix_a{2,3,4}_drugs.svg` — Appendix-A style sample rows of
//!   interesting vs non-interesting clusters for 2/3/4 drugs.

use maras_bench::{figures_dir, generate_quarter, run_pipeline};
use maras_core::PipelineConfig;
use maras_rules::DrugAdrRule;
use maras_viz::{
    glyph_svg, mcac_barchart, panorama_svg, GlyphConfig, PanoramaConfig, SvgDoc, DARK,
};

fn main() {
    let corpus = generate_quarter(1);
    let result = run_pipeline(&corpus, 0, PipelineConfig::default());
    assert!(!result.ranked.is_empty(), "no clusters mined; increase scale");
    let dir = figures_dir();

    let namer = |rule: &DrugAdrRule| -> String {
        let drugs = result.encoded.names(&rule.drugs, &corpus.drug_vocab, &corpus.adr_vocab);
        let adrs = result.encoded.names(&rule.adrs, &corpus.drug_vocab, &corpus.adr_vocab);
        format!("{} => {}", drugs.join("+"), adrs.join(","))
    };

    // Prefer a 3-drug cluster for the headline glyph (like Table 3.1's
    // Xolair/Singulair/Prednisone example); fall back to the top cluster.
    let headline =
        result.ranked.iter().find(|r| r.cluster.n_drugs() == 3).unwrap_or(&result.ranked[0]);

    let g = glyph_svg(
        &headline.cluster,
        &GlyphConfig {
            caption: Some(namer(&headline.cluster.target)),
            size: 260.0,
            ..Default::default()
        },
        Some(&namer),
    );
    save(&g, &dir.join("fig4_1_contextual_glyph.svg"));

    let pano = panorama_svg(
        &result.ranked[..result.ranked.len().min(20)],
        &PanoramaConfig::default(),
        Some(&namer),
    );
    save(&pano, &dir.join("fig4_2_panoramagram.svg"));

    let zoom = glyph_svg(&headline.cluster, &GlyphConfig::zoomed(), Some(&namer));
    save(&zoom, &dir.join("fig4_3_zoom.svg"));

    // Dark-mode variant (selected palette, not an inversion).
    let dark = glyph_svg(
        &headline.cluster,
        &GlyphConfig { theme: DARK, ..GlyphConfig::zoomed() },
        Some(&namer),
    );
    save(&dark, &dir.join("fig4_3_zoom_dark.svg"));

    let bars = mcac_barchart(
        &headline.cluster,
        &format!("Fig 5.3 - MCAC as bar chart: {}", namer(&headline.cluster.target)),
        Some(&namer),
    );
    save(&bars, &dir.join("fig5_3_mcac_barchart.svg"));

    // Appendix A samples: best + worst cluster per drug count, side by side.
    for n_drugs in [2usize, 3, 4] {
        let same: Vec<_> =
            result.ranked.iter().filter(|r| r.cluster.n_drugs() == n_drugs).collect();
        if same.len() < 2 {
            eprintln!(
                "skipping appendix sample for {n_drugs} drugs (only {} clusters)",
                same.len()
            );
            continue;
        }
        let best = same.first().expect("non-empty");
        let worst = same.last().expect("non-empty");
        let mut doc = SvgDoc::new(460.0, 240.0, "#fcfcfb");
        let cfg = |caption: String| GlyphConfig {
            size: 220.0,
            caption: Some(caption),
            ..Default::default()
        };
        doc.embed(
            &glyph_svg(
                &best.cluster,
                &cfg(format!("interesting · {:.3}", best.score)),
                Some(&namer),
            ),
            5.0,
            10.0,
        );
        doc.embed(
            &glyph_svg(
                &worst.cluster,
                &cfg(format!("non-interesting · {:.3}", worst.score)),
                Some(&namer),
            ),
            235.0,
            10.0,
        );
        save(&doc, &dir.join(format!("appendix_a_{n_drugs}_drugs.svg")));
    }
    println!("figures written to {}", dir.display());
}

fn save(doc: &SvgDoc, path: &std::path::Path) {
    doc.save(path).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  {}", path.display());
}
