//! E4 — Fig. 5.2: user-study accuracy, Contextual Glyph vs bar chart.
//!
//! 50 simulated participants (DESIGN.md substitution 3) answer the
//! Appendix-A battery; we report the % who pinpointed the interesting
//! interaction(s) per drug count and encoding. Paper values: glyph 71% /
//! 57% / 86% for two / three / four drugs, bar chart below it everywhere.
//! The shape to check is glyph > bar chart in all three groups, with the
//! bar chart degrading as context size grows. Writes
//! `target/figures/fig5_2.svg`.

use maras_bench::{figures_dir, print_table};
use maras_study::{appendix_a_battery, run_study, Encoding, StudyConfig};
use maras_viz::{grouped_bars, BarGroup, GroupedBarConfig};

fn main() {
    let battery = appendix_a_battery(2016);
    let config = StudyConfig::default();
    let results = run_study(&battery, &config);

    println!("\n=== Fig 5.2 (simulated study): % correct by drug count ===\n");
    let labels = [(2usize, "Two"), (3, "Three"), (4, "Four")];
    let mut rows = Vec::new();
    let mut groups = Vec::new();
    for (n, label) in labels {
        let glyph = results.percent_correct(n, Encoding::ContextualGlyph);
        let bar = results.percent_correct(n, Encoding::BarChart);
        rows.push(vec![label.to_string(), format!("{glyph:.0}%"), format!("{bar:.0}%")]);
        groups.push(BarGroup { label: label.to_string(), values: vec![glyph, bar] });
    }
    print_table(&["Number of Drugs", "Contextual Glyph", "Barchart"], &rows);
    println!("\npaper: glyph 71% / 57% / 86% (two/three/four drugs), barchart lower in each");

    // The §5.4.1 speed claim ("users could ... more faster"): simulated
    // mean time to answer, per encoding.
    println!("\nmean response time (simulated):");
    let mut rt_rows = Vec::new();
    for (n, label) in labels {
        rt_rows.push(vec![
            label.to_string(),
            format!("{:.1}s", results.mean_response_time(n, Encoding::ContextualGlyph)),
            format!("{:.1}s", results.mean_response_time(n, Encoding::BarChart)),
        ]);
    }
    print_table(&["Number of Drugs", "Contextual Glyph", "Barchart"], &rt_rows);

    println!("\nper-question breakdown:");
    let mut qrows = Vec::new();
    for ((label, enc), acc) in &results.accuracy_by_question {
        qrows.push(vec![label.clone(), enc.to_string(), format!("{acc:.0}%")]);
    }
    print_table(&["question", "encoding", "% correct"], &qrows);

    let chart_cfg = GroupedBarConfig {
        title: "Fig 5.2 - User study results (simulated participants)".into(),
        series: vec!["Contextual Glyph".into(), "Barchart".into()],
        percent: true,
        ..Default::default()
    };
    let path = figures_dir().join("fig5_2.svg");
    grouped_bars(&groups, &chart_cfg).save(&path).expect("write fig5_2.svg");
    println!("\nfigure written to {}", path.display());
}
