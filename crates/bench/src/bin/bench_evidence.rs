//! Evidence-archive benchmark: builds the on-disk case archive from one
//! analyzed quarter, then measures what the serving layer actually pays —
//! build throughput, archive size vs the in-memory footprint it replaces,
//! postings-intersection latency per ranked rule, and cold vs cached
//! block fetches — and writes `BENCH_evidence.json`.
//!
//! Scale via `MARAS_SCALE` as usual (`paper` default, `small`, `test`).

use maras_bench::{generate_quarter, run_pipeline};
use maras_core::PipelineConfig;
use maras_evidence::{build_archive, BuildConfig, EvidenceReader};
use maras_faers::CaseReport;
use serde_json::Value;
use std::time::Instant;

/// Repetitions of each timed fetch/intersection loop.
const PASSES: usize = 20;

/// Rough resident-set cost of keeping a report in memory: the struct
/// itself plus owned vector elements. Interned strings are shared across
/// reports, so their (amortized) heap cost is deliberately excluded —
/// this is the *lower* bound the archive competes against.
fn in_memory_bytes(r: &CaseReport) -> usize {
    std::mem::size_of::<CaseReport>()
        + r.drugs.len() * std::mem::size_of::<maras_faers::DrugEntry>()
        + r.reactions.len() * std::mem::size_of::<maras_faers::IStr>()
        + r.outcomes.len()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let corpus = generate_quarter(1);
    let result = run_pipeline(&corpus, 0, PipelineConfig::default());
    assert!(!result.ranked.is_empty(), "benchmark quarter mined no clusters");
    let n_reports = result.quarter.reports.len();

    let path = std::env::temp_dir().join(format!("bench-evidence-{}.evid", std::process::id()));

    // Build throughput.
    let t = Instant::now();
    let summary = build_archive(
        &result,
        &corpus.drug_vocab,
        &corpus.adr_vocab,
        &path,
        BuildConfig::default(),
    )
    .expect("build archive");
    let build_secs = t.elapsed().as_secs_f64();
    // The archive stores one record per transaction tid (the cleaned,
    // deduplicated survivors), so size comparisons use exactly those
    // records' resident footprint, not the whole raw quarter's.
    let n_records = summary.n_records;
    let memory_bytes: usize = result
        .encoded
        .source_indices
        .iter()
        .map(|&i| in_memory_bytes(&result.quarter.reports[i]))
        .sum();
    println!(
        "build: {n_reports} input reports -> {n_records} archived in {build_secs:.3}s \
         ({:.0} records/s)",
        n_records as f64 / build_secs
    );
    println!(
        "size: {} archive bytes vs >= {memory_bytes} resident bytes ({:.2} bytes/record on disk)",
        summary.file_bytes,
        summary.file_bytes as f64 / n_records as f64
    );

    let reader = EvidenceReader::open(&path).expect("open archive");

    // Postings intersection per ranked rule (the /cluster/N/reports hot
    // path before any block is touched).
    let rules: Vec<(Vec<String>, Vec<String>)> = result
        .ranked
        .iter()
        .map(|rm| {
            let rule = &rm.cluster.target;
            (
                result.encoded.names(&rule.drugs, &corpus.drug_vocab, &corpus.adr_vocab),
                result.encoded.names(&rule.adrs, &corpus.drug_vocab, &corpus.adr_vocab),
            )
        })
        .collect();
    let mut cover_ns: Vec<u64> = Vec::with_capacity(rules.len() * PASSES);
    let mut total_tids = 0usize;
    for _ in 0..PASSES {
        for (drugs, adrs) in &rules {
            let t = Instant::now();
            let tids = reader.cover(drugs, adrs);
            cover_ns.push(t.elapsed().as_nanos() as u64);
            total_tids += tids.len();
        }
    }
    cover_ns.sort_unstable();
    println!(
        "cover: {} rules x {PASSES} passes, {} tids total; ns/rule p50 {}, p99 {}",
        rules.len(),
        total_tids / PASSES,
        percentile(&cover_ns, 0.50),
        percentile(&cover_ns, 0.99),
    );

    // Cold vs cached page fetch: the first page of the top rule's cover,
    // with the block cache dropped before every cold fetch.
    let (drugs, adrs) = &rules[0];
    let tids = reader.cover(drugs, adrs);
    let page: Vec<u32> = tids.iter().copied().take(20).collect();
    let mut cold_us: Vec<u64> = Vec::with_capacity(PASSES);
    let mut hot_us: Vec<u64> = Vec::with_capacity(PASSES);
    for _ in 0..PASSES {
        reader.clear_cache();
        let t = Instant::now();
        let reports = reader.reports_for(&page).expect("cold fetch");
        cold_us.push(t.elapsed().as_micros() as u64);
        assert_eq!(reports.len(), page.len());
        let t = Instant::now();
        let reports = reader.reports_for(&page).expect("hot fetch");
        hot_us.push(t.elapsed().as_micros() as u64);
        assert_eq!(reports.len(), page.len());
    }
    cold_us.sort_unstable();
    hot_us.sort_unstable();
    println!(
        "fetch page of {}: cold us p50 {} p99 {}; cached us p50 {} p99 {}",
        page.len(),
        percentile(&cold_us, 0.50),
        percentile(&cold_us, 0.99),
        percentile(&hot_us, 0.50),
        percentile(&hot_us, 0.99),
    );

    let json = Value::obj([
        ("input_reports", Value::from(n_reports)),
        ("archived_records", Value::from(n_records)),
        (
            "build",
            Value::obj([
                ("seconds", Value::from(build_secs)),
                ("records_per_sec", Value::from(n_records as f64 / build_secs)),
                ("file_bytes", Value::from(summary.file_bytes)),
                ("data_bytes", Value::from(summary.data_bytes)),
                ("blocks", Value::from(summary.n_blocks)),
                ("symbols", Value::from(summary.n_symbols)),
                ("bytes_per_record", Value::from(summary.file_bytes as f64 / n_records as f64)),
                ("resident_bytes_lower_bound", Value::from(memory_bytes)),
            ]),
        ),
        (
            "cover",
            Value::obj([
                ("rules", Value::from(rules.len())),
                ("passes", Value::from(PASSES)),
                ("ns_p50", Value::from(percentile(&cover_ns, 0.50))),
                ("ns_p99", Value::from(percentile(&cover_ns, 0.99))),
            ]),
        ),
        (
            "fetch",
            Value::obj([
                ("page", Value::from(page.len())),
                ("cold_us_p50", Value::from(percentile(&cold_us, 0.50))),
                ("cold_us_p99", Value::from(percentile(&cold_us, 0.99))),
                ("cached_us_p50", Value::from(percentile(&hot_us, 0.50))),
                ("cached_us_p99", Value::from(percentile(&hot_us, 0.99))),
            ]),
        ),
    ]);
    let out = "BENCH_evidence.json";
    std::fs::write(out, serde_json::to_string_pretty(&json).expect("render json"))
        .expect("write BENCH_evidence.json");
    println!("wrote {out}");
    std::fs::remove_file(&path).ok();
}
