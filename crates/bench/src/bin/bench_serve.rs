//! Serving-layer benchmark: replays a fixed query workload against a
//! synthetic snapshot through the production router (cache, indexes,
//! metrics — everything but the socket) and writes `BENCH_serve.json`
//! with latency percentiles, throughput, and the cache hit rate.
//!
//! The workload mixes the endpoint shapes a §4.1 interactive session
//! produces: drug searches (hot keys repeated, so the cache sees a
//! realistic mix), severity filters, autocomplete keystrokes, and
//! cluster drill-downs. Scale via `MARAS_SCALE` as usual.

use maras_bench::{generate_quarter, run_pipeline};
use maras_core::PipelineConfig;
use maras_serve::http::Request;
use maras_serve::{respond, ServeState, Snapshot};
use serde_json::Value;
use std::time::Instant;

/// Repetitions of the whole workload script (hot keys repeat across
/// passes, which is what exercises the cache).
const PASSES: usize = 40;

fn get(path: &str, query: &[(&str, &str)]) -> Request {
    Request {
        method: "GET".into(),
        path: path.into(),
        query: query.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
    }
}

/// The fixed workload: one interactive session's worth of requests,
/// parameterized by terms that actually occur in the snapshot.
fn workload(snap: &Snapshot) -> Vec<Request> {
    let mut reqs = Vec::new();
    let top = &snap.clusters[0];
    let drug = top.drugs[0].as_str();
    let adr = top.adrs[0].as_str();
    // Autocomplete: a user typing the drug name one keystroke at a time.
    for end in 1..=drug.len().min(6) {
        reqs.push(get("/autocomplete", &[("kind", "drug"), ("prefix", &drug[..end])]));
    }
    // Searches, from broad to narrow.
    reqs.push(get("/search", &[]));
    reqs.push(get("/search", &[("drug", drug)]));
    reqs.push(get("/search", &[("drug", drug), ("min_severity", "3")]));
    reqs.push(get("/search", &[("adr", adr)]));
    reqs.push(get("/search", &[("n_drugs", "2"), ("min_severity", "4")]));
    reqs.push(get("/search", &[("drug", drug), ("unknown_only", "true")]));
    // Drill into the first few hits.
    for rank in 1..=8usize.min(snap.len()) {
        reqs.push(get(&format!("/cluster/{rank}"), &[]));
    }
    reqs.push(get("/healthz", &[]));
    reqs
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Replays the script `PASSES` times against `state`, returning
/// `(sorted latencies µs, wall seconds)`.
fn run(state: &ServeState, script: &[Request]) -> (Vec<u64>, f64) {
    let mut latencies_us: Vec<u64> = Vec::with_capacity(script.len() * PASSES);
    let started = Instant::now();
    for _ in 0..PASSES {
        for req in script {
            let t = Instant::now();
            let (_, status, body) = respond(state, req);
            latencies_us.push(t.elapsed().as_micros() as u64);
            assert!(status == 200 || status == 404, "unexpected {status} for {req:?}");
            assert!(!body.is_empty());
        }
    }
    let wall = started.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    (latencies_us, wall)
}

fn summarize(label: &str, latencies_us: &[u64], wall: f64) -> Value {
    let n = latencies_us.len();
    let throughput = n as f64 / wall;
    let (p50, p95, p99) = (
        percentile(latencies_us, 0.50),
        percentile(latencies_us, 0.95),
        percentile(latencies_us, 0.99),
    );
    println!(
        "{label}: {n} requests in {wall:.4}s -> {throughput:.0} req/s; \
         latency_us p50 {p50}, p95 {p95}, p99 {p99}, max {}",
        latencies_us[n - 1]
    );
    Value::obj([
        ("requests", Value::from(n)),
        ("wall_seconds", Value::from(wall)),
        ("throughput_rps", Value::from(throughput)),
        (
            "latency_us",
            Value::obj([
                ("p50", Value::from(p50)),
                ("p95", Value::from(p95)),
                ("p99", Value::from(p99)),
                ("max", Value::from(latencies_us[n - 1])),
            ]),
        ),
    ])
}

fn main() {
    let corpus = generate_quarter(1);
    let result = run_pipeline(&corpus, 0, PipelineConfig::default());
    let snap = Snapshot::build("2014 Q1", &result, &corpus.drug_vocab, &corpus.adr_vocab, None);
    assert!(!snap.is_empty(), "benchmark snapshot mined no clusters");
    let n_clusters = snap.len();

    // Cold: cache disabled, so every request pays index intersection +
    // JSON rendering. Hot: production cache capacity, steady state.
    let cold_state = ServeState::new(
        Snapshot::build("2014 Q1", &result, &corpus.drug_vocab, &corpus.adr_vocab, None),
        None,
        0,
    );
    let hot_state = ServeState::new(snap, None, 1024);
    let script = workload(&hot_state.snapshot());
    println!(
        "bench_serve: {n_clusters} clusters, {} requests/pass x {PASSES} passes",
        script.len()
    );

    let (cold_lat, cold_wall) = run(&cold_state, &script);
    let cold = summarize("cold (uncached)", &cold_lat, cold_wall);

    // Warm pass populates the cache before the measured hot run.
    for req in &script {
        respond(&hot_state, req);
    }
    let (hot_lat, hot_wall) = run(&hot_state, &script);
    let hot = summarize("hot (cached)", &hot_lat, hot_wall);

    let log_overhead = measure_log_overhead(&hot_state, &script);

    let metrics = hot_state.metrics.to_json();
    let hit_rate = metrics["cache"]["hit_rate"].as_f64().unwrap_or(0.0);
    println!("cache: {} hits, hit rate {:.1}%", hot_state.metrics.cache_hits(), hit_rate * 100.0);

    let json = Value::obj([
        ("clusters", Value::from(n_clusters)),
        ("passes", Value::from(PASSES)),
        ("cold", cold),
        ("hot", hot),
        ("cache_hit_rate", Value::from(hit_rate)),
        ("log_overhead", log_overhead),
    ]);
    let out = "BENCH_serve.json";
    std::fs::write(out, serde_json::to_string_pretty(&json).expect("render json"))
        .expect("write BENCH_serve.json");
    println!("wrote {out}");
}

/// Times the cached workload with flight-recorder logging in its
/// always-on default (every routed request appends a `serve.route`
/// event to the ring) against recording disabled, and enforces the
/// observability budget: recording p50 must stay within 5% of the
/// disabled p50 (plus a 20 µs floor so cache-hit-speed requests don't
/// trip on scheduler noise).
fn measure_log_overhead(state: &ServeState, script: &[Request]) -> Value {
    let mut p50_ns = [0u64; 2];
    for (slot, recording) in [(0usize, true), (1, false)] {
        maras_obs::set_recording(recording);
        maras_obs::clear_log_ring();
        // Hot cached requests finish in well under a microsecond, so
        // this loop times in nanoseconds — µs resolution would round
        // the logging cost away entirely.
        let mut lat_ns: Vec<u64> = Vec::with_capacity(script.len() * PASSES);
        for _ in 0..PASSES {
            for req in script {
                let t = Instant::now();
                let (_, status, _) = respond(state, req);
                lat_ns.push(t.elapsed().as_nanos() as u64);
                assert!(status == 200 || status == 404, "unexpected {status} for {req:?}");
            }
        }
        let recorded = maras_obs::log_tail(usize::MAX, maras_obs::Level::Trace).len();
        assert_eq!(recorded > 0, recording, "recording mode not honored");
        lat_ns.sort_unstable();
        p50_ns[slot] = percentile(&lat_ns, 0.50);
    }
    maras_obs::set_recording(true);
    let [on, off] = p50_ns;
    let overhead_pct = (on as f64 - off as f64) / (off as f64).max(1.0) * 100.0;
    let budget = (off as f64 * 0.05).max(20_000.0);
    println!(
        "log overhead: recording on p50 {on} ns, off p50 {off} ns \
         ({overhead_pct:+.1}%; budget 5% or 20 us)"
    );
    assert!(
        on as f64 <= off as f64 + budget,
        "always-on logging blew the budget: on {on} ns vs off {off} ns"
    );
    Value::obj([
        ("p50_recording_on_ns", Value::from(on)),
        ("p50_recording_off_ns", Value::from(off)),
        ("overhead_pct", Value::from(overhead_pct)),
    ])
}
