//! Score-engine benchmark: times the batch `score_rules` pass against the
//! two per-rule paths it replaced — the legacy `ContingencyTable::from_db`
//! tid-list intersections and a naive full transaction scan — and splits
//! the per-measure cost (EBGM's bisected quantiles dominate). Writes
//! `BENCH_signals.json` with rules/s at 1/2/4/8 threads.
//!
//! EXPERIMENTS.md's "Single-pass signal scoring" section is regenerated
//! from this binary's output. Scale via `MARAS_SCALE` as usual.

use maras_bench::{generate_quarter, print_table};
use maras_faers::{clean_quarter, CleanConfig};
use maras_mining::{Item, TransactionDb};
use maras_rules::{multi_drug_rules, DrugAdrRule, ItemPartition};
use maras_signals::{
    chi_square_yates, ebgm_from_table, information_component, interaction_contrast, prr, ror, rrr,
    score_rules, ContingencyTable, GammaMixturePrior, SignalScores,
};
use serde_json::Value;
use std::time::Instant;

/// Timed repetitions per comparator (first extra run is a discarded
/// warm-up, so caches and the allocator reach steady state).
const REPS: usize = 7;

/// Minimum support — the `maras analyze` CLI default.
const MIN_SUPPORT: u64 = 6;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One named measure for the per-measure cost split.
type Measure<'a> = (&'a str, Box<dyn Fn(&ContingencyTable) + 'a>);

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Sorted-slice subset containment (both sides ascending).
fn contains_all(transaction: &[Item], needle: &[Item]) -> bool {
    let mut i = 0;
    for want in needle {
        while i < transaction.len() && transaction[i] < *want {
            i += 1;
        }
        if i >= transaction.len() || transaction[i] != *want {
            return false;
        }
        i += 1;
    }
    true
}

/// The naive comparator the tid-list substrate exists to avoid: derive
/// each rule's 2×2 table by subset-testing every transaction, then fan
/// out the same measures.
fn full_scan_score(rows: &[Vec<Item>], db: &TransactionDb, rule: &DrugAdrRule) -> SignalScores {
    let drugs = rule.drugs.items();
    let adrs = rule.adrs.items();
    let (mut joint, mut exposed, mut event) = (0u64, 0u64, 0u64);
    for row in rows {
        let has_drugs = contains_all(row, drugs);
        let has_adrs = contains_all(row, adrs);
        joint += (has_drugs && has_adrs) as u64;
        exposed += has_drugs as u64;
        event += has_adrs as u64;
    }
    let table = ContingencyTable::from_supports(joint, exposed, event, rows.len() as u64)
        .expect("scanned counts are consistent");
    SignalScores::from_table(table).with_interaction(interaction_contrast(
        db,
        &rule.drugs,
        &rule.adrs,
    ))
}

/// The pre-engine path: three tid-list intersections per rule, then the
/// same measure fan-out.
fn legacy_score(db: &TransactionDb, rule: &DrugAdrRule) -> SignalScores {
    let table = ContingencyTable::from_db(db, &rule.drugs, &rule.adrs);
    SignalScores::from_table(table).with_interaction(interaction_contrast(
        db,
        &rule.drugs,
        &rule.adrs,
    ))
}

/// p50 wall time of `f` over REPS reps (plus one discarded warm-up).
fn time_p50(mut f: impl FnMut()) -> u64 {
    let mut lat_us: Vec<u64> = Vec::with_capacity(REPS);
    for rep in 0..=REPS {
        let t = Instant::now();
        f();
        if rep > 0 {
            lat_us.push(t.elapsed().as_micros() as u64);
        }
    }
    lat_us.sort_unstable();
    percentile(&lat_us, 0.50)
}

fn main() {
    let corpus = generate_quarter(1);
    let quarter = &corpus.quarters[0];
    let (cleaned, _) =
        clean_quarter(quarter, &corpus.drug_vocab, &corpus.adr_vocab, &CleanConfig::default());
    let adr_start = corpus.drug_vocab.len() as u32;
    let rows: Vec<Vec<Item>> = cleaned
        .iter()
        .map(|c| {
            let mut row: Vec<Item> = c
                .drug_ids
                .iter()
                .copied()
                .chain(c.adr_ids.iter().map(|&a| a + adr_start))
                .map(Item)
                .collect();
            row.sort_unstable();
            row
        })
        .collect();
    let db = TransactionDb::new(rows.clone());
    let partition = ItemPartition { adr_start };
    let rules = multi_drug_rules(&db, &partition, MIN_SUPPORT);
    let n_rules = rules.len();
    assert!(n_rules > 0, "benchmark quarter mined no multi-drug rules");
    println!(
        "bench_signals: {} transactions, min_support {MIN_SUPPORT} -> {n_rules} multi-drug \
         rules; {REPS} reps per comparator",
        db.len()
    );

    // Correctness first: all three comparators agree bit for bit.
    let engine_ref = score_rules(&db, &rules, 1);
    for (i, rule) in rules.iter().enumerate() {
        assert_eq!(engine_ref[i], legacy_score(&db, rule), "legacy mismatch on rule {i}");
        assert_eq!(engine_ref[i], full_scan_score(&rows, &db, rule), "scan mismatch on rule {i}");
    }

    let scan_p50 = time_p50(|| {
        for rule in &rules {
            std::hint::black_box(full_scan_score(&rows, &db, rule));
        }
    });
    let legacy_p50 = time_p50(|| {
        for rule in &rules {
            std::hint::black_box(legacy_score(&db, rule));
        }
    });

    let mut rows_out = vec![
        vec![
            "full-scan".into(),
            "-".into(),
            format!("{:.2}", scan_p50 as f64 / 1000.0),
            format!("{:.0}", n_rules as f64 / (scan_p50 as f64 / 1e6)),
            "1.00x".into(),
        ],
        vec![
            "from_db".into(),
            "-".into(),
            format!("{:.2}", legacy_p50 as f64 / 1000.0),
            format!("{:.0}", n_rules as f64 / (legacy_p50 as f64 / 1e6)),
            format!("{:.2}x", scan_p50 as f64 / legacy_p50 as f64),
        ],
    ];
    let mut per_thread = Vec::new();
    let mut engine_1t_p50 = 0;
    for &threads in &THREAD_COUNTS {
        let p50 = time_p50(|| {
            std::hint::black_box(score_rules(&db, &rules, threads));
        });
        if threads == 1 {
            engine_1t_p50 = p50;
        }
        let rules_per_sec = n_rules as f64 / (p50 as f64 / 1e6);
        rows_out.push(vec![
            "engine".into(),
            threads.to_string(),
            format!("{:.2}", p50 as f64 / 1000.0),
            format!("{rules_per_sec:.0}"),
            format!("{:.2}x", scan_p50 as f64 / p50 as f64),
        ]);
        per_thread.push(Value::obj([
            ("threads", Value::from(threads)),
            ("p50_us", Value::from(p50)),
            ("rules_per_sec", Value::from(rules_per_sec)),
            ("speedup_vs_full_scan", Value::from(scan_p50 as f64 / p50 as f64)),
            ("speedup_vs_from_db", Value::from(legacy_p50 as f64 / p50 as f64)),
        ]));
    }
    print_table(&["path", "threads", "p50 ms", "rules/s", "vs full-scan"], &rows_out);

    // The acceptance floor: the batch engine must beat the naive per-rule
    // scan by ≥5× even single-threaded.
    let speedup = scan_p50 as f64 / engine_1t_p50 as f64;
    assert!(
        speedup >= 5.0,
        "engine (1 thread, {engine_1t_p50} us) must be >= 5x the full scan ({scan_p50} us), got {speedup:.2}x"
    );

    // Per-measure cost split over the already-derived tables: where does
    // a scoring pass actually spend its time? (EBGM's 3 × 200-step
    // bisections dominate; the 2×2 arithmetic measures are noise.)
    let tables: Vec<ContingencyTable> = rules
        .iter()
        .map(|r| ContingencyTable::from_stats(&r.stats).expect("miner stats consistent"))
        .collect();
    let prior = GammaMixturePrior::default();
    let measures: [Measure; 6] = [
        (
            "rrr",
            Box::new(|t| {
                std::hint::black_box(rrr(t));
            }),
        ),
        (
            "prr",
            Box::new(|t| {
                std::hint::black_box(prr(t));
            }),
        ),
        (
            "ror",
            Box::new(|t| {
                std::hint::black_box(ror(t));
            }),
        ),
        (
            "chi2",
            Box::new(|t| {
                std::hint::black_box(chi_square_yates(t));
            }),
        ),
        (
            "ic",
            Box::new(|t| {
                std::hint::black_box(information_component(t));
            }),
        ),
        (
            "ebgm",
            Box::new(move |t| {
                std::hint::black_box(ebgm_from_table(t, &prior));
            }),
        ),
    ];
    let mut split_rows = Vec::new();
    let mut split_json = Vec::new();
    for (name, f) in &measures {
        let p50 = time_p50(|| {
            for t in &tables {
                f(t);
            }
        });
        split_rows.push(vec![
            (*name).to_string(),
            format!("{:.1}", p50 as f64 / n_rules as f64),
            format!("{:.2}", p50 as f64 / 1000.0),
        ]);
        split_json.push(Value::obj([
            ("measure", Value::from(*name)),
            ("p50_us_all_rules", Value::from(p50)),
            ("us_per_rule", Value::from(p50 as f64 / n_rules as f64)),
        ]));
    }
    print_table(&["measure", "us/rule", "p50 ms (all rules)"], &split_rows);

    let json = Value::obj([
        ("transactions", Value::from(db.len())),
        ("min_support", Value::from(MIN_SUPPORT)),
        ("rules", Value::from(n_rules)),
        ("reps", Value::from(REPS)),
        ("full_scan_p50_us", Value::from(scan_p50)),
        ("from_db_p50_us", Value::from(legacy_p50)),
        ("engine_per_thread", Value::arr(per_thread)),
        ("per_measure", Value::arr(split_json)),
    ]);
    let out = "BENCH_signals.json";
    std::fs::write(out, serde_json::to_string_pretty(&json).expect("render json"))
        .expect("write BENCH_signals.json");
    println!("wrote {out}");
}
