//! A1/A2 — ablations of the design choices DESIGN.md calls out.
//!
//! **A1 — interestingness measures.** Rank the mined multi-drug rules with
//! every scoring variant (Formula 3.3 mean-contrast, 3.4 +CV penalty, 3.5
//! +level decay; Bayardo improvement; plain confidence / lift; Harpaz RRR)
//! and measure how well each recovers the planted ground-truth
//! interactions (hits in the top 10 and mean reciprocal rank). The paper's
//! claim: context-aware exclusiveness beats context-free measures.
//!
//! **A2 — closedness.** Compare the unfiltered drug→ADR rule pool against
//! the closed pool: how many unfiltered rules are *unsupported* (§3.3
//! type-3, misleading) — the rules the closed-itemset filter removes.
//!
//! **A3 — θ sensitivity.** Sweep the CV-penalty strength θ ∈ {0, 0.25, 0.5,
//! 0.75, 1} (the thesis exposes θ as the user's control, §3.6) and report
//! how planted-signal recovery responds — the claim to check is that the
//! ranking is *stable* across θ, with a mild gain from any non-zero penalty.

use maras_bench::{generate_quarter, print_table, run_pipeline};
use maras_core::PipelineConfig;
use maras_mcac::{score_cluster, DecayFn, ExclusivenessConfig, Mcac, RankingMethod};
use maras_rules::{classify, drug_adr_rules, DrugAdrRule, Measure, Supportedness};
use maras_signals::{ebgm_from_table, harpaz_rank, ContingencyTable, GammaMixturePrior};

fn main() {
    let corpus = generate_quarter(1);
    // Same support floor as exp_cases: keeps every planted interaction
    // (~70-110 reports) while suppressing 4-report coincidences.
    let config = PipelineConfig::default().with_min_support(10);
    let result = run_pipeline(&corpus, 0, config.clone());
    let db = &result.encoded.db;
    let partition = &result.encoded.partition;
    let adr_start = partition.adr_start;

    // Ground truth in item space.
    let truth: Vec<(Vec<u32>, Vec<u32>)> = corpus
        .planted
        .iter()
        .map(|(d, a)| (d.clone(), a.iter().map(|&x| x + adr_start).collect()))
        .collect();
    // A rule matches an interaction when its drug set is exactly the planted
    // combination and its consequent covers the planted ADRs.
    let matches = |rule: &DrugAdrRule, ti: usize| -> bool {
        let (drugs, adrs) = &truth[ti];
        rule.drugs.iter().map(|i| i.0).eq(drugs.iter().copied())
            && adrs.iter().all(|&a| rule.adrs.iter().any(|i| i.0 == a))
    };

    // ---------------- A1: measure ablation --------------------------------
    println!("\n=== A1: interestingness-measure ablation (planted-signal recovery) ===\n");
    let clusters: Vec<Mcac> = result.ranked.iter().map(|r| r.cluster.clone()).collect();

    type Scorer = Box<dyn Fn(&Mcac) -> f64>;
    let variants: Vec<(&str, Scorer)> = vec![
        (
            "Exclusiveness 3.5 (decay+CV)",
            Box::new(|c: &Mcac| ExclusivenessConfig::default().score(c)),
        ),
        ("Formula 3.4 (mean+CV)", Box::new(|c: &Mcac| ExclusivenessConfig::default().score_cv(c))),
        (
            "Formula 3.3 (mean only)",
            Box::new(|c: &Mcac| ExclusivenessConfig::default().score_mean(c)),
        ),
        (
            "Exclusiveness 3.5, flat decay",
            Box::new(|c: &Mcac| {
                ExclusivenessConfig { decay: DecayFn::Flat, ..Default::default() }.score(c)
            }),
        ),
        (
            "Improvement (Bayardo)",
            Box::new(|c: &Mcac| score_cluster(c, RankingMethod::Improvement(Measure::Confidence))),
        ),
        ("Plain confidence", Box::new(|c: &Mcac| c.target.confidence())),
        ("Plain lift", Box::new(|c: &Mcac| c.target.lift())),
    ];

    let mut rows = Vec::new();
    for (name, score) in &variants {
        let mut scored: Vec<(f64, &Mcac)> = clusters.iter().map(|c| (score(c), c)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let ranked: Vec<&DrugAdrRule> = scored.iter().map(|(_, c)| &c.target).collect();
        rows.push(metric_row(name, &ranked, &matches, truth.len()));
    }
    // Harpaz baseline ranks its own pool.
    let harpaz = harpaz_rank(db, partition, config.min_support);
    let harpaz_rules: Vec<&DrugAdrRule> = harpaz.iter().map(|h| &h.rule).collect();
    rows.push(metric_row("Harpaz RRR (closed pool)", &harpaz_rules, &matches, truth.len()));
    // DuMouchel MGPS/EBGM baseline over the same pool.
    let prior = GammaMixturePrior::default();
    let mut by_ebgm: Vec<(f64, &Mcac)> = clusters
        .iter()
        .map(|c| {
            let t = ContingencyTable::from_db(db, &c.target.drugs, &c.target.adrs);
            (ebgm_from_table(&t, &prior).ebgm, c)
        })
        .collect();
    by_ebgm.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let ebgm_rules: Vec<&DrugAdrRule> = by_ebgm.iter().map(|(_, c)| &c.target).collect();
    rows.push(metric_row("DuMouchel EBGM (closed pool)", &ebgm_rules, &matches, truth.len()));
    print_table(&["method", "recovered@10", "recovered@100", "mean reciprocal best rank"], &rows);

    // ---------------- A2: closedness ablation -----------------------------
    println!("\n=== A2: closed-itemset filter ablation ===\n");
    let unfiltered = drug_adr_rules(db, partition, config.min_support);
    let mut unsupported = 0usize;
    let mut implicit = 0usize;
    let mut explicit = 0usize;
    for r in &unfiltered {
        match classify(&r.complete_itemset(), db) {
            Supportedness::Unsupported => unsupported += 1,
            Supportedness::Implicit => implicit += 1,
            Supportedness::Explicit => explicit += 1,
        }
    }
    print_table(
        &["pool", "rules", "explicit", "implicit", "unsupported (misleading)"],
        &[
            vec![
                "unfiltered drug->ADR".into(),
                unfiltered.len().to_string(),
                explicit.to_string(),
                implicit.to_string(),
                unsupported.to_string(),
            ],
            vec![
                "closed (MARAS)".into(),
                result.counts.mcacs.to_string(),
                "-".into(),
                "-".into(),
                "0 by construction (Lemma 3.4.2)".into(),
            ],
        ],
    );
    println!(
        "\nclosedness removes {:.1}% of the unfiltered pool as spurious partial readings",
        100.0 * unsupported as f64 / unfiltered.len().max(1) as f64
    );

    // ---------------- A3: theta sensitivity -------------------------------
    println!("\n=== A3: CV-penalty strength (theta) sweep ===\n");
    let mut rows = Vec::new();
    for theta in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let cfg = ExclusivenessConfig { theta, ..Default::default() };
        let mut scored: Vec<(f64, &Mcac)> = clusters.iter().map(|c| (cfg.score(c), c)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let ranked: Vec<&DrugAdrRule> = scored.iter().map(|(_, c)| &c.target).collect();
        rows.push(metric_row(&format!("theta = {theta:.2}"), &ranked, &matches, truth.len()));
    }
    print_table(&["config", "recovered@10", "recovered@100", "mean reciprocal best rank"], &rows);
}

/// Per-interaction recovery: for each planted interaction, the rank of the
/// first matching rule; aggregated into recovered@10 / @100 and the mean
/// reciprocal best rank over the interactions.
fn metric_row(
    name: &str,
    ranked: &[&DrugAdrRule],
    matches: &dyn Fn(&DrugAdrRule, usize) -> bool,
    n_truth: usize,
) -> Vec<String> {
    let mut rec10 = 0usize;
    let mut rec100 = 0usize;
    let mut mrr_sum = 0.0f64;
    for ti in 0..n_truth {
        if let Some(best) = ranked.iter().position(|r| matches(r, ti)) {
            if best < 10 {
                rec10 += 1;
            }
            if best < 100 {
                rec100 += 1;
            }
            mrr_sum += 1.0 / (best + 1) as f64;
        }
    }
    vec![
        name.to_string(),
        format!("{rec10}/{n_truth}"),
        format!("{rec100}/{n_truth}"),
        format!("{:.3}", mrr_sum / n_truth as f64),
    ]
}
