//! Mining-layer benchmark: times the arena-backed parallel FP-Growth miner
//! at several thread counts over one synthetic quarter and writes
//! `BENCH_mining.json` with wall-time percentiles, throughput, speedup over
//! the single-threaded run, and the arena footprint (a peak-RSS proxy: the
//! pattern store is the mining output's dominant allocation).
//!
//! EXPERIMENTS.md's "Parallel mining after the arena refactor" section is
//! regenerated from this binary's output. Scale via `MARAS_SCALE` as usual.

use maras_bench::{generate_quarter, print_table};
use maras_faers::{clean_quarter, CleanConfig};
use maras_mining::{mine_patterns_parallel, TransactionDb};
use maras_obs::ObsConfig;
use serde_json::Value;
use std::time::Instant;

/// Timed repetitions per thread count (first extra run is a discarded
/// warm-up, so caches and the allocator reach steady state).
const REPS: usize = 7;

/// Minimum support — the `maras analyze` CLI default.
const MIN_SUPPORT: u64 = 6;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let corpus = generate_quarter(1);
    let quarter = &corpus.quarters[0];
    let (cleaned, _) =
        clean_quarter(quarter, &corpus.drug_vocab, &corpus.adr_vocab, &CleanConfig::default());
    let adr_start = corpus.drug_vocab.len() as u32;
    let db = TransactionDb::new(
        cleaned
            .iter()
            .map(|c| {
                c.drug_ids
                    .iter()
                    .copied()
                    .chain(c.adr_ids.iter().map(|&a| a + adr_start))
                    .map(maras_mining::Item)
                    .collect()
            })
            .collect(),
    );

    let reference = mine_patterns_parallel(&db, MIN_SUPPORT, 1);
    let n_patterns = reference.len();
    let arena_bytes = reference.arena_bytes();
    assert!(n_patterns > 0, "benchmark quarter mined no patterns");
    println!(
        "bench_mining: {} transactions, min_support {MIN_SUPPORT} -> {n_patterns} patterns \
         ({arena_bytes} arena bytes); {REPS} reps per thread count",
        db.len()
    );

    let mut rows = Vec::new();
    let mut per_thread = Vec::new();
    let mut p50_by_threads = Vec::new();
    for &threads in &THREAD_COUNTS {
        // Warm-up, plus the cheap safety check that every thread count
        // produces the exact store the differential suite guarantees.
        let store = mine_patterns_parallel(&db, MIN_SUPPORT, threads);
        assert!(store.iter().eq(reference.iter()), "thread count {threads} changed the output");

        let mut lat_us: Vec<u64> = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            let store = mine_patterns_parallel(&db, MIN_SUPPORT, threads);
            lat_us.push(t.elapsed().as_micros() as u64);
            assert_eq!(store.len(), n_patterns);
        }
        lat_us.sort_unstable();
        let (min, p50, max) = (lat_us[0], percentile(&lat_us, 0.50), lat_us[lat_us.len() - 1]);
        let patterns_per_sec = n_patterns as f64 / (p50 as f64 / 1e6);
        p50_by_threads.push((threads, p50));
        let speedup = p50_by_threads[0].1 as f64 / p50 as f64;
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", p50 as f64 / 1000.0),
            format!("{:.2}", min as f64 / 1000.0),
            format!("{:.2}", max as f64 / 1000.0),
            format!("{patterns_per_sec:.0}"),
            format!("{speedup:.2}x"),
        ]);
        per_thread.push(Value::obj([
            ("threads", Value::from(threads)),
            (
                "wall_us",
                Value::obj([
                    ("min", Value::from(min)),
                    ("p50", Value::from(p50)),
                    ("max", Value::from(max)),
                ]),
            ),
            ("patterns_per_sec", Value::from(patterns_per_sec)),
            ("speedup_vs_1_thread", Value::from(speedup)),
        ]));
    }
    print_table(&["threads", "p50 ms", "min ms", "max ms", "patterns/s", "speedup"], &rows);

    let obs_overhead = measure_obs_overhead(&db, n_patterns);

    let json = Value::obj([
        ("transactions", Value::from(db.len())),
        ("min_support", Value::from(MIN_SUPPORT)),
        ("patterns", Value::from(n_patterns)),
        ("arena_bytes", Value::from(arena_bytes)),
        ("reps", Value::from(REPS)),
        ("per_thread", Value::arr(per_thread)),
        ("obs_overhead", obs_overhead),
    ]);
    let out = "BENCH_mining.json";
    std::fs::write(out, serde_json::to_string_pretty(&json).expect("render json"))
        .expect("write BENCH_mining.json");
    println!("wrote {out}");
}

/// Times the miner with span tracing on (draining the collector each rep,
/// as a `--trace` run would) against `ObsConfig::disabled()`, and enforces
/// the observability budget: instrumented p50 must stay within 5% of the
/// disabled p50 (plus a 500 µs floor so micro-runs don't trip on noise).
fn measure_obs_overhead(db: &TransactionDb, n_patterns: usize) -> Value {
    let threads = 4;
    let mut p50_us = [0u64; 2];
    for (slot, tracing) in [(0usize, true), (1, false)] {
        let cfg = if tracing { ObsConfig::enabled() } else { ObsConfig::disabled() };
        maras_obs::init(&cfg);
        maras_obs::take_spans(); // start each mode from an empty collector
        let mut lat_us: Vec<u64> = Vec::with_capacity(REPS);
        for _ in 0..=REPS {
            let t = Instant::now();
            let store = mine_patterns_parallel(db, MIN_SUPPORT, threads);
            let spans = maras_obs::take_spans();
            lat_us.push(t.elapsed().as_micros() as u64);
            assert_eq!(store.len(), n_patterns);
            assert_eq!(spans.is_empty(), !tracing, "tracing mode not honored");
        }
        lat_us.remove(0); // discard the warm-up rep
        lat_us.sort_unstable();
        p50_us[slot] = percentile(&lat_us, 0.50);
    }
    maras_obs::init(&ObsConfig::enabled());
    let [on, off] = p50_us;
    let overhead_pct = (on as f64 - off as f64) / off as f64 * 100.0;
    let budget = (off as f64 * 0.05).max(500.0);
    println!(
        "obs overhead @ {threads} threads: tracing on p50 {on} us, off p50 {off} us \
         ({overhead_pct:+.1}%; budget 5% or 500 us)"
    );
    assert!(
        on as f64 <= off as f64 + budget,
        "span tracing overhead blew the budget: on {on} us vs off {off} us"
    );
    Value::obj([
        ("threads", Value::from(threads)),
        ("p50_tracing_on_us", Value::from(on)),
        ("p50_tracing_off_us", Value::from(off)),
        ("overhead_pct", Value::from(overhead_pct)),
    ])
}
