//! Ingestion-layer benchmark: times the zero-copy parallel FAERS reader at
//! several thread counts over one synthetic quarter, and the memoized
//! drug/ADR canonicalization against its uncached path over the full
//! four-quarter year (the `maras year` shape: one `Cleaner` shared across
//! quarters). Writes `BENCH_ingest.json` with wall-time percentiles,
//! reports/s, interner and memo statistics, and the per-report
//! string-allocation proxy.
//!
//! EXPERIMENTS.md's "Zero-copy parallel ingestion" section is regenerated
//! from this binary's output. Scale via `MARAS_SCALE` as usual.

use maras_bench::{generate_corpus, print_table};
use maras_faers::ascii::{read_quarter_with, IngestOptions, QuarterWriter};
use maras_faers::{CleanConfig, Cleaner};
use serde_json::Value;
use std::time::Instant;

/// Timed repetitions per configuration (first extra run is a discarded
/// warm-up, so caches and the allocator reach steady state).
const REPS: usize = 7;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let corpus = generate_corpus();
    let quarter = &corpus.quarters[0];
    let id = quarter.id;

    // Serialize once: the benchmark times the read side only.
    let mut demo = Vec::new();
    let mut drug = Vec::new();
    let mut reac = Vec::new();
    let mut outc = Vec::new();
    QuarterWriter::write_demo(&mut demo, &quarter.reports).expect("write DEMO");
    QuarterWriter::write_drug(&mut drug, &quarter.reports).expect("write DRUG");
    QuarterWriter::write_reac(&mut reac, &quarter.reports).expect("write REAC");
    QuarterWriter::write_outc(&mut outc, &quarter.reports).expect("write OUTC");
    let input_bytes = demo.len() + drug.len() + reac.len() + outc.len();

    let read = |threads: usize| {
        let opts = IngestOptions::strict().with_threads(threads);
        read_quarter_with(id, &demo[..], &drug[..], &reac[..], &outc[..], &opts)
            .expect("benchmark quarter must ingest cleanly")
    };

    let reference = read(1);
    let n_reports = reference.data.reports.len();
    assert!(n_reports > 0, "benchmark quarter is empty");

    // The interner collapses every repeated drug-name/reaction/country
    // string to one allocation; the legacy reader allocated each verbatim.
    let intern = reference.metrics.intern;
    let verbatim_bytes: usize = reference
        .data
        .reports
        .iter()
        .map(|r| {
            r.country.len()
                + r.reactions.iter().map(|x| x.len()).sum::<usize>()
                + r.drugs.iter().map(|d| d.name.len()).sum::<usize>()
        })
        .sum();
    println!(
        "bench_ingest: {n_reports} reports, {input_bytes} input bytes; \
         interner: {} unique strings ({} bytes) for {} lookups; \
         verbatim string bytes {verbatim_bytes} -> {:.1} vs {:.1} per report; \
         {REPS} reps per config",
        intern.unique,
        intern.bytes,
        intern.lookups(),
        verbatim_bytes as f64 / n_reports as f64,
        intern.bytes as f64 / n_reports as f64,
    );

    // --- Read throughput by thread count -------------------------------
    let mut rows = Vec::new();
    let mut per_thread = Vec::new();
    let mut p50_at_1 = 0u64;
    for &threads in &THREAD_COUNTS {
        // Warm-up plus the cheap cross-check the differential suite
        // guarantees in depth: output is identical at every thread count.
        let warm = read(threads);
        assert!(warm == reference, "thread count {threads} changed the output");

        let mut lat_us: Vec<u64> = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            let ingested = read(threads);
            lat_us.push(t.elapsed().as_micros() as u64);
            assert_eq!(ingested.data.reports.len(), n_reports);
        }
        lat_us.sort_unstable();
        let (min, p50, p95, max) =
            (lat_us[0], percentile(&lat_us, 0.50), percentile(&lat_us, 0.95), lat_us[REPS - 1]);
        if threads == 1 {
            p50_at_1 = p50;
        }
        let reports_per_sec = n_reports as f64 / (p50 as f64 / 1e6);
        let speedup = p50_at_1 as f64 / p50 as f64;
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", p50 as f64 / 1000.0),
            format!("{:.2}", p95 as f64 / 1000.0),
            format!("{:.2}", min as f64 / 1000.0),
            format!("{reports_per_sec:.0}"),
            format!("{speedup:.2}x"),
        ]);
        per_thread.push(Value::obj([
            ("threads", Value::from(threads)),
            (
                "wall_us",
                Value::obj([
                    ("min", Value::from(min)),
                    ("p50", Value::from(p50)),
                    ("p95", Value::from(p95)),
                    ("max", Value::from(max)),
                ]),
            ),
            ("reports_per_sec", Value::from(reports_per_sec)),
            ("speedup_vs_1_thread", Value::from(speedup)),
        ]));
    }
    print_table(&["threads", "p50 ms", "p95 ms", "min ms", "reports/s", "speedup"], &rows);

    // --- Memoized vs uncached cleaning ---------------------------------
    // Production shape (`maras year`): one Cleaner shared across every
    // quarter of the year, so the memo amortizes first-occurrence fuzzy
    // searches over the whole run. Each rep starts with a cold memo.
    let clean_year = |memoize: bool| {
        let config = CleanConfig { memoize, ..Default::default() };
        let mut cleaner = Cleaner::new(&corpus.drug_vocab, &corpus.adr_vocab, config);
        let mut reports = Vec::new();
        let mut stats = maras_faers::CleaningStats::default();
        for q in &corpus.quarters {
            let (r, s) = cleaner.clean_quarter(q);
            reports.push(r);
            stats = stats.merged(&s);
        }
        (reports, stats)
    };
    let clean_bench = |memoize: bool| {
        let (reports, stats) = clean_year(memoize);
        let mut lat_us: Vec<u64> = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            let (r, _) = clean_year(memoize);
            lat_us.push(t.elapsed().as_micros() as u64);
            assert_eq!(r.len(), reports.len());
        }
        lat_us.sort_unstable();
        (reports, stats, lat_us)
    };
    let (reports_c, stats_c, lat_c) = clean_bench(true);
    let (reports_u, stats_u, lat_u) = clean_bench(false);
    assert_eq!(reports_c, reports_u, "memoization changed the cleaning output");
    assert_eq!(stats_c.without_cache_counters(), stats_u.without_cache_counters());

    let (p50_c, p95_c) = (percentile(&lat_c, 0.50), percentile(&lat_c, 0.95));
    let (p50_u, p95_u) = (percentile(&lat_u, 0.50), percentile(&lat_u, 0.95));
    let clean_speedup = p50_u as f64 / p50_c as f64;
    // Noise-robust secondary reading: minimum-of-N is the usual estimator
    // for CPU-bound loops on a shared machine.
    let clean_speedup_min = lat_u[0] as f64 / lat_c[0] as f64;
    let hit_rate = stats_c.cache_hit_rate();
    let year_reports: usize = corpus.quarters.iter().map(|q| q.reports.len()).sum();
    println!(
        "cleaning: {} quarters, {year_reports} reports, one shared cleaner per pass",
        corpus.quarters.len()
    );
    print_table(
        &["cleaning", "p50 ms", "p95 ms", "min ms", "hit rate", "speedup p50", "speedup min"],
        &[
            vec![
                "memoized".into(),
                format!("{:.2}", p50_c as f64 / 1000.0),
                format!("{:.2}", p95_c as f64 / 1000.0),
                format!("{:.2}", lat_c[0] as f64 / 1000.0),
                format!("{:.1}%", hit_rate * 100.0),
                format!("{clean_speedup:.2}x"),
                format!("{clean_speedup_min:.2}x"),
            ],
            vec![
                "uncached".into(),
                format!("{:.2}", p50_u as f64 / 1000.0),
                format!("{:.2}", p95_u as f64 / 1000.0),
                format!("{:.2}", lat_u[0] as f64 / 1000.0),
                "-".into(),
                "1.00x".into(),
                "1.00x".into(),
            ],
        ],
    );

    let json = Value::obj([
        ("reports", Value::from(n_reports)),
        ("input_bytes", Value::from(input_bytes)),
        ("reps", Value::from(REPS)),
        (
            "interner",
            Value::obj([
                ("unique", Value::from(intern.unique)),
                ("hits", Value::from(intern.hits)),
                ("bytes", Value::from(intern.bytes)),
                ("hit_rate", Value::from(intern.hit_rate())),
                ("verbatim_bytes", Value::from(verbatim_bytes)),
                (
                    "string_bytes_per_report",
                    Value::obj([
                        ("legacy", Value::from(verbatim_bytes as f64 / n_reports as f64)),
                        ("interned", Value::from(intern.bytes as f64 / n_reports as f64)),
                    ]),
                ),
            ]),
        ),
        ("read_per_thread", Value::arr(per_thread)),
        (
            "cleaning",
            Value::obj([
                ("quarters", Value::from(corpus.quarters.len())),
                ("reports", Value::from(year_reports)),
                (
                    "memoized",
                    Value::obj([
                        ("wall_us_min", Value::from(lat_c[0])),
                        ("wall_us_p50", Value::from(p50_c)),
                        ("wall_us_p95", Value::from(p95_c)),
                        ("drug_cache_hits", Value::from(stats_c.drug_cache_hits)),
                        ("drug_cache_misses", Value::from(stats_c.drug_cache_misses)),
                        ("adr_cache_hits", Value::from(stats_c.adr_cache_hits)),
                        ("adr_cache_misses", Value::from(stats_c.adr_cache_misses)),
                        ("cache_hit_rate", Value::from(hit_rate)),
                    ]),
                ),
                (
                    "uncached",
                    Value::obj([
                        ("wall_us_min", Value::from(lat_u[0])),
                        ("wall_us_p50", Value::from(p50_u)),
                        ("wall_us_p95", Value::from(p95_u)),
                    ]),
                ),
                ("speedup_memoized_vs_uncached", Value::from(clean_speedup)),
                ("speedup_memoized_vs_uncached_min", Value::from(clean_speedup_min)),
            ]),
        ),
    ]);
    let out = "BENCH_ingest.json";
    std::fs::write(out, serde_json::to_string_pretty(&json).expect("render json"))
        .expect("write BENCH_ingest.json");
    println!("wrote {out}");
}
