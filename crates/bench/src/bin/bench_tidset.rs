//! Set-algebra kernel benchmark: times the hybrid array/bitmap
//! [`TidSet`] kernels against the scalar sorted-`Vec<u32>` galloping
//! baseline they replaced, across the two density regimes that matter:
//!
//! * **dense** — covers past the 4096-per-chunk threshold, where both
//!   operands sit in bitmap containers and `intersect_count` is pure
//!   64-bit AND + popcount. The PR's acceptance bar: ≥ 2× the scalar
//!   baseline.
//! * **sparse** — tiny covers spread over a wide tid universe, where the
//!   hybrid set degenerates to the same galloping array walk and must
//!   stay within 10% of the scalar kernel.
//!
//! The binary also proves the allocation discipline satellite: a counting
//! global allocator asserts `intersect_count` allocates **nothing** and a
//! single-chunk materializing `intersect` stays at a constant handful of
//! allocations (the `reserve(min(|a|,|b|))` upfront sizing, not O(n)
//! regrowth). Writes `BENCH_tidset.json`.

use maras_bench::print_table;
use maras_tidset::TidSet;
use serde_json::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter, so kernel calls
/// can be asserted allocation-free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Allocation count across `f`, with the result kept opaque.
fn allocs_during<T>(f: impl FnOnce() -> T) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    std::hint::black_box(f());
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Timed repetitions per kernel (plus one discarded warm-up).
const REPS: usize = 9;

/// Inner calls per timed rep, so sub-microsecond kernels get a stable p50.
const INNER: usize = 50;

fn time_p50(mut f: impl FnMut()) -> u64 {
    let mut lat_us: Vec<u64> = Vec::with_capacity(REPS);
    for rep in 0..=REPS {
        let start = Instant::now();
        for _ in 0..INNER {
            f();
        }
        let us = start.elapsed().as_micros() as u64;
        if rep > 0 {
            lat_us.push(us);
        }
    }
    lat_us.sort_unstable();
    lat_us[(lat_us.len() - 1) / 2]
}

/// The scalar baseline the PR deleted: galloping sorted-slice
/// intersection count (`mining::transactions::intersect_sorted`, counting
/// variant).
fn scalar_intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut n = 0u64;
    let mut lo = 0usize;
    for &x in short {
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi = lo.saturating_add(step).min(long.len());
            step <<= 1;
        }
        let idx = lo + long[lo..hi.min(long.len())].partition_point(|&v| v < x);
        if idx < long.len() && long[idx] == x {
            n += 1;
            lo = idx + 1;
        } else {
            lo = idx;
        }
        if lo >= long.len() {
            break;
        }
    }
    n
}

/// Deterministic xorshift so regimes are reproducible without seeding
/// rand from the environment.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Sorted unique tids: `n` values drawn from `0..universe`.
fn draw(seed: u64, n: usize, universe: u64) -> Vec<u32> {
    let mut rng = XorShift(seed | 1);
    let mut v: Vec<u32> = (0..n * 2).map(|_| (rng.next() % universe) as u32).collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(n);
    v
}

struct Regime {
    name: &'static str,
    a: Vec<u32>,
    b: Vec<u32>,
}

fn main() {
    let regimes = [
        // ~45k of 130k tids per side: every chunk holds >4096 values, so
        // both operands are pure bitmap containers.
        Regime { name: "dense", a: draw(11, 45_000, 131_072), b: draw(12, 45_000, 131_072) },
        // ~3k tids spread over 10M: every chunk stays an array container.
        Regime { name: "sparse", a: draw(21, 3_000, 10_000_000), b: draw(22, 3_000, 10_000_000) },
    ];

    let mut rows = Vec::new();
    let mut regimes_json = Vec::new();
    let mut speedups = std::collections::HashMap::new();
    for r in &regimes {
        let sa = TidSet::from_sorted(&r.a);
        let sb = TidSet::from_sorted(&r.b);
        let (arrays, bitmaps) = sa.container_mix();
        match r.name {
            "dense" => assert!(bitmaps > 0 && arrays == 0, "dense regime must be all bitmaps"),
            _ => assert!(arrays > 0 && bitmaps == 0, "sparse regime must be all arrays"),
        }
        let want = scalar_intersect_count(&r.a, &r.b);
        assert_eq!(sa.intersect_count(&sb), want, "{}: kernels disagree", r.name);

        let scalar_p50 = time_p50(|| {
            std::hint::black_box(scalar_intersect_count(&r.a, &r.b));
        });
        let hybrid_p50 = time_p50(|| {
            std::hint::black_box(sa.intersect_count(&sb));
        });
        let speedup = scalar_p50 as f64 / hybrid_p50.max(1) as f64;
        speedups.insert(r.name, speedup);

        rows.push(vec![
            r.name.to_string(),
            format!("{}×{}", r.a.len(), r.b.len()),
            format!("{bitmaps} bitmap / {arrays} array"),
            format!("{:.1}", scalar_p50 as f64 / INNER as f64),
            format!("{:.1}", hybrid_p50 as f64 / INNER as f64),
            format!("{speedup:.2}×"),
        ]);
        regimes_json.push(Value::obj([
            ("regime", Value::from(r.name)),
            ("len_a", Value::from(r.a.len())),
            ("len_b", Value::from(r.b.len())),
            ("intersection", Value::from(want)),
            ("scalar_p50_us", Value::from(scalar_p50 as f64 / INNER as f64)),
            ("hybrid_p50_us", Value::from(hybrid_p50 as f64 / INNER as f64)),
            ("speedup", Value::from(speedup)),
        ]));
    }
    print_table(&["regime", "sizes", "containers", "scalar us", "hybrid us", "speedup"], &rows);

    // Allocation discipline: popcount-only counting must not touch the
    // allocator; a materializing intersect of two single-chunk arrays must
    // stay at a constant handful of allocations (one reserved output vec +
    // the chunk directory), proving the `reserve(min(|a|,|b|))` sizing.
    let (sp_a, sp_b) = (&regimes[1].a, &regimes[1].b);
    let chunk_a: Vec<u32> = {
        let mut v: Vec<u32> = sp_a.iter().map(|t| t % 60_000).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let chunk_b: Vec<u32> = {
        let mut v: Vec<u32> = sp_b.iter().map(|t| t % 60_000).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (ca, cb) = (TidSet::from_sorted(&chunk_a), TidSet::from_sorted(&chunk_b));
    let dense_a = TidSet::from_sorted(&regimes[0].a);
    let dense_b = TidSet::from_sorted(&regimes[0].b);

    let count_allocs = allocs_during(|| dense_a.intersect_count(&dense_b));
    assert_eq!(count_allocs, 0, "intersect_count must be allocation-free");
    let capped_allocs = allocs_during(|| ca.intersect_count_capped(&cb, 5));
    assert_eq!(capped_allocs, 0, "intersect_count_capped must be allocation-free");
    let single_chunk_allocs = allocs_during(|| ca.intersect(&cb));
    assert!(
        single_chunk_allocs <= 4,
        "single-chunk array intersect must reserve upfront, not regrow \
         (saw {single_chunk_allocs} allocations)"
    );
    println!(
        "allocations: intersect_count={count_allocs} capped={capped_allocs} \
         single_chunk_intersect={single_chunk_allocs}"
    );

    let dense_speedup = speedups["dense"];
    let sparse_speedup = speedups["sparse"];
    assert!(
        dense_speedup >= 2.0,
        "dense intersect_count must beat the scalar baseline ≥2× (got {dense_speedup:.2}×)"
    );
    assert!(
        sparse_speedup >= 0.90,
        "sparse intersect_count must stay within 10% of scalar (got {sparse_speedup:.2}×)"
    );

    let json = Value::obj([
        ("reps", Value::from(REPS)),
        ("inner_iterations", Value::from(INNER)),
        ("regimes", Value::arr(regimes_json)),
        (
            "allocations",
            Value::obj([
                ("intersect_count", Value::from(count_allocs)),
                ("intersect_count_capped", Value::from(capped_allocs)),
                ("single_chunk_intersect", Value::from(single_chunk_allocs)),
            ]),
        ),
    ]);
    let out = "BENCH_tidset.json";
    std::fs::write(out, serde_json::to_string_pretty(&json).expect("render json"))
        .expect("write BENCH_tidset.json");
    println!("wrote {out}");
}
