//! E3 — Table 5.2: top-5 multi-drug associations from 2014 Q1 under four
//! rankings: Confidence, Lift (both over the *unfiltered* rule pool),
//! Exclusiveness-with-Confidence and Exclusiveness-with-Lift (over the
//! closed MCAC pool).
//!
//! Shape to check (§5.3): the confidence/lift columns are dominated by
//! near-duplicate redundant rules, while the exclusiveness columns are
//! diverse and surface the planted drug-drug interactions; lift-based
//! rankings favour rarer ADRs.

use maras_bench::{generate_quarter, print_table, rule_names, run_pipeline};
use maras_core::PipelineConfig;
use maras_mcac::{rank_clusters, rank_rules_by, RankingMethod};
use maras_rules::{drug_adr_rules, Measure};

const TOP_K: usize = 5;

fn main() {
    let corpus = generate_quarter(1);
    let config = PipelineConfig::default();
    let result = run_pipeline(&corpus, 0, config.clone());
    println!(
        "\n=== Table 5.2 (synthetic analogue): top {TOP_K} multi-drug associations, 2014 Q1 ===\n"
    );

    // Columns 1 & 2: plain confidence / lift over the unfiltered pool
    // (multi-drug only, to match the table's subject).
    let pool: Vec<_> =
        drug_adr_rules(&result.encoded.db, &result.encoded.partition, config.min_support)
            .into_iter()
            .filter(|r| r.is_multi_drug())
            .collect();
    let by_conf = rank_rules_by(pool.clone(), Measure::Confidence);
    let by_lift = rank_rules_by(pool.clone(), Measure::Lift);

    // Columns 3 & 4: exclusiveness over the closed pool.
    let closed: Vec<_> = result.ranked.iter().map(|r| r.cluster.target.clone()).collect();
    let excl_conf = rank_clusters(
        closed.clone(),
        &result.encoded.db,
        RankingMethod::exclusiveness_confidence(),
    );
    let excl_lift = rank_clusters(closed, &result.encoded.db, RankingMethod::exclusiveness_lift());

    let mut rows = Vec::new();
    for i in 0..TOP_K {
        let cell = |r: Option<String>| r.unwrap_or_else(|| "-".into());
        rows.push(vec![
            (i + 1).to_string(),
            cell(by_conf.get(i).map(|r| rule_names(&result, r, &corpus))),
            cell(by_lift.get(i).map(|r| rule_names(&result, r, &corpus))),
            cell(excl_conf.get(i).map(|r| rule_names(&result, &r.cluster.target, &corpus))),
            cell(excl_lift.get(i).map(|r| rule_names(&result, &r.cluster.target, &corpus))),
        ]);
    }
    print_table(
        &["Rank", "Confidence", "Lift", "Exclusiveness w/ Confidence", "Exclusiveness w/ Lift"],
        &rows,
    );

    // Diversity check (§5.3's qualitative claim, quantified): distinct drugs
    // covered by each column's top 5.
    let distinct = |names: Vec<String>| {
        let mut drugs: Vec<String> = names
            .iter()
            .flat_map(|n| {
                n.trim_start_matches('[')
                    .split("] => ")
                    .next()
                    .unwrap_or("")
                    .split(" + ")
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
        drugs.sort();
        drugs.dedup();
        drugs.len()
    };
    let conf_names: Vec<String> =
        by_conf.iter().take(TOP_K).map(|r| rule_names(&result, r, &corpus)).collect();
    let excl_names: Vec<String> = excl_conf
        .iter()
        .take(TOP_K)
        .map(|r| rule_names(&result, &r.cluster.target, &corpus))
        .collect();
    println!(
        "\ndiversity: confidence column covers {} distinct drugs; exclusiveness column covers {}",
        distinct(conf_names),
        distinct(excl_names)
    );
}
