//! Shared experiment harness: synthetic-corpus construction, naming
//! helpers, and plain-text table printing used by every `exp_*` binary and
//! Criterion bench.
//!
//! Every binary regenerates one table or figure of the thesis (see
//! DESIGN.md's experiment index and EXPERIMENTS.md for recorded outputs).
//! Scale is controlled by the `MARAS_SCALE` environment variable:
//! `paper` (default for binaries; ≈20k reports/quarter, DESIGN.md
//! substitution 1) or `test` (≈800, used in CI smoke tests).

#![warn(missing_docs)]

use maras_core::{AnalysisResult, Pipeline, PipelineConfig};
use maras_faers::{QuarterData, QuarterId, SynthConfig, Synthesizer, Vocabulary};
use maras_rules::DrugAdrRule;
use std::path::PathBuf;

/// The seed every experiment shares (the paper's data year).
pub const SEED: u64 = 2014;

/// Resolves the experiment scale from `MARAS_SCALE`.
pub fn scale_config() -> SynthConfig {
    match std::env::var("MARAS_SCALE").as_deref() {
        Ok("test") => SynthConfig::test_scale(SEED),
        Ok("small") => SynthConfig { n_reports: 5_000, ..SynthConfig::paper_scale(SEED) },
        _ => SynthConfig::paper_scale(SEED),
    }
}

/// A generated 2014: the four quarters plus the vocabularies and ground
/// truth that produced them.
pub struct Corpus {
    /// The four quarters, Q1..Q4.
    pub quarters: Vec<QuarterData>,
    /// Canonical drug vocabulary.
    pub drug_vocab: Vocabulary,
    /// Canonical ADR vocabulary.
    pub adr_vocab: Vocabulary,
    /// Planted ground-truth interactions as (drug ids, adr ids).
    pub planted: Vec<(Vec<u32>, Vec<u32>)>,
}

/// Generates the full synthetic 2014 corpus at the configured scale.
pub fn generate_corpus() -> Corpus {
    let mut synth = Synthesizer::new(scale_config());
    let quarters = synth.generate_year(2014);
    Corpus {
        quarters,
        drug_vocab: synth.drug_vocab().clone(),
        adr_vocab: synth.adr_vocab().clone(),
        planted: synth.planted_truth(),
    }
}

/// Generates just one quarter (cheaper for single-quarter experiments).
pub fn generate_quarter(q: u8) -> Corpus {
    let mut synth = Synthesizer::new(scale_config());
    // Quarters draw from per-quarter seeds, so generating only Qn is
    // deterministic and consistent with the full-year corpus except for
    // case-id offsets.
    let quarter = synth.generate_quarter(QuarterId::new(2014, q));
    Corpus {
        quarters: vec![quarter],
        drug_vocab: synth.drug_vocab().clone(),
        adr_vocab: synth.adr_vocab().clone(),
        planted: synth.planted_truth(),
    }
}

/// Runs the default MARAS pipeline over a quarter of the corpus.
pub fn run_pipeline(
    corpus: &Corpus,
    quarter_index: usize,
    config: PipelineConfig,
) -> AnalysisResult {
    Pipeline::new(config).run(
        corpus.quarters[quarter_index].clone(),
        &corpus.drug_vocab,
        &corpus.adr_vocab,
    )
}

/// Renders a rule with canonical names, Table 5.2-style.
pub fn rule_names(result: &AnalysisResult, rule: &DrugAdrRule, corpus: &Corpus) -> String {
    let drugs = result.encoded.names(&rule.drugs, &corpus.drug_vocab, &corpus.adr_vocab);
    let adrs = result.encoded.names(&rule.adrs, &corpus.drug_vocab, &corpus.adr_vocab);
    format!("[{}] => [{}]", drugs.join(" + "), adrs.join(", "))
}

/// Directory experiment figures land in.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Prints a fixed-width table: a header row plus data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(" {:<width$} |", c, width = widths[i]));
        }
        println!("{out}");
    };
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&sep);
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_generation_is_consistent() {
        std::env::set_var("MARAS_SCALE", "test");
        let c = generate_quarter(1);
        assert_eq!(c.quarters.len(), 1);
        assert!(!c.quarters[0].reports.is_empty());
        assert!(!c.planted.is_empty());
        assert!(c.drug_vocab.id_of("IBUPROFEN").is_some());
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "header"],
            &[vec!["1".into(), "x".into()], vec!["22".into(), "yy".into()]],
        );
    }
}
