//! MCAC construction and exclusiveness-scoring benchmarks (§3.5–3.6), plus
//! the disproportionality baselines for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maras_mcac::{rank_clusters, ExclusivenessConfig, Mcac, RankingMethod};
use maras_mining::{Item, ItemSet, TransactionDb};
use maras_rules::{multi_drug_rules, DrugAdrRule, ItemPartition};
use maras_signals::{harpaz_rank, interaction_contrast};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

const P: ItemPartition = ItemPartition { adr_start: 100 };

/// A dense random DB with drugs 0..100, ADRs 100..140.
fn random_db(n: usize, seed: u64) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    TransactionDb::new(
        (0..n)
            .map(|_| {
                let n_drugs = rng.gen_range(1..6);
                let n_adrs = rng.gen_range(1..4);
                let mut items: Vec<Item> =
                    (0..n_drugs).map(|_| Item(rng.gen_range(0..100))).collect();
                items.extend((0..n_adrs).map(|_| Item(100 + rng.gen_range(0..40))));
                items
            })
            .collect(),
    )
}

fn bench_mcac_build(c: &mut Criterion) {
    let db = random_db(2000, 1);
    let mut group = c.benchmark_group("mcac_build");
    for n_drugs in [2usize, 3, 4, 5] {
        let drugs: ItemSet = (0..n_drugs as u32).map(Item).collect();
        let target = DrugAdrRule::from_parts(drugs, ItemSet::from_ids([100u32]), &db);
        group.bench_with_input(BenchmarkId::from_parameter(n_drugs), &target, |b, t| {
            b.iter(|| black_box(Mcac::build(t.clone(), &db).context_size()))
        });
    }
    group.finish();
}

fn bench_exclusiveness(c: &mut Criterion) {
    let db = random_db(2000, 2);
    let drugs: ItemSet = (0..4u32).map(Item).collect();
    let target = DrugAdrRule::from_parts(drugs, ItemSet::from_ids([100u32]), &db);
    let cluster = Mcac::build(target, &db);
    let cfg = ExclusivenessConfig::default();
    c.bench_function("exclusiveness_score_4drug", |b| {
        b.iter(|| black_box(cfg.score(black_box(&cluster))))
    });
}

fn bench_full_ranking(c: &mut Criterion) {
    let db = random_db(1500, 3);
    let rules = multi_drug_rules(&db, &P, 3);
    let mut group = c.benchmark_group("ranking");
    group.sample_size(20);
    group.bench_function(format!("rank_{}_clusters", rules.len()), |b| {
        b.iter(|| {
            black_box(
                rank_clusters(rules.clone(), &db, RankingMethod::exclusiveness_confidence()).len(),
            )
        })
    });
    group
        .bench_function("harpaz_baseline", |b| b.iter(|| black_box(harpaz_rank(&db, &P, 3).len())));
    group.finish();
}

fn bench_interaction_contrast(c: &mut Criterion) {
    let db = random_db(2000, 4);
    let drugs = ItemSet::from_ids([0u32, 1]);
    let adrs = ItemSet::from_ids([100u32]);
    c.bench_function("interaction_contrast_pair", |b| {
        b.iter(|| black_box(interaction_contrast(&db, black_box(&drugs), black_box(&adrs))))
    });
}

criterion_group!(
    benches,
    bench_mcac_build,
    bench_exclusiveness,
    bench_full_ranking,
    bench_interaction_contrast
);
criterion_main!(benches);
