//! Mining-layer benchmarks: FP-Growth vs Apriori, closed-itemset mining,
//! and support counting — the §5.2 step-2 hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maras_faers::{clean_quarter, CleanConfig, QuarterId, SynthConfig, Synthesizer};
use maras_mining::{
    apriori, closed_itemsets, frequent_itemsets, mine_patterns_parallel, ItemSet, TransactionDb,
};
use std::hint::black_box;

/// Builds a realistic encoded transaction DB from the synthetic generator.
fn bench_db(n_reports: usize) -> TransactionDb {
    let mut cfg = SynthConfig::test_scale(99);
    cfg.n_reports = n_reports;
    let mut synth = Synthesizer::new(cfg);
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let (cleaned, _) =
        clean_quarter(&quarter, synth.drug_vocab(), synth.adr_vocab(), &CleanConfig::default());
    let adr_start = synth.drug_vocab().len() as u32;
    TransactionDb::new(
        cleaned
            .iter()
            .map(|c| {
                c.drug_ids
                    .iter()
                    .copied()
                    .chain(c.adr_ids.iter().map(|&a| a + adr_start))
                    .map(maras_mining::Item)
                    .collect()
            })
            .collect(),
    )
}

fn bench_miners(c: &mut Criterion) {
    let db = bench_db(600);
    let mut group = c.benchmark_group("frequent_mining");
    for min_support in [4u64, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("fpgrowth", min_support),
            &min_support,
            |b, &ms| b.iter(|| black_box(frequent_itemsets(&db, ms).len())),
        );
        group.bench_with_input(BenchmarkId::new("apriori", min_support), &min_support, |b, &ms| {
            b.iter(|| black_box(apriori(&db, ms).len()))
        });
    }
    group.finish();
}

fn bench_closed(c: &mut Criterion) {
    let db = bench_db(600);
    let mut group = c.benchmark_group("closed_mining");
    for min_support in [4u64, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(min_support), &min_support, |b, &ms| {
            b.iter(|| black_box(closed_itemsets(&db, ms).len()))
        });
    }
    group.finish();
}

fn bench_support_counting(c: &mut Criterion) {
    let db = bench_db(600);
    // A mix of frequent singletons and arbitrary combinations.
    let probes: Vec<ItemSet> =
        (0..40u32).map(|i| ItemSet::from_ids([i, i + 1, 200 + i % 30])).collect();
    c.bench_function("support_counting_40_itemsets", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &probes {
                acc += u64::from(db.support(black_box(p)));
            }
            black_box(acc)
        })
    });
}

fn bench_parallel(c: &mut Criterion) {
    let db = bench_db(1500);
    let mut group = c.benchmark_group("parallel_mining");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(mine_patterns_parallel(&db, 6, t).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miners, bench_closed, bench_support_counting, bench_parallel);
criterion_main!(benches);
