//! End-to-end and stage-level pipeline benchmarks: generation, cleaning
//! (BK-tree spell correction is the hot spot), and the full §5.2 flow.

use criterion::{criterion_group, criterion_main, Criterion};
use maras_core::{Pipeline, PipelineConfig};
use maras_faers::{clean_quarter, CleanConfig, QuarterId, SynthConfig, Synthesizer, Vocabulary};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("synth_generate_800_reports", |b| {
        b.iter(|| {
            let mut synth = Synthesizer::new(SynthConfig::test_scale(1));
            black_box(synth.generate_quarter(QuarterId::new(2014, 1)).reports.len())
        })
    });
}

fn bench_cleaning(c: &mut Criterion) {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(2));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    c.bench_function("clean_800_reports", |b| {
        b.iter(|| {
            let (cleaned, _) =
                clean_quarter(black_box(&quarter), &dv, &av, &CleanConfig::default());
            black_box(cleaned.len())
        })
    });
}

fn bench_spell_lookup(c: &mut Criterion) {
    let vocab = Vocabulary::drugs(2000);
    let queries = ["IBUPROFFEN", "METHOTREXATE", "WARFERIN", "XYZNOTADRUG", "PREDNISON"];
    c.bench_function("bktree_nearest_x5", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in queries {
                if vocab.nearest(black_box(q), 2).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(3));
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("end_to_end_800_reports", |b| {
        b.iter(|| {
            let result = Pipeline::new(PipelineConfig::default()).run(quarter.clone(), &dv, &av);
            black_box(result.ranked.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_cleaning, bench_spell_lookup, bench_end_to_end);
criterion_main!(benches);
