//! The perceptual participant model.
//!
//! Noise scales follow the graphical-perception literature's accuracy
//! ordering (position/length more precise than area/angle), and the
//! serial-vs-holistic reading cost separates the two encodings:
//!
//! * **Bar chart**: each bar is read with length noise `σ_len`; the mental
//!   contrast `target − mean(context)` therefore accumulates per-bar error,
//!   and every context bar beyond working-memory capacity adds integration
//!   noise `σ_wm` — serial comparison simply stops scaling.
//! * **Contextual glyph**: one holistic figure/ground judgment with area
//!   noise `σ_area > σ_len`, *independent of context size*.

use crate::battery::{ClusterStimulus, Question};
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Which visual encoding the participant reads (the thesis's two arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Encoding {
    /// The MARAS Contextual Glyph (Fig. 4.1).
    ContextualGlyph,
    /// The baseline MCAC bar chart (Fig. 5.3).
    BarChart,
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Encoding::ContextualGlyph => write!(f, "Contextual Glyph"),
            Encoding::BarChart => write!(f, "Barchart"),
        }
    }
}

/// Perceptual noise parameters (standard deviations on the confidence
/// scale, i.e. fractions of the axis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionParams {
    /// Per-bar length-estimation noise (bar chart).
    pub sigma_length: f64,
    /// Holistic area/radial-estimation noise (glyph).
    pub sigma_area: f64,
    /// Context bars a participant can compare without extra cost.
    pub wm_capacity: usize,
    /// Added integration noise per context bar beyond capacity.
    pub sigma_wm_per_item: f64,
    /// Fixed mental-arithmetic noise for the bar chart's serial
    /// target-minus-average computation (absent for the glyph, whose
    /// contrast is read as one figure/ground gestalt).
    pub sigma_serial: f64,
    /// Seconds per holistic glyph glance.
    pub t_glance: f64,
    /// Seconds per bar read in the bar-chart condition.
    pub t_per_bar: f64,
    /// Seconds of mental arithmetic per bar-chart candidate.
    pub t_compute: f64,
}

impl Default for PerceptionParams {
    fn default() -> Self {
        PerceptionParams {
            sigma_length: 0.055,
            sigma_area: 0.12,
            wm_capacity: 4,
            sigma_wm_per_item: 0.025,
            sigma_serial: 0.13,
            t_glance: 1.2,
            t_per_bar: 0.45,
            t_compute: 1.8,
        }
    }
}

/// One simulated participant (owns its noise stream).
#[derive(Debug)]
pub struct Participant {
    params: PerceptionParams,
    rng: StdRng,
}

impl Participant {
    /// Creates a participant with its own seed.
    pub fn new(params: PerceptionParams, seed: u64) -> Self {
        Participant { params, rng: StdRng::seed_from_u64(seed) }
    }

    /// The participant's noisy estimate of a cluster's interestingness
    /// under the given encoding.
    pub fn perceive(&mut self, stimulus: &ClusterStimulus, encoding: Encoding) -> f64 {
        let truth = stimulus.true_score;
        match encoding {
            Encoding::ContextualGlyph => {
                // One gestalt judgment, area-grade noise, size-independent.
                truth + self.noise(self.params.sigma_area)
            }
            Encoding::BarChart => {
                // Serial reading: noisy target + noisy mean of context bars
                // + working-memory integration noise.
                let target = stimulus.target + self.noise(self.params.sigma_length);
                let m = stimulus.context.len();
                let mean_ctx = if m == 0 {
                    0.0
                } else {
                    stimulus
                        .context
                        .iter()
                        .map(|&v| v + self.noise(self.params.sigma_length))
                        .sum::<f64>()
                        / m as f64
                };
                let overflow = m.saturating_sub(self.params.wm_capacity);
                let wm_noise = self.noise(self.params.sigma_wm_per_item * overflow as f64);
                let serial_noise = self.noise(self.params.sigma_serial);
                target - mean_ctx + wm_noise + serial_noise
            }
        }
    }

    /// Simulated response time (seconds) for answering a question under an
    /// encoding: the glyph is one glance per candidate; the bar chart is a
    /// serial read of every bar plus mental arithmetic per candidate. A
    /// ±20% lognormal-ish jitter models individual pace.
    pub fn response_time(&mut self, question: &Question, encoding: Encoding) -> f64 {
        let base: f64 = question
            .candidates
            .iter()
            .map(|c| match encoding {
                Encoding::ContextualGlyph => self.params.t_glance,
                Encoding::BarChart => {
                    self.params.t_per_bar * (1.0 + c.context.len() as f64) + self.params.t_compute
                }
            })
            .sum();
        let jitter = 1.0 + self.noise(0.2).clamp(-0.6, 0.6);
        base * jitter
    }

    /// Answers a question: estimates every candidate and picks the top-k.
    /// Returns the picked indices as a sorted set.
    pub fn answer(&mut self, question: &Question, encoding: Encoding) -> Vec<usize> {
        let estimates: Vec<f64> =
            question.candidates.iter().map(|c| self.perceive(c, encoding)).collect();
        let mut order: Vec<usize> = (0..estimates.len()).collect();
        order.sort_by(|&a, &b| {
            estimates[b].partial_cmp(&estimates[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut picked: Vec<usize> = order[..question.pick_top_k].to_vec();
        picked.sort_unstable();
        picked
    }

    fn noise(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 0.0;
        }
        Normal::new(0.0, sigma).expect("valid sigma").sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn easy_stimulus() -> ClusterStimulus {
        ClusterStimulus::new(0.9, vec![0.1, 0.1])
    }

    #[test]
    fn zero_noise_reads_truth_exactly() {
        let params = PerceptionParams {
            sigma_length: 0.0,
            sigma_area: 0.0,
            wm_capacity: 99,
            sigma_wm_per_item: 0.0,
            sigma_serial: 0.0,
            ..Default::default()
        };
        let mut p = Participant::new(params, 1);
        let s = easy_stimulus();
        assert_eq!(p.perceive(&s, Encoding::ContextualGlyph), s.true_score);
        assert!((p.perceive(&s, Encoding::BarChart) - s.true_score).abs() < 1e-12);
    }

    #[test]
    fn estimates_are_unbiased_on_average() {
        let mut p = Participant::new(PerceptionParams::default(), 2);
        let s = easy_stimulus();
        for enc in [Encoding::ContextualGlyph, Encoding::BarChart] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| p.perceive(&s, enc)).sum::<f64>() / n as f64;
            assert!((mean - s.true_score).abs() < 0.02, "{enc}: {mean}");
        }
    }

    #[test]
    fn barchart_noise_grows_with_context_size() {
        let mut p = Participant::new(PerceptionParams::default(), 3);
        let small = ClusterStimulus::new(0.9, vec![0.1; 2]); // 2 drugs
        let large = ClusterStimulus::new(0.9, vec![0.1; 14]); // 4 drugs
        let var = |p: &mut Participant, s: &ClusterStimulus| {
            let n = 4000;
            let xs: Vec<f64> = (0..n).map(|_| p.perceive(s, Encoding::BarChart)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64
        };
        let v_small = var(&mut p, &small);
        let v_large = var(&mut p, &large);
        assert!(v_large > v_small * 2.0, "integration noise must grow: {v_small} vs {v_large}");
    }

    #[test]
    fn glyph_noise_is_context_size_invariant() {
        let mut p = Participant::new(PerceptionParams::default(), 4);
        let small = ClusterStimulus::new(0.9, vec![0.1; 2]);
        let large = ClusterStimulus::new(0.9, vec![0.1; 14]);
        let var = |p: &mut Participant, s: &ClusterStimulus| {
            let n = 4000;
            let xs: Vec<f64> = (0..n).map(|_| p.perceive(s, Encoding::ContextualGlyph)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64
        };
        let v_small = var(&mut p, &small);
        let v_large = var(&mut p, &large);
        assert!((v_small - v_large).abs() < v_small * 0.3, "{v_small} vs {v_large}");
    }

    #[test]
    fn answer_picks_topk_under_zero_noise() {
        let params = PerceptionParams {
            sigma_length: 0.0,
            sigma_area: 0.0,
            wm_capacity: 99,
            sigma_wm_per_item: 0.0,
            sigma_serial: 0.0,
            ..Default::default()
        };
        let mut p = Participant::new(params, 5);
        let q = Question {
            label: "t".into(),
            candidates: vec![
                ClusterStimulus::new(0.5, vec![0.4, 0.4]),
                ClusterStimulus::new(0.9, vec![0.1, 0.1]),
                ClusterStimulus::new(0.8, vec![0.2, 0.2]),
            ],
            pick_top_k: 2,
            n_drugs: 2,
        };
        for enc in [Encoding::ContextualGlyph, Encoding::BarChart] {
            assert_eq!(p.answer(&q, enc), q.correct_answer(), "{enc}");
        }
    }

    #[test]
    fn barchart_slower_and_degrades_with_size() {
        let mut p = Participant::new(PerceptionParams::default(), 9);
        let q_small = Question {
            label: "s".into(),
            candidates: vec![ClusterStimulus::new(0.9, vec![0.1; 2]); 6],
            pick_top_k: 1,
            n_drugs: 2,
        };
        let q_large = Question {
            label: "l".into(),
            candidates: vec![ClusterStimulus::new(0.9, vec![0.1; 14]); 6],
            pick_top_k: 1,
            n_drugs: 4,
        };
        let mean_rt = |p: &mut Participant, q: &Question, e: Encoding| -> f64 {
            (0..200).map(|_| p.response_time(q, e)).sum::<f64>() / 200.0
        };
        let glyph_small = mean_rt(&mut p, &q_small, Encoding::ContextualGlyph);
        let glyph_large = mean_rt(&mut p, &q_large, Encoding::ContextualGlyph);
        let bar_small = mean_rt(&mut p, &q_small, Encoding::BarChart);
        let bar_large = mean_rt(&mut p, &q_large, Encoding::BarChart);
        assert!(bar_small > glyph_small, "{bar_small} vs {glyph_small}");
        assert!(bar_large > bar_small * 2.0, "serial reading must scale with bars");
        assert!(
            (glyph_large - glyph_small).abs() < glyph_small * 0.25,
            "glyph time is context-size invariant: {glyph_small} vs {glyph_large}"
        );
    }

    #[test]
    fn encoding_display_matches_fig_5_2_legend() {
        assert_eq!(Encoding::ContextualGlyph.to_string(), "Contextual Glyph");
        assert_eq!(Encoding::BarChart.to_string(), "Barchart");
    }
}
