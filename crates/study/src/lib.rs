//! Simulated user study (thesis §5.4.1, Appendix A; DESIGN.md
//! substitution 3).
//!
//! The thesis ran 50 WPI students through a five-question battery: pick the
//! top-ranked (most *interesting*, i.e. most exclusive) drug interaction
//! among candidates shown either as Contextual Glyphs or as bar charts, for
//! two-, three- and four-drug combinations (Fig. 5.2 reports % correct per
//! encoding). Human subjects are unavailable here, so this crate implements
//! a documented perceptual model and runs *simulated* participants through
//! the identical battery and scoring code:
//!
//! * every magnitude a participant reads off a chart is corrupted by
//!   zero-mean Gaussian noise whose scale follows graphical-perception
//!   results (Cleveland & McGill): length/position judgments (bar charts)
//!   are individually more precise than area/radial judgments (glyphs);
//! * the **bar chart** requires a *serial* mental computation — estimate
//!   the target bar, estimate every context bar, average, subtract — so its
//!   per-bar noise accumulates, and context sets beyond working-memory
//!   capacity add integration noise per extra bar;
//! * the **glyph** affords a single figure/ground gestalt (big core,
//!   shallow ring), so the whole contrast is read with one (coarser)
//!   judgment that does not degrade with context size.
//!
//! The crossover the thesis observed — glyphs beat bar charts, and the
//! advantage persists across 2/3/4 drugs — falls out of exactly this
//! serial-vs-holistic asymmetry.

#![warn(missing_docs)]

pub mod battery;
pub mod perception;
pub mod simulate;

pub use battery::{appendix_a_battery, Battery, ClusterStimulus, Question};
pub use perception::{Encoding, Participant, PerceptionParams};
pub use simulate::{run_study, StudyConfig, StudyResults};
