//! Running the study and aggregating Fig. 5.2.

use crate::battery::Battery;
use crate::perception::{Encoding, Participant, PerceptionParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Study-level configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of simulated participants (the thesis invited 50).
    pub n_participants: usize,
    /// Master seed.
    pub seed: u64,
    /// Perceptual model parameters.
    pub params: PerceptionParams,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig { n_participants: 50, seed: 2016, params: PerceptionParams::default() }
    }
}

/// Aggregated outcomes. (Not serde-serializable: tuple map keys don't map
/// to JSON; the experiment binaries format rows explicitly.)
#[derive(Debug, Clone)]
pub struct StudyResults {
    /// `% correct` per (drug count, encoding) — the Fig. 5.2 bars.
    pub accuracy_by_drugs: BTreeMap<(usize, &'static str), f64>,
    /// `% correct` per (question label, encoding).
    pub accuracy_by_question: BTreeMap<(String, &'static str), f64>,
    /// Mean response time (seconds) per (drug count, encoding).
    pub mean_rt_by_drugs: BTreeMap<(usize, &'static str), f64>,
}

impl StudyResults {
    /// Fig. 5.2 accessor: % of participants correct for `n_drugs` under the
    /// encoding.
    pub fn percent_correct(&self, n_drugs: usize, encoding: Encoding) -> f64 {
        *self.accuracy_by_drugs.get(&(n_drugs, key(encoding))).unwrap_or(&0.0)
    }

    /// Mean answer time in seconds for `n_drugs` under the encoding (the
    /// thesis's "more faster" comparison).
    pub fn mean_response_time(&self, n_drugs: usize, encoding: Encoding) -> f64 {
        *self.mean_rt_by_drugs.get(&(n_drugs, key(encoding))).unwrap_or(&0.0)
    }
}

fn key(encoding: Encoding) -> &'static str {
    match encoding {
        Encoding::ContextualGlyph => "glyph",
        Encoding::BarChart => "barchart",
    }
}

/// Runs the battery: every participant answers every question under both
/// encodings (within-subject, as the thesis did — each question showed both
/// visuals). Returns percentage-correct aggregates.
pub fn run_study(battery: &Battery, config: &StudyConfig) -> StudyResults {
    let mut correct_by_q: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
    let mut correct_by_d: BTreeMap<(usize, &'static str), usize> = BTreeMap::new();
    let mut total_by_d: BTreeMap<(usize, &'static str), usize> = BTreeMap::new();
    let mut rt_by_d: BTreeMap<(usize, &'static str), f64> = BTreeMap::new();

    for pid in 0..config.n_participants {
        let mut participant =
            Participant::new(config.params, config.seed ^ (pid as u64).wrapping_mul(0x9e37_79b9));
        for q in &battery.questions {
            let truth = q.correct_answer();
            for encoding in [Encoding::ContextualGlyph, Encoding::BarChart] {
                let picked = participant.answer(q, encoding);
                let rt = participant.response_time(q, encoding);
                *rt_by_d.entry((q.n_drugs, key(encoding))).or_insert(0.0) += rt;
                let ok = picked == truth;
                *correct_by_q.entry((q.label.clone(), key(encoding))).or_insert(0) +=
                    usize::from(ok);
                *correct_by_d.entry((q.n_drugs, key(encoding))).or_insert(0) += usize::from(ok);
                *total_by_d.entry((q.n_drugs, key(encoding))).or_insert(0) += 1;
            }
        }
    }

    let n = config.n_participants.max(1) as f64;
    let accuracy_by_question =
        correct_by_q.into_iter().map(|(k, v)| (k, 100.0 * v as f64 / n)).collect();
    let accuracy_by_drugs = correct_by_d
        .into_iter()
        .map(|(k, v)| {
            let total = total_by_d[&k] as f64;
            (k, 100.0 * v as f64 / total)
        })
        .collect();
    let mean_rt_by_drugs = rt_by_d
        .into_iter()
        .map(|(k, total)| {
            let count = total_by_d[&k] as f64;
            (k, total / count)
        })
        .collect();
    StudyResults { accuracy_by_drugs, accuracy_by_question, mean_rt_by_drugs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::appendix_a_battery;

    #[test]
    fn glyph_beats_barchart_for_every_drug_count() {
        // The Fig. 5.2 shape requirement.
        let battery = appendix_a_battery(2016);
        let results = run_study(&battery, &StudyConfig::default());
        for n_drugs in [2usize, 3, 4] {
            let glyph = results.percent_correct(n_drugs, Encoding::ContextualGlyph);
            let bar = results.percent_correct(n_drugs, Encoding::BarChart);
            assert!(glyph > bar, "{n_drugs} drugs: glyph {glyph:.0}% must beat barchart {bar:.0}%");
            assert!((0.0..=100.0).contains(&glyph));
            assert!((0.0..=100.0).contains(&bar));
        }
    }

    #[test]
    fn glyph_is_faster_everywhere_and_bar_rt_grows() {
        let battery = appendix_a_battery(2016);
        let results = run_study(&battery, &StudyConfig::default());
        for n_drugs in [2usize, 3, 4] {
            let g = results.mean_response_time(n_drugs, Encoding::ContextualGlyph);
            let b = results.mean_response_time(n_drugs, Encoding::BarChart);
            assert!(g > 0.0 && b > g, "{n_drugs} drugs: glyph {g:.1}s vs bar {b:.1}s");
        }
        // Bar-chart time grows with context size; glyph time does not.
        let b2 = results.mean_response_time(2, Encoding::BarChart);
        let b4 = results.mean_response_time(4, Encoding::BarChart);
        assert!(b4 > b2 * 1.5, "{b2} vs {b4}");
    }

    #[test]
    fn results_are_deterministic() {
        let battery = appendix_a_battery(7);
        let a = run_study(&battery, &StudyConfig::default());
        let b = run_study(&battery, &StudyConfig::default());
        assert_eq!(a.accuracy_by_drugs, b.accuracy_by_drugs);
    }

    #[test]
    fn zero_noise_participants_are_perfect() {
        let battery = appendix_a_battery(3);
        let cfg = StudyConfig {
            n_participants: 10,
            seed: 1,
            params: PerceptionParams {
                sigma_length: 0.0,
                sigma_area: 0.0,
                wm_capacity: 99,
                sigma_wm_per_item: 0.0,
                sigma_serial: 0.0,
                ..Default::default()
            },
        };
        let results = run_study(&battery, &cfg);
        for acc in results.accuracy_by_drugs.values() {
            assert_eq!(*acc, 100.0);
        }
    }

    #[test]
    fn per_question_accuracies_cover_battery() {
        let battery = appendix_a_battery(5);
        let results = run_study(&battery, &StudyConfig { n_participants: 5, ..Default::default() });
        assert_eq!(results.accuracy_by_question.len(), 10); // 5 questions × 2 encodings
    }

    #[test]
    fn extreme_noise_drops_accuracy() {
        let battery = appendix_a_battery(5);
        let noisy = StudyConfig {
            n_participants: 30,
            seed: 2,
            params: PerceptionParams {
                sigma_length: 2.0,
                sigma_area: 2.0,
                wm_capacity: 0,
                sigma_wm_per_item: 1.0,
                sigma_serial: 1.0,
                ..Default::default()
            },
        };
        let results = run_study(&battery, &noisy);
        let q5 = results.percent_correct(4, Encoding::ContextualGlyph);
        assert!(q5 < 60.0, "pure guessing on 1-of-6 should be low: {q5}");
    }
}
