//! The Appendix-A question battery.
//!
//! Five questions (A.2): pick the top-1 / top-k interesting interaction
//! among candidate MCACs of a given drug count, shown as glyphs or bar
//! charts. A question's ground truth is the exclusiveness ordering of its
//! candidates.

use maras_mcac::RankedMcac;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// What a participant visually receives for one candidate cluster: the
/// target strength and the context strengths (the magnitudes both encodings
/// draw).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterStimulus {
    /// Target rule confidence (inner circle / first bar).
    pub target: f64,
    /// Context rule confidences (sectors / remaining bars), flattened.
    pub context: Vec<f64>,
    /// Ground-truth interestingness (the system's exclusiveness score).
    pub true_score: f64,
}

impl ClusterStimulus {
    /// Builds the stimulus a ranked cluster displays.
    pub fn from_ranked(r: &RankedMcac) -> Self {
        ClusterStimulus {
            target: r.cluster.target.confidence(),
            context: r.cluster.context_rules().map(|c| c.confidence()).collect(),
            true_score: r.score,
        }
    }

    /// A hand-specified stimulus (tests and synthetic batteries).
    pub fn new(target: f64, context: Vec<f64>) -> Self {
        let mean = if context.is_empty() {
            0.0
        } else {
            context.iter().sum::<f64>() / context.len() as f64
        };
        ClusterStimulus { target, true_score: target - mean, context }
    }

    /// Number of drugs implied by the context size (`2^n − 2` sectors).
    pub fn n_drugs(&self) -> usize {
        ((self.context.len() + 2) as f64).log2().round() as usize
    }
}

/// One study question: candidates plus how many to pick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Question {
    /// Question label (e.g. "Q1").
    pub label: String,
    /// Candidate clusters shown side by side.
    pub candidates: Vec<ClusterStimulus>,
    /// How many the participant must select (top-k by interestingness).
    pub pick_top_k: usize,
    /// Drugs per candidate (2, 3 or 4 in the thesis).
    pub n_drugs: usize,
}

impl Question {
    /// Ground-truth answer: indices of the top-k candidates by true score,
    /// as a sorted set.
    pub fn correct_answer(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by(|&a, &b| {
            self.candidates[b]
                .true_score
                .partial_cmp(&self.candidates[a].true_score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut top: Vec<usize> = order[..self.pick_top_k].to_vec();
        top.sort_unstable();
        top
    }
}

/// A full battery of questions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Battery {
    /// The questions, in presentation order.
    pub questions: Vec<Question>,
}

/// Builds the Appendix-A battery synthetically: five questions over 2/3/4
/// drug clusters, each mixing clearly-exclusive winners with plausible
/// decoys (high-confidence targets whose context explains them away —
/// exactly the trap Fig. A.1–A.3's samples show).
///
/// Deterministic in `seed`.
pub fn appendix_a_battery(seed: u64) -> Battery {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57_0d_1e);
    let questions = vec![
        // Q1: top-1 among two-drug clusters.
        make_question("Q1", 2, 6, 1, &mut rng),
        // Q2: top-3 among two-drug clusters.
        make_question("Q2", 2, 8, 3, &mut rng),
        // Q3: top-1 among three-drug clusters.
        make_question("Q3", 3, 6, 1, &mut rng),
        // Q4: top-2 among three-drug clusters.
        make_question("Q4", 3, 6, 2, &mut rng),
        // Q5: top-1 among four-drug clusters.
        make_question("Q5", 4, 6, 1, &mut rng),
    ];
    Battery { questions }
}

fn make_question(
    label: &str,
    n_drugs: usize,
    n_candidates: usize,
    pick_top_k: usize,
    rng: &mut StdRng,
) -> Question {
    let context_size = (1usize << n_drugs) - 2;
    let mut candidates = Vec::with_capacity(n_candidates);
    // Construct score-first so the winner/decoy margin is guaranteed but
    // tight (≈0.1) — the study must be hard enough to leave the ceiling.
    for i in 0..n_candidates {
        let (score, dominated): (f64, bool) = if i < pick_top_k {
            (rng.gen_range(0.54..0.64), false)
        } else if i % 2 == 0 {
            // Decoy A: strong target *dominated* by its context (a sub-rule
            // explains the ADR).
            (rng.gen_range(0.30..0.44), true)
        } else {
            // Decoy B: weak target, weak context.
            (rng.gen_range(0.28..0.42), false)
        };
        let ctx_mean: f64 =
            if dominated { rng.gen_range(0.40..0.50) } else { rng.gen_range(0.12..0.22) };
        let target = (score + ctx_mean).min(0.97);
        // Spread context values around their mean without moving it.
        let mut context: Vec<f64> = (0..context_size)
            .map(|j| {
                let jitter: f64 = rng.gen_range(-0.06..0.06);
                let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                (ctx_mean + sign * jitter).clamp(0.0, 1.0)
            })
            .collect();
        if context_size % 2 == 1 {
            // Odd count: pin the last value to the mean so it stays exact.
            *context.last_mut().expect("non-empty context") = ctx_mean;
        }
        candidates.push(ClusterStimulus::new(target, context));
    }
    candidates.shuffle(rng);
    Question { label: label.to_string(), candidates, pick_top_k, n_drugs }
}

/// Builds a question directly from a pipeline's ranked output: the top-k
/// clusters with `n_drugs` drugs become the winners, padded with the
/// worst-ranked same-size clusters as decoys.
pub fn question_from_ranked(
    label: &str,
    ranked: &[RankedMcac],
    n_drugs: usize,
    n_candidates: usize,
    pick_top_k: usize,
    seed: u64,
) -> Option<Question> {
    let same_size: Vec<&RankedMcac> =
        ranked.iter().filter(|r| r.cluster.n_drugs() == n_drugs).collect();
    if same_size.len() < n_candidates || n_candidates < pick_top_k {
        return None;
    }
    let mut candidates: Vec<ClusterStimulus> = Vec::with_capacity(n_candidates);
    for r in &same_size[..pick_top_k] {
        candidates.push(ClusterStimulus::from_ranked(r));
    }
    for r in &same_size[same_size.len() - (n_candidates - pick_top_k)..] {
        candidates.push(ClusterStimulus::from_ranked(r));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    Some(Question { label: label.to_string(), candidates, pick_top_k, n_drugs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stimulus_score_is_target_minus_mean_context() {
        let s = ClusterStimulus::new(0.9, vec![0.1, 0.3]);
        assert!((s.true_score - 0.7).abs() < 1e-12);
        assert_eq!(s.n_drugs(), 2);
        let s3 = ClusterStimulus::new(0.5, vec![0.0; 6]);
        assert_eq!(s3.n_drugs(), 3);
        let s4 = ClusterStimulus::new(0.5, vec![0.0; 14]);
        assert_eq!(s4.n_drugs(), 4);
    }

    #[test]
    fn battery_matches_appendix_a_structure() {
        let b = appendix_a_battery(1);
        assert_eq!(b.questions.len(), 5);
        let specs: Vec<(usize, usize)> =
            b.questions.iter().map(|q| (q.n_drugs, q.pick_top_k)).collect();
        assert_eq!(specs, vec![(2, 1), (2, 3), (3, 1), (3, 2), (4, 1)]);
        for q in &b.questions {
            let expected_ctx = (1usize << q.n_drugs) - 2;
            for c in &q.candidates {
                assert_eq!(c.context.len(), expected_ctx, "{}", q.label);
            }
        }
    }

    #[test]
    fn battery_is_deterministic_in_seed() {
        assert_eq!(
            appendix_a_battery(9).questions[0].candidates,
            appendix_a_battery(9).questions[0].candidates
        );
        let a = appendix_a_battery(9);
        let b = appendix_a_battery(10);
        assert_ne!(a.questions[0].candidates, b.questions[0].candidates);
    }

    #[test]
    fn correct_answer_is_topk_by_true_score() {
        let q = Question {
            label: "t".into(),
            candidates: vec![
                ClusterStimulus::new(0.5, vec![0.4, 0.4]), // 0.1
                ClusterStimulus::new(0.9, vec![0.1, 0.1]), // 0.8
                ClusterStimulus::new(0.8, vec![0.3, 0.3]), // 0.5
            ],
            pick_top_k: 2,
            n_drugs: 2,
        };
        assert_eq!(q.correct_answer(), vec![1, 2]);
    }

    #[test]
    fn winners_clearly_beat_decoys() {
        // The battery's construction must give the ground truth a margin:
        // winners' true scores all above every decoy's.
        let b = appendix_a_battery(4);
        for q in &b.questions {
            let answer = q.correct_answer();
            let min_winner =
                answer.iter().map(|&i| q.candidates[i].true_score).fold(f64::INFINITY, f64::min);
            let max_decoy = (0..q.candidates.len())
                .filter(|i| !answer.contains(i))
                .map(|i| q.candidates[i].true_score)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                min_winner > max_decoy + 0.02,
                "{}: winner {min_winner} vs decoy {max_decoy}",
                q.label
            );
        }
    }
}
